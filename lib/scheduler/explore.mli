(** A stateless model checker for programs written against
    [Lineup_runtime.Rt] — the substrate the paper obtains from CHESS
    (Musuvathi et al., OSDI 2008).

    The explorer runs the program to completion under a deterministic
    cooperative scheduler, records the sequence of scheduling decisions
    (thread choices at scheduling points, value choices at demonic [Choose]
    points) together with their untried alternatives, and backtracks by
    re-executing from scratch along a mutated decision prefix — no state
    capture, exactly CHESS's architecture.

    Features mirrored from CHESS:
    - {e exhaustive} depth-first enumeration of schedules;
    - {e preemption bounding} (Musuvathi & Qadeer, PLDI 2007): a context
      switch away from a thread suspended at a shared-memory access counts
      against the bound; switches at operation boundaries, yields, blocks and
      thread exits are free. Phase 1 of Line-Up runs serial mode, where the
      only scheduling points are operation boundaries, so it is unaffected by
      the bound — preserving the paper's completeness guarantee (§4.3);
    - {e fair scheduling} (Musuvathi & Qadeer, PLDI 2008, approximated): a
      thread that performed [Rt.yield] (a spin-loop iteration) is not
      scheduled again until some other enabled thread has run;
    - {e deadlock detection}: blocked threads are disabled, so an execution
      with no enabled threads is a deadlock — reported as a stuck execution;
    - a per-execution step budget backstops genuine divergence, which is
      classified as stuck (the paper folds livelock and diverging loops into
      stuck histories, §2.3). *)

type mode =
  | Concurrent
      (** scheduling points at every shared access, operation boundary,
          yield and block — phase 2 *)
  | Serial
      (** scheduling points at operation boundaries only; an execution whose
          running thread blocks ends immediately as a stuck serial execution
          — phase 1 *)

type config = {
  mode : mode;
  preemption_bound : int option;  (** [None] = unbounded *)
  max_steps : int;  (** per-execution step budget (divergence backstop) *)
  max_executions : int option;  (** exploration budget; [None] = exhaustive *)
}

val default_config : config
(** Concurrent mode, preemption bound 2 (the CHESS default used by the
    paper), 50_000 steps, unlimited executions. *)

val serial_config : config
(** Serial mode, no preemption bound (phase 1 runs unbounded, §4.3). *)

type exec_end =
  | All_finished  (** every thread ran to completion *)
  | Deadlock of int list  (** no enabled thread; the listed threads are blocked *)
  | Serial_stuck of int  (** serial mode: the running thread blocked mid-operation *)
  | Diverged  (** step budget exhausted (livelock / diverging loop) *)

type exec_outcome = {
  exec_end : exec_end;
  steps : int;
  preemptions : int;
  yields : int;  (** [Rt.yield] suspensions (spin-loop iterations) *)
  choice_points : int;
      (** scheduling points where more than one continuation was
          schedulable — the decisions that actually branch the search *)
  errors : (int * exn) list;
      (** exceptions escaping thread bodies (implementation bugs of a
          different kind; exploration continues) *)
}

type stats = {
  executions : int;
  total_steps : int;
  deadlocks : int;
  divergences : int;
  serial_stucks : int;
  max_depth : int;  (** deepest decision trace seen *)
  pruned_choices : int;  (** alternatives dropped by the preemption bound *)
  preemptions_spent : int;  (** preemptions consumed, summed over executions *)
  yields : int;  (** fairness yields observed, summed over executions *)
  choice_points : int;  (** branching scheduling decisions, summed *)
  complete : bool;
      (** the schedule space was exhausted (no budget cut, no early stop) *)
}

val pp_stats : Format.formatter -> stats -> unit

val empty_stats : stats
(** The neutral element of {!merge_stats}: all counters zero,
    [complete = true]. *)

val merge_stats : stats -> stats -> stats
(** Componentwise merge of the statistics of two independent explorations:
    counters add, [max_depth] takes the maximum, [complete] is the
    conjunction. Associative and commutative with {!empty_stats} as the
    unit, so a fold over per-worker statistics is order-independent — the
    parallel checker relies on this to report deterministic aggregates. *)

(** [explore cfg ~setup ~on_execution] enumerates schedules depth-first.
    [setup] is run before each execution (with effects serviced inline, see
    {!Lineup_runtime.Rt.run_inline}) and returns the thread bodies.
    [on_execution] is called after each execution; returning [`Stop] ends the
    exploration early. *)
val explore :
  config ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  stats

(** [explore_iterative cfg ~max_bound ~setup ~on_execution] — iterative
    context bounding, the search order CHESS actually uses (Musuvathi &
    Qadeer, PLDI 2007): explore the schedule space exhaustively at
    preemption bound 0, then 1, … up to [max_bound] (inclusive), stopping
    early when [on_execution] returns [`Stop]. Returns the per-bound
    statistics in order together with the bound at which the exploration
    stopped, if it did. [cfg.preemption_bound] is ignored; [max_executions]
    applies per bound. This simple variant re-explores lower-bound schedules
    at each level — the classic trade-off for implementation simplicity. *)
val explore_iterative :
  config ->
  max_bound:int ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  stats list * int option

(** [random_walk cfg ~rng ~executions ~setup ~on_execution] replaces the
    systematic enumeration with uniformly random scheduling decisions — the
    "plain stress testing" baseline the paper contrasts with systematic
    exploration (§4: "simple runtime monitoring is not sufficient").
    [stats.complete] is always [false]. *)
val random_walk :
  config ->
  rng:Random.State.t ->
  executions:int ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  stats
