(** A stateless model checker for programs written against
    [Lineup_runtime.Rt] — the substrate the paper obtains from CHESS
    (Musuvathi et al., OSDI 2008).

    The explorer runs the program to completion under a deterministic
    cooperative scheduler, records the sequence of scheduling decisions
    (thread choices at scheduling points, value choices at demonic [Choose]
    points) together with their untried alternatives, and backtracks by
    re-executing from scratch along a mutated decision prefix — no state
    capture, exactly CHESS's architecture.

    Features mirrored from CHESS:
    - {e exhaustive} depth-first enumeration of schedules;
    - {e preemption bounding} (Musuvathi & Qadeer, PLDI 2007): a context
      switch away from a thread suspended at a shared-memory access counts
      against the bound; switches at operation boundaries, yields, blocks and
      thread exits are free. Phase 1 of Line-Up runs serial mode, where the
      only scheduling points are operation boundaries, so it is unaffected by
      the bound — preserving the paper's completeness guarantee (§4.3);
    - {e fair scheduling} (Musuvathi & Qadeer, PLDI 2008, approximated): a
      thread that performed [Rt.yield] (a spin-loop iteration) is not
      scheduled again until some other enabled thread has run;
    - {e deadlock detection}: blocked threads are disabled, so an execution
      with no enabled threads is a deadlock — reported as a stuck execution;
    - a per-execution step budget backstops genuine divergence, which is
      classified as stuck (the paper folds livelock and diverging loops into
      stuck histories, §2.3). *)

type mode =
  | Concurrent
      (** scheduling points at every shared access, operation boundary,
          yield and block — phase 2 *)
  | Serial
      (** scheduling points at operation boundaries only; an execution whose
          running thread blocks ends immediately as a stuck serial execution
          — phase 1 *)

type config = {
  mode : mode;
  preemption_bound : int option;  (** [None] = unbounded *)
  max_steps : int;  (** per-execution step budget (divergence backstop) *)
  max_executions : int option;  (** exploration budget; [None] = exhaustive *)
}

val default_config : config
(** Concurrent mode, preemption bound 2 (the CHESS default used by the
    paper), 50_000 steps, unlimited executions. *)

val serial_config : config
(** Serial mode, no preemption bound (phase 1 runs unbounded, §4.3). *)

type exec_end =
  | All_finished  (** every thread ran to completion *)
  | Deadlock of int list  (** no enabled thread; the listed threads are blocked *)
  | Serial_stuck of int  (** serial mode: the running thread blocked mid-operation *)
  | Diverged  (** step budget exhausted (livelock / diverging loop) *)

type exec_outcome = {
  exec_end : exec_end;
  steps : int;
  preemptions : int;
  yields : int;  (** [Rt.yield] suspensions (spin-loop iterations) *)
  choice_points : int;
      (** scheduling points where more than one continuation was
          schedulable — the decisions that actually branch the search *)
  errors : (int * exn) list;
      (** exceptions escaping thread bodies (implementation bugs of a
          different kind; exploration continues) *)
}

type stats = {
  executions : int;
  total_steps : int;
  deadlocks : int;
  divergences : int;
  serial_stucks : int;
  max_depth : int;  (** deepest decision trace seen *)
  pruned_choices : int;  (** alternatives dropped by the preemption bound *)
  preemptions_spent : int;  (** preemptions consumed, summed over executions *)
  yields : int;  (** fairness yields observed, summed over executions *)
  choice_points : int;  (** branching scheduling decisions, summed *)
  exact_bound_skips : int;
      (** executions run but not admitted by {!explore_iterative}'s
          exact-bound filter (they spent fewer preemptions than the current
          bound and were already admitted at that lower bound); always [0]
          outside the iterative sweep *)
  complete : bool;
      (** the schedule space was exhausted (no budget cut, no early stop) *)
}

val pp_stats : Format.formatter -> stats -> unit

val empty_stats : stats
(** The neutral element of {!merge_stats}: all counters zero,
    [complete = true]. *)

val merge_stats : stats -> stats -> stats
(** Componentwise merge of the statistics of two independent explorations:
    counters add, [max_depth] takes the maximum, [complete] is the
    conjunction. Associative and commutative with {!empty_stats} as the
    unit, so a fold over per-worker statistics is order-independent — the
    parallel checker relies on this to report deterministic aggregates. *)

(** [explore cfg ~setup ~on_execution] enumerates schedules depth-first.
    [setup] is run before each execution (with effects serviced inline, see
    {!Lineup_runtime.Rt.run_inline}) and returns the thread bodies.
    [on_execution] is called after each execution; returning [`Stop] ends the
    exploration early. *)
val explore :
  config ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  stats

(** {1 Frontier splitting}

    Intra-check parallelism partitions one schedule tree across workers by
    its decision-prefix frontier: a shallow sequential warm-up ({!split})
    enumerates every realizable decision prefix of length at most [depth]
    — the {e frontier} — and each partition is then explored independently
    ({!explore_from}) by replaying its prefix and enumerating the subtree
    below it, on any domain. Because a prefix pins the first [depth]
    decisions and the program under test is deterministic given its
    decisions, the subtrees are disjoint and their union is exactly the
    schedule set {!explore} enumerates: same execution count, same
    histories, in the same canonical order when partition results are
    concatenated in frontier order (P-compositionality in the sense of
    Horn & Kroening, applied to the schedule space). *)

(** One recorded scheduling decision, frozen for transport across domains:
    the thread chosen at a scheduling point, or the value chosen at a
    demonic [Choose] point (with its arity, revalidated on replay). *)
type choice =
  | Sched_choice of int
  | Value_choice of { chosen : int; arity : int }

(** A decision-trace prefix in execution order, identifying one partition
    of the schedule tree. Immutable and self-contained: safe to hand to
    another domain, or to serialize. *)
type prefix = choice list

type frontier = {
  prefixes : prefix list;
      (** the partitions, in canonical DFS order — concatenating each
          partition's executions in this order reproduces {!explore}'s
          execution order exactly *)
  warmup : stats;
      (** statistics of the warm-up executions (one per partition);
          [warmup.complete = false] means the warm-up was stopped early
          (budget or [`Stop]) and [prefixes] covers only part of the tree *)
}

(** [split cfg ~depth ~setup ~on_execution] runs the depth-[depth] warm-up
    and returns the frontier. Each warm-up execution runs to completion
    (an execution cannot be abandoned mid-flight) and realizes exactly one
    frontier prefix; [on_execution] is called on each — return [`Stop] to
    abandon the warm-up (e.g. on cancellation). Executions whose full
    decision trace is shorter than [depth] form singleton partitions.
    [cfg.max_executions] caps the number of partitions. *)
val split :
  config ->
  depth:int ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  frontier

(** [explore_from cfg ~prefix ~setup ~on_execution] explores exactly the
    partition identified by [prefix]: the first [List.length prefix]
    decisions are replayed frozen (never backtracked), everything below is
    enumerated depth-first as {!explore} would. [stats.complete] refers to
    the partition's subtree. Raises [Invalid_argument] if the prefix does
    not replay against the program (wrong arity or unschedulable thread —
    a prefix is only meaningful for the [setup] that produced it). *)
val explore_from :
  config ->
  prefix:prefix ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  stats

(** [explore_iterative cfg ~max_bound ~setup ~on_execution] — iterative
    context bounding, the search order CHESS actually uses (Musuvathi &
    Qadeer, PLDI 2007): explore the schedule space exhaustively at
    preemption bound 0, then 1, … up to [max_bound] (inclusive), stopping
    early when [on_execution] returns [`Stop]. Returns the per-bound
    statistics in order together with the bound at which the exploration
    stopped, if it did. [cfg.preemption_bound] is ignored; [max_executions]
    applies per bound.

    The tree at bound b is a superset of the tree at bound b-1, so the
    sweep necessarily {e re-executes} lower-bound schedules at each level;
    it does {e not} re-admit them: at bound b > 0, [on_execution] is called
    only for executions that spend exactly b preemptions (each schedule is
    admitted exactly once across the sweep, at the bound equal to its
    preemption count). Executions filtered out are counted in the per-bound
    [stats.exact_bound_skips]. *)
val explore_iterative :
  config ->
  max_bound:int ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  stats list * int option

(** [random_walk cfg ~rng ~executions ~setup ~on_execution] replaces the
    systematic enumeration with uniformly random scheduling decisions — the
    "plain stress testing" baseline the paper contrasts with systematic
    exploration (§4: "simple runtime monitoring is not sufficient").
    [stats.complete] is always [false]. *)
val random_walk :
  config ->
  rng:Random.State.t ->
  executions:int ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  stats
