(** A stateless model checker for programs written against
    [Lineup_runtime.Rt] — the substrate the paper obtains from CHESS
    (Musuvathi et al., OSDI 2008).

    The explorer runs the program to completion under a deterministic
    cooperative scheduler, records the sequence of scheduling decisions
    (thread choices at scheduling points, value choices at demonic [Choose]
    points) together with their untried alternatives, and backtracks by
    re-executing from scratch along a mutated decision prefix — no state
    capture, exactly CHESS's architecture.

    Features mirrored from CHESS:
    - {e exhaustive} depth-first enumeration of schedules;
    - {e preemption bounding} (Musuvathi & Qadeer, PLDI 2007): a context
      switch away from a thread suspended at a shared-memory access counts
      against the bound; switches at operation boundaries, yields, blocks and
      thread exits are free. Phase 1 of Line-Up runs serial mode, where the
      only scheduling points are operation boundaries, so it is unaffected by
      the bound — preserving the paper's completeness guarantee (§4.3);
    - {e fair scheduling} (Musuvathi & Qadeer, PLDI 2008, approximated): a
      thread that performed [Rt.yield] (a spin-loop iteration) is not
      scheduled again until some other enabled thread has run;
    - {e deadlock detection}: blocked threads are disabled, so an execution
      with no enabled threads is a deadlock — reported as a stuck execution;
    - a per-execution step budget backstops genuine divergence, which is
      classified as stuck (the paper folds livelock and diverging loops into
      stuck histories, §2.3).

    Beyond CHESS, the explorer implements {e dynamic partial-order
    reduction} (Flanagan & Godefroid, POPL 2005) with sleep sets, off by
    default ([config.por]). Every executed step carries its access
    {e footprint} ({!Lineup_runtime.Footprint.t} — the shared location it
    touches and how); two steps commute unless their footprints conflict.
    Backtrack sets are computed dynamically from a last-conflicting-access
    scan of the executed path, and sleep sets prune sibling orders already
    covered by an explored subtree. Operation call/return events carry an
    always-conflicting footprint, so event order — the history — is never
    reordered: the reduction collapses interleavings that produce the same
    history, never distinct histories. Serial mode is never reduced (each
    serial interleaving {e is} a distinct history; phase 1's completeness
    depends on enumerating them all, §4.3).

    The reduction composes soundly with preemption bounding, at reduced
    strength: commuting independent steps can shift which context switches
    count as preemptions, so the classic coverage arguments (lazy backtrack
    sets, unrestricted sleep sets) silently lose bounded schedules. Under a
    finite [preemption_bound] the explorer therefore branches eagerly and
    reduces with {e cost-aware} sleep sets only — an explored sibling may
    cover its reorderings only if it was a free (non-preempting) choice
    whose step ended at a voluntary suspension, which guarantees the
    commuted witness never exceeds the budget at any prefix. Without a
    bound the full lazy reduction applies.

    {1 Weak memory}

    With [config.memory] set to {!Lineup_runtime.Memory_model.Tso} or [Pso]
    the explorer enumerates store-buffer behaviours directly: writes enter
    per-thread (TSO) or per-thread-per-location (PSO) FIFO buffers, and each
    non-empty buffer contributes a {e virtual flusher} — a schedulable id
    [>= n] (for [n] test threads) whose step commits the buffer's oldest
    store. Flush choices are ordinary choices: they appear in decision
    traces, sleep sets and serialized prefixes ([sN] tokens with [N >= n]),
    and carry a write footprint on the committed location so the reduction
    orders them against conflicting accesses. They are always {e free} under
    preemption bounding (a flush runs no thread, so it cannot preempt one),
    which makes flush placement exhaustively explored at every bound.

    Drain obligations keep executions well-formed: a thread at an RMW
    scheduling point, an [Rt.Fence], or an operation-return marker with a
    non-empty buffer is blocked until scheduler-chosen flushes drain it —
    so RMWs and lock operations are fencing, and every operation's stores
    are globally visible before its return event is recorded (histories
    stay complete; the final observer reads fully flushed memory). Serial
    mode (phase 1) always runs SC. Under the default [Sc] no buffering code
    runs and exploration is exactly as before. *)

type mode =
  | Concurrent
      (** scheduling points at every shared access, operation boundary,
          yield and block — phase 2 *)
  | Serial
      (** scheduling points at operation boundaries only; an execution whose
          running thread blocks ends immediately as a stuck serial execution
          — phase 1 *)

type config = {
  mode : mode;
  preemption_bound : int option;  (** [None] = unbounded *)
  max_steps : int;  (** per-execution step budget (divergence backstop) *)
  max_executions : int option;  (** exploration budget; [None] = exhaustive *)
  por : bool;
      (** dynamic partial-order reduction (concurrent mode only; ignored —
          a sound no-op — in serial mode) *)
  memory : Lineup_runtime.Memory_model.t;
      (** simulated memory model (concurrent mode only; serial mode always
          runs SC — see the weak-memory section above) *)
}

val default_config : config
(** Concurrent mode, preemption bound 2 (the CHESS default used by the
    paper), 50_000 steps, unlimited executions, no reduction. *)

val serial_config : config
(** Serial mode, no preemption bound (phase 1 runs unbounded, §4.3). *)

type exec_end =
  | All_finished  (** every thread ran to completion *)
  | Deadlock of int list  (** no enabled thread; the listed threads are blocked *)
  | Serial_stuck of int  (** serial mode: the running thread blocked mid-operation *)
  | Diverged  (** step budget exhausted (livelock / diverging loop) *)

type exec_outcome = {
  exec_end : exec_end;
  steps : int;
  preemptions : int;
  yields : int;  (** [Rt.yield] suspensions (spin-loop iterations) *)
  flushes : int;  (** store-buffer commits performed; [0] under SC *)
  choice_points : int;
      (** scheduling points where more than one continuation was
          schedulable — the decisions that actually branch the search *)
  errors : (int * exn) list;
      (** exceptions escaping thread bodies (implementation bugs of a
          different kind; exploration continues) *)
  por_pruned : bool;
      (** the execution was abandoned by the reduction (every schedulable
          choice was in the sleep set); never delivered to [on_execution] *)
}

type stats = {
  executions : int;
  total_steps : int;
  deadlocks : int;
  divergences : int;
  serial_stucks : int;
  max_depth : int;  (** deepest decision trace seen *)
  pruned_choices : int;  (** alternatives dropped by the preemption bound *)
  preemptions_spent : int;  (** preemptions consumed, summed over executions *)
  yields : int;  (** fairness yields observed, summed over executions *)
  choice_points : int;  (** branching scheduling decisions, summed *)
  exact_bound_skips : int;
      (** executions run but rejected by the admission filter ([?admit],
          used by {!explore_iterative}'s exact-bound filter): they never
          reach [on_execution], so no per-execution work happens for them;
          always [0] without a filter *)
  sleep_set_skips : int;
      (** executions abandoned by the reduction as redundant
          ([por_pruned]); not counted in [executions] *)
  backtrack_points : int;
      (** backtracking alternatives added by the dynamic conflict analysis *)
  flushes : int;  (** store-buffer commits, summed; [0] under SC *)
  complete : bool;
      (** the schedule space was exhausted (no budget cut, no early stop) *)
}

val pp_stats : Format.formatter -> stats -> unit

val empty_stats : stats
(** The neutral element of {!merge_stats}: all counters zero,
    [complete = true]. *)

val merge_stats : stats -> stats -> stats
(** Componentwise merge of the statistics of two independent explorations:
    counters add, [max_depth] takes the maximum, [complete] is the
    conjunction. Associative and commutative with {!empty_stats} as the
    unit, so a fold over per-worker statistics is order-independent — the
    parallel checker relies on this to report deterministic aggregates. *)

(** [explore cfg ~setup ~on_execution ()] enumerates schedules depth-first.
    [setup] is run before each execution (with effects serviced inline, see
    {!Lineup_runtime.Rt.run_inline}) and returns the thread bodies.
    [on_execution] is called after each execution; returning [`Stop] ends the
    exploration early.

    [admit] filters executions {e before} any per-execution work: a rejected
    execution is counted in [stats.exact_bound_skips] and [on_execution] is
    not called (so the caller never builds its history). Defaults to
    admitting everything. *)
val explore :
  config ->
  ?admit:(exec_outcome -> bool) ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  unit ->
  stats

(** {1 Frontier splitting}

    Intra-check parallelism partitions one schedule tree across workers by
    its decision-prefix frontier: a shallow sequential warm-up ({!split})
    enumerates every realizable decision prefix of length at most [depth]
    — the {e frontier} — and each partition is then explored independently
    ({!explore_from}) by replaying its prefix and enumerating the subtree
    below it, on any domain. Because a prefix pins the first [depth]
    decisions and the program under test is deterministic given its
    decisions, the subtrees are disjoint and their union is exactly the
    schedule set {!explore} enumerates: same execution count, same
    histories, in the same canonical order when partition results are
    concatenated in frontier order (P-compositionality in the sense of
    Horn & Kroening, applied to the schedule space).

    Composition with the reduction: the warm-up always runs {e unreduced},
    so the frontier — and with it the partition set and the [-j] merge
    order — is identical with and without [config.por]; each partition then
    explores its own subtree reduced, with the frozen prefix exempt from
    backtracking. Redundancy {e across} partitions that a monolithic
    reduced search would have pruned is retained by construction. *)

(** One recorded scheduling decision, frozen for transport across domains:
    the thread chosen at a scheduling point, or the value chosen at a
    demonic [Choose] point (with its arity, revalidated on replay). *)
type choice =
  | Sched_choice of int
  | Value_choice of { chosen : int; arity : int }

(** A decision-trace prefix in execution order, identifying one partition
    of the schedule tree. Immutable and self-contained: safe to hand to
    another domain, or to serialize. *)
type prefix = choice list

val prefix_to_string : prefix -> string
(** Compact textual transport encoding of a prefix (choices ';'-joined,
    [sN] thread / [vC/A] value tokens) — used to serialize frontier
    partitions for other processes and for on-disk checkpoints. Injective,
    and [""] encodes the empty prefix. *)

val prefix_of_string : string -> (prefix, string) result
(** Total inverse of {!prefix_to_string} on its image; anything else —
    corrupted checkpoints, foreign files — is rejected with a message
    rather than replayed. *)

type frontier = {
  prefixes : prefix list;
      (** the partitions, in canonical DFS order — concatenating each
          partition's executions in this order reproduces {!explore}'s
          execution order exactly *)
  warmup : stats;
      (** statistics of the warm-up executions (one per partition);
          [warmup.complete = false] means the warm-up was stopped early
          (budget or [`Stop]) and [prefixes] covers only part of the tree *)
}

(** [split cfg ~depth ~setup ~on_execution] runs the depth-[depth] warm-up
    and returns the frontier. Each warm-up execution runs to completion
    (an execution cannot be abandoned mid-flight) and realizes exactly one
    frontier prefix; [on_execution] is called on each — return [`Stop] to
    abandon the warm-up (e.g. on cancellation). Executions whose full
    decision trace is shorter than [depth] form singleton partitions.
    [cfg.max_executions] caps the number of partitions. [cfg.por] is
    ignored: the warm-up runs unreduced (see above). *)
val split :
  config ->
  depth:int ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  frontier

(** [explore_from cfg ~prefix ~setup ~on_execution ()] explores exactly the
    partition identified by [prefix]: the first [List.length prefix]
    decisions are replayed frozen (never backtracked, never offered
    backtracking alternatives by the reduction), everything below is
    enumerated depth-first as {!explore} would — reduced when [cfg.por].
    [stats.complete] refers to the partition's subtree. [admit] as in
    {!explore}. Raises [Invalid_argument] if the prefix does not replay
    against the program (wrong arity or unschedulable thread — a prefix is
    only meaningful for the [setup] that produced it). *)
val explore_from :
  config ->
  ?admit:(exec_outcome -> bool) ->
  prefix:prefix ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  unit ->
  stats

(** [explore_iterative cfg ~max_bound ~setup ~on_execution] — iterative
    context bounding, the search order CHESS actually uses (Musuvathi &
    Qadeer, PLDI 2007): explore the schedule space exhaustively at
    preemption bound 0, then 1, … up to [max_bound] (inclusive), stopping
    early when [on_execution] returns [`Stop]. Returns the per-bound
    statistics in order together with the bound at which the exploration
    stopped, if it did. [cfg.preemption_bound] is ignored; [max_executions]
    applies per bound.

    The tree at bound b is a superset of the tree at bound b-1, so the
    sweep necessarily {e re-executes} lower-bound schedules at each level;
    it does {e not} re-admit them: at bound b > 0, only executions that
    spend exactly b preemptions are admitted (each schedule is admitted
    exactly once across the sweep, at the bound equal to its preemption
    count). The filter runs as the [?admit] hook of {!explore}, so a
    filtered execution costs its re-execution and nothing more — no
    history is built, no checker runs; it is counted in the per-bound
    [stats.exact_bound_skips]. *)
val explore_iterative :
  config ->
  max_bound:int ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  stats list * int option

(** [random_walk cfg ~rng ~executions ~setup ~on_execution] replaces the
    systematic enumeration with uniformly random scheduling decisions — the
    "plain stress testing" baseline the paper contrasts with systematic
    exploration (§4: "simple runtime monitoring is not sufficient").
    [stats.complete] is always [false]. *)
val random_walk :
  config ->
  rng:Random.State.t ->
  executions:int ->
  setup:(unit -> (unit -> unit) array) ->
  on_execution:(exec_outcome -> [ `Continue | `Stop ]) ->
  stats
