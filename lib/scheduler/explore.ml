module Rt = Lineup_runtime.Rt
module Exec_ctx = Lineup_runtime.Exec_ctx
module Footprint = Lineup_runtime.Footprint
module Memory_model = Lineup_runtime.Memory_model

type mode = Concurrent | Serial

type config = {
  mode : mode;
  preemption_bound : int option;
  max_steps : int;
  max_executions : int option;
  por : bool;
  memory : Memory_model.t;
}

let default_config =
  {
    mode = Concurrent;
    preemption_bound = Some 2;
    max_steps = 50_000;
    max_executions = None;
    por = false;
    memory = Memory_model.Sc;
  }

let serial_config =
  {
    mode = Serial;
    preemption_bound = None;
    max_steps = 50_000;
    max_executions = None;
    por = false;
    memory = Memory_model.Sc;
  }

type exec_end =
  | All_finished
  | Deadlock of int list
  | Serial_stuck of int
  | Diverged

type exec_outcome = {
  exec_end : exec_end;
  steps : int;
  preemptions : int;
  yields : int;
  flushes : int;
  choice_points : int;
  errors : (int * exn) list;
  por_pruned : bool;
}

type stats = {
  executions : int;
  total_steps : int;
  deadlocks : int;
  divergences : int;
  serial_stucks : int;
  max_depth : int;
  pruned_choices : int;
  preemptions_spent : int;
  yields : int;
  choice_points : int;
  exact_bound_skips : int;
  sleep_set_skips : int;
  backtrack_points : int;
  flushes : int;
  complete : bool;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "executions=%d steps=%d deadlocks=%d divergences=%d serial-stuck=%d max-depth=%d pruned=%d %s"
    s.executions s.total_steps s.deadlocks s.divergences s.serial_stucks s.max_depth
    s.pruned_choices
    (if s.complete then "(exhaustive)" else "(budget-cut)")

let empty_stats =
  {
    executions = 0;
    total_steps = 0;
    deadlocks = 0;
    divergences = 0;
    serial_stucks = 0;
    max_depth = 0;
    pruned_choices = 0;
    preemptions_spent = 0;
    yields = 0;
    choice_points = 0;
    exact_bound_skips = 0;
    sleep_set_skips = 0;
    backtrack_points = 0;
    flushes = 0;
    complete = true;
  }

let merge_stats a b =
  {
    executions = a.executions + b.executions;
    total_steps = a.total_steps + b.total_steps;
    deadlocks = a.deadlocks + b.deadlocks;
    divergences = a.divergences + b.divergences;
    serial_stucks = a.serial_stucks + b.serial_stucks;
    max_depth = max a.max_depth b.max_depth;
    pruned_choices = a.pruned_choices + b.pruned_choices;
    preemptions_spent = a.preemptions_spent + b.preemptions_spent;
    yields = a.yields + b.yields;
    choice_points = a.choice_points + b.choice_points;
    exact_bound_skips = a.exact_bound_skips + b.exact_bound_skips;
    sleep_set_skips = a.sleep_set_skips + b.sleep_set_skips;
    backtrack_points = a.backtrack_points + b.backtrack_points;
    flushes = a.flushes + b.flushes;
    complete = a.complete && b.complete;
  }

(* ------------------------------------------------------------------ *)
(* Decision traces                                                     *)
(* ------------------------------------------------------------------ *)

(* Decision records are shared between the replay prefix and the trace being
   built, so mutating them during backtracking persists into the next
   execution. A [Thread] decision is a full choice point: besides the chosen
   thread and its pending alternatives it carries the schedulable candidate
   set, the footprint of the executed step and the sleep-set bookkeeping the
   partial-order reduction maintains across siblings ([explored], [sleep]).
   Outside POR mode the extra fields are dead weight kept empty. *)
type decision =
  | Thread of {
      mutable chosen : int;
      mutable untried : int list;
      mutable explored : int list;  (** siblings already fully explored *)
      mutable sleep : int list;  (** sleep set on entry, refreshed on replay *)
      mutable candidates : int list;  (** all schedulable choices here *)
      mutable free : int list;  (** the non-preempting subset *)
      mutable fp : Footprint.t;  (** footprint of the executed step *)
      mutable sleep_ok : bool;
          (** may [chosen] enter sibling sleep sets once flipped past?
              Always under no bound; under a finite preemption bound only
              when [chosen] was a free choice whose step ended at a
              voluntary suspension (see the soundness note at {!por}). *)
      frozen : bool;  (** thawed frontier prefix: never backtracked *)
    }
  | Value of { mutable chosen : int; mutable untried : int list; arity : int }

let thread_decision chosen ~untried ~sleep ~candidates ~free =
  Thread
    {
      chosen;
      untried;
      explored = [];
      sleep;
      candidates;
      free;
      fp = Footprint.pure;
      sleep_ok = false;
      frozen = false;
    }

exception Killed

(* Raised by a POR decider when every schedulable choice is in the sleep
   set: the execution's continuation only re-interleaves independent steps
   already covered by an explored sibling subtree. The engine kills the
   execution and the driver does not report it. *)
exception Sleep_blocked

(* The per-execution decision callbacks. [free]/[costly] partition the
   schedulable threads: picking a costly one consumes a preemption.
   [pending t] is the access footprint of thread [t]'s next step (the
   suspension it would resume from). [note_end ~voluntary] is called by the
   engine right after each chosen step runs to its next suspension,
   reporting whether that suspension is voluntary — the reduction needs the
   end kind of a step to decide whether it may enter sleep sets under a
   preemption bound. *)
type decider = {
  decide_thread : free:int list -> costly:int list -> pending:(int -> Footprint.t) -> int;
  decide_value : arity:int -> int;
  note_end : voluntary:bool -> unit;
}

type thread_state =
  | Ready of { resume : unit -> unit; abort : unit -> unit; fp : Footprint.t }
  | Blocked of {
      wake : unit -> bool;
      what : string;
      resume : unit -> unit;
      abort : unit -> unit;
      fp : Footprint.t;
    }
  | Finished

(* ------------------------------------------------------------------ *)
(* One execution                                                       *)
(* ------------------------------------------------------------------ *)

let run_one cfg ~(decider : decider) ~pruned ~setup =
  Exec_ctx.reset ();
  let threads = Rt.run_inline setup in
  (* Weak memory is a concurrent-mode concept: phase 1's serial enumeration
     synthesizes the sequential specification, which is memory-model
     independent, so serial exploration always runs SC. The model is active
     only between here and the end of this execution — [Rt.run_inline]
     contexts (setup above, the final observer after we return) see SC. *)
  let memory = if cfg.mode = Serial then Memory_model.Sc else cfg.memory in
  Exec_ctx.set_memory memory;
  Fun.protect ~finally:(fun () -> Exec_ctx.set_memory Memory_model.Sc) @@ fun () ->
  let n = Array.length threads in
  let status = Array.make n Finished in
  let yielded = Array.make n false in
  let last_running = ref None in
  let last_voluntary = ref true in
  let preemptions = ref 0 in
  let steps = ref 0 in
  let yields = ref 0 in
  let flushes = ref 0 in
  let choice_points = ref 0 in
  let errors = ref [] in
  let killing = ref false in
  let open Effect.Deep in
  let handler i =
    (* [fp] is the footprint of the step the thread will execute when next
       resumed: the access it suspends at. Boundary steps emit call/return
       events (event order is the history, so they never commute); yield
       steps interact with the fairness state and are kept opaque. *)
    let suspend ~voluntary ~fp k =
      status.(i) <-
        Ready { resume = (fun () -> continue k ()); abort = (fun () -> discontinue k Killed); fp };
      last_voluntary := voluntary
    in
    (* A drain obligation: the thread may not take its next step until its
       store buffers have emptied (via scheduler-chosen flushes). Used at
       RMWs, fences and operation-return markers under TSO/PSO; the blocked
       thread's pending footprint is that of the step it resumes into. *)
    let suspend_drain ~what ~fp k =
      status.(i) <-
        Blocked
          {
            wake = (fun () -> Exec_ctx.buffer_empty i);
            what;
            resume = (fun () -> continue k ());
            abort = (fun () -> discontinue k Killed);
            fp;
          };
      last_voluntary := true
    in
    {
      retc =
        (fun () ->
          status.(i) <- Finished;
          last_voluntary := true);
      exnc =
        (fun e ->
          status.(i) <- Finished;
          last_voluntary := true;
          match e with Killed -> () | e -> errors := (i, e) :: !errors);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Rt.Sched reason ->
            Some
              (fun (k : (b, unit) continuation) ->
                if !killing then continue k ()
                else begin
                  match reason, cfg.mode with
                  | (Rt.Access _ | Rt.Return_boundary | Rt.Fence), Serial ->
                    (* no mid-operation scheduling in serial mode; an
                       operation runs atomically through its return *)
                    continue k ()
                  | Rt.Access a, Concurrent ->
                    let fp = Footprint.access ~loc:a.loc ~kind:a.kind in
                    if
                      a.kind = Exec_ctx.Rmw
                      && memory <> Memory_model.Sc
                      && not (Exec_ctx.buffer_empty i)
                    then suspend_drain ~what:"store-buffer drain (rmw)" ~fp k
                    else suspend ~voluntary:false ~fp k
                  | Rt.Return_boundary, Concurrent ->
                    (* Drain-at-return: an operation's return event becomes
                       visible only once its stores are globally visible, so
                       histories stay complete and the final observer reads
                       fully flushed memory. *)
                    if memory <> Memory_model.Sc && not (Exec_ctx.buffer_empty i) then
                      suspend_drain ~what:"store-buffer drain (return)" ~fp:Footprint.event k
                    else suspend ~voluntary:true ~fp:Footprint.event k
                  | Rt.Fence, Concurrent ->
                    if memory <> Memory_model.Sc && not (Exec_ctx.buffer_empty i) then
                      suspend_drain ~what:"store-buffer drain (fence)" ~fp:Footprint.pure k
                    else suspend ~voluntary:true ~fp:Footprint.pure k
                  | Rt.Boundary, Concurrent -> suspend ~voluntary:true ~fp:Footprint.event k
                  | Rt.Boundary, Serial -> suspend ~voluntary:true ~fp:Footprint.event k
                end)
          | Rt.Block (wake, what, fp) ->
            Some
              (fun (k : (b, unit) continuation) ->
                if !killing then discontinue k Killed
                else begin
                  status.(i) <-
                    Blocked
                      {
                        wake;
                        what;
                        resume = (fun () -> continue k ());
                        abort = (fun () -> discontinue k Killed);
                        fp;
                      };
                  last_voluntary := true
                end)
          | Rt.Yield ->
            Some
              (fun (k : (b, unit) continuation) ->
                if !killing then continue k ()
                else begin
                  match cfg.mode with
                  | Serial ->
                    (* no mid-operation scheduling in serial mode; spin
                       loops that genuinely wait on another thread hit the
                       step budget and classify as stuck *)
                    continue k ()
                  | Concurrent ->
                    yielded.(i) <- true;
                    incr yields;
                    suspend ~voluntary:true ~fp:Footprint.unknown k
                end)
          | Rt.Choose (arity, _) ->
            Some
              (fun (k : (b, unit) continuation) ->
                if !killing then continue k 0
                else continue k (decider.decide_value ~arity))
          | _ -> None);
    }
  in
  Array.iteri
    (fun i body ->
      status.(i) <-
        Ready
          {
            resume = (fun () -> match_with body () (handler i));
            abort = (fun () -> status.(i) <- Finished);
            fp = Footprint.pure;
          })
    threads;
  let kill_all () =
    killing := true;
    Array.iter
      (fun st ->
        match st with
        | Ready { abort; _ } | Blocked { abort; _ } -> abort ()
        | Finished -> ())
      status
  in
  (* Wake predicates read shared state on behalf of the blocked thread;
     under weak memory {!Shared_var.peek} forwards from the current thread's
     store buffer, so the predicate must be evaluated with the blocked
     thread's identity installed (satellite of the peek/poke audit: a
     predicate must never observe another thread's un-flushed stores). *)
  let wake_holds i wake =
    let saved = Exec_ctx.current_tid () in
    Exec_ctx.set_current_tid i;
    let w = wake () in
    Exec_ctx.set_current_tid saved;
    w
  in
  (* Schedulable ids: real threads [0, n) plus one virtual flusher [n + u]
     per non-empty flush unit [u]. Flush ids flow through decisions, sleep
     sets and prefix serialization exactly like thread ids; unit indices are
     registration-ordered, hence deterministic across replays. *)
  let enabled_threads () =
    let acc = ref [] in
    if memory <> Memory_model.Sc then
      for u = Exec_ctx.flush_unit_count () - 1 downto 0 do
        if Option.is_some (Exec_ctx.flush_unit_pending u) then acc := (n + u) :: !acc
      done;
    for i = n - 1 downto 0 do
      match status.(i) with
      | Ready _ -> acc := i :: !acc
      | Blocked { wake; _ } -> if wake_holds i wake then acc := i :: !acc
      | Finished -> ()
    done;
    !acc
  in
  let blocked_threads () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match status.(i) with
      | Blocked _ -> acc := i :: !acc
      | Ready _ | Finished -> ()
    done;
    !acc
  in
  let pending t =
    if t >= n then
      (* A flusher's next step commits its unit's oldest store: a write to
         that store's location, which is what makes flush choices ordinary
         conflicting choices for the reduction. *)
      match Exec_ctx.flush_unit_pending (t - n) with
      | Some (loc, _) -> Footprint.access ~loc ~kind:Exec_ctx.Write
      | None -> Footprint.pure
    else
      match status.(t) with
      | Ready { fp; _ } | Blocked { fp; _ } -> fp
      | Finished -> Footprint.pure
  in
  let resume_thread i =
    match status.(i) with
    | Ready { resume; _ } | Blocked { resume; _ } ->
      Exec_ctx.set_current_tid i;
      resume ()
    | Finished -> assert false
  in
  (* Start fusion: run each thread to its first suspension point, in thread
     order, before any scheduling decision. Sound because every modeled
     shared access performs its scheduling effect first — the prefix before
     a thread's first suspension cannot touch modeled shared state, so its
     position in the interleaving is irrelevant. (Value choices encountered
     in the prefix remain decision points.) *)
  let prerun_blocked = ref None in
  Array.iteri
    (fun i st ->
      match st with
      | Ready { resume; _ } ->
        Exec_ctx.set_current_tid i;
        resume ();
        if cfg.mode = Serial && Option.is_none !prerun_blocked then begin
          match status.(i) with
          | Blocked { wake; _ } when not (wake ()) -> prerun_blocked := Some i
          | Blocked _ | Ready _ | Finished -> ()
        end
      | Blocked _ | Finished -> ())
    status;
  let por_blocked = ref false in
  let rec loop () =
    if Option.is_some !prerun_blocked then begin
      kill_all ();
      Serial_stuck (Option.get !prerun_blocked)
    end
    else if !steps >= cfg.max_steps then begin
      kill_all ();
      Diverged
    end
    else begin
      let enabled = enabled_threads () in
      match enabled with
      | [] ->
        if Array.for_all (function Finished -> true | Ready _ | Blocked _ -> false) status
        then All_finished
        else begin
          let blocked = blocked_threads () in
          kill_all ();
          Deadlock blocked
        end
      | _ :: _ ->
        (* Fairness: don't reschedule a yielded thread while a non-yielded
           thread is enabled. Flushers (ids >= n) never yield. *)
        let candidates =
          match List.filter (fun i -> i >= n || not yielded.(i)) enabled with
          | [] -> enabled
          | non_yielded -> non_yielded
        in
        (* Partition into free and costly (preempting) choices. Flush
           choices are always free: a flush runs no thread, so it neither
           preempts the interrupted thread nor perturbs the preemption
           accounting around it ([last_running]/[last_voluntary] are left
           untouched when a flusher is chosen) — flush placement is explored
           exhaustively at every preemption bound. *)
        let free, costly =
          if !last_voluntary then candidates, []
          else begin
            match !last_running with
            | Some t when List.mem t candidates ->
              ( List.filter (fun c -> c = t || c >= n) candidates,
                List.filter (fun c -> c <> t && c < n) candidates )
            | Some _ | None -> candidates, []
          end
        in
        let free, costly =
          match cfg.preemption_bound with
          | Some bound when !preemptions >= bound ->
            pruned := !pruned + List.length costly;
            free, []
          | Some _ | None -> free, costly
        in
        (* A genuine scheduling decision: more than one continuation was
           schedulable. Counted outside the decider so replayed prefixes and
           fresh decisions weigh the same. *)
        if List.compare_length_with free 1 > 0 || costly <> [] then incr choice_points;
        match decider.decide_thread ~free ~costly ~pending with
        | exception Sleep_blocked ->
          (* The reduction proved the continuation redundant; abandon the
             execution. The driver counts it and drops its history. *)
          por_blocked := true;
          kill_all ();
          All_finished
        | chosen when chosen >= n ->
          (* A flush step: commit the unit's oldest buffered store. It is a
             step for fairness (spinning threads get to re-run after it) but
             is transparent to preemption accounting. Its end is voluntary
             for the reduction's cost argument: a flush can move to any
             position without changing the cost of any context switch. *)
          if not (List.mem chosen free) then
            Fmt.invalid_arg "Explore: replayed decision chose unschedulable flusher %d" chosen;
          Array.iteri (fun j flag -> if flag then yielded.(j) <- false) yielded;
          incr steps;
          incr flushes;
          Exec_ctx.flush_one (chosen - n);
          decider.note_end ~voluntary:true;
          loop ()
        | chosen ->
          if not (List.mem chosen free || List.mem chosen costly) then
            Fmt.invalid_arg "Explore: replayed decision chose unschedulable thread %d" chosen;
          if List.mem chosen costly then incr preemptions;
          Array.iteri (fun j flag -> if flag && j <> chosen then yielded.(j) <- false) yielded;
          incr steps;
          resume_thread chosen;
          decider.note_end ~voluntary:!last_voluntary;
          if
            cfg.mode = Serial
            && (match status.(chosen) with Blocked { wake; _ } -> not (wake ()) | _ -> false)
          then begin
            kill_all ();
            Serial_stuck chosen
          end
          else begin
            last_running := Some chosen;
            loop ()
          end
    end
  in
  let exec_end = loop () in
  {
    exec_end;
    steps = !steps;
    preemptions = !preemptions;
    yields = !yields;
    flushes = !flushes;
    choice_points = !choice_points;
    errors = List.rev !errors;
    por_pruned = !por_blocked;
  }

(* ------------------------------------------------------------------ *)
(* Dynamic partial-order reduction (sleep sets + backtrack sets)       *)
(* ------------------------------------------------------------------ *)

(* Per-execution reduction state. [path] is the executed steps of the
   current execution, newest first, each carrying the thread, the step's
   footprint and the decision record it was chosen at — the substrate of
   the last-conflicting-access analysis. [sleep] is the current sleep set:
   threads whose pending step commutes with everything executed since an
   explored sibling covered them. [backtracks] survives the execution (it
   accumulates into the run statistics).

   Soundness under a preemption bound. Classic DPOR (lazy backtrack sets)
   and classic sleep sets both justify pruning by commuting independent
   steps: the pruned execution has a Mazurkiewicz-equivalent witness in an
   explored sibling subtree. Under a finite preemption bound that argument
   breaks, because commuting adjacent steps can shift which context
   switches count as preemptions — the witness may cost more than the
   bound even though the pruned execution did not, so the "covered"
   behavior is in fact never explored (observable as lost histories).

   The bounded mode therefore branches eagerly (every schedulable
   alternative is an untried sibling, exactly like the unreduced explorer)
   and takes its reduction from sleep sets alone, with a cost-aware
   admission rule: an explored sibling [x] may enter the sleep set only if
   (a) [x] was a free (non-preempting) choice at its node and (b) [x]'s
   step ends at a voluntary suspension. Under (a) and (b), moving [x] from
   any later position of a pruned execution to the front costs no extra
   preemption at any prefix: (a) makes the switch into [x] free, (b) makes
   the switch out of [x] free, and the bridged transition where [x] was
   removed can only get cheaper (the step before it keeps its end kind and
   [x] ran on a different thread). So the commuted witness respects the
   same budget and the sibling subtree really contains it. Steps end
   deterministically (same state, same step), so (b) — observed when the
   sibling executed — is a property of the node, not of one execution.

   Without a bound every schedule is affordable, the cost argument is
   vacuous, and the full lazy DPOR (persistent/backtrack sets + unrestricted
   sleep sets) applies. *)
type por = {
  bounded : bool;
  mutable path : (int * Footprint.t * decision) list;
  mutable sleep : int list;
  backtracks : int ref;
}

let por_fresh ~bounded ~backtracks = { bounded; path = []; sleep = []; backtracks }

(* Request that sibling [q] be explored at decision [d]. No-op on frozen
   (frontier-prefix) records — their siblings are other partitions — and on
   choices already chosen, explored, pending or asleep at [d]. *)
let por_request por d q =
  match d with
  | Thread t when not t.frozen ->
    if
      q <> t.chosen
      && (not (List.mem q t.explored))
      && (not (List.mem q t.untried))
      && not (List.mem q t.sleep)
    then begin
      t.untried <- t.untried @ [ q ];
      incr por.backtracks
    end
  | Thread _ | Value _ -> ()

(* The dynamic backtrack-set computation, run at every scheduling point for
   every schedulable candidate [q]: find the most recent executed step of a
   different thread whose footprint conflicts with [q]'s pending step, and
   request [q] (or, if [q] was not schedulable there, every choice that
   was) at that point. Only used without a preemption bound — the bounded
   mode branches eagerly and reduces with sleep sets alone (see {!por}). *)
let por_analyze por ~candidates ~pending =
  List.iter
    (fun q ->
      let fq = pending q in
      let rec scan = function
        | [] -> ()
        | (t', fp', d') :: rest ->
          if t' <> q && Footprint.conflicts fp' fq then begin
            match d' with
            | Thread t when not t.frozen ->
              if List.mem q t.candidates then por_request por d' q
              else List.iter (fun c -> por_request por d' c) t.candidates
            | Thread _ | Value _ -> ()
          end
          else scan rest
      in
      scan por.path)
    candidates

(* Commit the choice of [c] at decision [d]: record the executed step's
   footprint, push it on the path, and propagate the sleep set — explored
   siblings join it, and every member whose pending step conflicts with the
   chosen step wakes up. *)
let por_after_choice por d ~pending c =
  let fc = pending c in
  (match d with
   | Thread t -> t.fp <- fc
   | Value _ -> ());
  let seed = match d with Thread t -> t.explored @ por.sleep | Value _ -> por.sleep in
  por.sleep <-
    List.sort_uniq compare
      (List.filter (fun t -> t <> c && not (Footprint.conflicts (pending t) fc)) seed);
  por.path <- (c, fc, d) :: por.path

(* ------------------------------------------------------------------ *)
(* Depth-first systematic exploration with backtracking                *)
(* ------------------------------------------------------------------ *)

(* Builds the decider used for one DFS execution: consume the replay prefix,
   then make fresh decisions (preferring to continue the last-running thread)
   while recording untried alternatives. With [?por] the decider runs the
   reduction: without a preemption bound, fresh decisions start with lazy
   backtrack sets instead of all alternatives; under a finite bound they
   branch eagerly and only the cost-aware sleep sets prune (see {!por}).
   Either way sleeping candidates are never chosen, and a point whose every
   candidate sleeps raises {!Sleep_blocked}. *)
let dfs_decider ?por ~replay ~trace ~last_running () =
  let replay_left = ref replay in
  let pop_replayed () =
    match !replay_left with
    | [] -> None
    | d :: rest ->
      replay_left := rest;
      Some d
  in
  let record d = trace := d :: !trace in
  let decide_thread ~free ~costly ~pending =
    match pop_replayed () with
    | Some (Thread t as d) ->
      record d;
      (match por with
       | Some p ->
         if not t.frozen then begin
           let candidates = free @ costly in
           if not p.bounded then por_analyze p ~candidates ~pending;
           (* Refresh the path-determined bookkeeping: the candidate sets
              are deterministic under replay, the entry sleep set is not
              stored across executions but recomputed along the path. *)
           t.candidates <- candidates;
           t.free <- free;
           t.sleep <- p.sleep;
           t.sleep_ok <- (not p.bounded) || List.mem t.chosen free
         end;
         por_after_choice p d ~pending t.chosen
       | None -> ());
      t.chosen
    | Some (Value _) -> invalid_arg "Explore: replay mismatch (expected thread decision)"
    | None ->
      let all = free @ costly in
      (match por with
       | None ->
         let chosen =
           match !last_running with
           | Some t when List.mem t all -> t
           | _ -> List.fold_left min (List.hd all) all
         in
         let untried = List.filter (fun c -> c <> chosen) all in
         record (thread_decision chosen ~untried ~sleep:[] ~candidates:all ~free);
         chosen
       | Some p ->
         if not p.bounded then por_analyze p ~candidates:all ~pending;
         let sleep = p.sleep in
         let awake = List.filter (fun c -> not (List.mem c sleep)) all in
         (match awake with
          | [] -> raise Sleep_blocked
          | _ :: _ ->
            let chosen =
              match !last_running with
              | Some t when List.mem t awake -> t
              | _ -> List.fold_left min (List.hd awake) awake
            in
            (* Lazy backtracking is only sound without a preemption bound;
               under a bound every alternative is eager (like the unreduced
               explorer) and the cost-aware sleep sets do the pruning. *)
            let untried =
              if p.bounded then List.filter (fun c -> c <> chosen && not (List.mem c sleep)) all
              else []
            in
            let d = thread_decision chosen ~untried ~sleep ~candidates:all ~free in
            record d;
            (match d with
             | Thread t -> t.sleep_ok <- (not p.bounded) || List.mem chosen free
             | Value _ -> ());
            por_after_choice p d ~pending chosen;
            chosen))
  in
  let decide_value ~arity =
    match pop_replayed () with
    | Some (Value v as d) ->
      if v.arity <> arity then invalid_arg "Explore: replay mismatch (choice arity)";
      record d;
      v.chosen
    | Some (Thread _) -> invalid_arg "Explore: replay mismatch (expected value decision)"
    | None ->
      let d = Value { chosen = 0; untried = List.init (arity - 1) (fun i -> i + 1); arity } in
      record d;
      0
  in
  (* Observe each step's end kind as it suspends: under a bound, a chosen
     step that ends involuntarily loses its sleep eligibility (condition (b)
     of the cost argument at {!por}). The head of the path is the decision
     whose step just ran. *)
  let note_end ~voluntary =
    match por with
    | Some p when p.bounded -> (
      match p.path with
      | (_, _, Thread t) :: _ -> t.sleep_ok <- t.sleep_ok && voluntary
      | (_, _, Value _) :: _ | [] -> ())
    | Some _ | None -> ()
  in
  { decide_thread; decide_value; note_end }

(* Find the deepest decision with an untried alternative, mutate it to take
   that alternative, and return the new replay prefix (in execution order).
   Alternatives that entered the sleep set after they were requested are
   dropped — their subtrees were covered by a sibling in the meantime. *)
let next_prefix trace_rev =
  let rec go = function
    | [] -> None
    | d :: rest -> (
      match d with
      | Thread t -> (
        let rec pick = function
          | [] -> None
          | x :: xs when List.mem x t.sleep -> pick xs
          | x :: xs -> Some (x, xs)
        in
        match pick t.untried with
        | None ->
          t.untried <- [];
          go rest
        | Some (x, xs) ->
          if t.sleep_ok then t.explored <- t.chosen :: t.explored;
          t.sleep_ok <- false;
          t.chosen <- x;
          t.untried <- xs;
          Some (List.rev (d :: rest)))
      | Value v -> (
        match v.untried with
        | [] -> go rest
        | x :: xs ->
          v.chosen <- x;
          v.untried <- xs;
          Some (List.rev (d :: rest))))
  in
  go trace_rev

let exec_end_label = function
  | All_finished -> "finished"
  | Deadlock _ -> "deadlock"
  | Serial_stuck _ -> "serial-stuck"
  | Diverged -> "diverged"

(* One trace event per completed execution — granular enough to reconstruct
   the exploration timeline, coarse enough not to matter on hot paths (a
   single atomic load when tracing is off). *)
let trace_execution ~kind ~depth (o : exec_outcome) =
  if Lineup_observe.Trace.enabled () then
    Lineup_observe.Trace.emit "explore.execution"
      ([
         "kind", Lineup_observe.Trace.Str kind;
         "end", Lineup_observe.Trace.Str (exec_end_label o.exec_end);
         "steps", Lineup_observe.Trace.Int o.steps;
         "preemptions", Lineup_observe.Trace.Int o.preemptions;
         "yields", Lineup_observe.Trace.Int o.yields;
         "choice_points", Lineup_observe.Trace.Int o.choice_points;
         "depth", Lineup_observe.Trace.Int depth;
       ]
      @ (if o.flushes > 0 then [ "flushes", Lineup_observe.Trace.Int o.flushes ] else []))

let never_filtered (_ : exec_outcome) = true

(* The general DFS driver: start replaying from [replay0] (its decisions
   must carry empty [untried] lists when they are meant to stay frozen, as
   {!explore_from}'s thawed prefixes do) and enumerate the subtree below.

   [admit] is the hoisted admission filter: an execution it rejects is
   counted in [exact_bound_skips] and never reaches [on_execution] — the
   caller's per-execution work (history construction, checking) is skipped
   entirely, not merely discarded post-hoc.

   POR runs in concurrent mode only: phase 1's serial enumeration is the
   completeness-critical synthesis of the sequential specification (§4.3),
   and every serial interleaving is a distinct history by construction, so
   there is nothing sound to reduce there. *)
let explore_replay cfg ?(admit = never_filtered) ~replay0 ~setup ~on_execution () =
  let por_on = cfg.por && cfg.mode = Concurrent in
  let executions = ref 0 in
  let total_steps = ref 0 in
  let deadlocks = ref 0 in
  let divergences = ref 0 in
  let serial_stucks = ref 0 in
  let max_depth = ref 0 in
  let pruned = ref 0 in
  let preempt_spent = ref 0 in
  let yields = ref 0 in
  let choice_points = ref 0 in
  let skips = ref 0 in
  let sleep_blocked = ref 0 in
  let flushes = ref 0 in
  let backtracks = ref 0 in
  let complete = ref true in
  let replay = ref replay0 in
  let continue_ = ref true in
  while !continue_ do
    (* [last_running] mirrors the engine's notion for the decider's
       continue-current preference; the engine exposes it implicitly through
       decision order, so we track it via a shared cell updated by a wrapper. *)
    let trace = ref [] in
    let last_running = ref None in
    let por =
      if por_on then
        Some (por_fresh ~bounded:(Option.is_some cfg.preemption_bound) ~backtracks)
      else None
    in
    let base = dfs_decider ?por ~replay:!replay ~trace ~last_running () in
    let decider =
      {
        base with
        decide_thread =
          (fun ~free ~costly ~pending ->
            let c = base.decide_thread ~free ~costly ~pending in
            last_running := Some c;
            c);
      }
    in
    let outcome = run_one cfg ~decider ~pruned ~setup in
    total_steps := !total_steps + outcome.steps;
    let depth = List.length !trace in
    if depth > !max_depth then max_depth := depth;
    if outcome.por_pruned then begin
      (* Sleep-set blocked: the execution was abandoned as redundant. Its
         partial trace still drives the backtracking, but it is not an
         execution of the program — no outcome is reported. *)
      incr sleep_blocked;
      trace_execution ~kind:"dfs-sleep-blocked" ~depth outcome
    end
    else begin
      incr executions;
      preempt_spent := !preempt_spent + outcome.preemptions;
      yields := !yields + outcome.yields;
      flushes := !flushes + outcome.flushes;
      choice_points := !choice_points + outcome.choice_points;
      (match outcome.exec_end with
       | Deadlock _ -> incr deadlocks
       | Diverged -> incr divergences
       | Serial_stuck _ -> incr serial_stucks
       | All_finished -> ());
      trace_execution ~kind:"dfs" ~depth outcome;
      if not (admit outcome) then incr skips
      else begin
        match on_execution outcome with
        | `Stop ->
          continue_ := false;
          complete := false
        | `Continue -> ()
      end
    end;
    if !continue_ then begin
      match next_prefix !trace with
      | None -> continue_ := false
      | Some prefix -> (
        replay := prefix;
        match cfg.max_executions with
        | Some cap when !executions >= cap ->
          continue_ := false;
          complete := false
        | Some _ | None -> ())
    end
  done;
  {
    executions = !executions;
    total_steps = !total_steps;
    deadlocks = !deadlocks;
    divergences = !divergences;
    serial_stucks = !serial_stucks;
    max_depth = !max_depth;
    pruned_choices = !pruned;
    preemptions_spent = !preempt_spent;
    yields = !yields;
    choice_points = !choice_points;
    exact_bound_skips = !skips;
    sleep_set_skips = !sleep_blocked;
    backtrack_points = !backtracks;
    flushes = !flushes;
    complete = !complete;
  }

let explore cfg ?admit ~setup ~on_execution () =
  explore_replay cfg ?admit ~replay0:[] ~setup ~on_execution ()

(* ------------------------------------------------------------------ *)
(* Frontier splitting: depth-k prefix partitions for intra-check         *)
(* parallelism                                                           *)
(* ------------------------------------------------------------------ *)

type choice =
  | Sched_choice of int
  | Value_choice of { chosen : int; arity : int }

type prefix = choice list

type frontier = {
  prefixes : prefix list;
  warmup : stats;
}

(* Textual transport encoding of a decision prefix, for handing partitions
   to other processes and for on-disk checkpoints: choices are ';'-joined
   tokens, [sN] for a thread choice and [vC/A] for a value choice of arity
   [A]. The format is total on its image and rejects anything else, so a
   corrupted or foreign checkpoint surfaces as [Error] rather than as a
   bogus replay. *)
let prefix_to_string p =
  String.concat ";"
    (List.map
       (function
         | Sched_choice t -> Printf.sprintf "s%d" t
         | Value_choice { chosen; arity } -> Printf.sprintf "v%d/%d" chosen arity)
       p)

let prefix_of_string s =
  let choice_of_token tok =
    let num sub =
      match int_of_string_opt sub with
      | Some n when n >= 0 -> Ok n
      | Some _ | None -> Error (Printf.sprintf "Explore.prefix_of_string: bad number %S" sub)
    in
    if tok = "" then Error "Explore.prefix_of_string: empty token"
    else
      match tok.[0], String.index_opt tok '/' with
      | 's', None -> (
        match num (String.sub tok 1 (String.length tok - 1)) with
        | Ok t -> Ok (Sched_choice t)
        | Error _ as e -> e)
      | 'v', Some slash -> (
        match
          ( num (String.sub tok 1 (slash - 1)),
            num (String.sub tok (slash + 1) (String.length tok - slash - 1)) )
        with
        | Ok chosen, Ok arity when chosen < arity -> Ok (Value_choice { chosen; arity })
        | Ok _, Ok _ -> Error (Printf.sprintf "Explore.prefix_of_string: chosen >= arity in %S" tok)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      | _ -> Error (Printf.sprintf "Explore.prefix_of_string: unrecognized token %S" tok)
  in
  if s = "" then Ok []
  else
    List.fold_right
      (fun tok acc ->
        match acc with
        | Error _ as e -> e
        | Ok rest -> (
          match choice_of_token tok with Ok c -> Ok (c :: rest) | Error _ as e -> e))
      (String.split_on_char ';' s)
      (Ok [])

let freeze_decisions ds =
  List.map
    (function
      | Thread t -> Sched_choice t.chosen
      | Value v -> Value_choice { chosen = v.chosen; arity = v.arity })
    ds

(* Thawed prefixes carry no untried alternatives and are marked frozen:
   [next_prefix] can never flip a prefix decision and the reduction never
   requests siblings there, which is what confines {!explore_from} to the
   partition's subtree. *)
let thaw_prefix p =
  List.map
    (function
      | Sched_choice chosen ->
        Thread
          {
            chosen;
            untried = [];
            explored = [];
            sleep = [];
            candidates = [];
            free = [];
            fp = Footprint.pure;
            sleep_ok = false;
            frozen = true;
          }
      | Value_choice { chosen; arity } -> Value { chosen; untried = []; arity })
    p

let take_at_most n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let explore_from cfg ?admit ~prefix ~setup ~on_execution () =
  explore_replay cfg ?admit ~replay0:(thaw_prefix prefix) ~setup ~on_execution ()

let split cfg ~depth ~setup ~on_execution =
  if depth < 1 then invalid_arg "Explore.split: depth must be >= 1";
  (* The warm-up is the DFS of {!explore} with backtracking restricted to
     the first [depth] decisions: each execution realizes exactly one
     depth-<=[depth] decision prefix, and mutating only those decisions
     enumerates every such prefix once, in canonical DFS order. Decisions
     past the cut are executed (an execution cannot stop mid-flight) but
     their alternatives are left to the per-partition exploration.

     The warm-up always runs unreduced (por off): the frontier must
     partition the full choice tree so that the partition set — and hence
     the [-j] merge order — is identical with and without the reduction;
     each partition then explores its own subtree reduced. Cross-partition
     redundancy that monolithic POR would have pruned is the price of a
     [-j]-independent frontier. *)
  let cfg = { cfg with por = false } in
  let executions = ref 0 in
  let total_steps = ref 0 in
  let deadlocks = ref 0 in
  let divergences = ref 0 in
  let serial_stucks = ref 0 in
  let max_depth_ = ref 0 in
  let pruned = ref 0 in
  let preempt_spent = ref 0 in
  let yields = ref 0 in
  let flushes = ref 0 in
  let choice_points = ref 0 in
  let complete = ref true in
  let prefixes = ref [] in
  let replay = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let trace = ref [] in
    let last_running = ref None in
    let base = dfs_decider ~replay:!replay ~trace ~last_running () in
    let decider =
      {
        base with
        decide_thread =
          (fun ~free ~costly ~pending ->
            let c = base.decide_thread ~free ~costly ~pending in
            last_running := Some c;
            c);
      }
    in
    let outcome = run_one cfg ~decider ~pruned ~setup in
    incr executions;
    total_steps := !total_steps + outcome.steps;
    preempt_spent := !preempt_spent + outcome.preemptions;
    yields := !yields + outcome.yields;
    flushes := !flushes + outcome.flushes;
    choice_points := !choice_points + outcome.choice_points;
    (match outcome.exec_end with
     | Deadlock _ -> incr deadlocks
     | Diverged -> incr divergences
     | Serial_stuck _ -> incr serial_stucks
     | All_finished -> ());
    let tr = List.rev !trace in
    let cut = take_at_most depth tr in
    let d = List.length tr in
    if d > !max_depth_ then max_depth_ := d;
    trace_execution ~kind:"split-warmup" ~depth:d outcome;
    (* Freeze before [next_prefix] mutates the shared decision records. *)
    prefixes := freeze_decisions cut :: !prefixes;
    (match on_execution outcome with
     | `Stop ->
       continue_ := false;
       complete := false
     | `Continue -> ());
    if !continue_ then begin
      match next_prefix (List.rev cut) with
      | None -> continue_ := false
      | Some p -> (
        replay := p;
        match cfg.max_executions with
        | Some cap when !executions >= cap ->
          continue_ := false;
          complete := false
        | Some _ | None -> ())
    end
  done;
  {
    prefixes = List.rev !prefixes;
    warmup =
      {
        executions = !executions;
        total_steps = !total_steps;
        deadlocks = !deadlocks;
        divergences = !divergences;
        serial_stucks = !serial_stucks;
        max_depth = !max_depth_;
        pruned_choices = !pruned;
        preemptions_spent = !preempt_spent;
        yields = !yields;
        choice_points = !choice_points;
        exact_bound_skips = 0;
        sleep_set_skips = 0;
        backtrack_points = 0;
        flushes = !flushes;
        complete = !complete;
      };
  }

let explore_iterative cfg ~max_bound ~setup ~on_execution =
  let stopped_at = ref None in
  let rec go bound acc =
    if bound > max_bound || Option.is_some !stopped_at then List.rev acc
    else begin
      (* Exact-bound admission, hoisted into the explorer: a schedule
         spending c < bound preemptions was already admitted when the sweep
         ran at bound c. The bound-b tree necessarily re-executes it on the
         way to the new leaves, but the admission filter rejects it before
         any per-execution work (history construction, checking) happens —
         it is counted in [stats.exact_bound_skips] and nothing else. *)
      let admit (o : exec_outcome) = not (bound > 0 && o.preemptions < bound) in
      let stats =
        explore
          { cfg with preemption_bound = Some bound }
          ~admit ~setup
          ~on_execution:(fun outcome ->
            match on_execution outcome with
            | `Stop ->
              stopped_at := Some bound;
              `Stop
            | `Continue -> `Continue)
          ()
      in
      go (bound + 1) (stats :: acc)
    end
  in
  let all = go 0 [] in
  all, !stopped_at

(* ------------------------------------------------------------------ *)
(* Random-walk baseline                                                *)
(* ------------------------------------------------------------------ *)

let random_walk cfg ~rng ~executions:target ~setup ~on_execution =
  let executions = ref 0 in
  let total_steps = ref 0 in
  let deadlocks = ref 0 in
  let divergences = ref 0 in
  let serial_stucks = ref 0 in
  let pruned = ref 0 in
  let preempt_spent = ref 0 in
  let yields = ref 0 in
  let flushes = ref 0 in
  let choice_points = ref 0 in
  let continue_ = ref true in
  while !continue_ && !executions < target do
    let decider =
      {
        decide_thread =
          (fun ~free ~costly ~pending:_ ->
            let all = Array.of_list (free @ costly) in
            all.(Random.State.int rng (Array.length all)));
        decide_value = (fun ~arity -> Random.State.int rng arity);
        note_end = (fun ~voluntary:_ -> ());
      }
    in
    let outcome = run_one cfg ~decider ~pruned ~setup in
    incr executions;
    total_steps := !total_steps + outcome.steps;
    preempt_spent := !preempt_spent + outcome.preemptions;
    yields := !yields + outcome.yields;
    flushes := !flushes + outcome.flushes;
    choice_points := !choice_points + outcome.choice_points;
    (match outcome.exec_end with
     | Deadlock _ -> incr deadlocks
     | Diverged -> incr divergences
     | Serial_stuck _ -> incr serial_stucks
     | All_finished -> ());
    trace_execution ~kind:"random-walk" ~depth:0 outcome;
    match on_execution outcome with
    | `Stop -> continue_ := false
    | `Continue -> ()
  done;
  {
    executions = !executions;
    total_steps = !total_steps;
    deadlocks = !deadlocks;
    divergences = !divergences;
    serial_stucks = !serial_stucks;
    max_depth = 0;
    pruned_choices = !pruned;
    preemptions_spent = !preempt_spent;
    yields = !yields;
    choice_points = !choice_points;
    exact_bound_skips = 0;
    sleep_set_skips = 0;
    backtrack_points = 0;
    flushes = !flushes;
    complete = false;
  }
