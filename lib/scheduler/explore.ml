module Rt = Lineup_runtime.Rt
module Exec_ctx = Lineup_runtime.Exec_ctx

type mode = Concurrent | Serial

type config = {
  mode : mode;
  preemption_bound : int option;
  max_steps : int;
  max_executions : int option;
}

let default_config =
  { mode = Concurrent; preemption_bound = Some 2; max_steps = 50_000; max_executions = None }

let serial_config =
  { mode = Serial; preemption_bound = None; max_steps = 50_000; max_executions = None }

type exec_end =
  | All_finished
  | Deadlock of int list
  | Serial_stuck of int
  | Diverged

type exec_outcome = {
  exec_end : exec_end;
  steps : int;
  preemptions : int;
  yields : int;
  choice_points : int;
  errors : (int * exn) list;
}

type stats = {
  executions : int;
  total_steps : int;
  deadlocks : int;
  divergences : int;
  serial_stucks : int;
  max_depth : int;
  pruned_choices : int;
  preemptions_spent : int;
  yields : int;
  choice_points : int;
  exact_bound_skips : int;
  complete : bool;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "executions=%d steps=%d deadlocks=%d divergences=%d serial-stuck=%d max-depth=%d pruned=%d %s"
    s.executions s.total_steps s.deadlocks s.divergences s.serial_stucks s.max_depth
    s.pruned_choices
    (if s.complete then "(exhaustive)" else "(budget-cut)")

let empty_stats =
  {
    executions = 0;
    total_steps = 0;
    deadlocks = 0;
    divergences = 0;
    serial_stucks = 0;
    max_depth = 0;
    pruned_choices = 0;
    preemptions_spent = 0;
    yields = 0;
    choice_points = 0;
    exact_bound_skips = 0;
    complete = true;
  }

let merge_stats a b =
  {
    executions = a.executions + b.executions;
    total_steps = a.total_steps + b.total_steps;
    deadlocks = a.deadlocks + b.deadlocks;
    divergences = a.divergences + b.divergences;
    serial_stucks = a.serial_stucks + b.serial_stucks;
    max_depth = max a.max_depth b.max_depth;
    pruned_choices = a.pruned_choices + b.pruned_choices;
    preemptions_spent = a.preemptions_spent + b.preemptions_spent;
    yields = a.yields + b.yields;
    choice_points = a.choice_points + b.choice_points;
    exact_bound_skips = a.exact_bound_skips + b.exact_bound_skips;
    complete = a.complete && b.complete;
  }

(* ------------------------------------------------------------------ *)
(* Decision traces                                                     *)
(* ------------------------------------------------------------------ *)

(* Decision records are shared between the replay prefix and the trace being
   built, so mutating [chosen]/[untried] during backtracking persists into
   the next execution. *)
type decision =
  | Thread of { mutable chosen : int; mutable untried : int list }
  | Value of { mutable chosen : int; mutable untried : int list; arity : int }

exception Killed

(* The per-execution decision callbacks. [free]/[costly] partition the
   schedulable threads: picking a costly one consumes a preemption. *)
type decider = {
  decide_thread : free:int list -> costly:int list -> int;
  decide_value : arity:int -> int;
}

type thread_state =
  | Ready of { resume : unit -> unit; abort : unit -> unit }
  | Blocked of { wake : unit -> bool; what : string; resume : unit -> unit; abort : unit -> unit }
  | Finished

(* ------------------------------------------------------------------ *)
(* One execution                                                       *)
(* ------------------------------------------------------------------ *)

let run_one cfg ~(decider : decider) ~pruned ~setup =
  Exec_ctx.reset ();
  let threads = Rt.run_inline setup in
  let n = Array.length threads in
  let status = Array.make n Finished in
  let yielded = Array.make n false in
  let last_running = ref None in
  let last_voluntary = ref true in
  let preemptions = ref 0 in
  let steps = ref 0 in
  let yields = ref 0 in
  let choice_points = ref 0 in
  let errors = ref [] in
  let killing = ref false in
  let open Effect.Deep in
  let handler i =
    let suspend ~voluntary k =
      status.(i) <-
        Ready { resume = (fun () -> continue k ()); abort = (fun () -> discontinue k Killed) };
      last_voluntary := voluntary
    in
    {
      retc =
        (fun () ->
          status.(i) <- Finished;
          last_voluntary := true);
      exnc =
        (fun e ->
          status.(i) <- Finished;
          last_voluntary := true;
          match e with Killed -> () | e -> errors := (i, e) :: !errors);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Rt.Sched reason ->
            Some
              (fun (k : (b, unit) continuation) ->
                if !killing then continue k ()
                else begin
                  match reason, cfg.mode with
                  | Rt.Access _, Serial ->
                    (* no mid-operation scheduling in serial mode *)
                    continue k ()
                  | Rt.Access _, Concurrent -> suspend ~voluntary:false k
                  | Rt.Boundary, _ -> suspend ~voluntary:true k
                end)
          | Rt.Block (wake, what) ->
            Some
              (fun (k : (b, unit) continuation) ->
                if !killing then discontinue k Killed
                else begin
                  status.(i) <-
                    Blocked
                      {
                        wake;
                        what;
                        resume = (fun () -> continue k ());
                        abort = (fun () -> discontinue k Killed);
                      };
                  last_voluntary := true
                end)
          | Rt.Yield ->
            Some
              (fun (k : (b, unit) continuation) ->
                if !killing then continue k ()
                else begin
                  match cfg.mode with
                  | Serial ->
                    (* no mid-operation scheduling in serial mode; spin
                       loops that genuinely wait on another thread hit the
                       step budget and classify as stuck *)
                    continue k ()
                  | Concurrent ->
                    yielded.(i) <- true;
                    incr yields;
                    suspend ~voluntary:true k
                end)
          | Rt.Choose (arity, _) ->
            Some
              (fun (k : (b, unit) continuation) ->
                if !killing then continue k 0
                else continue k (decider.decide_value ~arity))
          | _ -> None);
    }
  in
  Array.iteri
    (fun i body ->
      status.(i) <-
        Ready
          {
            resume = (fun () -> match_with body () (handler i));
            abort = (fun () -> status.(i) <- Finished);
          })
    threads;
  let kill_all () =
    killing := true;
    Array.iter
      (fun st ->
        match st with
        | Ready { abort; _ } | Blocked { abort; _ } -> abort ()
        | Finished -> ())
      status
  in
  let enabled_threads () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match status.(i) with
      | Ready _ -> acc := i :: !acc
      | Blocked { wake; _ } -> if wake () then acc := i :: !acc
      | Finished -> ()
    done;
    !acc
  in
  let blocked_threads () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match status.(i) with
      | Blocked _ -> acc := i :: !acc
      | Ready _ | Finished -> ()
    done;
    !acc
  in
  let resume_thread i =
    match status.(i) with
    | Ready { resume; _ } | Blocked { resume; _ } ->
      Exec_ctx.set_current_tid i;
      resume ()
    | Finished -> assert false
  in
  (* Start fusion: run each thread to its first suspension point, in thread
     order, before any scheduling decision. Sound because every modeled
     shared access performs its scheduling effect first — the prefix before
     a thread's first suspension cannot touch modeled shared state, so its
     position in the interleaving is irrelevant. (Value choices encountered
     in the prefix remain decision points.) *)
  let prerun_blocked = ref None in
  Array.iteri
    (fun i st ->
      match st with
      | Ready { resume; _ } ->
        Exec_ctx.set_current_tid i;
        resume ();
        if cfg.mode = Serial && Option.is_none !prerun_blocked then begin
          match status.(i) with
          | Blocked { wake; _ } when not (wake ()) -> prerun_blocked := Some i
          | Blocked _ | Ready _ | Finished -> ()
        end
      | Blocked _ | Finished -> ())
    status;
  let rec loop () =
    if Option.is_some !prerun_blocked then begin
      kill_all ();
      Serial_stuck (Option.get !prerun_blocked)
    end
    else if !steps >= cfg.max_steps then begin
      kill_all ();
      Diverged
    end
    else begin
      let enabled = enabled_threads () in
      match enabled with
      | [] ->
        if Array.for_all (function Finished -> true | Ready _ | Blocked _ -> false) status
        then All_finished
        else begin
          let blocked = blocked_threads () in
          kill_all ();
          Deadlock blocked
        end
      | _ :: _ ->
        (* Fairness: don't reschedule a yielded thread while a non-yielded
           thread is enabled. *)
        let candidates =
          match List.filter (fun i -> not yielded.(i)) enabled with
          | [] -> enabled
          | non_yielded -> non_yielded
        in
        (* Partition into free and costly (preempting) choices. *)
        let free, costly =
          if !last_voluntary then candidates, []
          else begin
            match !last_running with
            | Some t when List.mem t candidates ->
              [ t ], List.filter (fun c -> c <> t) candidates
            | Some _ | None -> candidates, []
          end
        in
        let free, costly =
          match cfg.preemption_bound with
          | Some bound when !preemptions >= bound ->
            pruned := !pruned + List.length costly;
            free, []
          | Some _ | None -> free, costly
        in
        (* A genuine scheduling decision: more than one continuation was
           schedulable. Counted outside the decider so replayed prefixes and
           fresh decisions weigh the same. *)
        if List.compare_length_with free 1 > 0 || costly <> [] then incr choice_points;
        let chosen = decider.decide_thread ~free ~costly in
        if not (List.mem chosen free || List.mem chosen costly) then
          Fmt.invalid_arg "Explore: replayed decision chose unschedulable thread %d" chosen;
        if List.mem chosen costly then incr preemptions;
        Array.iteri (fun j flag -> if flag && j <> chosen then yielded.(j) <- false) yielded;
        incr steps;
        resume_thread chosen;
        if
          cfg.mode = Serial
          && (match status.(chosen) with Blocked { wake; _ } -> not (wake ()) | _ -> false)
        then begin
          kill_all ();
          Serial_stuck chosen
        end
        else begin
          last_running := Some chosen;
          loop ()
        end
    end
  in
  let exec_end = loop () in
  {
    exec_end;
    steps = !steps;
    preemptions = !preemptions;
    yields = !yields;
    choice_points = !choice_points;
    errors = List.rev !errors;
  }

(* ------------------------------------------------------------------ *)
(* Depth-first systematic exploration with backtracking                *)
(* ------------------------------------------------------------------ *)

(* Builds the decider used for one DFS execution: consume the replay prefix,
   then make fresh decisions (preferring to continue the last-running thread)
   while recording untried alternatives. *)
let dfs_decider ~replay ~trace ~last_running =
  let replay_left = ref replay in
  let pop_replayed () =
    match !replay_left with
    | [] -> None
    | d :: rest ->
      replay_left := rest;
      Some d
  in
  let record d = trace := d :: !trace in
  let decide_thread ~free ~costly =
    match pop_replayed () with
    | Some (Thread t as d) ->
      record d;
      t.chosen
    | Some (Value _) -> invalid_arg "Explore: replay mismatch (expected thread decision)"
    | None ->
      let all = free @ costly in
      let chosen =
        match !last_running with
        | Some t when List.mem t all -> t
        | _ -> List.fold_left min (List.hd all) all
      in
      let untried = List.filter (fun c -> c <> chosen) all in
      record (Thread { chosen; untried });
      chosen
  in
  let decide_value ~arity =
    match pop_replayed () with
    | Some (Value v as d) ->
      if v.arity <> arity then invalid_arg "Explore: replay mismatch (choice arity)";
      record d;
      v.chosen
    | Some (Thread _) -> invalid_arg "Explore: replay mismatch (expected value decision)"
    | None ->
      let d = Value { chosen = 0; untried = List.init (arity - 1) (fun i -> i + 1); arity } in
      record d;
      0
  in
  { decide_thread; decide_value }

(* Find the deepest decision with an untried alternative, mutate it to take
   that alternative, and return the new replay prefix (in execution order). *)
let next_prefix trace_rev =
  let rec go = function
    | [] -> None
    | d :: rest -> (
      match d with
      | Thread t -> (
        match t.untried with
        | [] -> go rest
        | x :: xs ->
          t.chosen <- x;
          t.untried <- xs;
          Some (List.rev (d :: rest)))
      | Value v -> (
        match v.untried with
        | [] -> go rest
        | x :: xs ->
          v.chosen <- x;
          v.untried <- xs;
          Some (List.rev (d :: rest))))
  in
  go trace_rev

let exec_end_label = function
  | All_finished -> "finished"
  | Deadlock _ -> "deadlock"
  | Serial_stuck _ -> "serial-stuck"
  | Diverged -> "diverged"

(* One trace event per completed execution — granular enough to reconstruct
   the exploration timeline, coarse enough not to matter on hot paths (a
   single atomic load when tracing is off). *)
let trace_execution ~kind ~depth (o : exec_outcome) =
  if Lineup_observe.Trace.enabled () then
    Lineup_observe.Trace.emit "explore.execution"
      [
        "kind", Lineup_observe.Trace.Str kind;
        "end", Lineup_observe.Trace.Str (exec_end_label o.exec_end);
        "steps", Lineup_observe.Trace.Int o.steps;
        "preemptions", Lineup_observe.Trace.Int o.preemptions;
        "yields", Lineup_observe.Trace.Int o.yields;
        "choice_points", Lineup_observe.Trace.Int o.choice_points;
        "depth", Lineup_observe.Trace.Int depth;
      ]

(* The general DFS driver: start replaying from [replay0] (its decisions
   must carry empty [untried] lists when they are meant to stay frozen, as
   {!explore_from}'s thawed prefixes do) and enumerate the subtree below. *)
let explore_replay cfg ~replay0 ~setup ~on_execution =
  let executions = ref 0 in
  let total_steps = ref 0 in
  let deadlocks = ref 0 in
  let divergences = ref 0 in
  let serial_stucks = ref 0 in
  let max_depth = ref 0 in
  let pruned = ref 0 in
  let preempt_spent = ref 0 in
  let yields = ref 0 in
  let choice_points = ref 0 in
  let complete = ref true in
  let replay = ref replay0 in
  let continue_ = ref true in
  while !continue_ do
    (* [last_running] mirrors the engine's notion for the decider's
       continue-current preference; the engine exposes it implicitly through
       decision order, so we track it via a shared cell updated by a wrapper. *)
    let trace = ref [] in
    let last_running = ref None in
    let base = dfs_decider ~replay:!replay ~trace ~last_running in
    let decider =
      {
        base with
        decide_thread =
          (fun ~free ~costly ->
            let c = base.decide_thread ~free ~costly in
            last_running := Some c;
            c);
      }
    in
    let outcome = run_one cfg ~decider ~pruned ~setup in
    incr executions;
    total_steps := !total_steps + outcome.steps;
    preempt_spent := !preempt_spent + outcome.preemptions;
    yields := !yields + outcome.yields;
    choice_points := !choice_points + outcome.choice_points;
    (match outcome.exec_end with
     | Deadlock _ -> incr deadlocks
     | Diverged -> incr divergences
     | Serial_stuck _ -> incr serial_stucks
     | All_finished -> ());
    let depth = List.length !trace in
    if depth > !max_depth then max_depth := depth;
    trace_execution ~kind:"dfs" ~depth outcome;
    (match on_execution outcome with
     | `Stop ->
       continue_ := false;
       complete := false
     | `Continue -> ());
    if !continue_ then begin
      match next_prefix !trace with
      | None -> continue_ := false
      | Some prefix -> (
        replay := prefix;
        match cfg.max_executions with
        | Some cap when !executions >= cap ->
          continue_ := false;
          complete := false
        | Some _ | None -> ())
    end
  done;
  {
    executions = !executions;
    total_steps = !total_steps;
    deadlocks = !deadlocks;
    divergences = !divergences;
    serial_stucks = !serial_stucks;
    max_depth = !max_depth;
    pruned_choices = !pruned;
    preemptions_spent = !preempt_spent;
    yields = !yields;
    choice_points = !choice_points;
    exact_bound_skips = 0;
    complete = !complete;
  }

let explore cfg ~setup ~on_execution = explore_replay cfg ~replay0:[] ~setup ~on_execution

(* ------------------------------------------------------------------ *)
(* Frontier splitting: depth-k prefix partitions for intra-check         *)
(* parallelism                                                           *)
(* ------------------------------------------------------------------ *)

type choice =
  | Sched_choice of int
  | Value_choice of { chosen : int; arity : int }

type prefix = choice list

type frontier = {
  prefixes : prefix list;
  warmup : stats;
}

let freeze_decisions ds =
  List.map
    (function
      | Thread t -> Sched_choice t.chosen
      | Value v -> Value_choice { chosen = v.chosen; arity = v.arity })
    ds

(* Thawed prefixes carry no untried alternatives: [next_prefix] can never
   flip a prefix decision, which is what confines {!explore_from} to the
   partition's subtree. *)
let thaw_prefix p =
  List.map
    (function
      | Sched_choice chosen -> Thread { chosen; untried = [] }
      | Value_choice { chosen; arity } -> Value { chosen; untried = []; arity })
    p

let take_at_most n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let explore_from cfg ~prefix ~setup ~on_execution =
  explore_replay cfg ~replay0:(thaw_prefix prefix) ~setup ~on_execution

let split cfg ~depth ~setup ~on_execution =
  if depth < 1 then invalid_arg "Explore.split: depth must be >= 1";
  (* The warm-up is the DFS of {!explore} with backtracking restricted to
     the first [depth] decisions: each execution realizes exactly one
     depth-<=[depth] decision prefix, and mutating only those decisions
     enumerates every such prefix once, in canonical DFS order. Decisions
     past the cut are executed (an execution cannot stop mid-flight) but
     their alternatives are left to the per-partition exploration. *)
  let executions = ref 0 in
  let total_steps = ref 0 in
  let deadlocks = ref 0 in
  let divergences = ref 0 in
  let serial_stucks = ref 0 in
  let max_depth_ = ref 0 in
  let pruned = ref 0 in
  let preempt_spent = ref 0 in
  let yields = ref 0 in
  let choice_points = ref 0 in
  let complete = ref true in
  let prefixes = ref [] in
  let replay = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let trace = ref [] in
    let last_running = ref None in
    let base = dfs_decider ~replay:!replay ~trace ~last_running in
    let decider =
      {
        base with
        decide_thread =
          (fun ~free ~costly ->
            let c = base.decide_thread ~free ~costly in
            last_running := Some c;
            c);
      }
    in
    let outcome = run_one cfg ~decider ~pruned ~setup in
    incr executions;
    total_steps := !total_steps + outcome.steps;
    preempt_spent := !preempt_spent + outcome.preemptions;
    yields := !yields + outcome.yields;
    choice_points := !choice_points + outcome.choice_points;
    (match outcome.exec_end with
     | Deadlock _ -> incr deadlocks
     | Diverged -> incr divergences
     | Serial_stuck _ -> incr serial_stucks
     | All_finished -> ());
    let tr = List.rev !trace in
    let cut = take_at_most depth tr in
    let d = List.length tr in
    if d > !max_depth_ then max_depth_ := d;
    trace_execution ~kind:"split-warmup" ~depth:d outcome;
    (* Freeze before [next_prefix] mutates the shared decision records. *)
    prefixes := freeze_decisions cut :: !prefixes;
    (match on_execution outcome with
     | `Stop ->
       continue_ := false;
       complete := false
     | `Continue -> ());
    if !continue_ then begin
      match next_prefix (List.rev cut) with
      | None -> continue_ := false
      | Some p -> (
        replay := p;
        match cfg.max_executions with
        | Some cap when !executions >= cap ->
          continue_ := false;
          complete := false
        | Some _ | None -> ())
    end
  done;
  {
    prefixes = List.rev !prefixes;
    warmup =
      {
        executions = !executions;
        total_steps = !total_steps;
        deadlocks = !deadlocks;
        divergences = !divergences;
        serial_stucks = !serial_stucks;
        max_depth = !max_depth_;
        pruned_choices = !pruned;
        preemptions_spent = !preempt_spent;
        yields = !yields;
        choice_points = !choice_points;
        exact_bound_skips = 0;
        complete = !complete;
      };
  }

let explore_iterative cfg ~max_bound ~setup ~on_execution =
  let stopped_at = ref None in
  let rec go bound acc =
    if bound > max_bound || Option.is_some !stopped_at then List.rev acc
    else begin
      let skips = ref 0 in
      let stats =
        explore
          { cfg with preemption_bound = Some bound }
          ~setup
          ~on_execution:(fun outcome ->
            (* Exact-bound admission: a schedule spending c < bound
               preemptions was already admitted when the sweep ran at bound
               c. The bound-b tree necessarily re-executes it on the way to
               the new leaves, but re-admitting it would hand every history
               to the caller once per bound level. *)
            if bound > 0 && outcome.preemptions < bound then begin
              incr skips;
              `Continue
            end
            else
              match on_execution outcome with
              | `Stop ->
                stopped_at := Some bound;
                `Stop
              | `Continue -> `Continue)
      in
      go (bound + 1) ({ stats with exact_bound_skips = !skips } :: acc)
    end
  in
  let all = go 0 [] in
  all, !stopped_at

(* ------------------------------------------------------------------ *)
(* Random-walk baseline                                                *)
(* ------------------------------------------------------------------ *)

let random_walk cfg ~rng ~executions:target ~setup ~on_execution =
  let executions = ref 0 in
  let total_steps = ref 0 in
  let deadlocks = ref 0 in
  let divergences = ref 0 in
  let serial_stucks = ref 0 in
  let pruned = ref 0 in
  let preempt_spent = ref 0 in
  let yields = ref 0 in
  let choice_points = ref 0 in
  let continue_ = ref true in
  while !continue_ && !executions < target do
    let decider =
      {
        decide_thread =
          (fun ~free ~costly ->
            let all = Array.of_list (free @ costly) in
            all.(Random.State.int rng (Array.length all)));
        decide_value = (fun ~arity -> Random.State.int rng arity);
      }
    in
    let outcome = run_one cfg ~decider ~pruned ~setup in
    incr executions;
    total_steps := !total_steps + outcome.steps;
    preempt_spent := !preempt_spent + outcome.preemptions;
    yields := !yields + outcome.yields;
    choice_points := !choice_points + outcome.choice_points;
    (match outcome.exec_end with
     | Deadlock _ -> incr deadlocks
     | Diverged -> incr divergences
     | Serial_stuck _ -> incr serial_stucks
     | All_finished -> ());
    trace_execution ~kind:"random-walk" ~depth:0 outcome;
    match on_execution outcome with
    | `Stop -> continue_ := false
    | `Continue -> ()
  done;
  {
    executions = !executions;
    total_steps = !total_steps;
    deadlocks = !deadlocks;
    divergences = !divergences;
    serial_stucks = !serial_stucks;
    max_depth = 0;
    pruned_choices = !pruned;
    preemptions_spent = !preempt_spent;
    yields = !yields;
    choice_points = !choice_points;
    exact_bound_skips = 0;
    complete = false;
  }
