(** One checking engine for one shard of an event stream, dispatching on
    the specification class: queues and stacks run the near-linear
    {!Lineup_spec.Monitor.Stream} engines, sets and dictionaries the
    keyed chunked feasible-state engine ({!Lineup_spec.Kmon}), and every
    other class the same chunked engine over a single key — any
    registered specification is monitorable. *)

type t

val create : spec:Lineup_spec.Spec.packed -> min_batch:int -> max_window:int -> t
val feed : t -> Lineup_history.Event.t -> unit

val shed :
  t -> call:Lineup_history.Event.t -> ret:Lineup_history.Event.t -> unit

val verdict_now : t -> Lineup_spec.Monitor.verdict option
val finalize : t -> Lineup_spec.Monitor.verdict
val ops : t -> int
val sheds : t -> int

val windows : t -> int
(** Window checks (fast engines) or closed chunks (chunked engines). *)

val resident : t -> int
(** Retained state in operations/intervals — what windowing keeps bounded. *)
