(** The [lineup monitor] driver: a reader domain parses the NDJSON stream
    into a bounded {!Ingest} queue; the calling domain feeds the engines
    in bulk-synchronous rounds, sharding keyed classes (set, dictionary)
    per key across domains via {!Lineup_parallel.Pool}. *)

type opts = {
  domains : int;  (** shards for keyed classes; fan-out for {!replay} *)
  min_batch : int;  (** window threshold of the fast engines *)
  max_window : int;  (** quiescence bound before [Unsupported] *)
  queue_cap : int;  (** ingest queue bound *)
  on_full : Ingest.policy;  (** backpressure policy at the bound *)
  report_every : int;  (** progress tick interval in events; 0 = off *)
  follow : bool;
      (** re-arm the reader on EOF instead of finalizing: an EOF on a FIFO
          only means every current writer closed, so the monitor waits for
          the next writer session. A followed run ends by verdict
          ([Reject] / [Unsupported]), never by stream end. *)
}

val default_opts : opts
(** 1 domain, [min_batch] 512, [max_window] 1_048_576, queue 65536,
    [Block], no ticks, no follow. *)

type outcome = {
  verdict : Lineup_spec.Monitor.verdict;
  ops : int;  (** completed operations checked *)
  sheds : int;  (** operations dropped under the [Shed] policy *)
  windows : int;  (** window / chunk checks performed *)
  resident_peak : int;  (** max retained engine state observed *)
  shards : int;  (** engines the stream was sharded across *)
}

val run :
  spec:Lineup_spec.Spec.packed ->
  opts:opts ->
  ?metrics:Lineup_observe.Metrics.t ->
  in_channel ->
  outcome
(** Monitor one live stream until EOF or a settled verdict (verdicts are
    sticky, so a [Reject] stops the run early and abandons the rest of
    the stream). Malformed lines settle the verdict as [Unsupported]. *)

val replay :
  spec:Lineup_spec.Spec.packed ->
  opts:opts ->
  ?metrics:Lineup_observe.Metrics.t ->
  in_channel ->
  (int option * Lineup_spec.Monitor.verdict) list * outcome
(** Replay a finite recording (e.g. a [lineup check --trace] file):
    events are grouped by their [hist] tag in first-appearance order and
    each group is monitored as an independent session, fanned out across
    [opts.domains]. Returns the per-history verdicts plus the combined
    outcome ([Reject] if any history rejects, else the first
    [Unsupported], else [Accept]) — the contract the CI equivalence gate
    checks against the offline verdict. *)
