module Spec = Lineup_spec.Spec
module Monitor = Lineup_spec.Monitor
module Event = Lineup_history.Event
module Invocation = Lineup_history.Invocation
module Value = Lineup_value.Value
module Pool = Lineup_parallel.Pool
module Metrics = Lineup_observe.Metrics
module Trace = Lineup_observe.Trace

(* The streaming driver: one reader domain parses NDJSON lines into a
   bounded {!Ingest} queue; the calling domain pops batches and feeds them
   to the engines in bulk-synchronous rounds. For keyed classes (set,
   dictionary) the stream shards per key across [domains] engines — by
   P-compositionality the keys are independent objects, so each shard
   monitors its own keys in isolation and a round's worth of shard feeding
   fans out through {!Pool.map_seq}. The per-round join publishes every
   engine's mutable state back to the calling domain before verdicts are
   read, so no engine state is ever accessed from two domains at once. *)

type opts = {
  domains : int;
  min_batch : int;
  max_window : int;
  queue_cap : int;
  on_full : Ingest.policy;
  report_every : int;
  follow : bool;
}

let default_opts =
  {
    domains = 1;
    min_batch = 512;
    max_window = 1_048_576;
    queue_cap = 65536;
    on_full = Ingest.Block;
    report_every = 0;
    follow = false;
  }

type outcome = {
  verdict : Monitor.verdict;
  ops : int;
  sheds : int;
  windows : int;
  resident_peak : int;
  shards : int;
}

let keyed_cls (Spec.Packed s) =
  match s.Spec.cls with
  | Spec.Set | Spec.Dictionary -> true
  | Spec.Queue | Spec.Stack | Spec.Counter | Spec.Other -> false

(* Reject from any shard dominates (a violation on one key is a violation
   of the stream); otherwise the lowest-index Unsupported; otherwise
   Accept. Deterministic for any shard count because sharding by key is a
   deterministic partition. *)
let combine verdicts =
  let rec go unsup = function
    | [] -> ( match unsup with Some u -> u | None -> Monitor.Accept)
    | Monitor.Reject :: _ -> Monitor.Reject
    | (Monitor.Unsupported _ as u) :: rest ->
      go (match unsup with Some _ -> unsup | None -> Some u) rest
    | Monitor.Accept :: rest -> go unsup rest
  in
  go None verdicts

let spawn_reader ~follow queue ic =
  Domain.spawn (fun () ->
      let rec loop () =
        match input_line ic with
        | line ->
          Ingest.push_line queue (Mevent.parse line);
          loop ()
        | exception End_of_file ->
          (* --follow: an EOF on a FIFO only means every current writer
             closed — re-arm and wait for the next writer session instead
             of finalizing, so the monitor outlives its producers. The
             queue then only closes on a hard error (or not at all: a
             followed stream ends by verdict, never by EOF). *)
          if follow then begin
            Unix.sleepf 0.05;
            loop ()
          end
        | exception Sys_error e -> Ingest.push_line queue (Mevent.Malformed e)
      in
      loop ();
      Ingest.close queue)

let run ~spec ~opts ?metrics ic =
  let shards = if keyed_cls spec && opts.domains > 1 then opts.domains else 1 in
  let engines =
    Array.init shards (fun _ ->
        Engine.create ~spec ~min_batch:opts.min_batch ~max_window:opts.max_window)
  in
  let queue = Ingest.create ~cap:opts.queue_cap opts.on_full in
  let reader = spawn_reader ~follow:opts.follow queue ic in
  (* (tid, op_index) -> shard, recorded at the call, consumed at the return *)
  let route_tbl : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let shard_of_call (inv : Invocation.t) =
    match inv.Invocation.arg with
    | Value.Int k -> ((k mod shards) + shards) mod shards
    | _ -> 0
  in
  let shard_of_event (ev : Event.t) =
    if shards = 1 then 0
    else
      let id = ev.Event.tid, ev.Event.op_index in
      match ev.Event.dir with
      | Event.Call inv ->
        let s = shard_of_call inv in
        Hashtbl.replace route_tbl id s;
        s
      | Event.Return _ -> (
        match Hashtbl.find_opt route_tbl id with
        | Some s ->
          Hashtbl.remove route_tbl id;
          s
        | None -> 0 (* return without call: any engine reports it *))
  in
  let bad = ref None in
  let fed = ref 0 in
  let rounds = ref 0 in
  let resident_peak = ref 0 in
  let next_report = ref (if opts.report_every > 0 then opts.report_every else max_int) in
  let update_resident () =
    let r = Array.fold_left (fun acc e -> acc + Engine.resident e) 0 engines in
    if r > !resident_peak then resident_peak := r;
    r
  in
  let feed_round items =
    if shards = 1 then
      List.iter
        (fun item ->
          match item with
          | Ingest.Ev { event; _ } ->
            incr fed;
            Engine.feed engines.(0) event
          | Ingest.Shed_op { call; ret } -> Engine.shed engines.(0) ~call ~ret
          | Ingest.Bad e -> if !bad = None then bad := Some e)
        items
    else begin
      let per_shard = Array.make shards [] in
      List.iter
        (fun item ->
          match item with
          | Ingest.Ev { event; _ } ->
            incr fed;
            let s = shard_of_event event in
            per_shard.(s) <- `Ev event :: per_shard.(s)
          | Ingest.Shed_op { call; ret } ->
            let s = shard_of_event call in
            (* the call was never routed through an engine; drop the stale
               route entry it just created *)
            Hashtbl.remove route_tbl (call.Event.tid, call.Event.op_index);
            per_shard.(s) <- `Shed (call, ret) :: per_shard.(s)
          | Ingest.Bad e -> if !bad = None then bad := Some e)
        items;
      let dirty =
        List.filter (fun s -> per_shard.(s) <> []) (List.init shards Fun.id)
      in
      let feed_shard ~cancelled:_ s =
        List.iter
          (fun x ->
            match x with
            | `Ev ev -> Engine.feed engines.(s) ev
            | `Shed (call, ret) -> Engine.shed engines.(s) ~call ~ret)
          (List.rev per_shard.(s))
      in
      match dirty with
      | [] -> ()
      | [ s ] -> feed_shard ~cancelled:(fun () -> false) s
      | _ ->
        ignore
          (Pool.map_seq
             ~domains:(min opts.domains (List.length dirty))
             ~f:feed_shard (List.to_seq dirty))
    end
  in
  let decided () =
    !bad <> None
    || Array.exists (fun e -> Engine.verdict_now e = Some Monitor.Reject) engines
    || Array.for_all (fun e -> Engine.verdict_now e <> None) engines
  in
  let rec loop () =
    match Ingest.pop_batch queue ~max:8192 with
    | [] -> () (* closed and drained *)
    | items ->
      feed_round items;
      incr rounds;
      if !rounds mod 16 = 0 then ignore (update_resident ());
      if !fed >= !next_report then begin
        next_report := !fed + opts.report_every;
        let resident = update_resident () in
        Trace.emit "monitor.tick"
          [
            "ops", Trace.Int !fed;
            "depth", Trace.Int (Ingest.depth queue);
            "resident", Trace.Int resident;
          ];
        Fmt.epr "monitor: %d events, resident %d@." !fed resident
      end;
      if decided () then Ingest.abandon queue else loop ()
  in
  loop ();
  let early = !bad <> None || Array.exists (fun e -> Engine.verdict_now e <> None) engines in
  (* On the normal EOF path the reader has already closed the queue and is
     exiting, so the join is immediate. After an early stop it may still
     be blocked in [input_line] on a FIFO that never ends; [abandon] made
     its pushes no-ops, and the process exits without it. *)
  if not early then Domain.join reader;
  ignore (update_resident ());
  let verdict =
    match !bad with
    | Some e -> Monitor.Unsupported (Fmt.str "malformed input: %s" e)
    | None -> combine (Array.to_list (Array.map Engine.finalize engines))
  in
  let ops = Array.fold_left (fun acc e -> acc + Engine.ops e) 0 engines in
  let engine_sheds = Array.fold_left (fun acc e -> acc + Engine.sheds e) 0 engines in
  let sheds = max (Ingest.sheds queue) engine_sheds in
  let windows = Array.fold_left (fun acc e -> acc + Engine.windows e) 0 engines in
  (match metrics with
   | None -> ()
   | Some m ->
     Metrics.add m "monitor.ops" ops;
     Metrics.add m "monitor.sheds" sheds;
     Metrics.add m "monitor.windows" windows;
     Metrics.add m "monitor.shards" shards;
     Metrics.add m "monitor.resident_peak" !resident_peak);
  { verdict; ops; sheds; windows; resident_peak = !resident_peak; shards }

(* Replay mode: the finite stream is a recording of one or more complete
   histories (a [lineup check --trace] file); group events by their [hist]
   tag — first-appearance order — and monitor each group as an independent
   session, fanned out across domains. Used by the CI equivalence gate to
   check the monitor against the offline verdict on the same histories. *)
let replay ~spec ~opts ?metrics ic =
  let groups : (int option, Event.t list) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let bad = ref None in
  (try
     while true do
       let line = input_line ic in
       match Mevent.parse line with
       | Mevent.Blank | Mevent.Skip -> ()
       | Mevent.Malformed e -> if !bad = None then bad := Some e
       | Mevent.Ev { hist; event } ->
         if not (Hashtbl.mem groups hist) then begin
           order := hist :: !order;
           Hashtbl.add groups hist []
         end;
         Hashtbl.replace groups hist (event :: Hashtbl.find groups hist)
     done
   with End_of_file -> ());
  match !bad with
  | Some e ->
    let verdict = Monitor.Unsupported (Fmt.str "malformed input: %s" e) in
    ( [],
      { verdict; ops = 0; sheds = 0; windows = 0; resident_peak = 0; shards = 1 } )
  | None ->
    let hists = List.rev !order in
    let session ~cancelled:_ hist =
      let engine =
        Engine.create ~spec ~min_batch:opts.min_batch ~max_window:opts.max_window
      in
      let events = List.rev (Hashtbl.find groups hist) in
      List.iter (Engine.feed engine) events;
      (hist, Engine.finalize engine, Engine.ops engine, Engine.windows engine)
    in
    let results =
      Pool.map_seq ~domains:opts.domains ~f:session (List.to_seq hists)
    in
    let per_hist = List.map (fun (h, v, _, _) -> h, v) results in
    let verdict = combine (List.map (fun (_, v, _, _) -> v) results) in
    let ops = List.fold_left (fun acc (_, _, o, _) -> acc + o) 0 results in
    let windows = List.fold_left (fun acc (_, _, _, w) -> acc + w) 0 results in
    (match metrics with
     | None -> ()
     | Some m ->
       Metrics.add m "monitor.ops" ops;
       Metrics.add m "monitor.windows" windows;
       Metrics.add m "monitor.histories" (List.length results));
    ( per_hist,
      { verdict; ops; sheds = 0; windows; resident_peak = 0; shards = 1 } )
