module Event = Lineup_history.Event

(* The bounded queue between the reader domain (parsing NDJSON lines) and
   the checking loop. Backpressure policy when the queue is full:

   - [Block]: the reader waits — lossless; on a pipe or FIFO the producing
     process eventually blocks in [write]. The default, and the only mode
     whose Accept verdict is complete.
   - [Shed]: drop whole operations. A call arriving while the queue is
     full is remembered and dropped; when its return arrives, a
     [Shed_op] marker carrying both events is force-pushed (markers are
     exempt from the bound, which sheds can only shrink). The engines
     degrade accept-lean on the marker — a Reject is still trustworthy.

   Whole-op shedding keeps the stream well-formed: dropping only one of a
   call/return pair would manufacture "return without call" corruption. *)

type policy =
  | Block
  | Shed

type item =
  | Ev of { hist : int option; event : Event.t }
  | Shed_op of { call : Event.t; ret : Event.t }
  | Bad of string

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  items : item Queue.t;
  cap : int;
  policy : policy;
  mutable closed : bool;
  (* consumer gone: drop instead of blocking so the reader can drain to EOF *)
  mutable abandoned : bool;
  mutable n_sheds : int;
  (* reader-side only (no lock needed): calls dropped under [Shed], keyed
     by (tid, op_index), waiting for their return *)
  shed_calls : (int * int, Event.t) Hashtbl.t;
}

let create ?(cap = 65536) policy =
  {
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    items = Queue.create ();
    cap = max 1 cap;
    policy;
    closed = false;
    abandoned = false;
    n_sheds = 0;
    shed_calls = Hashtbl.create 64;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Enqueue regardless of the bound (Shed_op / Bad markers). *)
let force_push t item =
  with_lock t (fun () ->
      if not t.abandoned then begin
        Queue.add item t.items;
        Condition.signal t.not_empty
      end)

let blocking_push t item =
  with_lock t (fun () ->
      while Queue.length t.items >= t.cap && not t.abandoned do
        Condition.wait t.not_full t.mutex
      done;
      if not t.abandoned then begin
        Queue.add item t.items;
        Condition.signal t.not_empty
      end)

(* [Some true]: the queue is full (checked without waiting). *)
let is_full t = with_lock t (fun () -> Queue.length t.items >= t.cap)

let push_line t (line : Mevent.line) =
  match line with
  | Mevent.Blank | Mevent.Skip -> ()
  | Mevent.Malformed e -> force_push t (Bad e)
  | Mevent.Ev { hist; event } -> (
    match t.policy with
    | Block -> blocking_push t (Ev { hist; event })
    | Shed -> (
      let id = event.Event.tid, event.Event.op_index in
      match event.Event.dir with
      | Event.Call _ ->
        if Hashtbl.mem t.shed_calls id then
          (* duplicate id while shed — malformed; let the engine decide *)
          force_push t (Bad "duplicate call for a shed operation")
        else if is_full t then begin
          t.n_sheds <- t.n_sheds + 1;
          Hashtbl.replace t.shed_calls id event
        end
        else blocking_push t (Ev { hist; event })
      | Event.Return _ -> (
        match Hashtbl.find_opt t.shed_calls id with
        | Some call ->
          Hashtbl.remove t.shed_calls id;
          force_push t (Shed_op { call; ret = event })
        | None -> blocking_push t (Ev { hist; event }))))

let pop_batch t ~max =
  with_lock t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.not_empty t.mutex
      done;
      let batch = ref [] in
      let n = ref 0 in
      while !n < max && not (Queue.is_empty t.items) do
        batch := Queue.pop t.items :: !batch;
        incr n
      done;
      Condition.broadcast t.not_full;
      List.rev !batch)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty)

let abandon t =
  with_lock t (fun () ->
      t.abandoned <- true;
      t.closed <- true;
      Queue.clear t.items;
      Condition.broadcast t.not_full;
      Condition.broadcast t.not_empty)

let sheds t = t.n_sheds
let depth t = with_lock t (fun () -> Queue.length t.items)
