(** Bounded ingest queue between the stream-reader domain and the
    checking loop, with an explicit backpressure policy.

    [Block] (the default) is lossless: a full queue makes the reader — and
    transitively, over a pipe or FIFO, the producing process — wait.
    [Shed] drops {e whole operations} under load: a call arriving at a
    full queue is dropped together with its eventual return, and a
    {!item.Shed_op} marker carrying both events is delivered in its place
    (markers bypass the bound, which sheds only shrink). Dropping whole
    ops keeps the stream well-formed; the engines degrade accept-lean on
    each marker, so a violation verdict remains trustworthy while some
    violations involving shed values may be missed. *)

type policy =
  | Block  (** never drop; apply backpressure to the producer *)
  | Shed  (** drop whole operations while the queue is full *)

type item =
  | Ev of { hist : int option; event : Lineup_history.Event.t }
  | Shed_op of {
      call : Lineup_history.Event.t;
      ret : Lineup_history.Event.t;
    }  (** an operation dropped under [Shed] — both its events *)
  | Bad of string  (** malformed input line; the stream is corrupt *)

type t

val create : ?cap:int -> policy -> t
(** [cap] (default 65536) bounds the queued items. *)

val push_line : t -> Mevent.line -> unit
(** Reader side. [Blank]/[Skip] lines are discarded, [Malformed] is
    forwarded as {!item.Bad}; events are queued per the policy. Never
    blocks after {!abandon}. Single reader only. *)

val pop_batch : t -> max:int -> item list
(** Consumer side: blocks until at least one item or {!close}; returns at
    most [max] items, and [[]] only when the queue is closed and fully
    drained. *)

val close : t -> unit
(** Reader side, at end of stream: wake the consumer for the final drain. *)

val abandon : t -> unit
(** Consumer side, on early stop: mark the queue dead so the reader never
    blocks again (its pushes become no-ops) and wake everyone. *)

val sheds : t -> int
(** Operations dropped so far (reader side). *)

val depth : t -> int
(** Current queue occupancy, for periodic stats. *)
