(** The NDJSON call/return event codec shared between [lineup check
    --trace] and [lineup monitor].

    One event per line, in the {!Lineup_observe.Trace} shape:

    {v
{"t":0.000123,"ev":"call","tid":0,"op":1,"name":"Enqueue","arg":"200"}
{"t":0.000150,"ev":"ret","tid":0,"op":1,"val":"unit"}
    v}

    [arg]/[val] are {!Lineup_value.Value.to_string} images ([arg] omitted
    for [Unit]); the optional [hist] field tags which replayed history an
    event belongs to. Lines with any other [ev] are skipped, so a raw
    check trace replays through the monitor unmodified. *)

type line =
  | Ev of { hist : int option; event : Lineup_history.Event.t }
      (** a call or return event *)
  | Skip  (** valid JSON, but not a call/return event — ignored *)
  | Blank  (** empty line — ignored *)
  | Malformed of string  (** not valid input; the stream is corrupt *)

val render : ?hist:int -> ?t:float -> Lineup_history.Event.t -> string
(** One NDJSON line (without the trailing newline). [t] defaults to 0. *)

val parse : string -> line
(** Classify and decode one input line. Total — never raises. *)

val emit_trace : ?hist:int -> Lineup_history.Event.t -> unit
(** Emit the event into the live {!Lineup_observe.Trace} sink (no-op when
    tracing is disabled), with the same field layout as {!render}. *)
