module Value = Lineup_value.Value
module Event = Lineup_history.Event
module Invocation = Lineup_history.Invocation
module Ndjson = Lineup_observe.Ndjson
module Metrics = Lineup_observe.Metrics
module Trace = Lineup_observe.Trace

(* The NDJSON event codec: one call or return event per line, in exactly
   the shape [lineup check --trace] emits (see README, "Trace schema"), so
   a trace file replays through [lineup monitor] unmodified:

     {"t":0.000123,"ev":"call","tid":0,"op":1,"name":"Enqueue","arg":"200"}
     {"t":0.000150,"ev":"ret","tid":0,"op":1,"val":"unit"}

   [arg]/[val] are {!Value.to_string} images (the exact round-tripping
   codec); [arg] is omitted for [Unit]. The optional [hist] field tags the
   history a replayed event belongs to. Lines whose [ev] is anything else
   are skipped, so a raw check trace — which interleaves scheduler and pool
   events — is a valid monitor input. *)

type line =
  | Ev of { hist : int option; event : Event.t }
  | Skip
  | Blank
  | Malformed of string

let render ?hist ?(t = 0.0) (event : Event.t) =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"t\":%.6f,\"ev\":" t);
  (match event.Event.dir with
   | Event.Call inv ->
     Buffer.add_string b
       (Printf.sprintf "\"call\",\"tid\":%d,\"op\":%d,\"name\":%s" event.Event.tid
          event.Event.op_index
          (Metrics.json_string inv.Invocation.name));
     (match inv.Invocation.arg with
      | Value.Unit -> ()
      | arg ->
        Buffer.add_string b
          (Printf.sprintf ",\"arg\":%s" (Metrics.json_string (Value.to_string arg))))
   | Event.Return v ->
     Buffer.add_string b
       (Printf.sprintf "\"ret\",\"tid\":%d,\"op\":%d,\"val\":%s" event.Event.tid
          event.Event.op_index
          (Metrics.json_string (Value.to_string v))));
  (match hist with
   | Some h -> Buffer.add_string b (Printf.sprintf ",\"hist\":%d" h)
   | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let parse s =
  let s = String.trim s in
  if s = "" then Blank
  else
    match Ndjson.parse s with
    | Error e -> Malformed e
    | Ok json -> (
      match Option.bind (Ndjson.member "ev" json) Ndjson.to_str with
      | None -> Skip
      | Some (("call" | "ret") as ev) -> (
        let int_field k = Option.bind (Ndjson.member k json) Ndjson.to_int in
        let str_field k = Option.bind (Ndjson.member k json) Ndjson.to_str in
        match int_field "tid", int_field "op" with
        | Some tid, Some op_index -> (
          let hist = int_field "hist" in
          try
            if ev = "call" then
              match str_field "name" with
              | None -> Malformed "call event without a name"
              | Some name ->
                let arg =
                  match str_field "arg" with
                  | None -> Value.Unit
                  | Some a -> Value.of_string a
                in
                Ev
                  { hist;
                    event = Event.call ~tid ~op_index (Invocation.make ~arg name);
                  }
            else
              match str_field "val" with
              | None -> Malformed "ret event without a val"
              | Some v ->
                Ev { hist; event = Event.return ~tid ~op_index (Value.of_string v) }
          with Invalid_argument e -> Malformed e)
        | _ -> Malformed (Printf.sprintf "%s event without tid/op" ev))
      | Some _ -> Skip)

(* Emission into the live [Trace] sink — the producer side of the codec,
   used by [lineup check --trace] so its trace files are monitor inputs.
   Field layout must match [render] (which the round-trip test enforces
   for [render]/[parse]; the trace-shape test covers this path). *)
let emit_trace ?hist (event : Event.t) =
  let hist_field = match hist with Some h -> [ "hist", Trace.Int h ] | None -> [] in
  match event.Event.dir with
  | Event.Call inv ->
    Trace.emit "call"
      ([ "tid", Trace.Int event.Event.tid;
         "op", Trace.Int event.Event.op_index;
         "name", Trace.Str inv.Invocation.name;
       ]
      @ (match inv.Invocation.arg with
        | Value.Unit -> []
        | arg -> [ "arg", Trace.Str (Value.to_string arg) ])
      @ hist_field)
  | Event.Return v ->
    Trace.emit "ret"
      ([ "tid", Trace.Int event.Event.tid;
         "op", Trace.Int event.Event.op_index;
         "val", Trace.Str (Value.to_string v);
       ]
      @ hist_field)
