module Spec = Lineup_spec.Spec
module Monitor = Lineup_spec.Monitor
module Kmon = Lineup_spec.Kmon
module Event = Lineup_history.Event

(* One checking engine for one shard of the stream. Queues and stacks get
   the near-linear decrease-and-conquer engines ({!Monitor.Stream});
   every other class gets the chunked feasible-state engine ({!Kmon}) —
   keyed (per-integer-key feasible states, P-compositional) for sets and
   dictionaries, single-key for counters/registers/anything else. *)

type t =
  | Fast of Monitor.Stream.t
  | Chunked of Kmon.t

(* [chunk] for the Kmon engines: small, because each chunk pays a
   Wing–Gong exploration; the 62-op bitmask is the hard ceiling. *)
let default_chunk = 16

let create ~(spec : Spec.packed) ~min_batch ~max_window =
  let (Spec.Packed s) = spec in
  match s.Spec.cls with
  | Spec.Queue -> Fast (Monitor.Stream.create_queue ~min_batch ~max_window ())
  | Spec.Stack -> Fast (Monitor.Stream.create_stack ~min_batch ~max_window ())
  | Spec.Set | Spec.Dictionary ->
    Chunked (Kmon.create_packed spec ~keyed:true ~chunk:default_chunk ~max_window)
  | Spec.Counter | Spec.Other ->
    Chunked (Kmon.create_packed spec ~keyed:false ~chunk:default_chunk ~max_window)

let feed t ev =
  match t with
  | Fast s -> Monitor.Stream.feed s ev
  | Chunked k -> k.Kmon.feed ev

let shed t ~call ~ret =
  match t with
  | Fast s -> Monitor.Stream.shed s ~call ~ret
  | Chunked k -> k.Kmon.shed ~call ~ret

let verdict_now = function
  | Fast s -> Monitor.Stream.verdict_now s
  | Chunked k -> k.Kmon.verdict_now ()

let finalize = function
  | Fast s -> Monitor.Stream.finalize s
  | Chunked k -> k.Kmon.finalize ()

let ops = function
  | Fast s -> Monitor.Stream.ops s
  | Chunked k -> k.Kmon.ops ()

let sheds = function
  | Fast s -> Monitor.Stream.sheds s
  | Chunked k -> k.Kmon.sheds ()

let windows = function
  | Fast s -> Monitor.Stream.windows s
  | Chunked k -> k.Kmon.chunks ()

let resident = function
  | Fast s -> Monitor.Stream.resident s + Monitor.Stream.intervals s
  | Chunked k -> k.Kmon.resident ()
