module Value = Lineup_value.Value
module History = Lineup_history.History
module Op = Lineup_history.Op
module Invocation = Lineup_history.Invocation

(* Decrease-and-conquer membership monitors in the style of Lee & Mathur:
   for unambiguous complete histories over the insert/remove vocabulary of a
   queue or a stack, linearizability reduces to a fixed set of pairwise
   interval conditions plus (for the stack) a greedy peeling loop — no
   witness enumeration. Near-linear instead of the exponential generic
   search; anything outside the supported fragment is reported as
   [Unsupported] and the caller falls back.

   Position arithmetic: [Op.call_pos]/[Op.ret_pos] are event indices in the
   enclosing history, all distinct. A linearization point lies strictly
   between two adjacent events; "slot s" denotes the gap just after event
   [s], so operation [x] may linearize in any slot of
   [call_pos x .. ret_pos x - 1], and a matched value [v] is definitely
   present in slots [ret(insert v) .. call(remove v) - 1] (to infinity when
   never removed) — outside that range a witness can always order the pair
   around any chosen point. *)

type verdict =
  | Accept
  | Reject
  | Unsupported of string

exception Verdict of verdict

let unsupported fmt = Fmt.kstr (fun s -> raise (Verdict (Unsupported s))) fmt
let reject () = raise (Verdict Reject)
let ret_pos (op : Op.t) = match op.ret_pos with Some p -> p | None -> assert false

(* Merge inclusive integer intervals, joining adjacent ones, so that the
   merged list covers an integer iff some input interval does. *)
let merge_intervals ivs =
  let ivs = List.sort (fun (a, _) (b, _) -> Int.compare a b) ivs in
  let rec go acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> (
      match acc with
      | (alo, ahi) :: acc' when lo <= ahi + 1 -> go ((alo, max ahi hi) :: acc') rest
      | _ -> go ((lo, hi) :: acc) rest)
  in
  go [] ivs

let fully_covered merged ~lo ~hi =
  List.exists (fun (mlo, mhi) -> mlo <= lo && hi <= mhi) merged

(* Shared classification state: per value, its insert and remove operation.
   Unambiguity means each value is inserted at most once; a value removed
   twice, or removed but never inserted, has no serial explanation. *)
type pair = {
  mutable ins : Op.t option;
  mutable rem : Op.t option;
}

let classify ~insert_name ~remove_names ~remove_may_fail h =
  let pairs : (Value.t, pair) Hashtbl.t = Hashtbl.create 16 in
  let empties = ref [] in
  let pair_of v =
    match Hashtbl.find_opt pairs v with
    | Some p -> p
    | None ->
      let p = { ins = None; rem = None } in
      Hashtbl.add pairs v p;
      p
  in
  List.iter
    (fun (op : Op.t) ->
      let resp =
        match op.resp with
        | Some r -> r
        | None -> unsupported "pending operation"
      in
      let name = op.inv.Invocation.name in
      if String.equal name insert_name then begin
        (match op.inv.Invocation.arg with
         | Value.Int _ -> ()
         | _ -> unsupported "non-integer %s argument" insert_name);
        if not (Value.equal resp Value.unit) then reject ();
        let p = pair_of op.inv.Invocation.arg in
        (match p.ins with
         | Some _ -> unsupported "ambiguous: value inserted twice"
         | None -> p.ins <- Some op)
      end
      else if List.mem name remove_names then begin
        (match op.inv.Invocation.arg with
         | Value.Unit -> ()
         | _ -> unsupported "unexpected %s argument" name);
        match resp with
        | Value.Fail ->
          if remove_may_fail name then empties := op :: !empties else reject ()
        | Value.Int _ -> (
          let p = pair_of resp in
          match p.rem with
          | Some _ -> reject () (* value removed twice, inserted at most once *)
          | None -> p.rem <- Some op)
        | _ -> reject ()
      end
      else unsupported "unsupported operation %s" name)
    (History.ops h);
  let values =
    Hashtbl.fold
      (fun _v p acc ->
        match p.ins, p.rem with
        | None, Some _ -> reject () (* removed but never inserted *)
        | Some ins, rem ->
          (* value safety: the remove must not precede its insert *)
          (match rem with Some r when Op.precedes r ins -> reject () | _ -> ());
          (ins, rem) :: acc
        | None, None -> acc)
      pairs []
  in
  values, !empties

(* Definite-presence slot intervals of the matched values; an empty-remove
   is justifiable iff some slot of its own range lies outside all of them. *)
let check_empties values empties =
  let covers =
    List.filter_map
      (fun (ins, rem) ->
        let lo = ret_pos ins in
        let hi = match rem with Some r -> r.Op.call_pos - 1 | None -> max_int in
        if lo <= hi then Some (lo, hi) else None)
      values
  in
  let merged = merge_intervals covers in
  List.iter
    (fun (z : Op.t) ->
      if fully_covered merged ~lo:z.Op.call_pos ~hi:(ret_pos z - 1) then reject ())
    empties

(* ------------------------------------------------------------------ *)
(* Queue                                                               *)
(* ------------------------------------------------------------------ *)

(* FIFO condition (the bad-pattern characterization): the history is
   rejected iff there are values v, w with insert(v) <H insert(w), w
   removed, and either v is never removed or remove(w) <H remove(v).
   Encoding an unmatched v as remove-call position +inf turns the test for
   each w into a prefix maximum over the values whose insert returned
   before insert(w)'s call — O(V log V) total. *)
let check_fifo values =
  let arr = Array.of_list values in
  Array.sort (fun (e1, _) (e2, _) -> Int.compare (ret_pos e1) (ret_pos e2)) arr;
  let n = Array.length arr in
  let e_rets = Array.map (fun (e, _) -> ret_pos e) arr in
  let prefix_max_rcall = Array.make (n + 1) min_int in
  Array.iteri
    (fun i (_, r) ->
      let rc = match r with Some r -> r.Op.call_pos | None -> max_int in
      prefix_max_rcall.(i + 1) <- max prefix_max_rcall.(i) rc)
    arr;
  (* number of values whose insert returned before position [x] *)
  let count_before x =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if e_rets.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  Array.iter
    (fun ((e : Op.t), r) ->
      match r with
      | None -> ()
      | Some r ->
        let k = count_before e.Op.call_pos in
        if prefix_max_rcall.(k) > ret_pos r then reject ())
    arr

let check_queue h =
  try
    let values, empties =
      classify
        ~insert_name:"Enqueue"
        ~remove_names:[ "TryDequeue"; "Take" ]
        ~remove_may_fail:(String.equal "TryDequeue")
        h
    in
    check_fifo values;
    check_empties values empties;
    Accept
  with Verdict v -> v

(* ------------------------------------------------------------------ *)
(* Stack                                                               *)
(* ------------------------------------------------------------------ *)

(* Greedy peeling: a matched value [v] is eligible when no other
   insert/remove operation is forced strictly between push(v) and pop(v)
   (i.e. lies entirely inside the open gap (ret(push v), call(pop v))) —
   then push(v); pop(v) can appear adjacently in a witness and removing the
   pair preserves linearizability in both directions. Repeat until every
   matched value is peeled; getting stuck means some value can never reach
   the top when it is popped. Pop-empties never block: one forced strictly
   inside a gap is already rejected by the covering check (the value is
   definitely present throughout). Unmatched pushes block forever, which is
   exactly right — a value stuck above [v] that is never popped.

   [peel_leftover] returns the matched pairs that never become peelable —
   empty iff the fixpoint consumes everything. The streaming monitor calls
   it once per window: peeling is monotone and confluent (a peelable pair
   stays peelable as other pairs are removed, and removing a pair only
   shrinks the blocker sets of the rest), so re-running it over the
   carried-over leftovers plus each new window's pairs reaches the same
   fixpoint as one offline pass over the whole history. *)
let peel_leftover values =
  let matched =
    Array.of_list (List.filter_map (fun (i, r) -> Option.map (fun r -> i, r) r) values)
  in
  let nv = Array.length matched in
  let blockers =
    List.concat_map (fun (i, r) -> i :: Option.to_list r) values
  in
  let inside (x : Op.t) vi =
    let (ins : Op.t), (rem : Op.t) = matched.(vi) in
    x.Op.call_pos > ret_pos ins && ret_pos x < rem.Op.call_pos
  in
  let counts = Array.make nv 0 in
  (* per blocking operation, the gaps it currently blocks *)
  let gaps_of : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (x : Op.t) ->
      let gs = ref [] in
      for vi = nv - 1 downto 0 do
        if inside x vi then begin
          counts.(vi) <- counts.(vi) + 1;
          gs := vi :: !gs
        end
      done;
      if !gs <> [] then Hashtbl.replace gaps_of (Op.key x) !gs)
    blockers;
  let peeled = Array.make nv false in
  let ready = Queue.create () in
  Array.iteri (fun vi c -> if c = 0 then Queue.add vi ready) counts;
  let remaining = ref nv in
  let release (x : Op.t) =
    List.iter
      (fun vi ->
        counts.(vi) <- counts.(vi) - 1;
        if counts.(vi) = 0 && not peeled.(vi) then Queue.add vi ready)
      (Option.value ~default:[] (Hashtbl.find_opt gaps_of (Op.key x)))
  in
  while not (Queue.is_empty ready) do
    let vi = Queue.pop ready in
    if not peeled.(vi) then begin
      peeled.(vi) <- true;
      decr remaining;
      let ins, rem = matched.(vi) in
      release ins;
      release rem
    end
  done;
  if !remaining = 0 then []
  else
    Array.to_list matched
    |> List.filteri (fun vi _ -> not peeled.(vi))

let check_peel values = if peel_leftover values <> [] then reject ()

let check_stack h =
  try
    let values, empties =
      classify
        ~insert_name:"Push"
        ~remove_names:[ "TryPop" ]
        ~remove_may_fail:(fun _ -> true)
        h
    in
    check_empties values empties;
    check_peel values;
    Accept
  with Verdict v -> v

(* Dispatch by specification class; [Set]/[Dictionary] go through the
   P-compositional splitter ({!Pcomp}) instead, and every other class has
   no monitor. *)
let check ~(cls : Spec.cls) h =
  match cls with
  | Spec.Queue -> check_queue h
  | Spec.Stack -> check_stack h
  | Spec.Set | Spec.Dictionary | Spec.Counter | Spec.Other ->
    Unsupported ("no monitor for class " ^ Spec.cls_name cls)

(* ------------------------------------------------------------------ *)
(* Incremental (streaming) monitors                                    *)
(* ------------------------------------------------------------------ *)

module Stream = struct
  module Event = Lineup_history.Event

  (* The online form of the same two monitors. Events arrive one at a time;
     the engine batches completed operations into windows and, at each
     quiescent point (no call pending), runs the offline interval checks on
     the window plus the still-live values, then garbage-collects the
     decided pairs and empties. Absolute event positions are 63-bit ints
     assigned on arrival and never renormalized, so GC never invalidates a
     position.

     Why GC cannot change a verdict (see also DESIGN.md):
     - FIFO: a violating pair (v, w) with w removed while v is still live
       is caught in w's window, because an unremoved v contributes
       [max_int] to the prefix maximum; if v's remove completed in an
       earlier window, no violation involving (v, w) exists at all.
     - Empty covers: a GC'd pair's cover interval ends strictly before the
       window boundary, hence before any later empty-remove's call; it can
       neither cover a slot of that empty's range nor bridge two retained
       intervals across the boundary.
     - Stack peeling is monotone and confluent, so peeled pairs are final
       and the leftover set is carried forward ([peel_leftover]).

     Load shedding ([shed]) degrades the engine accept-lean: a shed insert
     grants its value amnesty (later operations on it are swallowed), a
     shed remove silently consumes its value, and once anything was shed a
     remove of an unknown value is swallowed rather than rejected. A
     [Reject] therefore remains trustworthy under shedding; only
     completeness is lost. *)

  type cfg = {
    insert_name : string;
    remove_names : string list;
    remove_may_fail : string -> bool;
    lifo : bool;
  }

  type t = {
    cfg : cfg;
    min_batch : int;
    max_window : int;
    mutable pos : int;
    (* (tid, op_index) of each pending call, with its invocation/position *)
    pending : (int * int, Invocation.t * int) Hashtbl.t;
    (* value -> the number of its pending inserts (0/1 outside amnesty) *)
    ins_pending : (int, unit) Hashtbl.t;
    (* value -> its completed insert, not yet removed *)
    live : (int, Op.t) Hashtbl.t;
    (* value -> a remove that returned while the insert was still pending *)
    early_rem : (int, Op.t) Hashtbl.t;
    mutable inserted : Diet.t;
    mutable removed : Diet.t;
    mutable amnesty : Diet.t;
    mutable w_pairs : (Op.t * Op.t) list;
    mutable w_empties : Op.t list;
    mutable w_count : int;
    mutable unpeeled : (Op.t * Op.t) list;
    mutable verdict : verdict option;
    mutable n_ops : int;
    mutable n_sheds : int;
    mutable n_windows : int;
  }

  let queue_cfg =
    {
      insert_name = "Enqueue";
      remove_names = [ "TryDequeue"; "Take" ];
      remove_may_fail = String.equal "TryDequeue";
      lifo = false;
    }

  let stack_cfg =
    {
      insert_name = "Push";
      remove_names = [ "TryPop" ];
      remove_may_fail = (fun _ -> true);
      lifo = true;
    }

  let create cfg ~min_batch ~max_window =
    {
      cfg;
      min_batch = max 1 min_batch;
      max_window = max 1 max_window;
      pos = 0;
      pending = Hashtbl.create 64;
      ins_pending = Hashtbl.create 64;
      live = Hashtbl.create 256;
      early_rem = Hashtbl.create 8;
      inserted = Diet.empty;
      removed = Diet.empty;
      amnesty = Diet.empty;
      w_pairs = [];
      w_empties = [];
      w_count = 0;
      unpeeled = [];
      verdict = None;
      n_ops = 0;
      n_sheds = 0;
      n_windows = 0;
    }

  let create_queue ?(min_batch = 512) ?(max_window = 1_048_576) () =
    create queue_cfg ~min_batch ~max_window

  let create_stack ?(min_batch = 512) ?(max_window = 1_048_576) () =
    create stack_cfg ~min_batch ~max_window

  let live_values t =
    Hashtbl.fold (fun _ ins acc -> (ins, None) :: acc) t.live []

  let run_window t =
    t.n_windows <- t.n_windows + 1;
    let pairs = List.rev_map (fun (i, r) -> i, Some r) t.w_pairs in
    let values = List.rev_append pairs (live_values t) in
    if t.cfg.lifo then begin
      check_empties values t.w_empties;
      let carried = List.rev_map (fun (i, r) -> i, Some r) t.unpeeled in
      t.unpeeled <- peel_leftover (List.rev_append carried values)
    end
    else begin
      check_fifo values;
      check_empties values t.w_empties
    end;
    t.w_pairs <- [];
    t.w_empties <- [];
    t.w_count <- 0

  let maybe_window t =
    if Hashtbl.length t.pending = 0 then begin
      if t.w_count >= t.min_batch then run_window t
    end
    else if t.w_count + Hashtbl.length t.pending > t.max_window then
      unsupported "no quiescent point within %d operations" t.max_window

  let on_call t tid op_index (inv : Invocation.t) =
    if Hashtbl.mem t.pending (tid, op_index) then
      unsupported "duplicate call for operation (%d, %d)" tid op_index;
    let name = inv.Invocation.name in
    if String.equal name t.cfg.insert_name then (
      match inv.Invocation.arg with
      | Value.Int v ->
        if Diet.mem v t.amnesty then ()
        else if Diet.mem v t.inserted then
          unsupported "ambiguous: value inserted twice"
        else begin
          t.inserted <- Diet.add v t.inserted;
          Hashtbl.replace t.ins_pending v ()
        end
      | _ -> unsupported "non-integer %s argument" t.cfg.insert_name)
    else if List.mem name t.cfg.remove_names then (
      match inv.Invocation.arg with
      | Value.Unit -> ()
      | _ -> unsupported "unexpected %s argument" name)
    else unsupported "unsupported operation %s" name;
    Hashtbl.add t.pending (tid, op_index) (inv, t.pos);
    t.pos <- t.pos + 1

  let add_pair t ins rem =
    t.w_pairs <- (ins, rem) :: t.w_pairs

  let on_insert_return t (op : Op.t) v =
    if Diet.mem v t.amnesty then Hashtbl.remove t.ins_pending v
    else begin
      Hashtbl.remove t.ins_pending v;
      match Hashtbl.find_opt t.early_rem v with
      | Some rem ->
        Hashtbl.remove t.early_rem v;
        t.removed <- Diet.add v t.removed;
        add_pair t op rem
      | None -> Hashtbl.replace t.live v op
    end

  let on_remove_return t (op : Op.t) resp =
    match resp with
    | Value.Fail ->
      if t.cfg.remove_may_fail op.Op.inv.Invocation.name then
        t.w_empties <- op :: t.w_empties
      else reject ()
    | Value.Int v -> (
      match Hashtbl.find_opt t.live v with
      | Some ins ->
        Hashtbl.remove t.live v;
        t.removed <- Diet.add v t.removed;
        add_pair t ins op
      | None ->
        if Diet.mem v t.amnesty then ()
        else if Diet.mem v t.removed then reject () (* removed twice *)
        else if Hashtbl.mem t.ins_pending v then begin
          if Hashtbl.mem t.early_rem v then reject () (* removed twice *)
          else Hashtbl.replace t.early_rem v op
        end
        else if t.n_sheds > 0 then () (* plausibly pairs with a shed insert *)
        else reject () (* removed but never inserted *))
    | _ -> reject ()

  let feed t (ev : Event.t) =
    match t.verdict with
    | Some _ -> ()
    | None -> (
      try
        (match ev.Event.dir with
         | Event.Call inv -> on_call t ev.Event.tid ev.Event.op_index inv
         | Event.Return resp -> (
           match Hashtbl.find_opt t.pending (ev.Event.tid, ev.Event.op_index) with
           | None ->
             unsupported "return without call for operation (%d, %d)"
               ev.Event.tid ev.Event.op_index
           | Some (inv, call_pos) ->
             Hashtbl.remove t.pending (ev.Event.tid, ev.Event.op_index);
             let op =
               {
                 Op.tid = ev.Event.tid;
                 op_index = ev.Event.op_index;
                 inv;
                 resp = Some resp;
                 call_pos;
                 ret_pos = Some t.pos;
               }
             in
             t.pos <- t.pos + 1;
             t.n_ops <- t.n_ops + 1;
             t.w_count <- t.w_count + 1;
             if String.equal inv.Invocation.name t.cfg.insert_name then begin
               if not (Value.equal resp Value.unit) then reject ();
               match inv.Invocation.arg with
               | Value.Int v -> on_insert_return t op v
               | _ -> assert false (* checked at call *)
             end
             else on_remove_return t op resp));
        maybe_window t
      with Verdict v -> t.verdict <- Some v)

  (* A shed operation ran in the monitored system but was dropped from the
     stream under load. [call]/[ret] are the op's two events as captured at
     drop time; degrade accept-lean (see the module comment). *)
  let shed t ~(call : Event.t) ~(ret : Event.t) =
    match t.verdict with
    | Some _ -> ()
    | None ->
      t.n_sheds <- t.n_sheds + 1;
      (match call.Event.dir with
       | Event.Call inv when String.equal inv.Invocation.name t.cfg.insert_name
         -> (
           match inv.Invocation.arg with
           | Value.Int v -> t.amnesty <- Diet.add v t.amnesty
           | _ -> ())
       | Event.Call inv when List.mem inv.Invocation.name t.cfg.remove_names
         -> (
           match ret.Event.dir with
           | Event.Return (Value.Int v) ->
             if Hashtbl.mem t.live v then begin
               Hashtbl.remove t.live v;
               t.removed <- Diet.add v t.removed
             end
             else t.amnesty <- Diet.add v t.amnesty
           | _ -> ())
       | _ -> ())

  let verdict_now t = t.verdict

  let finalize t =
    match t.verdict with
    | Some v -> v
    | None ->
      let v =
        try
          if Hashtbl.length t.pending > 0 then unsupported "pending operation";
          run_window t;
          if t.cfg.lifo && t.unpeeled <> [] then reject ();
          Accept
        with Verdict v -> v
      in
      t.verdict <- Some v;
      v

  let ops t = t.n_ops
  let sheds t = t.n_sheds
  let windows t = t.n_windows

  (* Upper bound on retained tracking state, in operations — what windowed
     GC keeps bounded. The Diets are excluded: they are interval-compressed
     and measured separately via [interval_count]. *)
  let resident t =
    Hashtbl.length t.live + Hashtbl.length t.pending + Hashtbl.length t.early_rem
    + (2 * List.length t.w_pairs)
    + List.length t.w_empties
    + (2 * List.length t.unpeeled)

  let intervals t =
    Diet.interval_count t.inserted
    + Diet.interval_count t.removed
    + Diet.interval_count t.amnesty
end
