module Value = Lineup_value.Value
module History = Lineup_history.History
module Op = Lineup_history.Op
module Invocation = Lineup_history.Invocation

(* Decrease-and-conquer membership monitors in the style of Lee & Mathur:
   for unambiguous complete histories over the insert/remove vocabulary of a
   queue or a stack, linearizability reduces to a fixed set of pairwise
   interval conditions plus (for the stack) a greedy peeling loop — no
   witness enumeration. Near-linear instead of the exponential generic
   search; anything outside the supported fragment is reported as
   [Unsupported] and the caller falls back.

   Position arithmetic: [Op.call_pos]/[Op.ret_pos] are event indices in the
   enclosing history, all distinct. A linearization point lies strictly
   between two adjacent events; "slot s" denotes the gap just after event
   [s], so operation [x] may linearize in any slot of
   [call_pos x .. ret_pos x - 1], and a matched value [v] is definitely
   present in slots [ret(insert v) .. call(remove v) - 1] (to infinity when
   never removed) — outside that range a witness can always order the pair
   around any chosen point. *)

type verdict =
  | Accept
  | Reject
  | Unsupported of string

exception Verdict of verdict

let unsupported fmt = Fmt.kstr (fun s -> raise (Verdict (Unsupported s))) fmt
let reject () = raise (Verdict Reject)
let ret_pos (op : Op.t) = match op.ret_pos with Some p -> p | None -> assert false

(* Merge inclusive integer intervals, joining adjacent ones, so that the
   merged list covers an integer iff some input interval does. *)
let merge_intervals ivs =
  let ivs = List.sort (fun (a, _) (b, _) -> Int.compare a b) ivs in
  let rec go acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> (
      match acc with
      | (alo, ahi) :: acc' when lo <= ahi + 1 -> go ((alo, max ahi hi) :: acc') rest
      | _ -> go ((lo, hi) :: acc) rest)
  in
  go [] ivs

let fully_covered merged ~lo ~hi =
  List.exists (fun (mlo, mhi) -> mlo <= lo && hi <= mhi) merged

(* Shared classification state: per value, its insert and remove operation.
   Unambiguity means each value is inserted at most once; a value removed
   twice, or removed but never inserted, has no serial explanation. *)
type pair = {
  mutable ins : Op.t option;
  mutable rem : Op.t option;
}

let classify ~insert_name ~remove_names ~remove_may_fail h =
  let pairs : (Value.t, pair) Hashtbl.t = Hashtbl.create 16 in
  let empties = ref [] in
  let pair_of v =
    match Hashtbl.find_opt pairs v with
    | Some p -> p
    | None ->
      let p = { ins = None; rem = None } in
      Hashtbl.add pairs v p;
      p
  in
  List.iter
    (fun (op : Op.t) ->
      let resp =
        match op.resp with
        | Some r -> r
        | None -> unsupported "pending operation"
      in
      let name = op.inv.Invocation.name in
      if String.equal name insert_name then begin
        (match op.inv.Invocation.arg with
         | Value.Int _ -> ()
         | _ -> unsupported "non-integer %s argument" insert_name);
        if not (Value.equal resp Value.unit) then reject ();
        let p = pair_of op.inv.Invocation.arg in
        (match p.ins with
         | Some _ -> unsupported "ambiguous: value inserted twice"
         | None -> p.ins <- Some op)
      end
      else if List.mem name remove_names then begin
        (match op.inv.Invocation.arg with
         | Value.Unit -> ()
         | _ -> unsupported "unexpected %s argument" name);
        match resp with
        | Value.Fail ->
          if remove_may_fail name then empties := op :: !empties else reject ()
        | Value.Int _ -> (
          let p = pair_of resp in
          match p.rem with
          | Some _ -> reject () (* value removed twice, inserted at most once *)
          | None -> p.rem <- Some op)
        | _ -> reject ()
      end
      else unsupported "unsupported operation %s" name)
    (History.ops h);
  let values =
    Hashtbl.fold
      (fun _v p acc ->
        match p.ins, p.rem with
        | None, Some _ -> reject () (* removed but never inserted *)
        | Some ins, rem ->
          (* value safety: the remove must not precede its insert *)
          (match rem with Some r when Op.precedes r ins -> reject () | _ -> ());
          (ins, rem) :: acc
        | None, None -> acc)
      pairs []
  in
  values, !empties

(* Definite-presence slot intervals of the matched values; an empty-remove
   is justifiable iff some slot of its own range lies outside all of them. *)
let check_empties values empties =
  let covers =
    List.filter_map
      (fun (ins, rem) ->
        let lo = ret_pos ins in
        let hi = match rem with Some r -> r.Op.call_pos - 1 | None -> max_int in
        if lo <= hi then Some (lo, hi) else None)
      values
  in
  let merged = merge_intervals covers in
  List.iter
    (fun (z : Op.t) ->
      if fully_covered merged ~lo:z.Op.call_pos ~hi:(ret_pos z - 1) then reject ())
    empties

(* ------------------------------------------------------------------ *)
(* Queue                                                               *)
(* ------------------------------------------------------------------ *)

(* FIFO condition (the bad-pattern characterization): the history is
   rejected iff there are values v, w with insert(v) <H insert(w), w
   removed, and either v is never removed or remove(w) <H remove(v).
   Encoding an unmatched v as remove-call position +inf turns the test for
   each w into a prefix maximum over the values whose insert returned
   before insert(w)'s call — O(V log V) total. *)
let check_fifo values =
  let arr = Array.of_list values in
  Array.sort (fun (e1, _) (e2, _) -> Int.compare (ret_pos e1) (ret_pos e2)) arr;
  let n = Array.length arr in
  let e_rets = Array.map (fun (e, _) -> ret_pos e) arr in
  let prefix_max_rcall = Array.make (n + 1) min_int in
  Array.iteri
    (fun i (_, r) ->
      let rc = match r with Some r -> r.Op.call_pos | None -> max_int in
      prefix_max_rcall.(i + 1) <- max prefix_max_rcall.(i) rc)
    arr;
  (* number of values whose insert returned before position [x] *)
  let count_before x =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if e_rets.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  Array.iter
    (fun ((e : Op.t), r) ->
      match r with
      | None -> ()
      | Some r ->
        let k = count_before e.Op.call_pos in
        if prefix_max_rcall.(k) > ret_pos r then reject ())
    arr

let check_queue h =
  try
    let values, empties =
      classify
        ~insert_name:"Enqueue"
        ~remove_names:[ "TryDequeue"; "Take" ]
        ~remove_may_fail:(String.equal "TryDequeue")
        h
    in
    check_fifo values;
    check_empties values empties;
    Accept
  with Verdict v -> v

(* ------------------------------------------------------------------ *)
(* Stack                                                               *)
(* ------------------------------------------------------------------ *)

(* Greedy peeling: a matched value [v] is eligible when no other
   insert/remove operation is forced strictly between push(v) and pop(v)
   (i.e. lies entirely inside the open gap (ret(push v), call(pop v))) —
   then push(v); pop(v) can appear adjacently in a witness and removing the
   pair preserves linearizability in both directions. Repeat until every
   matched value is peeled; getting stuck means some value can never reach
   the top when it is popped. Pop-empties never block: one forced strictly
   inside a gap is already rejected by the covering check (the value is
   definitely present throughout). Unmatched pushes block forever, which is
   exactly right — a value stuck above [v] that is never popped. *)
let check_peel values =
  let matched =
    Array.of_list (List.filter_map (fun (i, r) -> Option.map (fun r -> i, r) r) values)
  in
  let nv = Array.length matched in
  let blockers =
    List.concat_map (fun (i, r) -> i :: Option.to_list r) values
  in
  let inside (x : Op.t) vi =
    let (ins : Op.t), (rem : Op.t) = matched.(vi) in
    x.Op.call_pos > ret_pos ins && ret_pos x < rem.Op.call_pos
  in
  let counts = Array.make nv 0 in
  (* per blocking operation, the gaps it currently blocks *)
  let gaps_of : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (x : Op.t) ->
      let gs = List.filter (inside x) (List.init nv (fun i -> i)) in
      List.iter (fun vi -> counts.(vi) <- counts.(vi) + 1) gs;
      if gs <> [] then Hashtbl.replace gaps_of (Op.key x) gs)
    blockers;
  let peeled = Array.make nv false in
  let ready = Queue.create () in
  Array.iteri (fun vi c -> if c = 0 then Queue.add vi ready) counts;
  let remaining = ref nv in
  let release (x : Op.t) =
    List.iter
      (fun vi ->
        counts.(vi) <- counts.(vi) - 1;
        if counts.(vi) = 0 && not peeled.(vi) then Queue.add vi ready)
      (Option.value ~default:[] (Hashtbl.find_opt gaps_of (Op.key x)))
  in
  while not (Queue.is_empty ready) do
    let vi = Queue.pop ready in
    if not peeled.(vi) then begin
      peeled.(vi) <- true;
      decr remaining;
      let ins, rem = matched.(vi) in
      release ins;
      release rem
    end
  done;
  if !remaining > 0 then reject ()

let check_stack h =
  try
    let values, empties =
      classify
        ~insert_name:"Push"
        ~remove_names:[ "TryPop" ]
        ~remove_may_fail:(fun _ -> true)
        h
    in
    check_empties values empties;
    check_peel values;
    Accept
  with Verdict v -> v

(* Dispatch by specification class; [Set]/[Dictionary] go through the
   P-compositional splitter ({!Pcomp}) instead, and every other class has
   no monitor. *)
let check ~(cls : Spec.cls) h =
  match cls with
  | Spec.Queue -> check_queue h
  | Spec.Stack -> check_stack h
  | Spec.Set | Spec.Dictionary | Spec.Counter | Spec.Other ->
    Unsupported ("no monitor for class " ^ Spec.cls_name cls)
