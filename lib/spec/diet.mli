(** Discrete interval encoding of an int set.

    Purely functional; [add] and [mem] are O(log k) in the number of
    stored intervals, not the number of members. The streaming monitors
    ({!Monitor.Stream}) use these to retain "values ever inserted /
    removed / shed" over unbounded streams with bounded memory: real
    producers draw values from counters or small pools, so the interval
    count stays tiny even after millions of operations. *)

type t

val empty : t
val is_empty : t -> bool

val mem : int -> t -> bool

val add : int -> t -> t
(** Insert one value, merging with adjacent intervals. Safe at the
    [min_int]/[max_int] boundaries. *)

val intervals : t -> (int * int) list
(** Inclusive [(lo, hi)] intervals in increasing order. *)

val interval_count : t -> int
(** Number of stored intervals — the memory footprint, for stats. *)
