(** Chunked feasible-state streaming monitor for specification classes
    without a decrease-and-conquer engine.

    Events accumulate per key (the integer argument under [~keyed:true],
    a single key otherwise); at each per-key quiescent point with at
    least [chunk] completed operations the chunk closes and the Wing–Gong
    search ({!Lin_check.final_states}) computes the set of states the
    object could be in afterwards, unioned over every feasible entry
    state. Chunks of one key are totally real-time-ordered (a quiescent
    point separates them), so any witness linearizes them in order and
    the stream is linearizable iff every chunk linearizes from some
    feasible state of its predecessor — an empty feasible set is exactly
    a violation. Degradation is structured: a chunk that cannot close
    within [max_window] operations, more than 64 feasible states, or
    off-vocabulary operations answer [Unsupported], never a wrong
    verdict.

    Load shedding permanently degrades the shed operation's key
    (accept-lean: it is excluded from the verdict); other keys are
    unaffected, by P-compositionality. *)

type verdict = Monitor.verdict

type t = {
  feed : Lineup_history.Event.t -> unit;
  shed : call:Lineup_history.Event.t -> ret:Lineup_history.Event.t -> unit;
  verdict_now : unit -> verdict option;
  finalize : unit -> verdict;
  ops : unit -> int;
  sheds : unit -> int;
  chunks : unit -> int;
  resident : unit -> int;
}

val create : 'st Spec.t -> keyed:bool -> chunk:int -> max_window:int -> t
val create_packed : Spec.packed -> keyed:bool -> chunk:int -> max_window:int -> t
