(** Explicit deterministic sequential specifications.

    Line-Up's whole point is that these are {e not} needed — phase 1
    synthesizes the specification from the implementation. This module exists
    for three reasons: (1) it gives the formal objects of Section 2.1.2 a
    concrete form (the specification automaton of Fig. 3); (2) together with
    {!Lin_check} it provides an independent linearizability oracle used to
    cross-validate the two-phase check in the test suite; (3) wrapped in a
    coarse lock (see [Lineup_conc.Spec_impl]) it yields correct-by-
    construction reference implementations.

    A specification is deterministic by construction: [step] is a function.
    [Blocked] models operations that must wait (the semaphore-like [dec] of
    the paper's counter example). *)

(** The abstract-data-type class of a specification. The spec-specialized
    phase-2 membership layer dispatches on it: {!Spec_check} runs the
    decrease-and-conquer monitors of {!Monitor} for [Queue]/[Stack] and the
    P-compositional per-key splitter of {!Pcomp} for [Set]/[Dictionary];
    every other class (and every unsupported history) falls back to the
    generic search. The class is a routing hint only — it never changes
    which histories are enumerated or what a verdict means. *)
type cls =
  | Queue  (** FIFO: values enter at the tail, leave at the head *)
  | Stack  (** LIFO *)
  | Set  (** membership keyed by an integer argument *)
  | Dictionary  (** key-value map keyed by an integer argument *)
  | Counter  (** scalar state, no per-key structure *)
  | Other  (** no specialized membership path *)

type 'st outcome =
  | Return of Lineup_value.Value.t * 'st
  | Blocked  (** the invocation cannot proceed in this state *)

type 'st t = {
  name : string;
  cls : cls;
  initial : 'st;
  step : 'st -> Lineup_history.Invocation.t -> 'st outcome;
  state_key : 'st -> string;
      (** injective encoding of the state, used for memoization in
          {!Lin_check} and for cheap state equality *)
}

(** A specification with its state type hidden. *)
type packed = Packed : 'st t -> packed

val cls_name : cls -> string

(** [run spec invs] applies the invocations in order from the initial state,
    returning the responses; stops early at the first blocked invocation
    (returning [None] in that slot and ending the list there). *)
val run :
  'st t ->
  Lineup_history.Invocation.t list ->
  (Lineup_history.Invocation.t * Lineup_value.Value.t option) list

(** [advance spec invs] is the state reached by applying the invocations in
    order from the initial state, or [None] if any of them blocks or none is
    reachable. Used to fold a test's unrecorded [init] sequence into the
    specification before checking recorded histories against it. *)
val advance : 'st t -> Lineup_history.Invocation.t list -> 'st option
