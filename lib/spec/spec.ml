module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation

type cls =
  | Queue
  | Stack
  | Set
  | Dictionary
  | Counter
  | Other

type 'st outcome =
  | Return of Value.t * 'st
  | Blocked

type 'st t = {
  name : string;
  cls : cls;
  initial : 'st;
  step : 'st -> Invocation.t -> 'st outcome;
  state_key : 'st -> string;
}

type packed = Packed : 'st t -> packed

let cls_name = function
  | Queue -> "queue"
  | Stack -> "stack"
  | Set -> "set"
  | Dictionary -> "dictionary"
  | Counter -> "counter"
  | Other -> "other"

let run spec invs =
  let rec go st = function
    | [] -> []
    | inv :: rest -> (
      match spec.step st inv with
      | Return (v, st') -> (inv, Some v) :: go st' rest
      | Blocked -> [ inv, None ])
  in
  go spec.initial invs

let advance spec invs =
  List.fold_left
    (fun acc inv ->
      match acc with
      | None -> None
      | Some st -> (
        match spec.step st inv with
        | Return (_, st') -> Some st'
        | Blocked -> None))
    (Some spec.initial) invs
