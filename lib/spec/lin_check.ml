module Value = Lineup_value.Value
module History = Lineup_history.History
module Op = Lineup_history.Op

(* Wing & Gong-style search for a serial witness, memoized on the pair
   (set of linearized operations, specification state) as in Lowe's
   "Testing for linearizability". Operations are indexed in an array; sets
   are bitmasks, so histories are limited to 62 operations — far beyond the
   3x3 tests of the paper, but reachable via the auto generators. Oversized
   histories surface as a structured [`Unsupported] in the [*_outcome] API
   (the membership layer then degrades to the generic search); only the
   legacy boolean API still raises. *)

let max_ops = 62
let too_many n = Fmt.str "Lin_check: %d operations exceed the %d-op bitmask" n max_ops

let prepare h =
  let ops = Array.of_list (History.ops h) in
  let n = Array.length ops in
  if n > max_ops then Error (too_many n)
  else begin
    let preds =
      Array.init n (fun i ->
          List.filter
            (fun j -> Op.precedes ops.(j) ops.(i))
            (List.init n (fun j -> j)))
    in
    Ok (ops, n, preds)
  end

let prepare_exn h =
  match prepare h with
  | Ok p -> p
  | Error _ -> invalid_arg "Lin_check: more than 62 operations"

let bit i = 1 lsl i

(* Search for an order linearizing at least all complete operations (pending
   ones may be linearized when the specification returns for them, or
   dropped). [final_check] inspects the specification state reached once all
   complete operations are linearized. Returns the order (indices reversed)
   on success. *)
let search (spec : 'st Spec.t) ops n preds ~allow_pending ~final_check =
  let complete_mask =
    let m = ref 0 in
    Array.iteri (fun i op -> if Op.is_complete op then m := !m lor bit i) ops;
    !m
  in
  let memo : (int * string, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec go mask st acc =
    if mask land complete_mask = complete_mask && final_check st then Some acc
    else begin
      let key = mask, spec.Spec.state_key st in
      if Hashtbl.mem memo key then None
      else begin
        Hashtbl.add memo key ();
        let rec try_ops i =
          if i >= n then None
          else if mask land bit i <> 0 then try_ops (i + 1)
          else if List.exists (fun j -> mask land bit j = 0) preds.(i) then try_ops (i + 1)
          else begin
            let op : Op.t = ops.(i) in
            let attempt =
              match spec.Spec.step st op.inv, op.resp with
              | Spec.Return (v, st'), Some resp when Value.equal v resp ->
                go (mask lor bit i) st' (i :: acc)
              | Spec.Return (v, st'), None when allow_pending ->
                ignore v;
                go (mask lor bit i) st' (i :: acc)
              | (Spec.Return _ | Spec.Blocked), _ -> None
            in
            match attempt with Some _ as r -> r | None -> try_ops (i + 1)
          end
        in
        try_ops 0
      end
    end
  in
  go 0 spec.Spec.initial []

let check_outcome spec h =
  match prepare h with
  | Error reason -> `Unsupported reason
  | Ok (ops, n, preds) -> (
    match search spec ops n preds ~allow_pending:true ~final_check:(fun _ -> true) with
    | Some _ -> `Linearizable
    | None -> `Not_linearizable)

(* All specification states reachable by linearizing the complete history
   [h] in full, one representative per distinct [state_key], in sorted key
   order. This is the feasible-state set the chunked streaming monitor
   ({!Kmon}) propagates between quiescent chunks: the next chunk is
   linearizable after this one iff it is linearizable from one of these
   states. Unlike [search], the exploration does not stop at the first
   witness — it must enumerate every final state — but the same
   (mask, state_key) memoization bounds it. *)
let final_states (spec : 'st Spec.t) h =
  if not (History.is_complete h) then
    invalid_arg "Lin_check.final_states: history has pending operations";
  match prepare h with
  | Error reason -> `Unsupported reason
  | Ok (ops, n, preds) ->
    let full = (1 lsl n) - 1 in
    let out : (string, 'st) Hashtbl.t = Hashtbl.create 16 in
    let visited : (int * string, unit) Hashtbl.t = Hashtbl.create 256 in
    let rec go mask st =
      let key = spec.Spec.state_key st in
      if not (Hashtbl.mem visited (mask, key)) then begin
        Hashtbl.add visited (mask, key) ();
        if mask = full then begin
          if not (Hashtbl.mem out key) then Hashtbl.add out key st
        end
        else
          for i = 0 to n - 1 do
            if
              mask land bit i = 0
              && not (List.exists (fun j -> mask land bit j = 0) preds.(i))
            then begin
              let op : Op.t = ops.(i) in
              match spec.Spec.step st op.inv, op.resp with
              | Spec.Return (v, st'), Some resp when Value.equal v resp ->
                go (mask lor bit i) st'
              | (Spec.Return _ | Spec.Blocked), _ -> ()
            end
          done
      end
    in
    go 0 spec.Spec.initial;
    let states =
      Hashtbl.fold (fun k st acc -> (k, st) :: acc) out []
      |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
      |> List.map snd
    in
    `States states

let check_stuck_outcome spec h =
  if not (History.is_stuck h) then invalid_arg "Lin_check.check_stuck: history is not stuck";
  let justified (e : Op.t) =
    (* Witness for H[e]: all complete operations of [h] linearized in some
       <H-consistent order, after which the specification blocks on [e]'s
       invocation. The other pending calls are removed by the H[e]
       construction, hence excluded from the search. *)
    let he = History.restrict_to_pending h e in
    match prepare he with
    | Error reason -> Error reason
    | Ok (ops, n, preds) ->
      let final_check st =
        match spec.Spec.step st e.inv with Spec.Blocked -> true | Spec.Return _ -> false
      in
      (* In H[e] the only pending operation is [e] itself, which must not be
         linearized (it appears as the final pending call of the witness). *)
      Ok (Option.is_some (search spec ops n preds ~allow_pending:false ~final_check))
  in
  let rec go = function
    | [] -> `Justified
    | e :: rest -> (
      match justified e with
      | Error reason -> `Unsupported reason
      | Ok true -> go rest
      | Ok false -> `Unjustified e)
  in
  go (History.pending_ops h)

let check_general_outcome spec h =
  if History.is_stuck h then
    match check_stuck_outcome spec h with
    | `Justified -> `Linearizable
    | `Unjustified _ -> `Not_linearizable
    | `Unsupported reason -> `Unsupported reason
  else check_outcome spec h

(* ---- legacy boolean API (raises on oversized histories) ---- *)

let linearization_rev spec h ~final_check =
  let ops, n, preds = prepare_exn h in
  match search spec ops n preds ~allow_pending:true ~final_check with
  | Some rev_indices -> Some (List.rev_map (fun i -> ops.(i)) rev_indices)
  | None -> None

let check spec h =
  Option.is_some (linearization_rev spec h ~final_check:(fun _ -> true))

let linearization spec h = linearization_rev spec h ~final_check:(fun _ -> true)

let check_complete spec h =
  if not (History.is_complete h) then
    invalid_arg "Lin_check.check_complete: history has pending operations";
  check spec h

let check_stuck spec h =
  match check_stuck_outcome spec h with
  | `Justified -> Ok ()
  | `Unjustified e -> Error e
  | `Unsupported _ -> invalid_arg "Lin_check: more than 62 operations"

let check_general spec h =
  if History.is_stuck h then match check_stuck spec h with Ok () -> true | Error _ -> false
  else check spec h
