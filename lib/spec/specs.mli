(** A library of deterministic sequential specifications for the data types
    exercised in the paper.

    Invocation naming conventions are shared with the adapters in
    [Lineup_conc] so the same test matrices can drive either a real
    implementation (through Line-Up) or a specification (through
    {!Lin_check}). *)

(** The counter of Fig. 3: [Inc], [Get], [Set(x)], and a semaphore-like
    [Dec] that blocks at zero. *)
val counter : int Spec.t

(** A single integer register: [Write(x)], [Read], [CAS(a,b)]. *)
val register : int Spec.t

(** FIFO queue: [Enqueue(x)], [TryDequeue], [Take] (blocking), [TryPeek],
    [Count], [IsEmpty], [ToArray]. *)
val queue : int list Spec.t

(** LIFO stack: [Push(x)], [TryPop], [TryPeek], [Count], [PushRange(l)],
    [TryPopRange(n)], [ToArray]. *)
val stack : int list Spec.t

(** Counting semaphore: [Wait] (blocking), [TryWait], [Release],
    [ReleaseMany(n)], [CurrentCount]. [Release] returns the previous count,
    as in .NET's [SemaphoreSlim]. *)
val semaphore : initial:int -> int Spec.t

(** Manual-reset event: [Set], [Reset], [Wait] (blocking while unset),
    [TryWait], [IsSet]. *)
val manual_reset_event : initial:bool -> bool Spec.t

(** Integer key set (the deterministic core of a dictionary): [Add(k)],
    [Remove(k)], [Contains(k)], [Count]. [Add]/[Remove] return whether they
    changed the set. *)
val key_set : int list Spec.t

(** Key-value dictionary matching [Lineup_conc.Concurrent_dictionary]:
    [TryAdd(k)] (stores [k*100]), [TryRemove(k)], [TryGet(k)]/[Get(k)],
    [Set(k)] (stores [k*100+1]), [TryUpdate(k)] (increments),
    [ContainsKey(k)], [Count], [IsEmpty], [Clear]. *)
val dictionary : (int * int) list Spec.t

val all : Spec.packed list

val names : string list
(** The CLI-facing specification names accepted by {!find}, in a stable
    order: ["counter"], ["register"], ["queue"], ["stack"], ["semaphore"],
    ["mre"], ["set"] (the key set), ["dictionary"]. *)

val find : string -> Spec.packed option
(** Look a specification up by its CLI name (case-insensitive);
    parameterized specifications use their canonical initial state. *)
