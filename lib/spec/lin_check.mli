(** Direct linearizability checking against an explicit specification.

    This is the classical approach Line-Up replaces: given a sequential
    specification, search for a linearization (a serial witness) of a
    concurrent history. The search follows Wing & Gong's algorithm with
    Lowe-style memoization on (set of linearized operations, specification
    state).

    In this codebase it serves two roles: an independent oracle — the test
    suite checks that the two-phase Line-Up verdict and the direct verdict
    agree on histories produced by the model checker — and the per-part
    membership check behind the P-compositional splitter ({!Pcomp}) and the
    [--membership monitor] dispatch ({!Spec_check}).

    The bitmask representation limits one search to 62 operations. The
    [*_outcome] functions report oversized inputs as a structured
    [`Unsupported] so callers can degrade to the generic observation search
    instead of aborting the run; the legacy boolean API below raises
    [Invalid_argument] as before. *)

(** [check_outcome spec h] — Definition 1: can [h] be extended (completing
    or dropping its pending calls) so that [complete h'] has a serial
    witness in the specification? *)
val check_outcome :
  'st Spec.t ->
  Lineup_history.History.t ->
  [ `Linearizable | `Not_linearizable | `Unsupported of string ]

(** [final_states spec h] — all specification states reachable by
    linearizing the complete history [h] in full: one representative per
    distinct [state_key], sorted by key (so the list is deterministic).
    [`States []] means no witness exists at all. This is the feasible-state
    set the chunked streaming monitor ({!Kmon}) threads between quiescent
    chunks. Raises [Invalid_argument] if [h] has pending operations;
    oversized histories are [`Unsupported]. *)
val final_states :
  'st Spec.t -> Lineup_history.History.t -> [ `States of 'st list | `Unsupported of string ]

(** [check_stuck_outcome spec h] — Definition 2: every pending operation [e]
    of stuck history [h] must have a serial witness for [H[e]] in the
    blocked extension [Ȳ] of the specification; [`Unjustified e] carries
    the first pending operation without one. Raises [Invalid_argument] if
    [h] is not stuck. *)
val check_stuck_outcome :
  'st Spec.t ->
  Lineup_history.History.t ->
  [ `Justified | `Unjustified of Lineup_history.Op.t | `Unsupported of string ]

(** [check_general_outcome spec h] — Definition 3 applied to one history:
    stuck histories checked per Definition 2, others per Definition 1. *)
val check_general_outcome :
  'st Spec.t ->
  Lineup_history.History.t ->
  [ `Linearizable | `Not_linearizable | `Unsupported of string ]

(** [check spec h] — Definition 1, as a boolean. Raises [Invalid_argument]
    on histories of more than 62 operations. *)
val check : 'st Spec.t -> Lineup_history.History.t -> bool

(** [check_complete spec h] — Definition 1 restricted to complete histories.
    Raises [Invalid_argument] if [h] has pending operations. *)
val check_complete : 'st Spec.t -> Lineup_history.History.t -> bool

(** [check_stuck spec h] — Definition 2. Returns the first unjustified
    pending operation on failure. Raises [Invalid_argument] on oversized
    histories. *)
val check_stuck :
  'st Spec.t -> Lineup_history.History.t -> (unit, Lineup_history.Op.t) result

(** [check_general spec h] — Definition 3 applied to one history: stuck
    histories checked per Definition 2, others per Definition 1. *)
val check_general : 'st Spec.t -> Lineup_history.History.t -> bool

(** [linearization spec h] returns a witness linearization order of the
    complete operations of [h] (completing pending calls when possible), or
    [None] if the history is not linearizable. For reporting and tests. *)
val linearization : 'st Spec.t -> Lineup_history.History.t -> Lineup_history.Op.t list option
