module Value = Lineup_value.Value
module History = Lineup_history.History
module Event = Lineup_history.Event
module Op = Lineup_history.Op
module Invocation = Lineup_history.Invocation

(* P-compositional splitting (Horn & Kroening, "Faster linearizability
   checking via P-compositionality"): when every operation of a history
   touches exactly the key named by its integer argument and the
   specification state is a product of independent per-key components —
   the set and dictionary classes here — Herlihy & Wing locality applies
   with each key read as its own object: the history is linearizable iff
   each per-key projection is. Each projection is checked with a fresh memo
   table, so the bitmask and the memoized state space shrink from the whole
   history to one key's handful of operations; histories beyond
   [Lin_check]'s 62-operation limit become checkable whenever every part
   fits. *)

let key_of_op (op : Op.t) =
  match op.inv.Invocation.arg with Value.Int k -> Some k | _ -> None

(* A projection (or, in the streaming monitor, a chunk) drops operations,
   so per-thread [op_index] values are no longer contiguous; renumber them
   (keeping call/return paired via the original index) to satisfy
   [History.make] well-formedness. Event order — hence precedence — is
   untouched. *)
let renumber evs =
  let next : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let assigned : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun (ev : Event.t) ->
      let id = ev.Event.tid, ev.Event.op_index in
      let idx =
        match Hashtbl.find_opt assigned id with
        | Some i -> i
        | None ->
          let i = Option.value ~default:0 (Hashtbl.find_opt next ev.Event.tid) in
          Hashtbl.replace next ev.Event.tid (i + 1);
          Hashtbl.replace assigned id i;
          i
      in
      { ev with Event.op_index = idx })
    evs

let split h =
  let ops = History.ops h in
  let key_by_id : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let exception Unkeyed in
  match
    List.iter
      (fun (op : Op.t) ->
        match key_of_op op with
        | Some k -> Hashtbl.add key_by_id (Op.key op) k
        | None -> raise Unkeyed)
      ops
  with
  | exception Unkeyed -> None
  | () ->
    let buckets : (int, Event.t list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (ev : Event.t) ->
        let k = Hashtbl.find key_by_id (ev.Event.tid, ev.Event.op_index) in
        let evs = Option.value ~default:[] (Hashtbl.find_opt buckets k) in
        Hashtbl.replace buckets k (ev :: evs))
      (History.events h);
    let keys = List.sort_uniq Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) buckets []) in
    Some
      (List.map
         (fun k -> k, History.make ~stuck:false (renumber (List.rev (Hashtbl.find buckets k))))
         keys)

let check spec h =
  match split h with
  | None -> Monitor.Unsupported "operation without an integer key"
  | Some parts ->
    let rec go = function
      | [] -> Monitor.Accept
      | (_k, part) :: rest -> (
        match Lin_check.check_outcome spec part with
        | `Linearizable -> go rest
        | `Not_linearizable -> Monitor.Reject
        | `Unsupported reason -> Monitor.Unsupported reason)
    in
    go parts
