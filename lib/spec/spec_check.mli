(** Spec-specialized phase-2 membership: one history, one decision.

    Dispatch ladder, driven by the declared {!Spec.cls} of the adapter's
    specification:

    - complete history, class [Queue]/[Stack], no init sequence → the
      decrease-and-conquer {!Monitor};
    - complete history, class [Set]/[Dictionary] → the P-compositional
      per-key splitter {!Pcomp} (each part checked by {!Lin_check} with a
      fresh memo table);
    - anything the specialized checks refuse — and, with [force_spec], stuck
      or pending histories — the direct Wing–Gong search {!Lin_check}
      ([check_stuck_outcome] for stuck histories per Definition 2);
    - otherwise [Unsupported]: the caller must fall back to the generic
      observation search.

    A test's [init] sequence is folded into the specification's initial
    state first ({!Spec.advance}); the monitors additionally require an
    empty init (they assume the structure starts empty).

    This layer only ever {e consumes} histories the exploration already
    produced — it cannot perturb schedule enumeration, so history counts
    and fingerprints are identical across membership modes by construction. *)

type decision =
  | Accept  (** linearizable — counts as a witness found *)
  | Reject  (** complete history with no serial witness *)
  | Reject_stuck of Lineup_history.Op.t
      (** stuck history whose pending operation is unjustified (Def. 2) *)
  | Unsupported of string  (** no spec-specialized answer — use the generic search *)

type meth =
  | Monitor_check  (** decided by a class monitor *)
  | Pcomp_check  (** decided by the per-key splitter *)
  | Direct_check  (** decided by the direct Wing–Gong search *)

val meth_name : meth -> string

(** [decide ?force_spec packed_spec ~init h]. With [force_spec] (the
    [--membership monitor] mode) histories outside the monitored fragment
    are checked by the direct search instead of being handed back; without
    it (the [auto] mode) only the near-linear specialized checks answer.
    The returned method is [None] iff the decision is [Unsupported]. *)
val decide :
  ?force_spec:bool ->
  Spec.packed ->
  init:Lineup_history.Invocation.t list ->
  Lineup_history.History.t ->
  decision * meth option
