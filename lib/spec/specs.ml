module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
open Spec

let unexpected spec_name (inv : Invocation.t) =
  Fmt.invalid_arg "%s specification: unexpected invocation %a" spec_name Invocation.pp inv

let int_list_key l = String.concat "," (List.map string_of_int l)

let counter =
  let step st (inv : Invocation.t) =
    match inv.name, inv.arg with
    | "Inc", Value.Unit -> Return (Value.unit, st + 1)
    | "Dec", Value.Unit -> if st = 0 then Blocked else Return (Value.unit, st - 1)
    | "Get", Value.Unit -> Return (Value.int st, st)
    | "Set", Value.Int x -> Return (Value.unit, x)
    | _ -> unexpected "counter" inv
  in
  { name = "counter"; cls = Counter; initial = 0; step; state_key = string_of_int }

let register =
  let step st (inv : Invocation.t) =
    match inv.name, inv.arg with
    | "Write", Value.Int x -> Return (Value.unit, x)
    | "Read", Value.Unit -> Return (Value.int st, st)
    | "CAS", Value.Pair (Value.Int a, Value.Int b) ->
      if st = a then Return (Value.bool true, b) else Return (Value.bool false, st)
    | _ -> unexpected "register" inv
  in
  { name = "register"; cls = Other; initial = 0; step; state_key = string_of_int }

let queue =
  let step st (inv : Invocation.t) =
    match inv.name, inv.arg, st with
    | "Enqueue", Value.Int x, _ -> Return (Value.unit, st @ [ x ])
    | "TryDequeue", Value.Unit, [] -> Return (Value.Fail, [])
    | "TryDequeue", Value.Unit, x :: rest -> Return (Value.int x, rest)
    | "Take", Value.Unit, [] -> Blocked
    | "Take", Value.Unit, x :: rest -> Return (Value.int x, rest)
    | "TryPeek", Value.Unit, [] -> Return (Value.Fail, [])
    | "TryPeek", Value.Unit, x :: _ -> Return (Value.int x, st)
    | "Count", Value.Unit, _ -> Return (Value.int (List.length st), st)
    | "IsEmpty", Value.Unit, _ -> Return (Value.bool (st = []), st)
    | "ToArray", Value.Unit, _ -> Return (Value.list (List.map Value.int st), st)
    | _ -> unexpected "queue" inv
  in
  { name = "queue"; cls = Queue; initial = []; step; state_key = int_list_key }

let stack =
  let step st (inv : Invocation.t) =
    match inv.name, inv.arg, st with
    | "Push", Value.Int x, _ -> Return (Value.unit, x :: st)
    | "TryPop", Value.Unit, [] -> Return (Value.Fail, [])
    | "TryPop", Value.Unit, x :: rest -> Return (Value.int x, rest)
    | "TryPeek", Value.Unit, [] -> Return (Value.Fail, [])
    | "TryPeek", Value.Unit, x :: _ -> Return (Value.int x, st)
    | "Count", Value.Unit, _ -> Return (Value.int (List.length st), st)
    | "PushRange", Value.List xs, _ ->
      (* .NET PushRange(arr) pushes arr[0] last, so arr[0] ends on top. *)
      let xs = List.map Value.get_int xs in
      Return (Value.unit, xs @ st)
    | "TryPopRange", Value.Int n, _ ->
      let rec take n st =
        if n = 0 then [], st
        else
          match st with
          | [] -> [], []
          | x :: rest ->
            let popped, rest = take (n - 1) rest in
            x :: popped, rest
      in
      let popped, rest = take n st in
      Return (Value.list (List.map Value.int popped), rest)
    | "ToArray", Value.Unit, _ -> Return (Value.list (List.map Value.int st), st)
    | _ -> unexpected "stack" inv
  in
  { name = "stack"; cls = Stack; initial = []; step; state_key = int_list_key }

let semaphore ~initial =
  let step st (inv : Invocation.t) =
    match inv.name, inv.arg with
    | "Wait", Value.Unit -> if st = 0 then Blocked else Return (Value.unit, st - 1)
    | "TryWait", Value.Unit ->
      if st = 0 then Return (Value.bool false, st) else Return (Value.bool true, st - 1)
    | "Release", Value.Unit -> Return (Value.int st, st + 1)
    | "ReleaseMany", Value.Int n -> Return (Value.int st, st + n)
    | "CurrentCount", Value.Unit -> Return (Value.int st, st)
    | _ -> unexpected "semaphore" inv
  in
  { name = "semaphore"; cls = Counter; initial; step; state_key = string_of_int }

let manual_reset_event ~initial =
  let step st (inv : Invocation.t) =
    match inv.name, inv.arg with
    | "Set", Value.Unit -> Return (Value.unit, true)
    | "Reset", Value.Unit -> Return (Value.unit, false)
    | "Wait", Value.Unit -> if st then Return (Value.unit, st) else Blocked
    | "TryWait", Value.Unit -> Return (Value.bool st, st)
    | "IsSet", Value.Unit -> Return (Value.bool st, st)
    | _ -> unexpected "manual_reset_event" inv
  in
  { name = "manual_reset_event"; cls = Other; initial; step; state_key = string_of_bool }

let key_set =
  let step st (inv : Invocation.t) =
    match inv.name, inv.arg with
    | "Add", Value.Int k ->
      if List.mem k st then Return (Value.bool false, st)
      else Return (Value.bool true, List.sort Int.compare (k :: st))
    | "Remove", Value.Int k ->
      if List.mem k st then Return (Value.bool true, List.filter (fun x -> x <> k) st)
      else Return (Value.bool false, st)
    | "Contains", Value.Int k -> Return (Value.bool (List.mem k st), st)
    | "Count", Value.Unit -> Return (Value.int (List.length st), st)
    | _ -> unexpected "key_set" inv
  in
  { name = "key_set"; cls = Set; initial = []; step; state_key = int_list_key }

(* The key-value map of [Lineup_conc.Concurrent_dictionary]: same value
   conventions (TryAdd stores k*100, Set stores k*100+1, TryUpdate
   increments) so the locked reference and the striped implementation are
   serially indistinguishable. State: assoc list sorted by key. *)
let dictionary =
  let sorted l = List.sort (fun (a, _) (b, _) -> Int.compare a b) l in
  let step st (inv : Invocation.t) =
    match inv.name, inv.arg with
    | "TryAdd", Value.Int k ->
      if List.mem_assoc k st then Return (Value.bool false, st)
      else Return (Value.bool true, sorted ((k, k * 100) :: st))
    | "TryRemove", Value.Int k ->
      if List.mem_assoc k st then Return (Value.bool true, List.remove_assoc k st)
      else Return (Value.bool false, st)
    | ("TryGet" | "Get"), Value.Int k -> (
      match List.assoc_opt k st with
      | Some v -> Return (Value.int v, st)
      | None -> Return (Value.Fail, st))
    | "Set", Value.Int k ->
      Return (Value.unit, sorted ((k, (k * 100) + 1) :: List.remove_assoc k st))
    | "TryUpdate", Value.Int k -> (
      match List.assoc_opt k st with
      | Some v -> Return (Value.bool true, sorted ((k, v + 1) :: List.remove_assoc k st))
      | None -> Return (Value.bool false, st))
    | "ContainsKey", Value.Int k -> Return (Value.bool (List.mem_assoc k st), st)
    | "Count", Value.Unit -> Return (Value.int (List.length st), st)
    | "IsEmpty", Value.Unit -> Return (Value.bool (st = []), st)
    | "Clear", Value.Unit -> Return (Value.unit, [])
    | _ -> unexpected "dictionary" inv
  in
  let state_key st =
    String.concat "," (List.map (fun (k, v) -> Fmt.str "%d:%d" k v) st)
  in
  { name = "dictionary"; cls = Dictionary; initial = []; step; state_key }

let all =
  [
    Packed counter;
    Packed register;
    Packed queue;
    Packed stack;
    Packed (semaphore ~initial:0);
    Packed (manual_reset_event ~initial:false);
    Packed key_set;
    Packed dictionary;
  ]

(* CLI-facing names ([lineup monitor SPEC]). "set" is the key set — the
   deterministic core of the Set class — and parameterized specs use a
   fixed canonical initial state. *)
let by_name =
  [
    "counter", Packed counter;
    "register", Packed register;
    "queue", Packed queue;
    "stack", Packed stack;
    "semaphore", Packed (semaphore ~initial:0);
    "mre", Packed (manual_reset_event ~initial:false);
    "set", Packed key_set;
    "dictionary", Packed dictionary;
  ]

let names = List.map fst by_name
let find name = List.assoc_opt (String.lowercase_ascii name) by_name
