(* A discrete interval encoding of an int set: a map from interval low
   endpoint to high endpoint, with adjacent intervals merged. The streaming
   monitors use these to remember "every value ever inserted/removed" over
   unbounded streams — producers that draw values from a counter or a small
   pool keep the set at a handful of intervals regardless of stream length,
   which is what makes windowed GC's O(1)-per-value membership checks
   possible. *)

module M = Map.Make (Int)

type t = int M.t

let empty = M.empty
let is_empty = M.is_empty

let mem x t =
  match M.find_last_opt (fun lo -> lo <= x) t with
  | Some (_, hi) -> x <= hi
  | None -> false

let add x t =
  if mem x t then t
  else begin
    (* Merge with the interval ending at [x - 1] and/or starting at
       [x + 1]; the min_int/max_int guards keep the neighbor probes from
       overflowing. *)
    let left =
      if x = min_int then None
      else
        match M.find_last_opt (fun lo -> lo < x) t with
        | Some (lo, hi) when hi = x - 1 -> Some lo
        | _ -> None
    in
    let right = if x < max_int && M.mem (x + 1) t then Some (M.find (x + 1) t) else None in
    match (left, right) with
    | Some llo, Some rhi -> M.add llo rhi (M.remove (x + 1) t)
    | Some llo, None -> M.add llo x t
    | None, Some rhi -> M.add x rhi (M.remove (x + 1) t)
    | None, None -> M.add x x t
  end

let intervals t = M.bindings t
let interval_count = M.cardinal
