(** P-compositional splitting of keyed histories (Horn & Kroening).

    For specification classes whose state is a product of independent
    per-key components and whose operations each touch exactly the key in
    their integer argument ([Set], [Dictionary]), a history is linearizable
    iff every per-key projection is (Herlihy & Wing locality, one object per
    key). Each projection is checked against the specification with a fresh
    {!Lin_check} memo table.

    Operations without an integer argument ([Count], [IsEmpty], [Clear])
    couple the keys; their presence makes the split unsound, so it is
    refused and the caller falls back to the generic search. *)

(** [renumber evs] rewrites per-thread [op_index] values to be contiguous
    from 0 in event order, keeping each call paired with its return via the
    original index. Event order — hence precedence — is untouched. Needed
    whenever a subsequence of a history's events (a per-key projection, a
    streaming chunk) is turned back into a well-formed {!History.t}. *)
val renumber : Lineup_history.Event.t list -> Lineup_history.Event.t list

(** [split h] partitions the history by the integer argument of each
    operation, or returns [None] if some operation has none. Parts are
    returned in increasing key order; each is a well-formed (non-stuck)
    history whose events keep their relative order, so precedence within a
    part agrees with precedence in [h]. *)
val split :
  Lineup_history.History.t -> (int * Lineup_history.History.t) list option

(** [check spec h] — accept iff every per-key part linearizes against
    [spec] (whose initial state may have been advanced over a test's init
    sequence). [Unsupported] when the history cannot be split or a part
    exceeds the {!Lin_check} operation limit. *)
val check : 'st Spec.t -> Lineup_history.History.t -> Monitor.verdict
