module History = Lineup_history.History
module Op = Lineup_history.Op
module Invocation = Lineup_history.Invocation

type decision =
  | Accept
  | Reject
  | Reject_stuck of Op.t
  | Unsupported of string

type meth =
  | Monitor_check
  | Pcomp_check
  | Direct_check

let meth_name = function
  | Monitor_check -> "monitor"
  | Pcomp_check -> "pcomp"
  | Direct_check -> "direct"

(* The dispatch ladder. The test's [init] sequence runs unrecorded before
   the threads (see [Lineup.Harness]), so the specification must first be
   advanced over it; the class monitors assume an empty initial state and
   are only consulted when there is no init sequence, while the splitter
   and the direct check work from the advanced state. *)
let decide ?(force_spec = false) (Spec.Packed spec) ~init h =
  match Spec.advance spec init with
  | None -> Unsupported "init sequence blocks", None
  | Some st0 ->
    let spec = { spec with Spec.initial = st0 } in
    let direct () =
      if not force_spec then Unsupported "no specialized check", None
      else if History.is_stuck h then
        match Lin_check.check_stuck_outcome spec h with
        | `Justified -> Accept, Some Direct_check
        | `Unjustified e -> Reject_stuck e, Some Direct_check
        | `Unsupported r -> Unsupported r, None
      else
        match Lin_check.check_outcome spec h with
        | `Linearizable -> Accept, Some Direct_check
        | `Not_linearizable -> Reject, Some Direct_check
        | `Unsupported r -> Unsupported r, None
    in
    if History.is_stuck h || not (History.is_complete h) then direct ()
    else begin
      let specialized =
        match spec.Spec.cls with
        | (Spec.Queue | Spec.Stack) when init = [] ->
          Some (Monitor.check ~cls:spec.Spec.cls h, Monitor_check)
        | Spec.Set | Spec.Dictionary -> Some (Pcomp.check spec h, Pcomp_check)
        | Spec.Queue | Spec.Stack | Spec.Counter | Spec.Other -> None
      in
      match specialized with
      | Some (Monitor.Accept, m) -> Accept, Some m
      | Some (Monitor.Reject, m) -> Reject, Some m
      | Some (Monitor.Unsupported _, _) | None -> direct ()
    end
