module History = Lineup_history.History
module Event = Lineup_history.Event
module Invocation = Lineup_history.Invocation
module Value = Lineup_value.Value

(* Chunked feasible-state monitoring for specification classes without a
   decrease-and-conquer engine: sets and dictionaries (sharded per key via
   P-compositionality, {!Pcomp}), and any other spec as a single stream.

   Per key, events accumulate into a chunk; at each per-key quiescent point
   (no pending call on that key) with at least [chunk] completed
   operations, the chunk is closed and checked with the Wing–Gong search —
   not for a yes/no answer but for the full set of reachable final states
   ({!Lin_check.final_states}), unioned over every state the previous
   chunks could have left the object in. Because a key's chunks are
   separated by quiescent points, every operation of chunk [i] really-time
   precedes every operation of chunk [i+1]; any witness therefore
   linearizes chunk [i] entirely before chunk [i+1], so the stream is
   linearizable iff each chunk linearizes from some feasible state of its
   predecessor. The feasible set becoming empty is exactly a violation.

   Degradation is structured, never wrong: a chunk that cannot close within
   [max_window] operations, a feasible set larger than [max_feasible], or
   vocabulary outside the spec surfaces as [Unsupported].

   Implemented as a record of closures so one existential spec type ['st]
   stays hidden inside [create]. *)

type verdict = Monitor.verdict

type t = {
  feed : Event.t -> unit;
  shed : call:Event.t -> ret:Event.t -> unit;
  verdict_now : unit -> verdict option;
  finalize : unit -> verdict;
  ops : unit -> int;
  sheds : unit -> int;
  chunks : unit -> int;
  resident : unit -> int;
}

let max_feasible = 64

type 'st kstate = {
  mutable feasible : 'st list;
  mutable chunk : Event.t list; (* reversed *)
  mutable chunk_ops : int; (* completed ops in [chunk] *)
  mutable kpending : int;
  (* key degraded by load shedding: its events are discarded and it is
     excluded from the final verdict (accept-lean) *)
  mutable dead : bool;
}

let create : type st. st Spec.t -> keyed:bool -> chunk:int -> max_window:int -> t =
 fun spec ~keyed ~chunk ~max_window ->
  let chunk = max 1 chunk in
  let max_window = max 1 max_window in
  let keys : (int, st kstate) Hashtbl.t = Hashtbl.create 16 in
  let op_key : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let verdict : verdict option ref = ref None in
  let n_ops = ref 0 in
  let n_sheds = ref 0 in
  let n_chunks = ref 0 in
  let settle v = if !verdict = None then verdict := Some v in
  let kstate_of k =
    match Hashtbl.find_opt keys k with
    | Some ks -> ks
    | None ->
      let ks =
        { feasible = [ spec.Spec.initial ];
          chunk = [];
          chunk_ops = 0;
          kpending = 0;
          dead = false;
        }
      in
      Hashtbl.add keys k ks;
      ks
  in
  (* Union of final states over every feasible entry state, one
     representative per state_key, in sorted key order for determinism. *)
  let step_feasible ks h =
    let out : (string, st) Hashtbl.t = Hashtbl.create 16 in
    let degraded = ref None in
    List.iter
      (fun st ->
        if !degraded = None then
          match Lin_check.final_states { spec with Spec.initial = st } h with
          | `Unsupported reason -> degraded := Some reason
          | `States sts ->
            List.iter
              (fun st' ->
                let key = spec.Spec.state_key st' in
                if not (Hashtbl.mem out key) then Hashtbl.add out key st')
              sts)
      ks.feasible;
    match !degraded with
    | Some reason -> Error reason
    | None ->
      Ok
        (Hashtbl.fold (fun k st acc -> (k, st) :: acc) out []
        |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
        |> List.map snd)
  in
  let close_chunk ks =
    incr n_chunks;
    let h = History.make ~stuck:false (Pcomp.renumber (List.rev ks.chunk)) in
    ks.chunk <- [];
    ks.chunk_ops <- 0;
    match step_feasible ks h with
    | Error reason -> settle (Monitor.Unsupported reason)
    | Ok [] -> settle Monitor.Reject
    | Ok sts ->
      if List.length sts > max_feasible then
        settle
          (Monitor.Unsupported
             (Fmt.str "feasible-state explosion (over %d states)" max_feasible))
      else ks.feasible <- sts
  in
  let key_of (inv : Invocation.t) =
    if not keyed then Some 0
    else match inv.Invocation.arg with Value.Int k -> Some k | _ -> None
  in
  let feed (ev : Event.t) =
    if !verdict = None then begin
      let id = ev.Event.tid, ev.Event.op_index in
      match ev.Event.dir with
      | Event.Call inv -> (
        if Hashtbl.mem op_key id then
          settle
            (Monitor.Unsupported
               (Fmt.str "duplicate call for operation (%d, %d)" ev.Event.tid
                  ev.Event.op_index))
        else
          match key_of inv with
          | None ->
            settle
              (Monitor.Unsupported
                 (Fmt.str "operation %s without an integer key"
                    inv.Invocation.name))
          | Some k ->
            Hashtbl.replace op_key id k;
            let ks = kstate_of k in
            if not ks.dead then begin
              ks.kpending <- ks.kpending + 1;
              ks.chunk <- ev :: ks.chunk;
              if ks.chunk_ops + ks.kpending > max_window then
                settle
                  (Monitor.Unsupported
                     (Fmt.str "no quiescent point within %d operations"
                        max_window))
            end)
      | Event.Return _ -> (
        match Hashtbl.find_opt op_key id with
        | None ->
          settle
            (Monitor.Unsupported
               (Fmt.str "return without call for operation (%d, %d)"
                  ev.Event.tid ev.Event.op_index))
        | Some k ->
          Hashtbl.remove op_key id;
          let ks = kstate_of k in
          if not ks.dead then begin
            ks.kpending <- ks.kpending - 1;
            ks.chunk <- ev :: ks.chunk;
            ks.chunk_ops <- ks.chunk_ops + 1;
            incr n_ops;
            if ks.kpending = 0 && ks.chunk_ops >= chunk then close_chunk ks
          end)
    end
  in
  (* A shed operation permanently degrades its key: we no longer know that
     key's state, so its remaining events are discarded and it is excluded
     from the verdict. Other keys are unaffected (P-compositionality). *)
  let shed ~(call : Event.t) ~ret:_ =
    if !verdict = None then begin
      incr n_sheds;
      match call.Event.dir with
      | Event.Call inv -> (
        match key_of inv with
        | None -> ()
        | Some k ->
          let ks = kstate_of k in
          ks.dead <- true;
          ks.chunk <- [];
          ks.chunk_ops <- 0;
          ks.kpending <- 0)
      | Event.Return _ -> ()
    end
  in
  let finalize () =
    match !verdict with
    | Some v -> v
    | None ->
      (* Leftover chunks may carry pending calls (the stream ended
         mid-operation); [History.make] allows them and the Wing–Gong
         search completes or drops them, so the final check is the plain
         membership question from any feasible state. *)
      let unsupported = ref None in
      let rejected = ref false in
      let check_key _k ks =
        if (not ks.dead) && ks.chunk <> [] && not !rejected then begin
          let h = History.make ~stuck:false (Pcomp.renumber (List.rev ks.chunk)) in
          let key_unsupported = ref None in
          let ok =
            List.exists
              (fun st ->
                match
                  Lin_check.check_outcome { spec with Spec.initial = st } h
                with
                | `Linearizable -> true
                | `Not_linearizable -> false
                | `Unsupported reason ->
                  if !key_unsupported = None then key_unsupported := Some reason;
                  false)
              ks.feasible
          in
          if not ok then
            (* No feasible state linearizes the leftover: a definite
               violation, unless part of the search was cut short — then
               the honest answer for this key is Unsupported. *)
            match !key_unsupported with
            | None -> rejected := true
            | Some reason -> if !unsupported = None then unsupported := Some reason
        end
      in
      Hashtbl.iter check_key keys;
      let v =
        if !rejected then Monitor.Reject
        else
          match !unsupported with
          | Some reason -> Monitor.Unsupported reason
          | None -> Monitor.Accept
      in
      verdict := Some v;
      v
  in
  {
    feed;
    shed;
    verdict_now = (fun () -> !verdict);
    finalize;
    ops = (fun () -> !n_ops);
    sheds = (fun () -> !n_sheds);
    chunks = (fun () -> !n_chunks);
    resident =
      (fun () ->
        Hashtbl.fold
          (fun _ ks acc ->
            acc + List.length ks.chunk + List.length ks.feasible)
          keys 0
        + Hashtbl.length op_key);
  }

let create_packed (Spec.Packed spec) ~keyed ~chunk ~max_window =
  create spec ~keyed ~chunk ~max_window
