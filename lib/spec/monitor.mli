(** Decrease-and-conquer membership monitors (Lee & Mathur style) for
    unambiguous complete queue and stack histories.

    For the insert/remove fragment of the vocabulary — [Enqueue]/
    [TryDequeue]/[Take] for queues, [Push]/[TryPop] for stacks — with every
    inserted value distinct (unambiguity) and an empty initial state,
    linearizability is decided by interval conditions on event positions in
    near-linear time instead of a witness search:

    - value safety: a removed value was inserted, exactly once, and its
      remove does not precede its insert;
    - queue FIFO: no values [v, w] with [insert v <H insert w], [w] removed,
      and ([v] never removed or [remove w <H remove v]);
    - empty removes: a [TryDequeue]/[TryPop] returning [Fail] must admit a
      linearization point outside every interval in which some value is
      definitely present;
    - stack LIFO: greedy peeling — repeatedly delete a matched push/pop pair
      with no other insert/remove forced strictly between them; the history
      is linearizable iff all matched pairs peel.

    Histories using any other operation (peeks, counts, ranges), a
    non-integer value, a pending operation, or an ambiguous (re-inserted)
    value are reported [Unsupported]; the caller ({!Spec_check}) falls back
    to the generic search. The test suite cross-validates every verdict
    against {!Lin_check} on random histories. *)

type verdict =
  | Accept  (** linearizable w.r.t. the class specification *)
  | Reject  (** no serial witness exists *)
  | Unsupported of string  (** outside the monitored fragment — fall back *)

val check_queue : Lineup_history.History.t -> verdict
val check_stack : Lineup_history.History.t -> verdict

(** [check ~cls h] dispatches on the specification class; classes without a
    monitor answer [Unsupported]. *)
val check : cls:Spec.cls -> Lineup_history.History.t -> verdict

(** Incremental (streaming) form of the same monitors, for [lineup
    monitor]: events are fed one at a time and the verdict is maintained
    online with bounded memory.

    Completed operations accumulate in a window; at each quiescent point
    (no pending call) once at least [min_batch] operations have completed,
    the offline interval checks run over the window plus the still-live
    values and the decided pairs/empties are garbage-collected. GC cannot
    change any verdict — see DESIGN.md ("Streaming monitor") for the
    argument per check. If no quiescent point occurs within [max_window]
    operations the engine degrades to [Unsupported] rather than growing
    without bound.

    Verdicts are sticky: after the first [Reject]/[Unsupported], further
    events are ignored. [shed] records an operation dropped under
    backpressure and degrades the engine {e accept-lean}: a [Reject]
    remains trustworthy, but some violations involving shed values may be
    missed. *)
module Stream : sig
  type t

  val create_queue : ?min_batch:int -> ?max_window:int -> unit -> t
  (** Queue engine ([Enqueue]/[TryDequeue]/[Take]). [min_batch] defaults
      to 512, [max_window] to 1_048_576. *)

  val create_stack : ?min_batch:int -> ?max_window:int -> unit -> t
  (** Stack engine ([Push]/[TryPop]); same defaults. *)

  val feed : t -> Lineup_history.Event.t -> unit
  (** Process one call or return event. No-op once a verdict is reached. *)

  val shed : t -> call:Lineup_history.Event.t -> ret:Lineup_history.Event.t -> unit
  (** Record an operation dropped under backpressure, given its two events
      as captured at drop time. *)

  val verdict_now : t -> verdict option
  (** [Some] once the verdict is decided (sticky); [None] while the stream
      is still undecided (= accepting so far). *)

  val finalize : t -> verdict
  (** End of stream: run the final window regardless of [min_batch] and
      settle the verdict. A still-pending operation is [Unsupported],
      matching the offline monitors. *)

  val ops : t -> int
  (** Completed operations processed. *)

  val sheds : t -> int
  (** Operations dropped via {!shed}. *)

  val windows : t -> int
  (** Window checks performed. *)

  val resident : t -> int
  (** Current retained tracking state in operations (live values, window
      accumulators, pending calls, unpeeled pairs) — the quantity windowed
      GC keeps bounded. *)

  val intervals : t -> int
  (** Total interval count across the value Diets (inserted / removed /
      amnesty) — the engine's only other retained state. *)
end
