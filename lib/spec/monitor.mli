(** Decrease-and-conquer membership monitors (Lee & Mathur style) for
    unambiguous complete queue and stack histories.

    For the insert/remove fragment of the vocabulary — [Enqueue]/
    [TryDequeue]/[Take] for queues, [Push]/[TryPop] for stacks — with every
    inserted value distinct (unambiguity) and an empty initial state,
    linearizability is decided by interval conditions on event positions in
    near-linear time instead of a witness search:

    - value safety: a removed value was inserted, exactly once, and its
      remove does not precede its insert;
    - queue FIFO: no values [v, w] with [insert v <H insert w], [w] removed,
      and ([v] never removed or [remove w <H remove v]);
    - empty removes: a [TryDequeue]/[TryPop] returning [Fail] must admit a
      linearization point outside every interval in which some value is
      definitely present;
    - stack LIFO: greedy peeling — repeatedly delete a matched push/pop pair
      with no other insert/remove forced strictly between them; the history
      is linearizable iff all matched pairs peel.

    Histories using any other operation (peeks, counts, ranges), a
    non-integer value, a pending operation, or an ambiguous (re-inserted)
    value are reported [Unsupported]; the caller ({!Spec_check}) falls back
    to the generic search. The test suite cross-validates every verdict
    against {!Lin_check} on random histories. *)

type verdict =
  | Accept  (** linearizable w.r.t. the class specification *)
  | Reject  (** no serial witness exists *)
  | Unsupported of string  (** outside the monitored fragment — fall back *)

val check_queue : Lineup_history.History.t -> verdict
val check_stack : Lineup_history.History.t -> verdict

(** [check ~cls h] dispatches on the specification class; classes without a
    monitor answer [Unsupported]. *)
val check : cls:Spec.cls -> Lineup_history.History.t -> verdict
