type t = {
  id : int;
  name : string;
  mutable holder : int option;
}

let create ?name () =
  let id = Exec_ctx.fresh_loc () in
  let name = match name with Some n -> n | None -> Fmt.str "lock%d" id in
  { id; name; holder = None }

let name m = m.name

let sched m =
  Rt.sched (Rt.Access { loc = m.id; loc_name = m.name; kind = Exec_ctx.Rmw; volatile = true })

let log_acquire m =
  Exec_ctx.log (Exec_ctx.Lock_acquire { tid = Exec_ctx.current_tid (); lock = m.id; name = m.name })

let log_release m =
  Exec_ctx.log (Exec_ctx.Lock_release { tid = Exec_ctx.current_tid (); lock = m.id; name = m.name })

let take m =
  m.holder <- Some (Rt.self ());
  log_acquire m

(* The step a woken waiter executes re-checks the holder and takes the
   lock: an Rmw of the lock's location, declared so the partial-order
   reduction need not treat lock hand-offs as opaque. *)
let block_footprint m = Footprint.access ~loc:m.id ~kind:Exec_ctx.Rmw

let acquire m =
  sched m;
  (* After [block] returns the predicate holds and nothing has run since, so
     taking the lock here is atomic. The loop guards the first iteration. *)
  while Option.is_some m.holder do
    Rt.block ~footprint:(block_footprint m)
      ~wake:(fun () -> Option.is_none m.holder)
      ("lock " ^ m.name)
  done;
  take m

let try_acquire m =
  sched m;
  if Option.is_none m.holder then begin
    take m;
    true
  end
  else false

let try_acquire_timed m =
  sched m;
  if Option.is_none m.holder then begin
    take m;
    true
  end
  else if Rt.choose ~what:("timeout on " ^ m.name) 2 = 0 then false (* timed out *)
  else begin
    while Option.is_some m.holder do
      Rt.block ~footprint:(block_footprint m)
        ~wake:(fun () -> Option.is_none m.holder)
        ("lock " ^ m.name)
    done;
    take m;
    true
  end

let release m =
  sched m;
  (match m.holder with
   | Some t when t = Rt.self () -> ()
   | Some t ->
     invalid_arg
       (Fmt.str "Mutex_.release: %s held by thread %d, released by %d" m.name t (Rt.self ()))
   | None -> invalid_arg (Fmt.str "Mutex_.release: %s is not held" m.name));
  m.holder <- None;
  log_release m

let holder m = m.holder

let with_lock m f =
  acquire m;
  match f () with
  | x ->
    release m;
    x
  | exception e ->
    release m;
    raise e
