(** Per-execution mutable context.

    The stateless model checker re-runs the program under test from scratch
    for every explored schedule. This module holds the little bits of global
    state that must be reset between executions: the shared-location id
    counter, the identity of the currently running thread (maintained by the
    scheduler; execution is cooperative and single-domain, so a plain mutable
    cell is sound), and the access log consumed by the comparison checkers of
    Section 5.6 (data-race detection, conflict-serializability). *)

type access_kind = Read | Write | Rmw

type entry =
  | Access of {
      tid : int;
      loc : int;
      loc_name : string;
      kind : access_kind;
      volatile : bool;
    }
  | Lock_acquire of { tid : int; lock : int; name : string }
  | Lock_release of { tid : int; lock : int; name : string }
  | Op_start of { tid : int; op_index : int }
  | Op_end of { tid : int; op_index : int }
  | Fence of { tid : int }
      (** an explicit [Rt.fence] — a full store barrier. Logged so
          order-sensitive analyses (the Section 5.7 store-buffering
          monitor) can tell fenced code from fence-free code. *)

(** [reset ()] clears all per-execution state. Called by the scheduler before
    each execution. *)
val reset : unit -> unit

(** Fresh shared-location id. Allocation order is deterministic across
    replayed executions, so ids are stable. *)
val fresh_loc : unit -> int

val set_current_tid : int -> unit
val current_tid : unit -> int

(** {2 Store buffers (weak memory)}

    Under {!Memory_model.Tso}/{!Memory_model.Pso} the scheduler simulates
    hardware store buffers. A {e flush unit} is one FIFO buffer it can flush
    the oldest entry from: one per thread under TSO, one per (thread,
    location) pair under PSO. Units are registered on first write and keep
    their index for the rest of the execution, so unit indices are
    deterministic across replays of the same decision prefix. Under
    {!Memory_model.Sc} no unit is ever created and every buffer query is
    trivially empty. *)

(** [set_memory m] selects the simulated memory model and discards all
    buffered writes. Only the scheduler calls this — around the scheduled
    part of an execution — so inline contexts ({!Rt.run_inline}: adapter
    construction, test setup, the final observer) always run under [Sc]. *)
val set_memory : Memory_model.t -> unit

val memory : unit -> Memory_model.t

(** [buffer_push ~loc ~loc_name ~commit] appends a pending store by the
    current thread to the appropriate flush unit (creating it on first use).
    [commit] performs the globally visible effect when the entry is flushed. *)
val buffer_push : loc:int -> loc_name:string -> commit:(unit -> unit) -> unit

(** Number of registered flush units (including currently empty ones —
    indices are never recycled within an execution). *)
val flush_unit_count : unit -> int

(** Owning thread of a flush unit. *)
val flush_unit_owner : int -> int

(** [flush_unit_pending u] is the (location id, location name) of the oldest
    buffered store in unit [u], or [None] if the unit is empty. *)
val flush_unit_pending : int -> (int * string) option

(** [flush_one u] commits the oldest buffered store of unit [u] to shared
    memory. Raises [Invalid_argument] if the unit is empty. *)
val flush_one : int -> unit

(** [buffer_empty tid] holds when thread [tid] has no pending buffered
    stores in any unit. Always true under [Sc]. *)
val buffer_empty : int -> bool

(** No pending buffered stores in any unit. Always true under [Sc]. *)
val buffers_all_empty : unit -> bool

(** Access logging is off by default (exploration-speed); the comparison
    checkers enable it. *)
val set_logging : bool -> unit
val logging_enabled : unit -> bool

(** [with_logging enabled f] runs [f] with access logging set to [enabled]
    and restores the previous setting on return {e and} on exception
    ([Fun.protect]): an analysis that raises mid-exploration can never leak
    a logging-enabled (or -disabled) state into subsequent checks. The flag
    is domain-local, so the scope is the calling domain only — parallel
    partition workers each wrap their own exploration. *)
val with_logging : bool -> (unit -> 'a) -> 'a
val log : entry -> unit

(** The log of the current execution, in execution order. *)
val current_log : unit -> entry list

val pp_entry : Format.formatter -> entry -> unit
