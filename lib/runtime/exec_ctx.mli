(** Per-execution mutable context.

    The stateless model checker re-runs the program under test from scratch
    for every explored schedule. This module holds the little bits of global
    state that must be reset between executions: the shared-location id
    counter, the identity of the currently running thread (maintained by the
    scheduler; execution is cooperative and single-domain, so a plain mutable
    cell is sound), and the access log consumed by the comparison checkers of
    Section 5.6 (data-race detection, conflict-serializability). *)

type access_kind = Read | Write | Rmw

type entry =
  | Access of {
      tid : int;
      loc : int;
      loc_name : string;
      kind : access_kind;
      volatile : bool;
    }
  | Lock_acquire of { tid : int; lock : int; name : string }
  | Lock_release of { tid : int; lock : int; name : string }
  | Op_start of { tid : int; op_index : int }
  | Op_end of { tid : int; op_index : int }

(** [reset ()] clears all per-execution state. Called by the scheduler before
    each execution. *)
val reset : unit -> unit

(** Fresh shared-location id. Allocation order is deterministic across
    replayed executions, so ids are stable. *)
val fresh_loc : unit -> int

val set_current_tid : int -> unit
val current_tid : unit -> int

(** Access logging is off by default (exploration-speed); the comparison
    checkers enable it. *)
val set_logging : bool -> unit
val logging_enabled : unit -> bool

(** [with_logging enabled f] runs [f] with access logging set to [enabled]
    and restores the previous setting on return {e and} on exception
    ([Fun.protect]): an analysis that raises mid-exploration can never leak
    a logging-enabled (or -disabled) state into subsequent checks. The flag
    is domain-local, so the scope is the calling domain only — parallel
    partition workers each wrap their own exploration. *)
val with_logging : bool -> (unit -> 'a) -> 'a
val log : entry -> unit

(** The log of the current execution, in execution order. *)
val current_log : unit -> entry list

val pp_entry : Format.formatter -> entry -> unit
