type 'a t = {
  id : int;
  name : string;
  volatile : bool;
  mutable v : 'a;
  (* Pending buffered stores, for read forwarding under TSO/PSO:
     [tid -> (youngest buffered value by tid, number of pending stores by
     tid)]. Empty whenever the memory model is SC, so the SC read path is a
     single [[]] match away from the historical behaviour. *)
  mutable fwd : (int * ('a * int)) list;
}

let make ?(volatile = false) ?name init =
  let id = Exec_ctx.fresh_loc () in
  let name = match name with Some n -> n | None -> Fmt.str "loc%d" id in
  { id; name; volatile; v = init; fwd = [] }

let name x = x.name
let id x = x.id

let access x kind =
  Rt.sched (Rt.Access { loc = x.id; loc_name = x.name; kind; volatile = x.volatile })

(* The youngest value visible to the calling thread: its own buffered store
   if one is pending, the shared cell otherwise. *)
let visible x =
  match x.fwd with
  | [] -> x.v
  | fwd -> (
    match List.assoc_opt (Exec_ctx.current_tid ()) fwd with
    | Some (v, _) -> v
    | None -> x.v)

let read x =
  access x Exec_ctx.Read;
  visible x

let write x value =
  access x Exec_ctx.Write;
  match Exec_ctx.memory () with
  | Memory_model.Sc -> x.v <- value
  | Memory_model.Tso | Memory_model.Pso ->
    let tid = Exec_ctx.current_tid () in
    let pending =
      match List.assoc_opt tid x.fwd with Some (_, n) -> n | None -> 0
    in
    x.fwd <- (tid, (value, pending + 1)) :: List.remove_assoc tid x.fwd;
    Exec_ctx.buffer_push ~loc:x.id ~loc_name:x.name ~commit:(fun () ->
        x.v <- value;
        match List.assoc_opt tid x.fwd with
        | Some (_, 1) | None -> x.fwd <- List.remove_assoc tid x.fwd
        | Some (latest, n) ->
          x.fwd <- (tid, (latest, n - 1)) :: List.remove_assoc tid x.fwd)

(* Read-modify-writes act on the shared cell directly: the scheduler drains
   the calling thread's store buffers before letting an RMW scheduling point
   proceed under TSO/PSO, so at this point the thread has no pending store
   to forward from and the operation is globally atomic. *)

let cas x expected desired =
  access x Exec_ctx.Rmw;
  if x.v == expected then begin
    x.v <- desired;
    true
  end
  else false

let fetch_and_add x n =
  access x Exec_ctx.Rmw;
  let old = x.v in
  x.v <- old + n;
  old

let exchange x value =
  access x Exec_ctx.Rmw;
  let old = x.v in
  x.v <- value;
  old

let peek x = visible x
let poke x value = x.v <- value

let update x f =
  access x Exec_ctx.Rmw;
  let v = f x.v in
  x.v <- v;
  v
