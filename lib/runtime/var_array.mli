(** Arrays of instrumented shared cells with per-index locations.

    Each index owns its own {!Shared_var.t} — and therefore its own location
    id — allocated in index order at construction time. The partial-order
    reduction consequently sees accesses to distinct indices as
    non-conflicting (its footprints carry the per-index location), and under
    TSO/PSO each index is its own store-buffer location for PSO unit
    assignment and flush-choice footprints. A whole-array abstraction that
    registered a single location would instead serialize every pair of array
    accesses in the DPOR happens-before relation.

    Cell [i] of an array named [name] is the location named [name ^ string_of_int i],
    matching the naming convention the striped adapters already used, so race
    and flush reports are stable across the migration to this module. *)

type 'a t

(** [init ?volatile ~name n f] allocates [n] cells, cell [i] named
    [name ^ string_of_int i] and initialized to [f i]. Location ids are
    assigned in index order (deterministic across replays). *)
val init : ?volatile:bool -> name:string -> int -> (int -> 'a) -> 'a t

(** [make ?volatile ~name n v] = [init ?volatile ~name n (fun _ -> v)]. *)
val make : ?volatile:bool -> name:string -> int -> 'a -> 'a t

val length : 'a t -> int
val base_name : 'a t -> string

(** The underlying cell, for passing to code that works on a single
    {!Shared_var.t} (e.g. wake predicates, footprint declarations). *)
val cell : 'a t -> int -> 'a Shared_var.t

(** Instrumented per-index accessors; see {!Shared_var} for the scheduling,
    logging, and weak-memory semantics of each. *)

val read : 'a t -> int -> 'a
val write : 'a t -> int -> 'a -> unit
val cas : 'a t -> int -> 'a -> 'a -> bool
val exchange : 'a t -> int -> 'a -> 'a
val update : 'a t -> int -> ('a -> 'a) -> 'a
val peek : 'a t -> int -> 'a
val poke : 'a t -> int -> 'a -> unit
