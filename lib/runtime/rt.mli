(** The instrumented concurrency interface.

    Code under test is written against this module. Every shared-memory
    access and synchronization operation performs an effect, giving the
    scheduler (in [lineup_scheduler]) a point at which it may switch threads
    — exactly the instrumentation CHESS obtains by binary rewriting of .NET
    code. The effects are declared here; only the scheduler handles them.

    Scheduling-point discipline:
    - {!sched} with [Access _] precedes every shared read/write/RMW. The code
      between a scheduling point and the next one executes atomically.
    - {!sched} with [Boundary] is performed by the test harness before each
      operation call; in phase 1 (serial exploration) these are the only
      points where the scheduler switches threads.
    - {!sched} with [Return_boundary] is performed by the test harness just
      before recording an operation's return event. In concurrent mode it is
      a scheduling point like [Boundary] (CHESS schedules at the call/return
      markers themselves), which makes the event-emitting step visible to
      the partial-order reduction; in serial mode it is a no-op, so an
      operation runs atomically through its return and phase-1 histories
      stay serial.
    - {!sched} with [Fence] is a store-barrier point. Under the SC memory
      model it behaves like an ordinary [Boundary]; under TSO/PSO the
      scheduler holds the thread until its store buffers have drained (the
      flushes themselves are scheduler choices, so every drain interleaving
      is explored). {!Shared_var} read-modify-writes get the same draining
      treatment implicitly, which is what makes lock and condvar operations
      fencing.
    - {!block} suspends the thread until a wake predicate holds; blocked
      threads are disabled, not spinning, so deadlocks are detected exactly
      (Definition 2 of the paper needs this).
    - {!choose} is demonic choice, used to model timing-dependent outcomes
      such as lock-acquisition timeouts; the model checker explores every
      branch.
    - {!yield} marks a spin-loop iteration; the fair scheduler will not run
      the yielding thread again until another enabled thread has run (the
      fairness of Musuvathi & Qadeer 2008, which the paper relies on for
      spin-loop-based implementations). *)

type sched_reason =
  | Boundary
  | Return_boundary
  | Fence
  | Access of {
      loc : int;
      loc_name : string;
      kind : Exec_ctx.access_kind;
      volatile : bool;
    }

type _ Effect.t +=
  | Sched : sched_reason -> unit Effect.t
  | Block : (unit -> bool) * string * Footprint.t -> unit Effect.t
  | Choose : int * string -> int Effect.t
  | Yield : unit Effect.t

(** [sched r] performs a scheduling point and logs the access (if any). *)
val sched : sched_reason -> unit

(** [op_boundary ()] = [sched Boundary]. *)
val op_boundary : unit -> unit

(** [fence ()] = [sched Fence]: a full store barrier. A no-op under SC
    (beyond being a scheduling point); under TSO/PSO the calling thread does
    not proceed past it until every store it has buffered is globally
    visible. *)
val fence : unit -> unit

(** [block ?footprint ~wake what] suspends the calling thread until
    [wake ()] holds. If the predicate already holds, returns immediately
    (without a scheduling point). [wake] must be pure reads of shared state
    — it is evaluated by the scheduler and must not perform effects. [what]
    describes the awaited condition for reports.

    [footprint] describes the shared-state effect of the step the thread
    will execute once woken (e.g. re-checking and taking a lock is an [Rmw]
    of the lock's location); defaults to {!Footprint.unknown}, which the
    partial-order reduction treats as conflicting with everything. *)
val block : ?footprint:Footprint.t -> wake:(unit -> bool) -> string -> unit

(** [choose ?what n] demonically picks a value in [0 .. n-1]; the model
    checker explores all branches. *)
val choose : ?what:string -> int -> int

(** Spin-loop hint; see module description. *)
val yield : unit -> unit

(** Id of the currently running thread (0-based test-thread index). *)
val self : unit -> int

(** [run_inline f] evaluates [f ()] servicing its effects synchronously:
    scheduling points are no-ops, [choose] always returns 0, and a [block]
    whose predicate is false raises [Failure]. Used to run object
    construction and pre-test initialization code outside the explorer. *)
val run_inline : (unit -> 'a) -> 'a
