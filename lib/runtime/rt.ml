type sched_reason =
  | Boundary
  | Return_boundary
  | Fence
  | Access of {
      loc : int;
      loc_name : string;
      kind : Exec_ctx.access_kind;
      volatile : bool;
    }

type _ Effect.t +=
  | Sched : sched_reason -> unit Effect.t
  | Block : (unit -> bool) * string * Footprint.t -> unit Effect.t
  | Choose : int * string -> int Effect.t
  | Yield : unit Effect.t

let sched r =
  Effect.perform (Sched r);
  match r with
  | Boundary | Return_boundary -> ()
  | Fence ->
    if Exec_ctx.logging_enabled () then
      Exec_ctx.log (Exec_ctx.Fence { tid = Exec_ctx.current_tid () })
  | Access a ->
    if Exec_ctx.logging_enabled () then
      Exec_ctx.log
        (Exec_ctx.Access
           {
             tid = Exec_ctx.current_tid ();
             loc = a.loc;
             loc_name = a.loc_name;
             kind = a.kind;
             volatile = a.volatile;
           })

let op_boundary () = sched Boundary
let fence () = sched Fence
let block ?(footprint = Footprint.unknown) ~wake what =
  if not (wake ()) then Effect.perform (Block (wake, what, footprint))
let choose ?(what = "choice") n = Effect.perform (Choose (n, what))
let yield () = Effect.perform Yield
let self () = Exec_ctx.current_tid ()

let run_inline (type a) (f : unit -> a) : a =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun x -> x);
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Sched _ -> Some (fun (k : (b, a) continuation) -> continue k ())
          | Block (wake, what, _) ->
            Some
              (fun (k : (b, a) continuation) ->
                if wake () then continue k ()
                else failwith ("Rt.run_inline: blocked on " ^ what))
          | Choose (_, _) -> Some (fun (k : (b, a) continuation) -> continue k 0)
          | Yield -> Some (fun (k : (b, a) continuation) -> continue k ())
          | _ -> None);
    }
