type t = Sc | Tso | Pso

let to_string = function Sc -> "sc" | Tso -> "tso" | Pso -> "pso"

let of_string = function
  | "sc" -> Some Sc
  | "tso" -> Some Tso
  | "pso" -> Some Pso
  | _ -> None

let pp ppf m = Fmt.string ppf (to_string m)
