type t = {
  id : int;
  name : string;
  mutable generation : int;  (* bumped by pulse_all *)
  mutable tickets : int;  (* total single wake-ups issued *)
  mutable next_ticket : int;  (* next single wake-up ticket to hand out *)
}

let create ?name () =
  let id = Exec_ctx.fresh_loc () in
  let name = match name with Some n -> n | None -> Fmt.str "cond%d" id in
  { id; name; generation = 0; tickets = 0; next_ticket = 0 }

let sched cv =
  Rt.sched (Rt.Access { loc = cv.id; loc_name = cv.name; kind = Exec_ctx.Rmw; volatile = true })

let assert_held m =
  match m with
  | None -> ()
  | Some m ->
    (match Mutex_.holder m with
     | Some t when t = Rt.self () -> ()
     | Some _ | None ->
       invalid_arg (Fmt.str "Condvar: pulse on %s without holding the monitor" (Mutex_.name m)))

let wait cv m =
  sched cv;
  let my_generation = cv.generation in
  let my_ticket = cv.next_ticket in
  cv.next_ticket <- cv.next_ticket + 1;
  Mutex_.release m;
  (* The woken step only re-reads the wake bookkeeping before heading into
     [Mutex_.acquire], which declares its own scheduling point. *)
  Rt.block
    ~footprint:(Footprint.access ~loc:cv.id ~kind:Exec_ctx.Read)
    ~wake:(fun () -> cv.generation > my_generation || cv.tickets > my_ticket)
    ("condvar " ^ cv.name);
  Mutex_.acquire m

let pulse_all ?m cv =
  assert_held m;
  sched cv;
  cv.generation <- cv.generation + 1;
  (* a broadcast also voids outstanding single-wake bookkeeping *)
  cv.tickets <- cv.next_ticket

let pulse ?m cv =
  assert_held m;
  sched cv;
  if cv.tickets < cv.next_ticket then cv.tickets <- cv.tickets + 1
