(** Memory models the runtime can simulate.

    - [Sc]: sequential consistency. Every {!Shared_var.write} takes effect
      immediately; the runtime behaves exactly as it did before store buffers
      existed (no buffering code runs on any hot path).
    - [Tso]: total store order (x86-like). Each thread owns one FIFO store
      buffer; writes enqueue, and commit to shared memory only at
      nondeterministic flush points chosen by the scheduler. Reads forward
      from the thread's own buffer (youngest pending write to the location)
      before falling back to memory. Program order between stores is
      preserved globally.
    - [Pso]: partial store order (SPARC PSO-like). Like [Tso] but each
      (thread, location) pair gets its own FIFO buffer, so two stores by one
      thread to different locations may commit in either order.

    Atomic read-modify-writes ({!Shared_var.cas}, [fetch_and_add],
    [exchange], [update] — and the lock/condvar operations built on them)
    and explicit {!Rt.fence} drain the executing thread's buffers before
    proceeding, under both weak models. *)

type t = Sc | Tso | Pso

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
