(** First-class access footprints for scheduling steps.

    A {e step} is everything a thread executes between two scheduling
    points. Because every modeled shared access performs its scheduling
    effect {e before} touching shared state, a suspended thread's next step
    has a statically known footprint: the access it is suspended at (plus
    only thread-local work up to its next suspension). The explorer's
    partial-order reduction uses these footprints to decide which pending
    steps commute; they are also the declared hook point for relaxed-memory
    exploration (ROADMAP item 4), where store-buffer flush steps will carry
    their own footprints.

    Conservatism contract: when a step's effect on shared state cannot be
    described precisely, it must be classified {!Unknown} — [Unknown]
    conflicts with everything except {!Pure}, so imprecision can only cost
    reduction, never soundness. *)

type t =
  | Pure  (** touches no modeled shared state (e.g. a spin-loop body) *)
  | Access of { loc : int; kind : Exec_ctx.access_kind }
      (** exactly one access to shared location [loc]; lock operations are
          [Rmw] accesses to the lock's location *)
  | Event
      (** emits operation call/return events into the history log; event
          order {e is} the history, so two [Event] steps never commute *)
  | Unknown  (** conservatively conflicts with every non-[Pure] step *)

val pure : t
val access : loc:int -> kind:Exec_ctx.access_kind -> t
val event : t
val unknown : t

(** [conflicts a b] — the steps do {e not} commute: executing them in either
    order may lead to different states or different histories. Symmetric.
    [Pure] conflicts with nothing; [Unknown] with everything non-[Pure];
    [Event] with [Event]; two [Access]es iff they touch the same location
    and at least one writes. *)
val conflicts : t -> t -> bool

val pp : Format.formatter -> t -> unit
