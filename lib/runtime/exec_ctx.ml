type access_kind = Read | Write | Rmw

type entry =
  | Access of {
      tid : int;
      loc : int;
      loc_name : string;
      kind : access_kind;
      volatile : bool;
    }
  | Lock_acquire of { tid : int; lock : int; name : string }
  | Lock_release of { tid : int; lock : int; name : string }
  | Op_start of { tid : int; op_index : int }
  | Op_end of { tid : int; op_index : int }

(* All per-execution state is domain-local so that independent explorations
   (e.g. Random_check.run_parallel, §4.3: random sampling "is embarrassingly
   parallel") can run on separate domains without interference. *)
type state = {
  mutable next_loc : int;
  mutable tid : int;
  mutable logging : bool;
  mutable log_entries : entry list;
}

let key =
  Domain.DLS.new_key (fun () ->
      { next_loc = 0; tid = -1; logging = false; log_entries = [] })

let state () = Domain.DLS.get key

let reset () =
  let s = state () in
  s.next_loc <- 0;
  s.tid <- -1;
  s.log_entries <- []

let fresh_loc () =
  let s = state () in
  let id = s.next_loc in
  s.next_loc <- id + 1;
  id

let set_current_tid t = (state ()).tid <- t
let current_tid () = (state ()).tid
let set_logging b = (state ()).logging <- b
let logging_enabled () = (state ()).logging

let with_logging enabled f =
  let s = state () in
  let saved = s.logging in
  s.logging <- enabled;
  Fun.protect ~finally:(fun () -> (state ()).logging <- saved) f

let log e =
  let s = state () in
  if s.logging then s.log_entries <- e :: s.log_entries

let current_log () = List.rev (state ()).log_entries

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Rmw -> Fmt.string ppf "rmw"

let pp_entry ppf = function
  | Access a ->
    Fmt.pf ppf "T%d %a%s %s" a.tid pp_kind a.kind
      (if a.volatile then " (volatile)" else "")
      a.loc_name
  | Lock_acquire l -> Fmt.pf ppf "T%d acquire %s" l.tid l.name
  | Lock_release l -> Fmt.pf ppf "T%d release %s" l.tid l.name
  | Op_start o -> Fmt.pf ppf "T%d op-start #%d" o.tid o.op_index
  | Op_end o -> Fmt.pf ppf "T%d op-end #%d" o.tid o.op_index
