type access_kind = Read | Write | Rmw

type entry =
  | Access of {
      tid : int;
      loc : int;
      loc_name : string;
      kind : access_kind;
      volatile : bool;
    }
  | Lock_acquire of { tid : int; lock : int; name : string }
  | Lock_release of { tid : int; lock : int; name : string }
  | Op_start of { tid : int; op_index : int }
  | Op_end of { tid : int; op_index : int }
  | Fence of { tid : int }

(* Store-buffer state for the weak memory models (Memory_model.Tso/Pso).
   A "flush unit" is one FIFO buffer the scheduler can flush from: under TSO
   each thread owns exactly one, under PSO each (thread, location) pair gets
   its own. Units are registered on first use, so their indices are
   deterministic across replays of the same decision prefix. *)
type buf_entry = { be_loc : int; be_loc_name : string; be_commit : unit -> unit }

type flush_unit = {
  fu_owner : int;
  fu_key : int; (* -1 under TSO; the location id under PSO *)
  fu_q : buf_entry Queue.t;
}

(* All per-execution state is domain-local so that independent explorations
   (e.g. Random_check.run_parallel, §4.3: random sampling "is embarrassingly
   parallel") can run on separate domains without interference. *)
type state = {
  mutable next_loc : int;
  mutable tid : int;
  mutable logging : bool;
  mutable log_entries : entry list;
  mutable memory : Memory_model.t;
  mutable units : flush_unit array;
  mutable n_units : int;
}

let key =
  Domain.DLS.new_key (fun () ->
      {
        next_loc = 0;
        tid = -1;
        logging = false;
        log_entries = [];
        memory = Memory_model.Sc;
        units = [||];
        n_units = 0;
      })

let state () = Domain.DLS.get key

let reset () =
  let s = state () in
  s.next_loc <- 0;
  s.tid <- -1;
  s.log_entries <- [];
  s.units <- [||];
  s.n_units <- 0

let fresh_loc () =
  let s = state () in
  let id = s.next_loc in
  s.next_loc <- id + 1;
  id

let set_current_tid t = (state ()).tid <- t
let current_tid () = (state ()).tid

let set_memory m =
  let s = state () in
  s.memory <- m;
  s.units <- [||];
  s.n_units <- 0

let memory () = (state ()).memory

let buffer_push ~loc ~loc_name ~commit =
  let s = state () in
  let tid = s.tid in
  let key = match s.memory with Memory_model.Pso -> loc | _ -> -1 in
  let rec find i =
    if i >= s.n_units then None
    else
      let u = s.units.(i) in
      if u.fu_owner = tid && u.fu_key = key then Some u else find (i + 1)
  in
  let u =
    match find 0 with
    | Some u -> u
    | None ->
      let u = { fu_owner = tid; fu_key = key; fu_q = Queue.create () } in
      if s.n_units = Array.length s.units then begin
        let bigger = Array.make (max 4 (2 * s.n_units)) u in
        Array.blit s.units 0 bigger 0 s.n_units;
        s.units <- bigger
      end;
      s.units.(s.n_units) <- u;
      s.n_units <- s.n_units + 1;
      u
  in
  Queue.push { be_loc = loc; be_loc_name = loc_name; be_commit = commit } u.fu_q

let flush_unit_count () = (state ()).n_units

let flush_unit_owner u =
  let s = state () in
  if u < 0 || u >= s.n_units then invalid_arg "Exec_ctx.flush_unit_owner";
  s.units.(u).fu_owner

let flush_unit_pending u =
  let s = state () in
  if u < 0 || u >= s.n_units then invalid_arg "Exec_ctx.flush_unit_pending";
  match Queue.peek_opt s.units.(u).fu_q with
  | None -> None
  | Some e -> Some (e.be_loc, e.be_loc_name)

let flush_one u =
  let s = state () in
  if u < 0 || u >= s.n_units then invalid_arg "Exec_ctx.flush_one";
  match Queue.take_opt s.units.(u).fu_q with
  | None -> invalid_arg "Exec_ctx.flush_one: empty unit"
  | Some e -> e.be_commit ()

let buffer_empty tid =
  let s = state () in
  let rec go i =
    i >= s.n_units
    || ((s.units.(i).fu_owner <> tid || Queue.is_empty s.units.(i).fu_q) && go (i + 1))
  in
  go 0

let buffers_all_empty () =
  let s = state () in
  let rec go i = i >= s.n_units || (Queue.is_empty s.units.(i).fu_q && go (i + 1)) in
  go 0
let set_logging b = (state ()).logging <- b
let logging_enabled () = (state ()).logging

let with_logging enabled f =
  let s = state () in
  let saved = s.logging in
  s.logging <- enabled;
  Fun.protect ~finally:(fun () -> (state ()).logging <- saved) f

let log e =
  let s = state () in
  if s.logging then s.log_entries <- e :: s.log_entries

let current_log () = List.rev (state ()).log_entries

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Rmw -> Fmt.string ppf "rmw"

let pp_entry ppf = function
  | Access a ->
    Fmt.pf ppf "T%d %a%s %s" a.tid pp_kind a.kind
      (if a.volatile then " (volatile)" else "")
      a.loc_name
  | Lock_acquire l -> Fmt.pf ppf "T%d acquire %s" l.tid l.name
  | Lock_release l -> Fmt.pf ppf "T%d release %s" l.tid l.name
  | Op_start o -> Fmt.pf ppf "T%d op-start #%d" o.tid o.op_index
  | Op_end o -> Fmt.pf ppf "T%d op-end #%d" o.tid o.op_index
  | Fence f -> Fmt.pf ppf "T%d fence" f.tid
