(** Instrumented shared memory cells.

    Each read, write, or read-modify-write performs a scheduling point and is
    logged for the comparison checkers. The code between the scheduling point
    and the access runs atomically (cooperative scheduling), so {!cas} and
    {!fetch_and_add} are atomic read-modify-writes — they model the
    [Interlocked] operations of .NET.

    [volatile] marks cells whose accesses establish happens-before edges in
    the race detector (the disciplined-volatile pattern the paper observed in
    the .NET implementations, Section 5.6). It does not change scheduling.

    Under the weak memory models ({!Memory_model.Tso}/[Pso], selected with
    [--memory]) a {!write} does not take effect immediately: it enters the
    calling thread's store buffer and commits to the shared cell only at a
    scheduler-chosen flush point. {!read} and {!peek} forward from the
    calling thread's own buffer (its youngest pending store to this cell)
    before falling back to shared memory, so a thread always sees its own
    program order. The read-modify-writes drain the calling thread's buffers
    first (the scheduler enforces this at their scheduling point) and then
    act on shared memory atomically. Under SC none of this machinery is
    active and behaviour is exactly as before. *)

type 'a t

val make : ?volatile:bool -> ?name:string -> 'a -> 'a t
val name : 'a t -> string
val id : 'a t -> int

val read : 'a t -> 'a
val write : 'a t -> 'a -> unit

(** [cas v expected desired] atomically: if the current value is physically
    equal to [expected], store [desired] and return [true]; else return
    [false]. Physical equality matches hardware CAS on pointers and unboxed
    integers. *)
val cas : 'a t -> 'a -> 'a -> bool

(** Atomic fetch-and-add; returns the previous value. *)
val fetch_and_add : int t -> int -> int

(** Atomic exchange; returns the previous value. *)
val exchange : 'a t -> 'a -> 'a

(** [peek v] reads without a scheduling point or logging. For use inside
    {!Rt.block} wake predicates and assertions only.

    Weak-memory contract: [peek] sees exactly what {!read} would return for
    the thread on whose behalf it is evaluated — it forwards from that
    thread's own store buffer before consulting shared memory. The scheduler
    evaluates wake predicates with {!Exec_ctx.current_tid} set to the blocked
    thread, so a predicate like [fun () -> peek flag] observes the blocked
    thread's view, never another thread's un-flushed stores. *)
val peek : 'a t -> 'a

(** [poke v x] writes without a scheduling point or logging. For use in
    object constructors and test setup only.

    Weak-memory contract: [poke] stores straight to shared memory, bypassing
    store buffers. That is sound only where no buffering can be active —
    constructors and setup run inline ({!Rt.run_inline}) before the scheduler
    enables a weak model — which is why its use is restricted to those
    contexts. Calling [poke] from scheduled code under TSO/PSO would leak a
    store past the thread's earlier buffered writes. *)
val poke : 'a t -> 'a -> unit

(** [update v f] atomically replaces the contents with [f (read v)] — a
    single scheduling point, like a successful CAS loop collapsed. *)
val update : 'a t -> ('a -> 'a) -> 'a
