type 'a t = { base : string; cells : 'a Shared_var.t array }

let init ?(volatile = false) ~name n f =
  {
    base = name;
    cells =
      Array.init n (fun i ->
          Shared_var.make ~volatile ~name:(Fmt.str "%s%d" name i) (f i));
  }

let make ?volatile ~name n v = init ?volatile ~name n (fun _ -> v)
let length a = Array.length a.cells
let base_name a = a.base
let cell a i = a.cells.(i)
let read a i = Shared_var.read a.cells.(i)
let write a i v = Shared_var.write a.cells.(i) v
let cas a i expected desired = Shared_var.cas a.cells.(i) expected desired
let exchange a i v = Shared_var.exchange a.cells.(i) v
let update a i f = Shared_var.update a.cells.(i) f
let peek a i = Shared_var.peek a.cells.(i)
let poke a i v = Shared_var.poke a.cells.(i) v
