type t =
  | Pure
  | Access of { loc : int; kind : Exec_ctx.access_kind }
  | Event
  | Unknown

let pure = Pure
let access ~loc ~kind = Access { loc; kind }
let event = Event
let unknown = Unknown

let writes = function Exec_ctx.Read -> false | Exec_ctx.Write | Exec_ctx.Rmw -> true

let conflicts a b =
  match a, b with
  | Pure, _ | _, Pure -> false
  | Unknown, _ | _, Unknown -> true
  | Event, Event -> true
  | Event, Access _ | Access _, Event -> false
  | Access x, Access y -> x.loc = y.loc && (writes x.kind || writes y.kind)

let pp ppf = function
  | Pure -> Fmt.string ppf "pure"
  | Access { loc; kind } ->
    Fmt.pf ppf "%s loc%d"
      (match kind with Exec_ctx.Read -> "read" | Exec_ctx.Write -> "write" | Exec_ctx.Rmw -> "rmw")
      loc
  | Event -> Fmt.string ppf "event"
  | Unknown -> Fmt.string ppf "unknown"
