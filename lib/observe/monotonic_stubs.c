/* clock_gettime(CLOCK_MONOTONIC) as an OCaml float, so durations are
   immune to NTP slews/steps of the wall clock. POSIX-only by design: the
   project targets Linux/macOS CI; both have had CLOCK_MONOTONIC for over a
   decade. */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value lineup_monotonic_now(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  CAMLreturn(caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec / 1e9));
}
