(* Atomic whole-file writes: the bytes land in a same-directory temporary
   file which is then renamed over the destination. [Sys.rename] is atomic
   on POSIX, so a concurrent reader — or a reader after the writer was
   killed mid-write — sees either the previous complete file or the new
   complete file, never a truncated prefix. The pid in the temporary name
   keeps concurrent writers from clobbering each other's staging file. *)

let write ~path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (match
     output_string oc contents;
     close_out oc
   with
   | () -> ()
   | exception e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
