(** A monotonic clock for durations.

    [Unix.gettimeofday] is wall-clock time: it jumps when NTP slews or
    steps the system clock, so phase timings and trace [dt] fields derived
    from it can come out negative or wildly inflated. Everything in the
    checker that measures a {e duration} goes through this module instead,
    which reads [clock_gettime(CLOCK_MONOTONIC)] via a tiny C stub (no
    external dependency; the [mtime] package is deliberately not required).

    The absolute value is meaningless (seconds since an arbitrary epoch,
    typically boot); only differences are. Wall-clock timestamps that are
    meant to be correlated with the outside world should still use
    [Unix.gettimeofday]. *)

val now : unit -> float
(** Seconds since an arbitrary fixed epoch; strictly unaffected by system
    clock adjustments. Differences of two [now] values are elapsed seconds. *)

val elapsed_since : float -> float
(** [elapsed_since t0] = [now () -. t0]. *)
