external now : unit -> float = "lineup_monotonic_now"

let elapsed_since t0 = now () -. t0
