(** A minimal JSON parser for the NDJSON streams this repository itself
    produces and consumes — one line of a {!Trace} file, one metrics
    summary, one bench row.

    It accepts standard JSON (objects, arrays, strings with the usual
    escapes including [\uXXXX], numbers, booleans, [null]); numbers are
    represented as [float], the only number type JSON has. The parser is a
    total function: malformed input is an [Error], never an exception.

    It lives in [lib/observe], below every other library, so the streaming
    monitor, the test suite and the bench harness can share one reader
    without an external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** [parse s] parses exactly one JSON document spanning the whole string
    (leading/trailing whitespace allowed). The error message carries the
    byte offset of the failure. *)

val member : string -> t -> t option
(** [member k v] is field [k] of object [v]; [None] when [v] is not an
    object or has no such field. *)

val to_int : t -> int option
(** [Some n] iff the value is a number holding an exact integer. *)

val to_str : t -> string option
(** [Some s] iff the value is a string. *)
