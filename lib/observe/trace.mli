(** Opt-in NDJSON event tracing.

    When enabled ({!enable}), every {!emit} appends one JSON object per
    line to the trace file:

    {v {"t":0.001234,"ev":"pool.job_done","index":3,"domain":1,"kept":true} v}

    [t] is seconds since {!enable}; [ev] names the event; the remaining
    fields are event-specific (see the schema table in README.md).

    Unlike the {!Metrics} summary, the trace is {e explicitly
    non-deterministic}: events carry wall-clock timestamps and interleave in
    completion order, so two runs — or the same run at different [-j]
    values — produce different streams. It is the raw material for latency
    and queue-depth analysis, not for byte-identity checks.

    The sink is global and mutex-protected, so emitting from worker domains
    is safe. When disabled (the default), {!emit} is a single atomic load —
    cheap enough to leave call sites unconditioned on hot-ish paths (one
    event per execution, not per step). *)

type field =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val enabled : unit -> bool

val enable : path:string -> unit
(** Open (truncate) [path] and start the clock. Replaces any previous
    sink (closing it). The first call installs an [at_exit] hook that
    closes the sink, so orderly-but-abnormal exits (uncaught exception,
    [exit] from a worker process) never lose buffered events. *)

val close : unit -> unit
(** Flush and close the sink; subsequent {!emit}s are no-ops. Idempotent.
    Call only after worker domains have been joined — an emit racing a
    close may be dropped. *)

val emit : string -> (string * field) list -> unit
(** [emit ev fields] — append one event line; no-op when disabled. The
    line is flushed before [emit] returns: a process killed mid-run
    leaves a trace file that parses line-by-line, missing at most the
    event being written at the instant of the kill. [Float] fields render
    with six decimal places; non-finite floats (nan, ±inf) render as
    [null] so every emitted line is valid JSON. *)

val with_trace : path:string option -> (unit -> 'a) -> 'a
(** [with_trace ~path f] runs [f] with tracing enabled when [path] is
    [Some] (closing the sink afterwards, even on exceptions); with [None]
    it is just [f ()]. *)
