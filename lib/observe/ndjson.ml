(* A minimal recursive-descent JSON parser for the NDJSON streams this
   repository itself produces (the Trace sink, the metrics summary, the
   bench results) — one line, one document. Kept dependency-free on
   purpose: lib/observe sits below every other library, so the streaming
   monitor, the tests and the bench can all share the same reader without
   pulling a JSON package into the build. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string * int

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "bad literal (expected %s)" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents b
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; incr pos
           | '\\' -> Buffer.add_char b '\\'; incr pos
           | '/' -> Buffer.add_char b '/'; incr pos
           | 'b' -> Buffer.add_char b '\b'; incr pos
           | 'f' -> Buffer.add_char b '\012'; incr pos
           | 'n' -> Buffer.add_char b '\n'; incr pos
           | 'r' -> Buffer.add_char b '\r'; incr pos
           | 't' -> Buffer.add_char b '\t'; incr pos
           | 'u' ->
             incr pos;
             if !pos + 4 > n then fail "truncated \\u escape";
             (match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
              | None -> fail "bad \\u escape"
              | Some cp ->
                pos := !pos + 4;
                utf8_add b cp)
           | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ ->
      let start = !pos in
      if peek () = Some '-' then incr pos;
      let is_num c =
        (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-'
      in
      while !pos < n && is_num s.[!pos] do
        incr pos
      done;
      if !pos = start then fail "unexpected character";
      (match float_of_string_opt (String.sub s start (!pos - start)) with
       | Some f -> Num f
       | None -> fail "malformed number")
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Fail (msg, p) -> Error (Printf.sprintf "%s at offset %d" msg p)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

(* JSON has one number type; an "integer" is a [Num] with an integral value
   small enough for an OCaml int to hold exactly. *)
let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2. ** 53. -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
