(** Atomic whole-file writes (tmp + rename).

    Shared by every file this stack publishes for other processes to read
    — the {!Metrics} summary, the shard checkpoints — so that a process
    killed mid-write can never leave a truncated document behind. *)

val write : path:string -> string -> unit
(** [write ~path contents] writes [contents] to [path] atomically: the
    bytes are staged in [path.tmp.<pid>] (same directory, so the rename
    cannot cross filesystems) and renamed into place. Readers observe
    either the old complete file or the new one. On failure the staging
    file is removed and the destination is untouched. *)
