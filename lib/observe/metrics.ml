type t = (string, int) Hashtbl.t

let create () : t = Hashtbl.create 64

let add (t : t) key n =
  match Hashtbl.find_opt t key with
  | Some v -> Hashtbl.replace t key (v + n)
  | None -> Hashtbl.replace t key n

let incr t key = add t key 1
let get (t : t) key = Option.value ~default:0 (Hashtbl.find_opt t key)

let merge_into ~into (t : t) = Hashtbl.iter (fun k v -> add into k v) t

let to_assoc (t : t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)

(* Counter keys are dotted identifiers ([a-z0-9._-]); escaping covers the
   general case anyway so a stray key can never corrupt the document. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"lineup-metrics/1\",\n  \"counters\": {";
  let counters = to_assoc t in
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n    %s: %d" (json_string k) v))
    counters;
  if counters <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "}\n}\n";
  Buffer.contents buf

let write_file t ~path = Atomic_file.write ~path (to_json t)
