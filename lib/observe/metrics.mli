(** Cheap, deterministic counters for the whole checker stack.

    A {!t} is a registry of named monotone integer counters. Counters are
    plain OCaml increments performed {e outside} the modeled runtime: they
    never execute an effect, never introduce a scheduling point, and never
    read the clock — so collecting them cannot perturb schedule enumeration
    (see DESIGN.md, "Observability").

    Determinism contract: a [t] holds only order-insensitive data (sums of
    ints over a deterministic job set), and {!to_json} renders it with
    sorted keys and a fixed format. Consequently merging the per-job
    registries of a parallel run in submission order — or any order —
    produces byte-identical output for every [-j] value. Wall-clock
    timings are deliberately excluded; they live in the {!Trace} stream,
    which is explicitly non-deterministic.

    A [t] is {e not} thread-safe: use one registry per domain (the parallel
    entry points create one per job) and {!merge_into} them on the calling
    domain. *)

type t

val create : unit -> t
(** An empty registry. *)

val add : t -> string -> int -> unit
(** [add t key n] adds [n] to counter [key], creating it (even for [n = 0]
    — registering a key with [add t key 0] pins it into the output schema
    regardless of whether it ever fires). *)

val incr : t -> string -> unit
(** [incr t key] = [add t key 1]. *)

val get : t -> string -> int
(** Current value; [0] for an unregistered key. *)

val merge_into : into:t -> t -> unit
(** Pointwise addition of every counter of the second registry into
    [into]. Addition commutes, so any merge order yields the same totals. *)

val to_assoc : t -> (string * int) list
(** All counters, sorted by key. *)

val to_json : t -> string
(** The metrics summary as a stable JSON document:
    [{"schema": "lineup-metrics/1", "counters": { ... sorted keys ... }}].
    Byte-identical for equal counter contents. *)

val write_file : t -> path:string -> unit
(** Write {!to_json} to [path] atomically (staged in a sibling temporary
    file, then renamed — see {!Atomic_file}). A process killed mid-write
    leaves either the previous complete summary or none, never a
    truncated JSON document. *)

(**/**)

val json_string : string -> string
(** JSON string literal with escaping — shared with {!Trace}. *)
