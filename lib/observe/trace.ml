type field =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type sink = { oc : out_channel; mutex : Mutex.t; t0 : float }

let state : sink option Atomic.t = Atomic.make None

let enabled () = Option.is_some (Atomic.get state)

let close () =
  match Atomic.get state with
  | None -> ()
  | Some s ->
    Atomic.set state None;
    Mutex.lock s.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) (fun () -> close_out s.oc)

let enable ~path =
  close ();
  let oc = open_out path in
  Atomic.set state (Some { oc; mutex = Mutex.create (); t0 = Monotonic.now () })

let add_field buf (k, v) =
  Buffer.add_char buf ',';
  Buffer.add_string buf (Metrics.json_string k);
  Buffer.add_char buf ':';
  match v with
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6f" f)
  | Str s -> Buffer.add_string buf (Metrics.json_string s)
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let emit ev fields =
  match Atomic.get state with
  | None -> ()
  | Some s ->
    let t = Monotonic.elapsed_since s.t0 in
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Printf.sprintf "{\"t\":%.6f,\"ev\":" t);
    Buffer.add_string buf (Metrics.json_string ev);
    List.iter (add_field buf) fields;
    Buffer.add_string buf "}\n";
    Mutex.lock s.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.mutex)
      (fun () ->
        (* The sink may have been closed (or replaced) between the load and
           the lock; dropping the event is the documented behavior. *)
        match Atomic.get state with
        | Some s' when s' == s -> output_string s.oc (Buffer.contents buf)
        | Some _ | None -> ())

let with_trace ~path f =
  match path with
  | None -> f ()
  | Some path ->
    enable ~path;
    Fun.protect ~finally:close f
