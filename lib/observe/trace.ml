type field =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type sink = { oc : out_channel; mutex : Mutex.t; t0 : float }

let state : sink option Atomic.t = Atomic.make None

let enabled () = Option.is_some (Atomic.get state)

let close () =
  match Atomic.get state with
  | None -> ()
  | Some s ->
    Atomic.set state None;
    Mutex.lock s.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) (fun () -> close_out s.oc)

(* Registered once, lazily: abnormal-but-orderly exits (uncaught exception,
   [exit] from a worker process) flush and close the sink even when the
   [with_trace] wrapper is not on the stack. [close] is idempotent, so the
   hook composes with an explicit close. *)
let exit_hook_installed = ref false

let enable ~path =
  close ();
  if not !exit_hook_installed then begin
    exit_hook_installed := true;
    at_exit close
  end;
  let oc = open_out path in
  Atomic.set state (Some { oc; mutex = Mutex.create (); t0 = Monotonic.now () })

(* JSON has no literal for nan/inf; "%.6f" would render them as bare words
   ("nan", "inf") and corrupt the NDJSON stream for every downstream
   parser. A non-finite measurement carries no usable magnitude anyway, so
   it degrades to [null] and the line stays machine-readable. *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let add_field buf (k, v) =
  Buffer.add_char buf ',';
  Buffer.add_string buf (Metrics.json_string k);
  Buffer.add_char buf ':';
  match v with
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (json_float f)
  | Str s -> Buffer.add_string buf (Metrics.json_string s)
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let emit ev fields =
  match Atomic.get state with
  | None -> ()
  | Some s ->
    let t = Monotonic.elapsed_since s.t0 in
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Printf.sprintf "{\"t\":%.6f,\"ev\":" t);
    Buffer.add_string buf (Metrics.json_string ev);
    List.iter (add_field buf) fields;
    Buffer.add_string buf "}\n";
    Mutex.lock s.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.mutex)
      (fun () ->
        (* The sink may have been closed (or replaced) between the load and
           the lock; dropping the event is the documented behavior. *)
        match Atomic.get state with
        | Some s' when s' == s ->
          output_string s.oc (Buffer.contents buf);
          (* Flush per event: the stream is a crash-forensics channel, so a
             killed process must leave every completed event on disk as a
             complete, parseable line — only the event being written at the
             instant of the kill may be lost. *)
          flush s.oc
        | Some _ | None -> ())

let with_trace ~path f =
  match path with
  | None -> f ()
  | Some path ->
    enable ~path;
    Fun.protect ~finally:close f
