module Exec_ctx = Lineup_runtime.Exec_ctx
module Explore = Lineup_scheduler.Explore
module Analyzer = Lineup.Analyzer
module Pipeline = Lineup.Pipeline

type race = {
  loc_name : string;
  first : int * Exec_ctx.access_kind;
  second : int * Exec_ctx.access_kind;
}

let pp_kind ppf = function
  | Exec_ctx.Read -> Fmt.string ppf "read"
  | Exec_ctx.Write -> Fmt.string ppf "write"
  | Exec_ctx.Rmw -> Fmt.string ppf "rmw"

let pp_race ppf r =
  let t1, k1 = r.first and t2, k2 = r.second in
  Fmt.pf ppf "race on %s: T%d %a / T%d %a" r.loc_name t1 pp_kind k1 t2 pp_kind k2

let is_write = function Exec_ctx.Write | Exec_ctx.Rmw -> true | Exec_ctx.Read -> false

(* The canonical orientation of a race: lower thread id first. The same
   unordered conflict can be discovered in either order depending on which
   access the log replays first — canonicalizing the record (not just the
   key) makes dedup, merge and render agree on one representative no matter
   the discovery order. *)
let canonical r =
  let t1, _ = r.first and t2, _ = r.second in
  if t1 <= t2 then r else { r with first = r.second; second = r.first }

(* The canonical identity of a race — (location, oriented thread pair with
   their access kinds). Used for the per-execution dedup, the
   cross-execution dedup and the render order, so the three can never
   disagree (two threads racing on the same location with different access
   kinds are distinct findings). *)
let race_key r =
  let c = canonical r in
  let t1, k1 = c.first and t2, k2 = c.second in
  (c.loc_name, t1, k1, t2, k2)

type prior_access = {
  a_tid : int;
  a_clock : int;
  a_kind : Exec_ctx.access_kind;
}

let analyze ~threads log =
  let vc = Array.init threads (fun _ -> Vector_clock.make ~threads) in
  Array.iteri (fun i v -> Vector_clock.tick v i) vc;
  let lock_vc : (int, Vector_clock.t) Hashtbl.t = Hashtbl.create 16 in
  let vol_vc : (int, Vector_clock.t) Hashtbl.t = Hashtbl.create 16 in
  (* per plain location: all prior accesses with their clocks *)
  let accesses : (int, (string * prior_access list) ref) Hashtbl.t = Hashtbl.create 64 in
  let races = ref [] in
  let handle_plain tid loc loc_name kind =
    let slot =
      match Hashtbl.find_opt accesses loc with
      | Some s -> s
      | None ->
        let s = ref (loc_name, []) in
        Hashtbl.replace accesses loc s;
        s
    in
    let _, prior = !slot in
    List.iter
      (fun p ->
        if
          p.a_tid <> tid
          && (is_write p.a_kind || is_write kind)
          && not (Vector_clock.happens_before ~clock:p.a_clock ~tid:p.a_tid vc.(tid))
        then
          races := { loc_name; first = p.a_tid, p.a_kind; second = tid, kind } :: !races)
      prior;
    let mine = { a_tid = tid; a_clock = Vector_clock.get vc.(tid) tid; a_kind = kind } in
    slot := loc_name, mine :: prior;
    Vector_clock.tick vc.(tid) tid
  in
  let acquire_from table tid key =
    match Hashtbl.find_opt table key with
    | Some v -> Vector_clock.join vc.(tid) v
    | None -> ()
  in
  let release_to table tid key =
    (match Hashtbl.find_opt table key with
     | Some v -> Vector_clock.join v vc.(tid)
     | None -> Hashtbl.replace table key (Vector_clock.copy vc.(tid)));
    Vector_clock.tick vc.(tid) tid
  in
  List.iter
    (fun (entry : Exec_ctx.entry) ->
      match entry with
      | Exec_ctx.Access a when a.volatile ->
        (* volatile read = acquire; volatile write = release; rmw = both *)
        (match a.kind with
         | Exec_ctx.Read -> acquire_from vol_vc a.tid a.loc
         | Exec_ctx.Write -> release_to vol_vc a.tid a.loc
         | Exec_ctx.Rmw ->
           acquire_from vol_vc a.tid a.loc;
           release_to vol_vc a.tid a.loc)
      | Exec_ctx.Access a -> handle_plain a.tid a.loc a.loc_name a.kind
      | Exec_ctx.Lock_acquire l -> acquire_from lock_vc l.tid l.lock
      | Exec_ctx.Lock_release l -> release_to lock_vc l.tid l.lock
      (* a fence orders the issuing thread's own stores; it pairs with no
         other thread, so it adds no happens-before edge *)
      | Exec_ctx.Fence _ | Exec_ctx.Op_start _ | Exec_ctx.Op_end _ -> ())
    log;
  (* deduplicate by the canonical key *)
  let seen = Hashtbl.create 16 in
  List.rev !races
  |> List.filter (fun r ->
         let key = race_key r in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.replace seen key ();
           true
         end)

(* ------------------------------------------------------------------ *)
(* The analyzer                                                        *)
(* ------------------------------------------------------------------ *)

type state = {
  mutable executions : int;
  found :
    ( string * int * Exec_ctx.access_kind * int * Exec_ctx.access_kind,
      race )
    Hashtbl.t;
}

let sorted_races st =
  Hashtbl.fold (fun _ r acc -> r :: acc) st.found []
  |> List.sort (fun r1 r2 -> compare (race_key r1) (race_key r2))

let make_analyzer ~threads =
  let sid = Stdlib.Type.Id.make () in
  let module A = struct
    type nonrec state = state

    let id = sid
    let name = "races"
    let needs_log = true
    let init () = { executions = 0; found = Hashtbl.create 16 }

    let step st (r : Lineup.Harness.run_result) =
      st.executions <- st.executions + 1;
      List.iter
        (fun race ->
          let key = race_key race in
          if not (Hashtbl.mem st.found key) then Hashtbl.replace st.found key (canonical race))
        (analyze ~threads r.Lineup.Harness.log);
      `Continue

    let merge a b =
      let out = { executions = a.executions + b.executions; found = Hashtbl.copy a.found } in
      Hashtbl.iter
        (fun key race ->
          if not (Hashtbl.mem out.found key) then Hashtbl.replace out.found key race)
        b.found;
      out

    let metrics st = [ "executions", st.executions; "races", Hashtbl.length st.found ]

    let render st =
      let races = sorted_races st in
      Fmt.str "data races: %d@.%a" (List.length races)
        Fmt.(list ~sep:nop (fun ppf r -> Fmt.pf ppf "  %a@." pp_race r))
        races

    (* Race reports are warnings, not gate failures: the paper's point is
       precisely that most of them are benign on linearizable code. *)
    let violation _ = false
  end in
  (Analyzer.T (module A), sid)

let analyzer ~threads = fst (make_analyzer ~threads)

let run ?(config = Explore.default_config) ~adapter ~test () =
  let threads = Lineup.Test_matrix.num_threads test + 1 in
  let a, id = make_analyzer ~threads in
  let rep = Pipeline.run config ~analyzers:[ a ] ~adapter ~test () in
  let st = List.find_map (fun p -> Analyzer.project p id) rep.Pipeline.packs |> Option.get in
  sorted_races st
