(** Conflict-serializability (atomicity) monitoring — the second comparison
    checker of Section 5.6 ("we implemented the algorithm described in
    [Farzan & Madhusudan, CAV 2008], which checks whether a given dynamic
    execution is conflict-serializable").

    Each operation of the test (the span between its call and return) is a
    transaction. Two accesses conflict when they touch the same location
    from different transactions and at least one writes (volatile and
    interlocked accesses included — precisely those produce the paper's
    false alarms on lock-free code). An execution is conflict-serializable
    iff the conflict graph over transactions is acyclic. *)

type txn = int * int  (** thread id, operation index *)

type verdict = {
  serializable : bool;
  cycle : txn list;  (** a witness cycle when not serializable *)
}

val analyze : Lineup_runtime.Exec_ctx.entry list -> verdict

type report = {
  executions : int;
  violations : int;  (** executions with a conflict-graph cycle *)
  sample : txn list;  (** a sample cycle from the first violation *)
}

(** [analyzer ()] packages the monitor as a per-execution analyzer for
    {!Lineup.Pipeline}: it counts non-serializable executions across every
    execution of a single shared exploration, keeping the cycle of the
    first violating execution (in canonical exploration order) as the
    sample. *)
val analyzer : unit -> Lineup.Analyzer.t

(** [run ?config ~adapter ~test ()] — the standalone entry point, a thin
    wrapper running the pipeline with only {!analyzer} attached: one
    exploration with logging scoped on, counting non-serializable
    executions — the "hundreds of warnings" the paper reports on
    perfectly correct implementations. *)
val run :
  ?config:Lineup_scheduler.Explore.config ->
  adapter:Lineup.Adapter.t ->
  test:Lineup.Test_matrix.t ->
  unit ->
  report
