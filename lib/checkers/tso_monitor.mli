(** Potential sequential-consistency violations under store buffering —
    the §5.7 check.

    The paper: "the CHESS model checker does not directly enumerate the
    relaxed behaviors of the target architecture; instead it checks for
    potential violations of sequential consistency using a special
    algorithm similar to data race detection [Burckhardt & Musuvathi,
    CAV 2008]. We thus used this technique, but did not find any such
    issues in the studied implementations."

    This module is a conservative pattern detector in that spirit: it flags
    the store-buffering litmus shape (Dekker), the canonical way TSO
    hardware breaks sequential consistency. A {e window} is a store to [x]
    followed in program order by a load of [y ≠ x] with no intervening
    fence (read-modify-write / interlocked operation, or lock
    acquire/release — the operations that flush the store buffer; plain and
    volatile stores are bufferable, as on x86/.NET, where only interlocked
    operations and full barriers order a store before a later load).
    Two {e concurrent} windows in different threads with crossed locations
    — [(st x, ld y)] in one thread, [(st y, ld x)] in the other, neither
    ordered by happens-before — mean both loads could read the pre-store
    values under TSO, an outcome no interleaving allows. *)

type report = {
  x_name : string;  (** first contended location *)
  y_name : string;  (** second contended location *)
  t1 : int;
  t2 : int;
}

val pp_report : Format.formatter -> report -> unit

(** Distinct store-buffering patterns in one execution's access log. *)
val analyze : threads:int -> Lineup_runtime.Exec_ctx.entry list -> report list

(** [analyzer ~threads] packages the monitor as a per-execution analyzer
    for {!Lineup.Pipeline} — the §5.7 check as an opt-in rider on any
    exploration ([compare --tso]). [threads] is
    [Test_matrix.num_threads test + 1]. *)
val analyzer : threads:int -> Lineup.Analyzer.t

(** [run ?config ~adapter ~test ()] — the standalone entry point, a thin
    wrapper running the pipeline with only {!analyzer} attached: one
    exploration with logging scoped on; the distinct patterns across all
    executions, sorted by (locations, thread pair) for determinism. *)
val run :
  ?config:Lineup_scheduler.Explore.config ->
  adapter:Lineup.Adapter.t ->
  test:Lineup.Test_matrix.t ->
  unit ->
  report list
