module Exec_ctx = Lineup_runtime.Exec_ctx
module Explore = Lineup_scheduler.Explore
module Analyzer = Lineup.Analyzer
module Pipeline = Lineup.Pipeline

type txn = int * int

type verdict = {
  serializable : bool;
  cycle : txn list;
}

let is_write = function Exec_ctx.Write | Exec_ctx.Rmw -> true | Exec_ctx.Read -> false

(* Accesses annotated with their transaction, in log order. *)
type access = {
  txn : txn;
  loc : int;
  kind : Exec_ctx.access_kind;
}

let collect_accesses log =
  let current : (int, int) Hashtbl.t = Hashtbl.create 7 in
  (* current op index per thread *)
  List.filter_map
    (fun (entry : Exec_ctx.entry) ->
      match entry with
      | Exec_ctx.Op_start o ->
        Hashtbl.replace current o.tid o.op_index;
        None
      | Exec_ctx.Op_end o ->
        Hashtbl.remove current o.tid;
        ignore o.op_index;
        None
      | Exec_ctx.Access a -> (
        match Hashtbl.find_opt current a.tid with
        | Some op_index -> Some { txn = a.tid, op_index; loc = a.loc; kind = a.kind }
        | None -> None (* setup/observer access outside any transaction *))
      | Exec_ctx.Fence _ | Exec_ctx.Lock_acquire _ | Exec_ctx.Lock_release _ -> None)
    log

let analyze log =
  let accesses = Array.of_list (collect_accesses log) in
  let n = Array.length accesses in
  (* conflict edges t1 -> t2 when an access of t1 precedes a conflicting
     access of t2 in the log *)
  let edges : (txn, txn list ref) Hashtbl.t = Hashtbl.create 16 in
  let txns : (txn, unit) Hashtbl.t = Hashtbl.create 16 in
  let add_edge a b =
    if a <> b then begin
      match Hashtbl.find_opt edges a with
      | Some l -> if not (List.mem b !l) then l := b :: !l
      | None -> Hashtbl.replace edges a (ref [ b ])
    end
  in
  for i = 0 to n - 1 do
    Hashtbl.replace txns accesses.(i).txn ();
    for j = i + 1 to n - 1 do
      let a = accesses.(i) and b = accesses.(j) in
      if a.txn <> b.txn && a.loc = b.loc && (is_write a.kind || is_write b.kind) then
        add_edge a.txn b.txn
    done
  done;
  (* cycle detection by DFS with colors; return a witness cycle *)
  let color : (txn, [ `Gray | `Black ]) Hashtbl.t = Hashtbl.create 16 in
  let cycle = ref [] in
  let rec dfs path t =
    match Hashtbl.find_opt color t with
    | Some `Black -> false
    | Some `Gray ->
      (* found a cycle: [path] is most-recent-first and starts with [t];
         the cycle is t followed by the nodes back to t's earlier
         occurrence *)
      let rec upto = function
        | [] -> []
        | x :: rest -> if x = t then [ x ] else x :: upto rest
      in
      (match path with
       | [] -> cycle := [ t ]
       | _ :: rest -> cycle := List.rev (upto rest));
      true
    | None ->
      Hashtbl.replace color t `Gray;
      let succs = match Hashtbl.find_opt edges t with Some l -> !l | None -> [] in
      let found = List.exists (fun s -> dfs (s :: path) s) succs in
      if not found then Hashtbl.replace color t `Black;
      found
  in
  let found = Hashtbl.fold (fun t () acc -> acc || dfs [ t ] t) txns false in
  { serializable = not found; cycle = !cycle }

type report = {
  executions : int;
  violations : int;
  sample : txn list;
}

(* ------------------------------------------------------------------ *)
(* The analyzer                                                        *)
(* ------------------------------------------------------------------ *)

let make_analyzer () =
  let sid = Stdlib.Type.Id.make () in
  let module A = struct
    type state = report ref

    let id = sid
    let name = "serializability"
    let needs_log = true
    let init () = ref { executions = 0; violations = 0; sample = [] }

    let step st (r : Lineup.Harness.run_result) =
      let v = analyze r.Lineup.Harness.log in
      let cur = !st in
      st :=
        {
          executions = cur.executions + 1;
          violations = (cur.violations + if v.serializable then 0 else 1);
          sample = (if cur.sample = [] && not v.serializable then v.cycle else cur.sample);
        };
      `Continue

    (* Counters add; the sample cycle resolves left-first, which the fixed
       frontier merge order makes the first violating execution in
       canonical exploration order — exactly the monolithic sample. *)
    let merge a b =
      ref
        {
          executions = !a.executions + !b.executions;
          violations = !a.violations + !b.violations;
          sample = (if !a.sample <> [] then !a.sample else !b.sample);
        }

    let metrics st = [ "executions", !st.executions; "violations", !st.violations ]

    let render st =
      Fmt.str "conflict-serializability: %d of %d executions violate@." !st.violations
        !st.executions

    (* Like races: atomicity violations on lock-free code are the paper's
       canonical false alarms, so they never fail a gate by themselves. *)
    let violation _ = false
  end in
  (Analyzer.T (module A), sid)

let analyzer () = fst (make_analyzer ())

let run ?(config = Explore.default_config) ~adapter ~test () =
  let a, id = make_analyzer () in
  let rep = Pipeline.run config ~analyzers:[ a ] ~adapter ~test () in
  !(List.find_map (fun p -> Analyzer.project p id) rep.Pipeline.packs |> Option.get)
