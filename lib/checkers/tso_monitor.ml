module Exec_ctx = Lineup_runtime.Exec_ctx
module Explore = Lineup_scheduler.Explore
module Analyzer = Lineup.Analyzer
module Pipeline = Lineup.Pipeline

type report = {
  x_name : string;
  y_name : string;
  t1 : int;
  t2 : int;
}

let pp_report ppf r =
  Fmt.pf ppf "store-buffering on (%s, %s) between T%d and T%d" r.x_name r.y_name r.t1 r.t2

(* An annotated access: thread, location, kind, the thread's vector clock
   at the access (for concurrency tests), and its per-thread sequence
   number (for program order). *)
type acc = {
  a_tid : int;
  a_loc : int;
  a_loc_name : string;
  a_write : bool;
  a_read : bool;
  a_vc : Vector_clock.t;  (** snapshot *)
  a_clock : int;  (** own component at the access *)
  a_seq : int;
}

(* A store-buffer window: a bufferable store followed in program order by a
   load of a different location, with no fence in between. *)
type window = {
  st : acc;
  ld : acc;
}

let analyze ~threads log =
  (* First pass: compute vector clocks exactly as the race detector does,
     and collect per-thread access streams with fence markers. *)
  let vc = Array.init threads (fun _ -> Vector_clock.make ~threads) in
  Array.iteri (fun i v -> Vector_clock.tick v i) vc;
  let lock_vc : (int, Vector_clock.t) Hashtbl.t = Hashtbl.create 16 in
  let vol_vc : (int, Vector_clock.t) Hashtbl.t = Hashtbl.create 16 in
  let seq = Array.make threads 0 in
  let streams : (int * [ `Acc of acc | `Fence ]) list ref = ref [] in
  let next_seq tid =
    let s = seq.(tid) in
    seq.(tid) <- s + 1;
    s
  in
  let push tid ev = streams := (tid, ev) :: !streams in
  let record_access tid loc loc_name kind =
    let a =
      {
        a_tid = tid;
        a_loc = loc;
        a_loc_name = loc_name;
        a_write = (match kind with Exec_ctx.Write | Exec_ctx.Rmw -> true | Exec_ctx.Read -> false);
        a_read = (match kind with Exec_ctx.Read | Exec_ctx.Rmw -> true | Exec_ctx.Write -> false);
        a_vc = Vector_clock.copy vc.(tid);
        a_clock = Vector_clock.get vc.(tid) tid;
        a_seq = next_seq tid;
      }
    in
    push tid (`Acc a);
    Vector_clock.tick vc.(tid) tid
  in
  let acquire_from table tid key =
    match Hashtbl.find_opt table key with
    | Some v -> Vector_clock.join vc.(tid) v
    | None -> ()
  in
  let release_to table tid key =
    (match Hashtbl.find_opt table key with
     | Some v -> Vector_clock.join v vc.(tid)
     | None -> Hashtbl.replace table key (Vector_clock.copy vc.(tid)));
    Vector_clock.tick vc.(tid) tid
  in
  List.iter
    (fun (entry : Exec_ctx.entry) ->
      match entry with
      | Exec_ctx.Access a ->
        (* Only locks and interlocked operations contribute to the
           happens-before used for the concurrency test: ordering induced
           by plain or volatile loads/stores is exactly what store
           buffering may break, so counting it would mask the pattern
           (the observed execution always orders the accesses it
           performed). Interlocked operations also flush the buffer. *)
        (match a.kind with
         | Exec_ctx.Rmw ->
           acquire_from vol_vc a.tid a.loc;
           record_access a.tid a.loc a.loc_name a.kind;
           release_to vol_vc a.tid a.loc;
           push a.tid `Fence
         | Exec_ctx.Read | Exec_ctx.Write -> record_access a.tid a.loc a.loc_name a.kind)
      | Exec_ctx.Lock_acquire l ->
        acquire_from lock_vc l.tid l.lock;
        push l.tid `Fence
      | Exec_ctx.Lock_release l ->
        release_to lock_vc l.tid l.lock;
        push l.tid `Fence
      | Exec_ctx.Fence f -> push f.tid `Fence
      | Exec_ctx.Op_start _ | Exec_ctx.Op_end _ -> ())
    log;
  let streams = List.rev !streams in
  (* Second pass: per-thread store-buffer windows. *)
  let windows = Array.make threads [] in
  let pending_stores = Array.make threads [] in
  (* stores not yet fenced *)
  List.iter
    (fun (tid, ev) ->
      match ev with
      | `Fence -> pending_stores.(tid) <- []
      | `Acc a ->
        if a.a_read then
          List.iter
            (fun st ->
              if st.a_loc <> a.a_loc then windows.(tid) <- { st; ld = a } :: windows.(tid))
            pending_stores.(tid);
        if a.a_write then pending_stores.(tid) <- a :: pending_stores.(tid))
    streams;
  (* Third pass: crossed concurrent windows. *)
  let concurrent a b =
    (not (Vector_clock.happens_before ~clock:a.a_clock ~tid:a.a_tid b.a_vc))
    && not (Vector_clock.happens_before ~clock:b.a_clock ~tid:b.a_tid a.a_vc)
  in
  let reports = ref [] in
  for t1 = 0 to threads - 1 do
    for t2 = t1 + 1 to threads - 1 do
      List.iter
        (fun w1 ->
          List.iter
            (fun w2 ->
              if
                w1.st.a_loc = w2.ld.a_loc
                && w1.ld.a_loc = w2.st.a_loc
                && concurrent w1.st w2.ld
                && concurrent w2.st w1.ld
              then
                reports :=
                  {
                    x_name = w1.st.a_loc_name;
                    y_name = w1.ld.a_loc_name;
                    t1;
                    t2;
                  }
                  :: !reports)
            windows.(t2))
        windows.(t1)
    done
  done;
  (* dedup *)
  let seen = Hashtbl.create 8 in
  List.rev !reports
  |> List.filter (fun r ->
         let key = r.x_name, r.y_name, r.t1, r.t2 in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.replace seen key ();
           true
         end)

(* ------------------------------------------------------------------ *)
(* The analyzer                                                        *)
(* ------------------------------------------------------------------ *)

let report_key r = r.x_name, r.y_name, r.t1, r.t2

type state = {
  mutable executions : int;
  found : (string * string * int * int, report) Hashtbl.t;
}

let sorted_reports st =
  Hashtbl.fold (fun _ r acc -> r :: acc) st.found []
  |> List.sort (fun r1 r2 -> compare (report_key r1) (report_key r2))

let make_analyzer ~threads =
  let sid = Stdlib.Type.Id.make () in
  let module A = struct
    type nonrec state = state

    let id = sid
    let name = "tso"
    let needs_log = true
    let init () = { executions = 0; found = Hashtbl.create 8 }

    let step st (r : Lineup.Harness.run_result) =
      st.executions <- st.executions + 1;
      List.iter
        (fun rep ->
          let key = report_key rep in
          if not (Hashtbl.mem st.found key) then Hashtbl.replace st.found key rep)
        (analyze ~threads r.Lineup.Harness.log);
      `Continue

    let merge a b =
      let out = { executions = a.executions + b.executions; found = Hashtbl.copy a.found } in
      Hashtbl.iter
        (fun key rep ->
          if not (Hashtbl.mem out.found key) then Hashtbl.replace out.found key rep)
        b.found;
      out

    let metrics st = [ "executions", st.executions; "patterns", Hashtbl.length st.found ]

    let render st =
      let reports = sorted_reports st in
      Fmt.str "store-buffering patterns: %d@.%a" (List.length reports)
        Fmt.(list ~sep:nop (fun ppf r -> Fmt.pf ppf "  %a@." pp_report r))
        reports

    (* Conservative pattern detection, not a verdict — informational. *)
    let violation _ = false
  end in
  (Analyzer.T (module A), sid)

let analyzer ~threads = fst (make_analyzer ~threads)

let run ?(config = Explore.default_config) ~adapter ~test () =
  let threads = Lineup.Test_matrix.num_threads test + 1 in
  let a, id = make_analyzer ~threads in
  let rep = Pipeline.run config ~analyzers:[ a ] ~adapter ~test () in
  let st = List.find_map (fun p -> Analyzer.project p id) rep.Pipeline.packs |> Option.get in
  sorted_reports st
