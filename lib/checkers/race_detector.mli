(** Happens-before data-race detection — the first comparison checker of
    Section 5.6 ("we used the happens-before based dynamic race detector
    included with CHESS").

    Analyzes the access log of one execution. The happens-before relation is
    induced by program order, lock acquire/release, and volatile accesses
    (a volatile or interlocked write releases its location, a volatile read
    acquires it — the disciplined-volatile pattern the paper credits for the
    low number of races). Two plain accesses to the same location race when
    they come from different threads, at least one is a write, and neither
    happens-before the other. *)

type race = {
  loc_name : string;
  first : int * Lineup_runtime.Exec_ctx.access_kind;  (** thread, kind *)
  second : int * Lineup_runtime.Exec_ctx.access_kind;
}

val pp_race : Format.formatter -> race -> unit

(** Distinct races (by location, unordered thread pair and access kinds)
    in one execution log. *)
val analyze : threads:int -> Lineup_runtime.Exec_ctx.entry list -> race list

(** [analyzer ~threads] packages the detector as a per-execution analyzer
    for {!Lineup.Pipeline}: it accumulates the distinct races — the same
    (location, thread pair, kinds) key used per execution — across every
    execution of a single shared exploration. [threads] is
    [Test_matrix.num_threads test + 1] (the observer thread included). *)
val analyzer : threads:int -> Lineup.Analyzer.t

(** [run ?config ~adapter ~test ()] — the standalone entry point, a thin
    wrapper that runs the pipeline with only {!analyzer} attached: one
    exploration with access logging scoped on, returning the distinct
    races across all executions, sorted by (location, thread pair, kinds)
    for determinism. *)
val run :
  ?config:Lineup_scheduler.Explore.config ->
  adapter:Lineup.Adapter.t ->
  test:Lineup.Test_matrix.t ->
  unit ->
  race list
