module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module History = Lineup_history.History
module Serial_history = Lineup_history.Serial_history
module Witness = Lineup_history.Witness
module Op = Lineup_history.Op

(* ------------------------------------------------------------------ *)
(* Determinism trie                                                    *)
(* ------------------------------------------------------------------ *)

(* Nodes are reached by a common prefix of completed operations. At each
   node, each invocation (by thread) must have a unique continuation —
   either a unique response (with a child node) or "blocked". A second
   distinct continuation for the same invocation is exactly the paper's
   nondeterminism: two histories whose longest common prefix ends in a
   call. *)

type cont =
  | Responded of Value.t
  | Went_stuck

type node = { edges : (int * string, slot) Hashtbl.t }

and slot = {
  mutable cont : cont;
  mutable rep : Serial_history.t;  (* a representative history, for reports *)
  mutable child : node option;
}

let new_node () = { edges = Hashtbl.create 4 }

let edge_key tid (inv : Invocation.t) = tid, Invocation.to_string inv

let cont_equal c1 c2 =
  match c1, c2 with
  | Responded v1, Responded v2 -> Value.equal v1 v2
  | Went_stuck, Went_stuck -> true
  | (Responded _ | Went_stuck), _ -> false

(* Insert a serial history; return the nondeterminism witness pair if the
   trie already committed to a different continuation somewhere along it. *)
let trie_insert root (s : Serial_history.t) =
  let conflict = ref None in
  let visit node tid inv cont =
    let key = edge_key tid inv in
    match Hashtbl.find_opt node.edges key with
    | None ->
      let slot = { cont; rep = s; child = None } in
      Hashtbl.replace node.edges key slot;
      Some slot
    | Some slot ->
      if cont_equal slot.cont cont then Some slot
      else begin
        conflict := Some (slot.rep, s);
        None
      end
  in
  let rec go node = function
    | [] -> (
      match s.Serial_history.stuck with
      | None -> ()
      | Some (tid, inv) -> ignore (visit node tid inv Went_stuck))
    | (e : Serial_history.entry) :: rest -> (
      match visit node e.tid e.inv (Responded e.resp) with
      | None -> ()
      | Some slot ->
        let child =
          match slot.child with
          | Some c -> c
          | None ->
            let c = new_node () in
            slot.child <- Some c;
            c
        in
        go child rest)
  in
  go root s.Serial_history.entries;
  !conflict

(* ------------------------------------------------------------------ *)
(* Observation sets                                                    *)
(* ------------------------------------------------------------------ *)

type key = (int * (Invocation.t * Value.t option) list) list

type t = {
  mutable full : Serial_history.Set.t;
  mutable stuck : Serial_history.Set.t;
  full_index : (key, Serial_history.t list ref) Hashtbl.t;
  stuck_index : (key, Serial_history.t list ref) Hashtbl.t;
  trie : node;
}

let create () =
  {
    full = Serial_history.Set.empty;
    stuck = Serial_history.Set.empty;
    full_index = Hashtbl.create 64;
    stuck_index = Hashtbl.create 16;
    trie = new_node ();
  }

let index_add index s =
  let key = Serial_history.thread_key s in
  match Hashtbl.find_opt index key with
  | Some l -> l := s :: !l
  | None -> Hashtbl.replace index key (ref [ s ])

let add obs s =
  let set = if Serial_history.is_stuck s then obs.stuck else obs.full in
  if Serial_history.Set.mem s set then Ok ()
  else begin
    if Serial_history.is_stuck s then begin
      obs.stuck <- Serial_history.Set.add s obs.stuck;
      index_add obs.stuck_index s
    end
    else begin
      obs.full <- Serial_history.Set.add s obs.full;
      index_add obs.full_index s
    end;
    match trie_insert obs.trie s with
    | None -> Ok ()
    | Some pair -> Error pair
  end

let num_full obs = Serial_history.Set.cardinal obs.full
let num_stuck obs = Serial_history.Set.cardinal obs.stuck
let full_histories obs = Serial_history.Set.elements obs.full
let stuck_histories obs = Serial_history.Set.elements obs.stuck

let history_key h : key =
  let ops = History.ops h in
  let tbl : (int, (Invocation.t * Value.t option) list) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun (op : Op.t) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt tbl op.tid) in
      Hashtbl.replace tbl op.tid ((op.inv, op.resp) :: l))
    ops;
  Hashtbl.fold (fun tid l acc -> (tid, List.rev l) :: acc) tbl []
  |> List.sort (fun (t1, _) (t2, _) -> Int.compare t1 t2)

let find_in ?probes index h =
  match Hashtbl.find_opt index (history_key h) with
  | None -> None
  | Some candidates ->
    List.find_opt
      (fun serial ->
        (match probes with Some p -> incr p | None -> ());
        Witness.is_witness ~serial h)
      !candidates

let find_witness_full ?probes obs h = find_in ?probes obs.full_index h
let find_witness_stuck ?probes obs he = find_in ?probes obs.stuck_index he

let linearizable_stuck ?probes obs h =
  let justified e =
    let he = History.restrict_to_pending h e in
    Option.is_some (find_witness_stuck ?probes obs he)
  in
  match List.find_opt (fun e -> not (justified e)) (History.pending_ops h) with
  | None -> Ok ()
  | Some e -> Error e
