(** Per-execution analyses as pluggable observers of one exploration.

    Section 5.6 of the paper runs its comparison checkers (the CHESS
    happens-before race detector, the Farzan & Madhusudan
    conflict-serializability monitor) "on the same executions" Line-Up
    explores — every one of them is a {e per-execution} function over an
    execution's history and access log. An analyzer packages such an
    analysis so that {!Pipeline} can drive any number of them over a
    {e single} exploration: each schedule is executed exactly once no
    matter how many analyses consume it.

    An analyzer is a first-class module with:
    - a mutable [state], stepped once per explored execution;
    - a [merge] on states, used by the frontier-split parallel path
      ([check -j]): each partition accumulates into a fresh state and the
      per-partition states are merged {e in frontier order} on the calling
      domain. Pure accumulators (sets of findings, counters) must make
      [merge] order-insensitive; verdict-carrying analyzers may resolve
      ties left-to-first, which the fixed frontier order makes
      deterministic;
    - a deterministic [render] and [metrics]: both must be functions of
      the merged state only (no wall-clock, no hash-order dependence), so
      the output is byte-identical for every domain count;
    - [needs_log]: whether the analysis reads the shared-access log. The
      pipeline enables {!Lineup_runtime.Exec_ctx} logging iff some
      attached analyzer needs it, restored exception-safely.

    Analyzers must not touch modeled shared state: a step runs between
    executions, outside the modeled runtime, so — exactly like the metrics
    layer — it cannot introduce scheduling points and cannot perturb the
    enumeration (see DESIGN.md). *)

module type S = sig
  type state

  val id : state Stdlib.Type.Id.t
  (** Identity witness for [state] — lets the pipeline re-pair partition
      states of the same analyzer across the existential boundary
      ({!project}, {!merge}). Create one per analyzer value with
      [Stdlib.Type.Id.make ()]. *)

  val name : string
  (** Short stable identifier; keys the [analyze.<name>.*] metrics. *)

  val needs_log : bool
  (** Whether [step] reads [run_result.log]. *)

  val init : unit -> state
  (** A fresh accumulator (one per exploration, or per frontier
      partition). Must be the neutral element of [merge]. *)

  val step : state -> Harness.run_result -> [ `Continue | `Done ]
  (** Consume one execution, mutating [state]. [`Done] means this
      analyzer needs no further executions (e.g. a verdict was reached);
      the exploration stops early only when {e every} attached analyzer
      is done. A done analyzer is never stepped again. *)

  val merge : state -> state -> state
  (** Combine the states of two independent sub-explorations; the
      pipeline folds partition states left-to-right in frontier order. *)

  val metrics : state -> (string * int) list
  (** Deterministic counters, emitted as [analyze.<name>.<key>]. *)

  val render : state -> string
  (** The human-readable findings — deterministic (sort collections),
      newline-terminated. *)

  val violation : state -> bool
  (** Whether the findings should fail a gate (drives [compare]'s exit
      code for the Line-Up analyzer; informational analyzers return
      [false]). *)
end

type t = T : (module S with type state = 's) -> t

(** A state paired with its analyzer module — what the pipeline threads
    through partitions and returns in its report. *)
type packed = Packed : (module S with type state = 's) * 's -> packed

val name : t -> string
val needs_log : t -> bool

val fresh : t -> packed
(** [fresh t] packs [init ()]. *)

val step : packed -> Harness.run_result -> [ `Continue | `Done ]

val merge : packed -> packed -> packed
(** Merge two packed states of the {e same} analyzer (witnessed by [id]).
    Raises [Invalid_argument] when the analyzers differ. *)

val project : packed -> 's Stdlib.Type.Id.t -> 's option
(** [project p id] recovers the concrete state when [p] belongs to the
    analyzer that owns [id] — how a caller that built an analyzer reads
    its final state back out of a pipeline report. *)

val metrics : packed -> (string * int) list
val render : packed -> string
val violation : packed -> bool
