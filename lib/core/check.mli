(** The two-phase check [Check(X, m)] of Fig. 5.

    Phase 1 enumerates the serial executions of the finite test [m] on
    implementation [X], synthesizing the candidate deterministic sequential
    specification: the full serial histories [A] and stuck serial histories
    [B]. If [A ∪ B] is nondeterministic, the check fails — no deterministic
    specification can describe [X] (Fig. 5, line 4).

    Phase 2 enumerates the concurrent executions and checks each full
    history for a serial witness in [A] and each stuck history against [B]
    per Definition 2. Any failure is a proof that [X] is not linearizable
    with respect to {e any} deterministic sequential specification
    (Theorem 5 — completeness: no false alarms).

    Phase 1 runs without preemption bounding, preserving the completeness
    guarantee even when phase 2 is bounded (Section 4.3). *)

(** How phase 2 decides membership of each distinct history. Every mode
    consumes the same enumerated histories (counts and fingerprints are
    identical by construction — the decision happens after the history is
    recorded); only the decision procedure differs, and the CI
    [membership-equivalence] lane asserts the verdicts agree too. *)
type membership =
  | Auto
      (** default: when the adapter declares a specification
          ({!Adapter.t.spec}), decide complete histories with the
          near-linear class monitors ([Lineup_spec.Monitor]) or the
          P-compositional per-key splitter ([Lineup_spec.Pcomp]); anything
          they refuse — and all stuck histories — uses the generic search *)
  | Generic  (** always the generic observation witness search (pre-PR-6 behavior) *)
  | Monitor
      (** force the spec path: monitors/splitter first, then the direct
          Wing–Gong search ([Lineup_spec.Lin_check]) including the
          Definition-2 stuck check; generic only as a last resort (no
          declared spec, oversized history) *)

val membership_name : membership -> string
val membership_of_string : string -> membership option

type config = {
  phase1 : Lineup_scheduler.Explore.config;
  phase2 : Lineup_scheduler.Explore.config;
  classic_only : bool;
      (** check Definition 1 only: stuck phase-2 histories are not checked
          against [B] — the pre-generalization notion of Section 2.2, which
          misses erroneous blocking (used by the Section 5.5 comparison) *)
  dedup_histories : bool;
      (** skip the witness search for histories already seen in phase 2
          (sound: the verdict is a function of the history); on by default,
          benchmarked by the dedup ablation *)
  membership : membership;  (** the phase-2 membership mode, {!Auto} by default *)
  phase2_domains : int option;
      (** [Some d]: fan phase 2 out over [d] domains by frontier splitting —
          a sequential warm-up enumerates the decision prefixes of length
          [phase2_frontier_depth], then each prefix subtree is explored as an
          independent partition with its own adapter instances, dedup table
          and metrics registry, merged deterministically in frontier order
          (the verdict, statistics and metrics are independent of [d]; see
          DESIGN.md). [None] (default): the single-domain exploration.
          Note [Some 1] still uses the frontier path — per-partition dedup
          tables make its metrics differ slightly from [None]. *)
  phase2_frontier_depth : int;
      (** decision-prefix length of the frontier warm-up (default 4); only
          read when [phase2_domains] is set. Deeper frontiers give more,
          smaller partitions: better load balance, more warm-up work. *)
}

val default_config : config

(** [config_with ?preemption_bound ?max_executions ?classic_only
    ?phase2_domains ?frontier_depth ?por ?memory ()] derives a configuration
    from {!default_config}; [max_executions] bounds phase 2 only (per
    partition when the frontier path is active). [por] (default [false])
    enables dynamic partial-order reduction in phase 2; phase 1's serial
    enumeration is never reduced (completeness, §4.3). [memory] (default
    [Sc]) selects the simulated memory model of the phase-2 exploration
    ([--memory sc|tso|pso]): under [Tso]/[Pso] the explorer enumerates
    store-buffer behaviours (buffered writes, scheduler-chosen flush points)
    and linearizability is checked over them; phase 1 always synthesizes
    the specification under SC. *)
val config_with :
  ?preemption_bound:int option ->
  ?max_executions:int option ->
  ?classic_only:bool ->
  ?membership:membership ->
  ?phase2_domains:int ->
  ?frontier_depth:int ->
  ?por:bool ->
  ?memory:Lineup_runtime.Memory_model.t ->
  unit ->
  config

val memory : config -> Lineup_runtime.Memory_model.t
(** The phase-2 memory model ([config.phase2.memory]). *)

type violation =
  | Nondeterministic of Lineup_history.Serial_history.t * Lineup_history.Serial_history.t
      (** two serial executions diverge after a common prefix ending in a
          call: the implementation is not deterministic *)
  | No_witness of Lineup_history.History.t
      (** a concurrent full history with no serial witness in [A] *)
  | Stuck_unjustified of Lineup_history.History.t * Lineup_history.Op.t
      (** a stuck concurrent history with a pending operation whose [H[e]]
          has no witness in [B] — erroneous blocking (Definition 2) *)
  | Thread_exception of { tid : int; message : string }
      (** an operation raised — not a linearizability verdict, but reported
          rather than swallowed *)

(** The outcome of a check. [Cancelled] means the run was abandoned before
    the exploration finished (the [cancelled] token fired) with no
    violation found so far: {e no} verdict about [X] — in particular it is
    not a pass. A violation found before the cancellation wins: the run
    reports [Fail]. *)
type verdict =
  | Pass
  | Fail of violation
  | Cancelled

type phase_report = {
  stats : Lineup_scheduler.Explore.stats;
  histories : int;  (** distinct histories observed *)
  time : float;  (** monotonic seconds *)
}

(** The rendered outcome of one extra analyzer attached to the phase-2
    exploration (see {!run}'s [analyzers]). *)
type analysis = {
  a_name : string;  (** the analyzer's {!Analyzer.S.name} *)
  a_render : string;  (** its deterministic findings, newline-terminated *)
  a_violation : bool;  (** whether the findings should fail a gate *)
  a_metrics : (string * int) list;
      (** its {!Analyzer.S.metrics} counters — the structured counterpart of
          [a_render] (e.g. the race analyzer's [("races", n)]) *)
}

type result = {
  verdict : verdict;
  observation : Observation.t;
  phase1 : phase_report;
  phase2 : phase_report option;  (** [None] when phase 1 did not complete *)
  analyses : analysis list;
      (** outcomes of the attached extra analyzers, in attachment order;
          [[]] when none were attached *)
}

val passed : result -> bool
(** [Pass] only — a cancelled run never counts as passing. *)

val failed : result -> bool
(** [Fail _] only. *)

val cancelled : result -> bool

val pp_violation : Format.formatter -> violation -> unit

(** [synthesize ?config adapter test] runs phase 1 only: enumerate the
    serial executions of [test] and build the observation set (the
    synthesized sequential specification). [Error] carries [Fail v] (the
    phase-1 violation: nondeterminism, or an operation exception) or
    [Cancelled] — never [Pass] — together with the partial phase report.

    [metrics], here and in {!run}, receives the structured counters of the
    observability layer (see README.md for the key schema): exploration
    totals per phase under [explore.phase1.*] / [explore.phase2.*], and
    checker-level counters under [check.*] (distinct histories, dedup hits,
    witness-search probes, stuck-justification checks, verdicts). Counters
    are plain increments outside the modeled runtime, so collection never
    perturbs schedule enumeration; wall-clock timings are excluded (they
    would break [-j] determinism) and are emitted on the opt-in
    {!Lineup_observe.Trace} stream instead. *)
val synthesize :
  ?config:config ->
  ?cancelled:(unit -> bool) ->
  ?metrics:Lineup_observe.Metrics.t ->
  Adapter.t ->
  Test_matrix.t ->
  (Observation.t * phase_report, verdict * phase_report) Stdlib.result

(** [run ?config ?cancelled ?observation adapter test] — the paper's
    [Check(X, m)]. When [observation] is supplied (e.g. loaded from an
    observation file of a previous run — §4.1: "the set of observed serial
    histories Z is recorded in a file"), phase 1 is skipped and the given
    set is used as the specification.

    [cancelled] (default: never) is polled at every execution boundary of
    both phases; once it returns [true] the exploration is abandoned at the
    next boundary and the result's verdict is {!Cancelled} (unless a
    violation was already found, which wins). Callers that discard
    cancelled siblings — the parallel work pool — test {!failed} for their
    stop condition; callers that surface the result must treat [Cancelled]
    as "no verdict", never as a pass.

    When [config.phase2_domains] is [Some d], phase 2 runs the frontier
    path (see {!config}); the verdict, report and metrics are identical
    for every [d].

    [analyzers] attaches extra per-execution analyzers (the §5.6/§5.7
    comparison checkers) to the phase-2 exploration: the pipeline drives
    the Line-Up history check {e and} every attached analyzer over a
    single exploration, so each schedule is executed exactly once no
    matter how many checkers consume it; their outcomes are returned in
    [result.analyses]. The exploration only stops early when every
    analyzer is done — with accumulating analyzers attached it runs the
    full (budgeted) schedule space even after a Line-Up violation, so
    each analyzer's findings equal what its standalone run reports. If
    phase 1 fails, the attached analyzers still get their exploration
    (the comparison is meaningful regardless of the Line-Up verdict);
    only the Line-Up phase-2 check is skipped. *)
val run :
  ?config:config ->
  ?cancelled:(unit -> bool) ->
  ?metrics:Lineup_observe.Metrics.t ->
  ?observation:Observation.t ->
  ?analyzers:Analyzer.t list ->
  Adapter.t ->
  Test_matrix.t ->
  result

(** {1 Multi-process sharding}

    The building blocks of [lineup shard-server]/[shard-worker]
    (lib/shard): phase 2 split into self-contained partition jobs whose
    results are pure data — marshalable across a process boundary or to a
    checkpoint file — and a resume-aware merge that reproduces the
    in-process frontier path ({!run} with [phase2_domains = Some j])
    byte-for-byte: same verdict, same report, same metrics registry, for
    any assignment of partitions to workers, any completion order, and any
    number of crash/resume cycles. *)

(** One frontier partition's completed phase-2 result. Contains no
    closures, channels or adapter state: safe to [Marshal]. *)
type p2_partition

val partition_index : p2_partition -> int
val partition_stop : p2_partition -> bool
(** the partition stopped the sweep: violation found or interrupted *)

val partition_executions : p2_partition -> int
val partition_distinct : p2_partition -> int
(** distinct histories checked within the partition (pre-merge) *)

(** [split_frontier ?config ?cancelled adapter test] runs the phase-2
    frontier warm-up exactly as the in-process frontier path does (depth
    [config.phase2_frontier_depth], analyzers not stepped) and returns the
    frontier plus whether the warm-up was interrupted. *)
val split_frontier :
  ?config:config ->
  ?cancelled:(unit -> bool) ->
  Adapter.t ->
  Test_matrix.t ->
  Lineup_scheduler.Explore.frontier * bool

(** [run_partition ?config ?cancelled ~observation ~index ~prefix adapter
    test] explores one partition subtree — the per-partition job of the
    in-process frontier path specialized to the Line-Up analyzer — and
    returns its serializable result. Deterministic given ([config],
    [observation], [test], [prefix]): a worker process computing this
    remotely produces the same value as the local domain would. *)
val run_partition :
  ?config:config ->
  ?cancelled:(unit -> bool) ->
  observation:Observation.t ->
  index:int ->
  prefix:Lineup_scheduler.Explore.prefix ->
  Adapter.t ->
  Test_matrix.t ->
  p2_partition

(** [ingest_phase1 ?metrics phase1] re-emits the phase-1 counters of a
    checkpointed {!phase_report} into [metrics] exactly as {!synthesize}
    would have — used by [--resume] so the final registry is byte-identical
    to an uninterrupted run. *)
val ingest_phase1 : ?metrics:Lineup_observe.Metrics.t -> phase_report -> unit

(** [merge_partitions ?config ?metrics ?warmup_interrupted ~observation
    ~phase1 ~frontier partitions] merges completed partitions in canonical
    frontier order into a {!result}, re-applying the deterministic prefix
    rule of the in-process pool (partitions past the earliest stopping one
    are ignored even if checkpointed). Emits the same metric keys and
    values as {!run} on the frontier path. [partitions] may arrive in any
    order; duplicates must not be passed. *)
val merge_partitions :
  ?metrics:Lineup_observe.Metrics.t ->
  ?warmup_interrupted:bool ->
  observation:Observation.t ->
  phase1:phase_report ->
  frontier:Lineup_scheduler.Explore.frontier ->
  p2_partition list ->
  result
