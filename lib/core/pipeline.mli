(** One exploration, N analyzers.

    The analysis pipeline drives a set of {!Analyzer}s over a {e single}
    exploration of a test's schedule tree: each explored schedule is
    executed exactly once and every attached analyzer consumes it. This is
    how the paper's §5.6 comparison runs its checkers "on the same
    executions" Line-Up explores — and it is what makes [compare] pay one
    exploration instead of one per checker.

    Determinism contract (same argument as the frontier-split checker):
    - the exploration is the canonical enumeration, independent of the
      analyzer set (analyzers run between executions, outside the modeled
      runtime — they cannot perturb the schedule enumeration);
    - with [domains] set, the tree is partitioned by the decision-prefix
      frontier; each partition accumulates into fresh analyzer states on
      its worker domain and the per-partition states are merged in
      frontier order on the calling domain — so renders, violations and
      metrics are identical for every domain count;
    - access logging is enabled iff some attached analyzer [needs_log],
      scoped exception-safely per exploring domain
      ({!Lineup_runtime.Exec_ctx.with_logging}). *)

type report = {
  packs : Analyzer.packed list;
      (** final (merged) analyzer states, in attachment order *)
  stats : Lineup_scheduler.Explore.stats;
      (** exploration totals (warm-up included on the frontier path) *)
  interrupted : bool;  (** the [cancelled] token fired before completion *)
}

(** [run config ~analyzers ~adapter ~test ()] explores [test] once under
    [config] and steps every analyzer on each execution. The exploration
    stops early only when every analyzer reports [`Done] (or on
    cancellation / the config's execution budget).

    [domains]: fan the exploration out by frontier splitting (a
    sequential depth-[frontier_depth] warm-up enumerates the decision
    prefixes; each prefix subtree is one partition job). Analyzer states
    are per partition and merged in frontier order; a partition where
    every analyzer is done cancels later partitions ([Pool.map_seq]'s
    deterministic prefix rule keeps the result independent of [domains]).

    [metrics] receives [explore.<metrics_prefix>.*] exploration counters
    (default prefix ["phase2"], matching {!Check}) and, for each analyzer,
    its own counters under [analyze.<name>.*].

    Raises [Invalid_argument] when [analyzers] is empty. *)
val run :
  ?domains:int ->
  ?frontier_depth:int ->
  ?cancelled:(unit -> bool) ->
  ?metrics:Lineup_observe.Metrics.t ->
  ?metrics_prefix:string ->
  Lineup_scheduler.Explore.config ->
  analyzers:Analyzer.t list ->
  adapter:Adapter.t ->
  test:Test_matrix.t ->
  unit ->
  report

val add_explore_stats :
  Lineup_observe.Metrics.t -> prefix:string -> Lineup_scheduler.Explore.stats -> unit
(** Ingest exploration statistics as [explore.<prefix>.*] counters —
    shared with {!Check}'s phase reporting. *)

val add_analyzer_metrics : Lineup_observe.Metrics.t -> Analyzer.packed -> unit
(** Ingest one analyzer's counters as [analyze.<name>.*]. *)
