module type S = sig
  type state

  val id : state Stdlib.Type.Id.t
  val name : string
  val needs_log : bool
  val init : unit -> state
  val step : state -> Harness.run_result -> [ `Continue | `Done ]
  val merge : state -> state -> state
  val metrics : state -> (string * int) list
  val render : state -> string
  val violation : state -> bool
end

type t = T : (module S with type state = 's) -> t
type packed = Packed : (module S with type state = 's) * 's -> packed

let name (T (module A)) = A.name
let needs_log (T (module A)) = A.needs_log
let fresh (T (module A)) = Packed ((module A), A.init ())
let step (Packed ((module A), s)) r = A.step s r

let merge (Packed ((module A), s1)) (Packed ((module B), s2)) =
  match Stdlib.Type.Id.provably_equal A.id B.id with
  | Some Stdlib.Type.Equal -> Packed ((module A), A.merge s1 s2)
  | None -> Fmt.invalid_arg "Analyzer.merge: %s with %s" A.name B.name

let project : type s. packed -> s Stdlib.Type.Id.t -> s option =
 fun (Packed ((module A), s)) id ->
  match Stdlib.Type.Id.provably_equal A.id id with
  | Some Stdlib.Type.Equal -> Some s
  | None -> None

let metrics (Packed ((module A), s)) = A.metrics s
let render (Packed ((module A), s)) = A.render s
let violation (Packed ((module A), s)) = A.violation s
