(** Observation sets — the synthesized sequential specification of phase 1.

    An observation set holds the full serial histories [A] and the stuck
    serial histories [B] recorded for one finite test (Fig. 5, lines 2–3),
    organized two ways:

    - an incremental {e determinism trie} detecting, as histories are added,
      any pair whose longest common prefix ends in a call (Fig. 5, line 4);
    - indexes keyed by per-thread operation sequences — the grouping of the
      observation-file format (Fig. 7) — so that the phase-2 witness search
      only examines serial histories whose thread subhistories already match
      the concurrent history. *)

type t

val create : unit -> t

(** [add obs s] inserts serial history [s] (full or stuck — determined by
    [Serial_history.is_stuck]). Duplicates are ignored. [Error (s1, s2)]
    reports nondeterminism: two recorded histories diverging right after a
    shared invocation prefix. *)
val add :
  t -> Lineup_history.Serial_history.t ->
  (unit, Lineup_history.Serial_history.t * Lineup_history.Serial_history.t) result

val num_full : t -> int
val num_stuck : t -> int
val full_histories : t -> Lineup_history.Serial_history.t list
val stuck_histories : t -> Lineup_history.Serial_history.t list

(** [find_witness_full ?probes obs h] searches [A] for a serial witness of
    the complete history [h]. [probes], when given, is incremented once per
    candidate serial history examined — the witness-search work metric. *)
val find_witness_full :
  ?probes:int ref ->
  t -> Lineup_history.History.t -> Lineup_history.Serial_history.t option

(** [find_witness_stuck ?probes obs he] searches [B] for a serial witness of
    [he], which must be an [H[e]]-shaped stuck history (one pending
    operation). *)
val find_witness_stuck :
  ?probes:int ref ->
  t -> Lineup_history.History.t -> Lineup_history.Serial_history.t option

(** [linearizable_stuck ?probes obs h] applies Definition 2 to stuck history
    [h]: every pending operation [e] must have a witness for [H[e]] in
    [B]. *)
val linearizable_stuck :
  ?probes:int ref ->
  t -> Lineup_history.History.t -> (unit, Lineup_history.Op.t) result
