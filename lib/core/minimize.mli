(** Automatic reduction of failing tests.

    Section 5.1 of the paper: "we manually remove operations from failing
    3x3 test matrices to obtain a failing test of minimal dimension, for the
    sake of easier reasoning and regression testing." This module automates
    that step with a greedy fixpoint: repeatedly drop a single invocation —
    from a concurrent column (emptied columns are removed), from the serial
    [init] prefix, or from the serial [final] suffix — as long as [Check]
    still fails. Deleting from [init]/[final] matters: a bug may reproduce
    with less setup than the failing test used, and a reduced [init] is a
    strictly simpler counterexample.

    By Lemma 8's contrapositive direction there is no guarantee every
    sub-test fails, so the result is a local minimum — which is also all the
    manual procedure guarantees. *)

type result = {
  test : Test_matrix.t;  (** the reduced failing test *)
  check : Check.result;  (** its check result — [Fail] unless cancelled *)
  checks_spent : int;  (** number of [Check] invocations used *)
}

(** [reduce ?config ?cancelled adapter test] requires [test] to fail under
    [config] (raises [Invalid_argument] if it passes). The descent only
    shrinks onto candidates whose check {e fails}: a candidate whose check
    was cancelled never exhibited the violation and is skipped, so the
    returned test is always one that was seen to fail. If the initial check
    itself is cancelled, the input is returned unreduced with the
    [Cancelled] result — callers must treat it as "no verdict", not as a
    minimized counterexample. [cancelled] is threaded into every inner
    {!Check.run}. *)
val reduce :
  ?config:Check.config ->
  ?cancelled:(unit -> bool) ->
  Adapter.t ->
  Test_matrix.t ->
  result
