module History = Lineup_history.History
module Serial_history = Lineup_history.Serial_history
module Op = Lineup_history.Op
module Explore = Lineup_scheduler.Explore
module Metrics = Lineup_observe.Metrics
module Trace = Lineup_observe.Trace
module Pool = Lineup_parallel.Pool

type config = {
  phase1 : Explore.config;
  phase2 : Explore.config;
  classic_only : bool;
  dedup_histories : bool;
  phase2_domains : int option;
  phase2_frontier_depth : int;
}

let default_config =
  {
    phase1 = Explore.serial_config;
    phase2 = Explore.default_config;
    classic_only = false;
    dedup_histories = true;
    phase2_domains = None;
    phase2_frontier_depth = 4;
  }

let config_with ?preemption_bound ?max_executions ?(classic_only = false) ?phase2_domains
    ?(frontier_depth = default_config.phase2_frontier_depth) () =
  let phase2 = default_config.phase2 in
  let phase2 =
    match preemption_bound with
    | Some pb -> { phase2 with Explore.preemption_bound = pb }
    | None -> phase2
  in
  let phase2 =
    match max_executions with
    | Some cap -> { phase2 with Explore.max_executions = cap }
    | None -> phase2
  in
  {
    default_config with
    phase2;
    classic_only;
    phase2_domains;
    phase2_frontier_depth = frontier_depth;
  }

type violation =
  | Nondeterministic of Serial_history.t * Serial_history.t
  | No_witness of History.t
  | Stuck_unjustified of History.t * Op.t
  | Thread_exception of { tid : int; message : string }

type verdict =
  | Pass
  | Fail of violation
  | Cancelled

type phase_report = {
  stats : Explore.stats;
  histories : int;
  time : float;
}

type result = {
  verdict : verdict;
  observation : Observation.t;
  phase1 : phase_report;
  phase2 : phase_report option;
}

let passed r = match r.verdict with Pass -> true | Fail _ | Cancelled -> false
let failed r = match r.verdict with Fail _ -> true | Pass | Cancelled -> false
let cancelled r = match r.verdict with Cancelled -> true | Pass | Fail _ -> false

let pp_violation ppf = function
  | Nondeterministic (s1, s2) ->
    Fmt.pf ppf
      "@[<v>nondeterministic serial behavior:@,  %a@,  %a@]"
      Serial_history.pp s1 Serial_history.pp s2
  | No_witness h ->
    Fmt.pf ppf "@[<v>non-linearizable history (no serial witness):@,%a@]" History.pp h
  | Stuck_unjustified (h, op) ->
    Fmt.pf ppf
      "@[<v>stuck history with unjustified pending operation %a:@,%a@]" Op.pp op History.pp h
  | Thread_exception { tid; message } ->
    Fmt.pf ppf "operation on thread %d raised: %s" tid message

let exception_of (outcome : Explore.exec_outcome) =
  match outcome.errors with
  | [] -> None
  | (tid, e) :: _ -> Some (Thread_exception { tid; message = Printexc.to_string e })

(* Monotonic, not wall-clock: phase durations must not jump when NTP
   adjusts the system clock. *)
let now () = Lineup_observe.Monotonic.now ()

let never_cancelled () = false

(* Counter ingestion. All values are sums of ints over a deterministic job
   set, so per-job registries merge to -j-independent totals; wall-clock
   stays out of the metrics and goes to the trace stream instead. *)
let add_explore_stats m ~prefix (s : Explore.stats) =
  let c k v = Metrics.add m (Fmt.str "explore.%s.%s" prefix k) v in
  c "executions" s.Explore.executions;
  c "steps" s.Explore.total_steps;
  c "deadlocks" s.Explore.deadlocks;
  c "divergences" s.Explore.divergences;
  c "serial_stucks" s.Explore.serial_stucks;
  c "pruned_choices" s.Explore.pruned_choices;
  c "preemptions" s.Explore.preemptions_spent;
  c "yields" s.Explore.yields;
  c "choice_points" s.Explore.choice_points;
  c "incomplete" (if s.Explore.complete then 0 else 1)

let mincr metrics k = match metrics with Some m -> Metrics.incr m k | None -> ()

let trace_phase phase (report : phase_report) =
  if Trace.enabled () then
    Trace.emit ("check." ^ phase)
      [
        "histories", Trace.Int report.histories;
        "executions", Trace.Int report.stats.Explore.executions;
        "dt", Trace.Float report.time;
      ]

(* Phase 1: enumerate serial executions, synthesize the specification. *)
let synthesize ?(config = default_config) ?(cancelled = never_cancelled) ?metrics adapter test =
  let observation = Observation.create () in
  let p1_start = now () in
  let p1_violation = ref None in
  let p1_interrupted = ref false in
  let p1_stats =
    Harness.run_phase config.phase1 ~adapter ~test ~on_history:(fun r ->
        if cancelled () then begin
          p1_interrupted := true;
          `Stop
        end
        else
        match exception_of r.outcome with
        | Some v ->
          p1_violation := Some v;
          `Stop
        | None -> (
          let serial =
            match Serial_history.of_history r.history with
            | Some s -> s
            | None ->
              Fmt.failwith "Check: phase 1 produced a non-serial history:@ %a" History.pp
                r.history
          in
          match Observation.add observation serial with
          | Ok () -> `Continue
          | Error (s1, s2) ->
            p1_violation := Some (Nondeterministic (s1, s2));
            `Stop))
  in
  let phase1 =
    {
      stats = p1_stats;
      histories = Observation.num_full observation + Observation.num_stuck observation;
      time = now () -. p1_start;
    }
  in
  (match metrics with
   | Some m ->
     add_explore_stats m ~prefix:"phase1" p1_stats;
     Metrics.add m "check.phase1.histories" phase1.histories
   | None -> ());
  trace_phase "phase1" phase1;
  match !p1_violation with
  | Some v -> Error (Fail v, phase1)
  | None ->
    if !p1_interrupted then Error (Cancelled, phase1) else Ok (observation, phase1)

(* ------------------------------------------------------------------ *)
(* Phase 2 checking                                                    *)
(* ------------------------------------------------------------------ *)

(* The per-history checking state. One of these exists per exploration:
   a single one for the monolithic path, one per frontier partition for
   the parallel path (each partition job runs on its own domain, so the
   cells and the dedup table are never shared). *)
type p2_checker = {
  on_history : Harness.run_result -> [ `Continue | `Stop ];
  found : violation option ref;
  interrupted : bool ref;
  histories : int ref;
  dedup_hits : int ref;
  witness_searches : int ref;
  witness_probes : int ref;
  stuck_checks : int ref;
  stuck_probes : int ref;
}

let p2_checker config ~observation ~cancelled =
  let found = ref None in
  let interrupted = ref false in
  let histories = ref 0 in
  let dedup_hits = ref 0 in
  let witness_searches = ref 0 in
  let witness_probes = ref 0 in
  let stuck_checks = ref 0 in
  let stuck_probes = ref 0 in
  (* Distinct histories seen: schedules frequently reproduce the same
     event sequence, and the witness verdict only depends on the history,
     so each distinct one is checked once. (Scoped to this checker — the
     parallel path may re-check a history that also occurs in another
     partition.) *)
  let seen : (Lineup_history.Event.t list * bool, unit) Hashtbl.t = Hashtbl.create 256 in
  let on_history (r : Harness.run_result) =
    if cancelled () then begin
      interrupted := true;
      `Stop
    end
    else
    match exception_of r.outcome with
    | Some v ->
      found := Some v;
      `Stop
    | None
      when config.dedup_histories
           && Hashtbl.mem seen (History.events r.history, History.is_stuck r.history) ->
      incr dedup_hits;
      `Continue
    | None ->
      Hashtbl.replace seen (History.events r.history, History.is_stuck r.history) ();
      incr histories;
      if History.is_stuck r.history then
        if config.classic_only then `Continue
        else begin
          incr stuck_checks;
          match Observation.linearizable_stuck ~probes:stuck_probes observation r.history with
          | Ok () -> `Continue
          | Error op ->
            found := Some (Stuck_unjustified (r.history, op));
            `Stop
        end
      else begin
        incr witness_searches;
        match Observation.find_witness_full ~probes:witness_probes observation r.history with
        | Some _ -> `Continue
        | None ->
          found := Some (No_witness r.history);
          `Stop
      end
  in
  {
    on_history;
    found;
    interrupted;
    histories;
    dedup_hits;
    witness_searches;
    witness_probes;
    stuck_checks;
    stuck_probes;
  }

let add_checker_counters m (c : p2_checker) =
  Metrics.add m "check.phase2.histories_distinct" !(c.histories);
  Metrics.add m "check.phase2.dedup_hits" !(c.dedup_hits);
  Metrics.add m "check.phase2.witness_searches" !(c.witness_searches);
  Metrics.add m "check.phase2.witness_probes" !(c.witness_probes);
  Metrics.add m "check.phase2.stuck_checks" !(c.stuck_checks);
  Metrics.add m "check.phase2.stuck_probes" !(c.stuck_probes)

(* The legacy single-domain path: one exploration, one dedup table. *)
let run_phase2_monolithic config ~cancelled ~metrics ~adapter ~test ~observation =
  let c = p2_checker config ~observation ~cancelled in
  let stats = Harness.run_phase config.phase2 ~adapter ~test ~on_history:c.on_history in
  (match metrics with
   | Some m ->
     add_explore_stats m ~prefix:"phase2" stats;
     add_checker_counters m c
   | None -> ());
  (stats, !(c.histories), !(c.found), !(c.interrupted))

type partition_result = {
  pt_stats : Explore.stats;
  pt_violation : violation option;
  pt_interrupted : bool;
  pt_histories : int;
  pt_metrics : Metrics.t option;
}

(* The frontier path: a shallow sequential warm-up enumerates the
   depth-[phase2_frontier_depth] decision prefixes, then the partitions fan
   out over the pool. Determinism: the frontier is computed on the calling
   domain (identical for every [domains]), [Pool.map_seq] keeps the
   submission-order prefix of results up to the earliest stopping partition
   regardless of [domains], and partitions before a violating one always
   run to completion — so the verdict, the merged statistics and the merged
   metrics are a function of the frontier alone, not of the domain count.

   The warm-up ignores thread exceptions: each warm-up execution is
   re-executed as the leftmost leaf of its partition, where the exception
   is caught in canonical order. [config.phase2.max_executions] caps the
   warm-up (bounding the partition count) and each partition separately. *)
let run_phase2_frontier config ~domains ~cancelled ~metrics ~adapter ~test ~observation =
  let depth = config.phase2_frontier_depth in
  let warmup_interrupted = ref false in
  let frontier =
    Harness.split_phase config.phase2 ~depth ~adapter ~test ~on_history:(fun _r ->
        if cancelled () then begin
          warmup_interrupted := true;
          `Stop
        end
        else `Continue)
  in
  let with_metrics = Option.is_some metrics in
  let run_partition ~cancelled:pool_cancelled (i, prefix) =
    let t0 = now () in
    let c =
      p2_checker config ~observation ~cancelled:(fun () -> pool_cancelled () || cancelled ())
    in
    let stats =
      Harness.run_phase_from config.phase2 ~prefix ~adapter ~test ~on_history:c.on_history
    in
    let jm =
      if not with_metrics then None
      else begin
        let m = Metrics.create () in
        add_explore_stats m ~prefix:"phase2" stats;
        add_checker_counters m c;
        Metrics.add m
          (Fmt.str "explore.phase2.partition.%03d.executions" i)
          stats.Explore.executions;
        Some m
      end
    in
    if Trace.enabled () then
      Trace.emit "check.partition"
        [
          "index", Trace.Int i;
          "executions", Trace.Int stats.Explore.executions;
          "histories", Trace.Int !(c.histories);
          "dt", Trace.Float (now () -. t0);
        ];
    {
      pt_stats = stats;
      pt_violation = !(c.found);
      pt_interrupted = !(c.interrupted);
      pt_histories = !(c.histories);
      pt_metrics = jm;
    }
  in
  let results =
    if !warmup_interrupted then []
    else
      Pool.map_seq ~domains
        ~stop:(fun p -> p.pt_violation <> None || p.pt_interrupted)
        ~f:run_partition
        (List.to_seq (List.mapi (fun i prefix -> i, prefix) frontier.Explore.prefixes))
  in
  let stats =
    List.fold_left
      (fun acc p -> Explore.merge_stats acc p.pt_stats)
      frontier.Explore.warmup results
  in
  let histories = List.fold_left (fun acc p -> acc + p.pt_histories) 0 results in
  let violation =
    List.fold_left
      (fun acc p -> match acc with Some _ -> acc | None -> p.pt_violation)
      None results
  in
  let interrupted =
    !warmup_interrupted || List.exists (fun p -> p.pt_interrupted) results
  in
  (match metrics with
   | Some m ->
     add_explore_stats m ~prefix:"phase2" frontier.Explore.warmup;
     Metrics.add m "explore.phase2.partitions" (List.length frontier.Explore.prefixes);
     Metrics.add m "explore.phase2.warmup_executions"
       frontier.Explore.warmup.Explore.executions;
     List.iter
       (fun p -> Option.iter (fun jm -> Metrics.merge_into ~into:m jm) p.pt_metrics)
       results
   | None -> ());
  (stats, histories, violation, interrupted)

let run ?(config = default_config) ?(cancelled = never_cancelled) ?metrics ?observation adapter
    test =
  mincr metrics "check.runs";
  let phase1_result =
    match observation with
    | Some obs ->
      let histories = Observation.num_full obs + Observation.num_stuck obs in
      mincr metrics "check.phase1.skipped";
      Ok (obs, { stats = Explore.empty_stats; histories; time = 0.0 })
    | None -> synthesize ~config ~cancelled ?metrics adapter test
  in
  match phase1_result with
  | Error (verdict, phase1) ->
    (match verdict with
     | Fail _ -> mincr metrics "check.violations"
     | Cancelled -> mincr metrics "check.cancelled"
     | Pass -> ());
    { verdict; observation = Observation.create (); phase1; phase2 = None }
  | Ok (observation, phase1) ->
    (* Phase 2: enumerate concurrent executions, check against the
       observation set. *)
    let p2_start = now () in
    let stats, histories, violation, interrupted =
      match config.phase2_domains with
      | None -> run_phase2_monolithic config ~cancelled ~metrics ~adapter ~test ~observation
      | Some domains ->
        run_phase2_frontier config ~domains ~cancelled ~metrics ~adapter ~test ~observation
    in
    let phase2 = { stats; histories; time = now () -. p2_start } in
    trace_phase "phase2" phase2;
    let verdict =
      match violation with
      | Some v -> Fail v
      | None -> if interrupted then Cancelled else Pass
    in
    (match verdict with
     | Pass -> mincr metrics "check.passes"
     | Fail _ -> mincr metrics "check.violations"
     | Cancelled -> mincr metrics "check.cancelled");
    { verdict; observation; phase1; phase2 = Some phase2 }
