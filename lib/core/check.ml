module History = Lineup_history.History
module Serial_history = Lineup_history.Serial_history
module Op = Lineup_history.Op
module Explore = Lineup_scheduler.Explore
module Metrics = Lineup_observe.Metrics
module Trace = Lineup_observe.Trace

type membership =
  | Auto
  | Generic
  | Monitor

let membership_name = function
  | Auto -> "auto"
  | Generic -> "generic"
  | Monitor -> "monitor"

let membership_of_string = function
  | "auto" -> Some Auto
  | "generic" -> Some Generic
  | "monitor" -> Some Monitor
  | _ -> None

type config = {
  phase1 : Explore.config;
  phase2 : Explore.config;
  classic_only : bool;
  dedup_histories : bool;
  membership : membership;
  phase2_domains : int option;
  phase2_frontier_depth : int;
}

let default_config =
  {
    phase1 = Explore.serial_config;
    phase2 = Explore.default_config;
    classic_only = false;
    dedup_histories = true;
    membership = Auto;
    phase2_domains = None;
    phase2_frontier_depth = 4;
  }

let config_with ?preemption_bound ?max_executions ?(classic_only = false)
    ?(membership = default_config.membership) ?phase2_domains
    ?(frontier_depth = default_config.phase2_frontier_depth) ?(por = false)
    ?(memory = Lineup_runtime.Memory_model.Sc) () =
  let phase2 = default_config.phase2 in
  let phase2 =
    match preemption_bound with
    | Some pb -> { phase2 with Explore.preemption_bound = pb }
    | None -> phase2
  in
  let phase2 =
    match max_executions with
    | Some cap -> { phase2 with Explore.max_executions = cap }
    | None -> phase2
  in
  (* POR and the memory model apply to phase 2 only: phase 1's serial
     enumeration is the specification synthesis and must see every serial
     order (§4.3) — and the sequential specification is memory-model
     independent, so it always runs SC. *)
  let phase2 = { phase2 with Explore.por; memory } in
  {
    default_config with
    phase2;
    classic_only;
    membership;
    phase2_domains;
    phase2_frontier_depth = frontier_depth;
  }

let memory config = config.phase2.Explore.memory

type violation =
  | Nondeterministic of Serial_history.t * Serial_history.t
  | No_witness of History.t
  | Stuck_unjustified of History.t * Op.t
  | Thread_exception of { tid : int; message : string }

type verdict =
  | Pass
  | Fail of violation
  | Cancelled

type phase_report = {
  stats : Explore.stats;
  histories : int;
  time : float;
}

type analysis = {
  a_name : string;
  a_render : string;
  a_violation : bool;
  a_metrics : (string * int) list;
}

type result = {
  verdict : verdict;
  observation : Observation.t;
  phase1 : phase_report;
  phase2 : phase_report option;
  analyses : analysis list;
}

let passed r = match r.verdict with Pass -> true | Fail _ | Cancelled -> false
let failed r = match r.verdict with Fail _ -> true | Pass | Cancelled -> false
let cancelled r = match r.verdict with Cancelled -> true | Pass | Fail _ -> false

let pp_violation ppf = function
  | Nondeterministic (s1, s2) ->
    Fmt.pf ppf
      "@[<v>nondeterministic serial behavior:@,  %a@,  %a@]"
      Serial_history.pp s1 Serial_history.pp s2
  | No_witness h ->
    Fmt.pf ppf "@[<v>non-linearizable history (no serial witness):@,%a@]" History.pp h
  | Stuck_unjustified (h, op) ->
    Fmt.pf ppf
      "@[<v>stuck history with unjustified pending operation %a:@,%a@]" Op.pp op History.pp h
  | Thread_exception { tid; message } ->
    Fmt.pf ppf "operation on thread %d raised: %s" tid message

let exception_of (outcome : Explore.exec_outcome) =
  match outcome.errors with
  | [] -> None
  | (tid, e) :: _ -> Some (Thread_exception { tid; message = Printexc.to_string e })

(* Monotonic, not wall-clock: phase durations must not jump when NTP
   adjusts the system clock. *)
let now () = Lineup_observe.Monotonic.now ()

let never_cancelled () = false

(* Counter ingestion. All values are sums of ints over a deterministic job
   set, so per-job registries merge to -j-independent totals; wall-clock
   stays out of the metrics and goes to the trace stream instead. *)
let add_explore_stats = Pipeline.add_explore_stats
let mincr metrics k = match metrics with Some m -> Metrics.incr m k | None -> ()

let trace_phase phase (report : phase_report) =
  if Trace.enabled () then
    Trace.emit ("check." ^ phase)
      [
        "histories", Trace.Int report.histories;
        "executions", Trace.Int report.stats.Explore.executions;
        "dt", Trace.Float report.time;
      ]

(* Phase 1: enumerate serial executions, synthesize the specification. *)
let synthesize ?(config = default_config) ?(cancelled = never_cancelled) ?metrics adapter test =
  let observation = Observation.create () in
  let p1_start = now () in
  let p1_violation = ref None in
  let p1_interrupted = ref false in
  let p1_stats =
    Harness.run_phase config.phase1 ~adapter ~test ~on_history:(fun r ->
        if cancelled () then begin
          p1_interrupted := true;
          `Stop
        end
        else
        match exception_of r.outcome with
        | Some v ->
          p1_violation := Some v;
          `Stop
        | None -> (
          let serial =
            match Serial_history.of_history r.history with
            | Some s -> s
            | None ->
              Fmt.failwith "Check: phase 1 produced a non-serial history:@ %a" History.pp
                r.history
          in
          match Observation.add observation serial with
          | Ok () -> `Continue
          | Error (s1, s2) ->
            p1_violation := Some (Nondeterministic (s1, s2));
            `Stop))
  in
  let phase1 =
    {
      stats = p1_stats;
      histories = Observation.num_full observation + Observation.num_stuck observation;
      time = now () -. p1_start;
    }
  in
  (match metrics with
   | Some m ->
     add_explore_stats m ~prefix:"phase1" p1_stats;
     Metrics.add m "check.phase1.histories" phase1.histories
   | None -> ());
  trace_phase "phase1" phase1;
  match !p1_violation with
  | Some v -> Error (Fail v, phase1)
  | None ->
    if !p1_interrupted then Error (Cancelled, phase1) else Ok (observation, phase1)

(* ------------------------------------------------------------------ *)
(* Phase 2 checking                                                    *)
(* ------------------------------------------------------------------ *)

(* The Line-Up phase-2 history check, expressed as an analyzer so that the
   pipeline can drive it — alone (a plain [run]) or alongside the §5.6
   comparison checkers ([compare]) — over a single exploration. One state
   exists per exploration: a single one on the monolithic path, one per
   frontier partition on the parallel path (each partition job runs on its
   own domain, so the cells and the dedup table are never shared; states
   merge in frontier order, first violation winning). *)
type p2_state = {
  mutable found : violation option;
  mutable histories : int;
  mutable dedup_hits : int;
  mutable witness_searches : int;
  witness_probes : int ref;
  mutable stuck_checks : int;
  stuck_probes : int ref;
  (* Spec-specialized membership decisions, by method; [m_fallbacks] counts
     histories a declared spec could not decide (the generic search then
     ran, adding to [witness_searches]/[stuck_checks] as usual). *)
  mutable m_monitor : int;
  mutable m_pcomp : int;
  mutable m_direct : int;
  mutable m_fallbacks : int;
  (* Order-independent fingerprint of the distinct-history set: a masked
     sum of structural hashes, merged by addition, so it is identical
     across [-j] modes and — when the reduction is sound — across
     [por] on/off. The CI equivalence gate compares it. *)
  mutable fp_acc : int;
  (* Distinct histories seen: schedules frequently reproduce the same
     event sequence, and the witness verdict only depends on the history,
     so each distinct one is checked once. (Scoped to this state — the
     parallel path may re-check a history that also occurs in another
     partition.) *)
  seen : (Lineup_history.Event.t list * bool, unit) Hashtbl.t;
}

let p2_init () =
  {
    found = None;
    histories = 0;
    dedup_hits = 0;
    witness_searches = 0;
    witness_probes = ref 0;
    stuck_checks = 0;
    stuck_probes = ref 0;
    m_monitor = 0;
    m_pcomp = 0;
    m_direct = 0;
    m_fallbacks = 0;
    fp_acc = 0;
    seen = Hashtbl.create 256;
  }

let fp_mask = 0x3FFF_FFFF_FFFF (* 46 bits: summable without overflow on 63-bit ints *)

let history_fingerprint h =
  Hashtbl.hash_param 256 256 (History.events h, History.is_stuck h) land fp_mask

(* Membership of one distinct history. The spec-specialized path
   ([Spec_check]) only consumes the history — the fingerprint is recorded
   before the decision and the enumeration upstream never sees it — so
   `--membership` modes differ in how a verdict is computed, never in what
   is checked. [Auto] consults the adapter's declared spec for the
   near-linear class checks and falls back to the generic observation
   search; [Monitor] additionally forces the direct Wing–Gong search (and
   the Definition-2 stuck check) before falling back. *)
(* Distinct-history ids for the event trace, unique across worker domains.
   The trace stream is documented non-deterministic, so ids need not be
   dense or ordered — only distinct, to keep replayed histories apart. *)
let trace_hist_counter = Atomic.make 0

let p2_step config ~observation ~spec ~init st (r : Harness.run_result) =
  match exception_of r.outcome with
  | Some v ->
    st.found <- Some v;
    `Done
  | None
    when config.dedup_histories
         && Hashtbl.mem st.seen (History.events r.history, History.is_stuck r.history) ->
    st.dedup_hits <- st.dedup_hits + 1;
    `Continue
  | None ->
    Hashtbl.replace st.seen (History.events r.history, History.is_stuck r.history) ();
    st.histories <- st.histories + 1;
    st.fp_acc <- (st.fp_acc + history_fingerprint r.history) land fp_mask;
    (* Emit each distinct complete history's events before deciding it, so
       a rejecting history is always in the trace and [lineup monitor
       --replay] on the trace file reproduces the verdict (the CI
       monitor-equivalence gate). Stuck histories are skipped: replay
       covers the complete-history fragment. *)
    if
      Trace.enabled ()
      && (not (History.is_stuck r.history))
      && History.is_complete r.history
    then begin
      let id = Atomic.fetch_and_add trace_hist_counter 1 in
      List.iter
        (fun ev -> Lineup_monitor.Mevent.emit_trace ~hist:id ev)
        (History.events r.history)
    end;
    let h = r.history in
    let generic_stuck () =
      st.stuck_checks <- st.stuck_checks + 1;
      match Observation.linearizable_stuck ~probes:st.stuck_probes observation h with
      | Ok () -> `Continue
      | Error op ->
        st.found <- Some (Stuck_unjustified (h, op));
        `Done
    in
    let generic_full () =
      st.witness_searches <- st.witness_searches + 1;
      match Observation.find_witness_full ~probes:st.witness_probes observation h with
      | Some _ -> `Continue
      | None ->
        st.found <- Some (No_witness h);
        `Done
    in
    let spec_decide ~force_spec =
      match spec with
      | None -> None
      | Some packed -> (
        let decision, meth = Lineup_spec.Spec_check.decide ~force_spec packed ~init h in
        (match meth with
         | Some Lineup_spec.Spec_check.Monitor_check -> st.m_monitor <- st.m_monitor + 1
         | Some Lineup_spec.Spec_check.Pcomp_check -> st.m_pcomp <- st.m_pcomp + 1
         | Some Lineup_spec.Spec_check.Direct_check -> st.m_direct <- st.m_direct + 1
         | None -> ());
        match decision with
        | Lineup_spec.Spec_check.Accept -> Some `Continue
        | Lineup_spec.Spec_check.Reject ->
          st.found <- Some (No_witness h);
          Some `Done
        | Lineup_spec.Spec_check.Reject_stuck op ->
          st.found <- Some (Stuck_unjustified (h, op));
          Some `Done
        | Lineup_spec.Spec_check.Unsupported _ ->
          st.m_fallbacks <- st.m_fallbacks + 1;
          None)
    in
    if History.is_stuck h then
      if config.classic_only then `Continue
      else begin
        match config.membership with
        | Auto | Generic -> generic_stuck ()
        | Monitor -> (
          match spec_decide ~force_spec:true with Some r -> r | None -> generic_stuck ())
      end
    else begin
      match config.membership with
      | Generic -> generic_full ()
      | Auto -> (
        match spec_decide ~force_spec:false with Some r -> r | None -> generic_full ())
      | Monitor -> (
        match spec_decide ~force_spec:true with Some r -> r | None -> generic_full ())
    end

let p2_merge a b =
  {
    found = (match a.found with Some _ -> a.found | None -> b.found);
    histories = a.histories + b.histories;
    dedup_hits = a.dedup_hits + b.dedup_hits;
    witness_searches = a.witness_searches + b.witness_searches;
    witness_probes = ref (!(a.witness_probes) + !(b.witness_probes));
    stuck_checks = a.stuck_checks + b.stuck_checks;
    stuck_probes = ref (!(a.stuck_probes) + !(b.stuck_probes));
    m_monitor = a.m_monitor + b.m_monitor;
    m_pcomp = a.m_pcomp + b.m_pcomp;
    m_direct = a.m_direct + b.m_direct;
    m_fallbacks = a.m_fallbacks + b.m_fallbacks;
    fp_acc = (a.fp_acc + b.fp_acc) land fp_mask;
    seen = Hashtbl.create 1;
  }

let p2_counters st =
  [
    "histories_distinct", st.histories;
    "dedup_hits", st.dedup_hits;
    "witness_searches", st.witness_searches;
    "witness_probes", !(st.witness_probes);
    "stuck_checks", st.stuck_checks;
    "stuck_probes", !(st.stuck_probes);
    "membership_monitor", st.m_monitor;
    "membership_pcomp", st.m_pcomp;
    "membership_direct", st.m_direct;
    "membership_fallbacks", st.m_fallbacks;
    "histories_fingerprint", st.fp_acc;
    "violation", (if st.found = None then 0 else 1);
  ]

let lineup_analyzer config ~observation ~spec ~init:init_seq =
  let sid = Stdlib.Type.Id.make () in
  let module A = struct
    type state = p2_state

    let id = sid
    let name = "lineup"
    let needs_log = false
    let init = p2_init
    let step st r = p2_step config ~observation ~spec ~init:init_seq st r
    let merge = p2_merge
    let metrics = p2_counters

    let render st =
      match st.found with
      | None -> Fmt.str "line-up: no violation in %d distinct histories\n" st.histories
      | Some v -> Fmt.str "line-up: %a\n" pp_violation v

    let violation st = st.found <> None
  end in
  (Analyzer.T (module A), sid)

(* The legacy metric keys of the phase-2 checker, kept alongside the
   pipeline's [analyze.lineup.*] projection of the same counters. *)
let add_checker_counters m (st : p2_state) =
  List.iter
    (fun (k, v) ->
      if k <> "violation" then Metrics.add m ("check.phase2." ^ k) v)
    (p2_counters st)

let analysis_of pack =
  {
    a_name = (let (Analyzer.Packed ((module A), _)) = pack in A.name);
    a_render = Analyzer.render pack;
    a_violation = Analyzer.violation pack;
    a_metrics = Analyzer.metrics pack;
  }

(* One pipeline run over the concurrent schedules of [test]. *)
let run_pipeline config ~cancelled ~metrics ~analyzers ~adapter ~test =
  Pipeline.run ?domains:config.phase2_domains
    ~frontier_depth:config.phase2_frontier_depth ~cancelled ?metrics config.phase2 ~analyzers
    ~adapter ~test ()

(* ------------------------------------------------------------------ *)
(* Multi-process sharding: serializable phase-2 partitions              *)
(* ------------------------------------------------------------------ *)

(* One frontier partition's phase-2 result, self-contained and free of
   closures so it can be marshaled across a process boundary or to a
   checkpoint file. [pp_state.seen] is emptied before shipping: the dedup
   table is partition-local working state, and nothing downstream of the
   merge reads it (matching [p2_merge], which discards it too). *)
type p2_partition = {
  pp_index : int;
  pp_state : p2_state;
  pp_stats : Explore.stats;
  pp_done : bool;  (** the Line-Up analyzer reported [`Done] (violation found) *)
  pp_interrupted : bool;
}

let partition_index p = p.pp_index
let partition_stop p = p.pp_done || p.pp_interrupted
let partition_executions p = p.pp_stats.Explore.executions
let partition_distinct p = p.pp_state.histories

let split_frontier ?(config = default_config) ?(cancelled = never_cancelled) adapter test =
  let interrupted = ref false in
  let frontier =
    Harness.split_phase config.phase2 ~depth:config.phase2_frontier_depth ~adapter ~test
      ~on_history:(fun _ ->
        if cancelled () then begin
          interrupted := true;
          `Stop
        end
        else `Continue)
  in
  (frontier, !interrupted)

(* Exactly the per-partition job of [Pipeline.run_frontier] specialized to
   the Line-Up analyzer (the only analyzer of a plain [run], so access
   logging is off): replay [prefix] frozen, enumerate its subtree, step the
   phase-2 state on each history, stop at the first violation. Running this
   in another process against the same adapter, test, observation and
   config produces the same [p2_partition] the in-process [-j] path feeds
   its merge — that is the sharding determinism contract. *)
let run_partition ?(config = default_config) ?(cancelled = never_cancelled) ~observation ~index
    ~prefix adapter test =
  let st = p2_init () in
  let done_ = ref false in
  let interrupted = ref false in
  let stats =
    Harness.run_phase_from ~log:false config.phase2 ~prefix ~adapter ~test
      ~on_history:(fun r ->
        if cancelled () then begin
          interrupted := true;
          `Stop
        end
        else
          match
            p2_step config ~observation ~spec:adapter.Adapter.spec ~init:test.Test_matrix.init
              st r
          with
          | `Done ->
            done_ := true;
            `Stop
          | `Continue -> `Continue)
  in
  {
    pp_index = index;
    pp_state = { st with seen = Hashtbl.create 1 };
    pp_stats = stats;
    pp_done = !done_;
    pp_interrupted = !interrupted;
  }

let ingest_phase1 ?metrics (phase1 : phase_report) =
  (match metrics with
   | Some m ->
     add_explore_stats m ~prefix:"phase1" phase1.stats;
     Metrics.add m "check.phase1.histories" phase1.histories
   | None -> ());
  trace_phase "phase1" phase1

(* Resume-aware frontier-order merge: [partitions] is whatever completed —
   any order, possibly more than needed (checkpoints past an early
   violation are ignored, not trusted). The deterministic prefix rule of
   [Pool.map_seq] is re-applied here: keep partitions up to and including
   the earliest one that stopped (violation or interruption), which makes
   the merged verdict, report and metrics a function of the frontier alone
   — byte-identical to the single-process [-j] run, and independent of
   completion order, retries, or how many runs it took to gather the
   checkpoints. *)
let merge_partitions ?metrics ?(warmup_interrupted = false) ~observation ~phase1
    ~(frontier : Explore.frontier) partitions =
  mincr metrics "check.runs";
  let p2_start = now () in
  let sorted = List.sort (fun a b -> Int.compare a.pp_index b.pp_index) partitions in
  let cut =
    List.fold_left
      (fun acc p -> if partition_stop p && p.pp_index < acc then p.pp_index else acc)
      max_int sorted
  in
  let kept = if warmup_interrupted then [] else List.filter (fun p -> p.pp_index <= cut) sorted in
  let st =
    match kept with
    | [] -> p2_init ()
    | p0 :: rest -> List.fold_left (fun acc p -> p2_merge acc p.pp_state) p0.pp_state rest
  in
  let stats =
    List.fold_left (fun acc p -> Explore.merge_stats acc p.pp_stats) frontier.Explore.warmup kept
  in
  let interrupted = warmup_interrupted || List.exists (fun p -> p.pp_interrupted) kept in
  (match metrics with
   | Some m ->
     add_explore_stats m ~prefix:"phase2" frontier.Explore.warmup;
     Metrics.add m "explore.phase2.partitions" (List.length frontier.Explore.prefixes);
     Metrics.add m "explore.phase2.warmup_executions"
       frontier.Explore.warmup.Explore.executions;
     List.iteri
       (fun i p ->
         add_explore_stats m ~prefix:"phase2" p.pp_stats;
         Metrics.add m
           (Fmt.str "explore.phase2.partition.%03d.executions" i)
           p.pp_stats.Explore.executions)
       kept;
     List.iter (fun (k, v) -> Metrics.add m ("analyze.lineup." ^ k) v) (p2_counters st);
     add_checker_counters m st
   | None -> ());
  let phase2 = { stats; histories = st.histories; time = now () -. p2_start } in
  trace_phase "phase2" phase2;
  let verdict =
    match st.found with
    | Some v -> Fail v
    | None -> if interrupted then Cancelled else Pass
  in
  (match verdict with
   | Pass -> mincr metrics "check.passes"
   | Fail _ -> mincr metrics "check.violations"
   | Cancelled -> mincr metrics "check.cancelled");
  { verdict; observation; phase1; phase2 = Some phase2; analyses = [] }

let run ?(config = default_config) ?(cancelled = never_cancelled) ?metrics ?observation
    ?(analyzers = []) adapter test =
  mincr metrics "check.runs";
  let phase1_result =
    match observation with
    | Some obs ->
      let histories = Observation.num_full obs + Observation.num_stuck obs in
      mincr metrics "check.phase1.skipped";
      Ok (obs, { stats = Explore.empty_stats; histories; time = 0.0 })
    | None -> synthesize ~config ~cancelled ?metrics adapter test
  in
  match phase1_result with
  | Error (verdict, phase1) ->
    (match verdict with
     | Fail _ -> mincr metrics "check.violations"
     | Cancelled -> mincr metrics "check.cancelled"
     | Pass -> ());
    (* Attached analyzers still get their single exploration of the
       concurrent schedules: a failed synthesis is a Line-Up verdict, not a
       reason to drop the race/serializability findings of [compare]. *)
    let analyses =
      if analyzers = [] then []
      else
        let rep = run_pipeline config ~cancelled ~metrics ~analyzers ~adapter ~test in
        List.map analysis_of rep.Pipeline.packs
    in
    { verdict; observation = Observation.create (); phase1; phase2 = None; analyses }
  | Ok (observation, phase1) ->
    (* Phase 2: enumerate concurrent executions once, drive the Line-Up
       analyzer — plus any attached extra analyzers — over each. *)
    let p2_start = now () in
    let lineup, lineup_id =
      lineup_analyzer config ~observation ~spec:adapter.Adapter.spec
        ~init:test.Test_matrix.init
    in
    let rep =
      run_pipeline config ~cancelled ~metrics ~analyzers:(lineup :: analyzers) ~adapter ~test
    in
    let st =
      match rep.Pipeline.packs with
      | lineup_pack :: _ -> Option.get (Analyzer.project lineup_pack lineup_id)
      | [] -> assert false
    in
    (match metrics with Some m -> add_checker_counters m st | None -> ());
    let phase2 =
      { stats = rep.Pipeline.stats; histories = st.histories; time = now () -. p2_start }
    in
    trace_phase "phase2" phase2;
    let verdict =
      match st.found with
      | Some v -> Fail v
      | None -> if rep.Pipeline.interrupted then Cancelled else Pass
    in
    (match verdict with
     | Pass -> mincr metrics "check.passes"
     | Fail _ -> mincr metrics "check.violations"
     | Cancelled -> mincr metrics "check.cancelled");
    let analyses = List.map analysis_of (List.tl rep.Pipeline.packs) in
    { verdict; observation; phase1; phase2 = Some phase2; analyses }
