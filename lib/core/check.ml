module History = Lineup_history.History
module Serial_history = Lineup_history.Serial_history
module Op = Lineup_history.Op
module Explore = Lineup_scheduler.Explore
module Metrics = Lineup_observe.Metrics
module Trace = Lineup_observe.Trace

type config = {
  phase1 : Explore.config;
  phase2 : Explore.config;
  classic_only : bool;
  dedup_histories : bool;
}

let default_config =
  {
    phase1 = Explore.serial_config;
    phase2 = Explore.default_config;
    classic_only = false;
    dedup_histories = true;
  }

let config_with ?preemption_bound ?max_executions ?(classic_only = false) () =
  let phase2 = default_config.phase2 in
  let phase2 =
    match preemption_bound with
    | Some pb -> { phase2 with Explore.preemption_bound = pb }
    | None -> phase2
  in
  let phase2 =
    match max_executions with
    | Some cap -> { phase2 with Explore.max_executions = cap }
    | None -> phase2
  in
  { default_config with phase2; classic_only }

type violation =
  | Nondeterministic of Serial_history.t * Serial_history.t
  | No_witness of History.t
  | Stuck_unjustified of History.t * Op.t
  | Thread_exception of { tid : int; message : string }

type phase_report = {
  stats : Explore.stats;
  histories : int;
  time : float;
}

type result = {
  verdict : (unit, violation) Stdlib.result;
  observation : Observation.t;
  phase1 : phase_report;
  phase2 : phase_report option;
}

let passed r = Result.is_ok r.verdict

let pp_violation ppf = function
  | Nondeterministic (s1, s2) ->
    Fmt.pf ppf
      "@[<v>nondeterministic serial behavior:@,  %a@,  %a@]"
      Serial_history.pp s1 Serial_history.pp s2
  | No_witness h ->
    Fmt.pf ppf "@[<v>non-linearizable history (no serial witness):@,%a@]" History.pp h
  | Stuck_unjustified (h, op) ->
    Fmt.pf ppf
      "@[<v>stuck history with unjustified pending operation %a:@,%a@]" Op.pp op History.pp h
  | Thread_exception { tid; message } ->
    Fmt.pf ppf "operation on thread %d raised: %s" tid message

let exception_of (outcome : Explore.exec_outcome) =
  match outcome.errors with
  | [] -> None
  | (tid, e) :: _ -> Some (Thread_exception { tid; message = Printexc.to_string e })

let now () = Unix.gettimeofday ()

let never_cancelled () = false

(* Counter ingestion. All values are sums of ints over a deterministic job
   set, so per-job registries merge to -j-independent totals; wall-clock
   stays out of the metrics and goes to the trace stream instead. *)
let add_explore_stats m ~prefix (s : Explore.stats) =
  let c k v = Metrics.add m (Fmt.str "explore.%s.%s" prefix k) v in
  c "executions" s.Explore.executions;
  c "steps" s.Explore.total_steps;
  c "deadlocks" s.Explore.deadlocks;
  c "divergences" s.Explore.divergences;
  c "serial_stucks" s.Explore.serial_stucks;
  c "pruned_choices" s.Explore.pruned_choices;
  c "preemptions" s.Explore.preemptions_spent;
  c "yields" s.Explore.yields;
  c "choice_points" s.Explore.choice_points;
  c "incomplete" (if s.Explore.complete then 0 else 1)

let mincr metrics k = match metrics with Some m -> Metrics.incr m k | None -> ()

let trace_phase phase (report : phase_report) =
  if Trace.enabled () then
    Trace.emit ("check." ^ phase)
      [
        "histories", Trace.Int report.histories;
        "executions", Trace.Int report.stats.Explore.executions;
        "dt", Trace.Float report.time;
      ]

(* Phase 1: enumerate serial executions, synthesize the specification. *)
let synthesize ?(config = default_config) ?(cancelled = never_cancelled) ?metrics adapter test =
  let observation = Observation.create () in
  let p1_start = now () in
  let p1_violation = ref None in
  let p1_stats =
    Harness.run_phase config.phase1 ~adapter ~test ~on_history:(fun r ->
        if cancelled () then `Stop
        else
        match exception_of r.outcome with
        | Some v ->
          p1_violation := Some v;
          `Stop
        | None -> (
          let serial =
            match Serial_history.of_history r.history with
            | Some s -> s
            | None ->
              Fmt.failwith "Check: phase 1 produced a non-serial history:@ %a" History.pp
                r.history
          in
          match Observation.add observation serial with
          | Ok () -> `Continue
          | Error (s1, s2) ->
            p1_violation := Some (Nondeterministic (s1, s2));
            `Stop))
  in
  let phase1 =
    {
      stats = p1_stats;
      histories = Observation.num_full observation + Observation.num_stuck observation;
      time = now () -. p1_start;
    }
  in
  (match metrics with
   | Some m ->
     add_explore_stats m ~prefix:"phase1" p1_stats;
     Metrics.add m "check.phase1.histories" phase1.histories
   | None -> ());
  trace_phase "phase1" phase1;
  match !p1_violation with
  | Some v -> Error (v, phase1)
  | None -> Ok (observation, phase1)

let run ?(config = default_config) ?(cancelled = never_cancelled) ?metrics ?observation adapter
    test =
  mincr metrics "check.runs";
  let phase1_result =
    match observation with
    | Some obs ->
      let histories = Observation.num_full obs + Observation.num_stuck obs in
      mincr metrics "check.phase1.skipped";
      Ok (obs, { stats = Explore.empty_stats; histories; time = 0.0 })
    | None -> synthesize ~config ~cancelled ?metrics adapter test
  in
  match phase1_result with
  | Error (v, phase1) ->
    mincr metrics "check.violations";
    { verdict = Error v; observation = Observation.create (); phase1; phase2 = None }
  | Ok (observation, phase1) ->
    (* Phase 2: enumerate concurrent executions, check against the
       observation set. *)
    let p2_start = now () in
    let p2_violation = ref None in
    let p2_histories = ref 0 in
    let dedup_hits = ref 0 in
    let witness_searches = ref 0 in
    let witness_probes = ref 0 in
    let stuck_checks = ref 0 in
    let stuck_probes = ref 0 in
    (* Distinct histories seen: schedules frequently reproduce the same
       event sequence, and the witness verdict only depends on the history,
       so each distinct one is checked once. *)
    let seen : (Lineup_history.Event.t list * bool, unit) Hashtbl.t = Hashtbl.create 256 in
    let p2_stats =
      Harness.run_phase config.phase2 ~adapter ~test ~on_history:(fun r ->
          if cancelled () then `Stop
          else
          match exception_of r.outcome with
          | Some v ->
            p2_violation := Some v;
            `Stop
          | None
            when config.dedup_histories
                 && Hashtbl.mem seen (History.events r.history, History.is_stuck r.history) ->
            incr dedup_hits;
            `Continue
          | None ->
            Hashtbl.replace seen (History.events r.history, History.is_stuck r.history) ();
            incr p2_histories;
            if History.is_stuck r.history then
              if config.classic_only then `Continue
              else begin
                incr stuck_checks;
                match Observation.linearizable_stuck ~probes:stuck_probes observation r.history with
                | Ok () -> `Continue
                | Error op ->
                  p2_violation := Some (Stuck_unjustified (r.history, op));
                  `Stop
              end
            else begin
              incr witness_searches;
              match Observation.find_witness_full ~probes:witness_probes observation r.history with
              | Some _ -> `Continue
              | None ->
                p2_violation := Some (No_witness r.history);
                `Stop
            end)
    in
    let phase2 = { stats = p2_stats; histories = !p2_histories; time = now () -. p2_start } in
    (match metrics with
     | Some m ->
       add_explore_stats m ~prefix:"phase2" p2_stats;
       Metrics.add m "check.phase2.histories_distinct" !p2_histories;
       Metrics.add m "check.phase2.dedup_hits" !dedup_hits;
       Metrics.add m "check.phase2.witness_searches" !witness_searches;
       Metrics.add m "check.phase2.witness_probes" !witness_probes;
       Metrics.add m "check.phase2.stuck_checks" !stuck_checks;
       Metrics.add m "check.phase2.stuck_probes" !stuck_probes
     | None -> ());
    trace_phase "phase2" phase2;
    let verdict = match !p2_violation with Some v -> Error v | None -> Ok () in
    (match verdict with
     | Ok () -> mincr metrics "check.passes"
     | Error _ -> mincr metrics "check.violations");
    { verdict; observation; phase1; phase2 = Some phase2 }
