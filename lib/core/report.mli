(** Violation reports in the style of Fig. 7 (bottom).

    "Line-Up encountered a non-linearizable history", followed by the test,
    the thread/op table of the violating history's section, and the
    interleaving — enough to understand the misbehavior without any
    knowledge of the implementation. *)

(** [times] (default [false]) includes the wall-clock phase durations in
    the rendering. Off by default so the report of a given result is
    byte-for-byte reproducible — across runs and across [-j] values — which
    is what the parallel-determinism tests and CI gates compare. *)
val pp_check_result :
  ?times:bool ->
  Format.formatter ->
  adapter:Adapter.t ->
  test:Test_matrix.t ->
  Check.result ->
  unit

val check_result_to_string :
  ?times:bool -> adapter:Adapter.t -> test:Test_matrix.t -> Check.result -> string

(** One-line verdict, e.g. ["PASS (1680 serial histories, 3120 executions)"]
    or ["FAIL: non-linearizable history"]. *)
val summary : Check.result -> string
