(** On-disk caching of phase-1 observation sets.

    §4.1 of the paper: "The set of observed serial histories Z is recorded
    in a file (called the observation file)" — the two phases are separate
    CHESS invocations communicating through that file, which also serves
    regression testing (re-checking a changed implementation against the
    previously recorded specification).

    The cache key combines a format version, a fingerprint of the phase-1
    exploration configuration, the adapter name and the full test content —
    so neither a changed test nor a changed exploration config (a different
    step budget can record a {e smaller} observation set) ever reuses a
    stale specification. The same version + fingerprint are stamped on the
    file's root element and re-verified on load; a mismatch (e.g. a file
    renamed by hand, or hash collision across schemes) counts as stale, is
    evicted, and phase 1 re-runs. Cached files are the Fig. 7 XML format,
    hence human-readable and diffable.

    [metrics], where accepted, counts [obs_cache.hit], [obs_cache.miss] and
    [obs_cache.stale] (evictions: embedded-stamp mismatches plus files left
    by the pre-versioned key scheme), in addition to the counters recorded
    by the underlying {!Check} calls. *)

(** [phase1 ?config ?metrics ~dir adapter test] returns the observation set
    for [test], loading it from [dir] when present and valid, and running +
    recording phase 1 otherwise. [dir] is created recursively on first
    write; concurrent creation by parallel workers is tolerated. [Error]
    propagates a phase-1 violation (possible only on a cache miss; a cached
    file of a deterministic run stays deterministic). The [bool] is [true]
    on a cache hit. *)
val phase1 :
  ?config:Check.config ->
  ?metrics:Lineup_observe.Metrics.t ->
  dir:string ->
  Adapter.t ->
  Test_matrix.t ->
  (Observation.t * bool, Check.violation) result

(** [check ?config ?metrics ~dir adapter test] — [Check.run] with the
    phase-1 result cached in [dir]. *)
val check :
  ?config:Check.config ->
  ?cancelled:(unit -> bool) ->
  ?metrics:Lineup_observe.Metrics.t ->
  dir:string ->
  Adapter.t ->
  Test_matrix.t ->
  Check.result

(** The cache file used for a given config/adapter/test triple (inside
    [dir]). [config] defaults to {!Check.default_config}; only its phase-1
    part is keyed. *)
val cache_path :
  ?config:Check.config -> dir:string -> Adapter.t -> Test_matrix.t -> string
