module Explore = Lineup_scheduler.Explore
module Pool = Lineup_parallel.Pool
module Metrics = Lineup_observe.Metrics

type outcome =
  | Failed of {
      test : Test_matrix.t;
      result : Check.result;
      tests_run : int;
      stats : Explore.stats;
    }
  | Budget_exhausted of { tests_run : int; stats : Explore.stats }

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

(* The AutoCheck enumeration of Fig. 6 as a single lazy sequence: for
   n = 1, 2, 3, … every test in M_{n×n}^{I_n}, with I_n the first n
   invocations of the adapter's universe. Lazy so that the parallel pool's
   bounded queue never forces more of the (unbounded) enumeration than the
   workers are about to consume. *)
let test_seq (adapter : Adapter.t) =
  let universe_size = List.length adapter.universe in
  let level n =
    Test_matrix.enumerate
      ~invocations:(take (min n universe_size) adapter.universe)
      ~rows:n ~cols:n
  in
  let rec levels n () = Seq.Cons (level n, levels (n + 1)) in
  Seq.concat (levels 1)

let result_stats (r : Check.result) =
  match r.Check.phase2 with
  | None -> r.Check.phase1.Check.stats
  | Some p2 -> Explore.merge_stats r.Check.phase1.Check.stats p2.Check.stats

let run ?config ?(domains = 1) ?metrics ~max_tests adapter =
  let with_metrics = Option.is_some metrics in
  let results =
    Pool.map_seq ~domains
      ~stop:(fun (_, r, _) -> Check.failed r)
      ~f:(fun ~cancelled test ->
        (* Per-job registry, returned with the result: the pool discards
           cancelled/post-stop jobs wholesale, so only the deterministic
           result prefix ever contributes counters — the merged totals are
           the sequential run's totals for every [domains] value. *)
        let jm = if with_metrics then Some (Metrics.create ()) else None in
        (test, Check.run ?config ~cancelled ?metrics:jm adapter test, jm))
      (Seq.take max_tests (test_seq adapter))
  in
  (match metrics with
   | Some m ->
     List.iter (fun (_, _, jm) -> Option.iter (fun jm -> Metrics.merge_into ~into:m jm) jm) results;
     Metrics.add m "auto.tests_run" (List.length results)
   | None -> ());
  let tests_run = List.length results in
  let stats =
    List.fold_left
      (fun acc (_, r, _) -> Explore.merge_stats acc (result_stats r))
      Explore.empty_stats results
  in
  match List.rev results with
  | (test, result, _) :: _ when Check.failed result ->
    Failed { test; result; tests_run; stats }
  | _ -> Budget_exhausted { tests_run; stats }
