module History = Lineup_history.History
module Serial_history = Lineup_history.Serial_history
module Op = Lineup_history.Op
module Explore = Lineup_scheduler.Explore

let pp_history_section ppf h =
  let key = Observation_file.history_key h in
  let xml =
    Observation_file.group_to_xml ~key
      ~interleavings:[ Observation_file.interleaving_tokens h ]
  in
  Fmt.pf ppf "%s" (Xml.to_string xml)

let summary (r : Check.result) =
  match r.verdict with
  | Check.Pass ->
    let p2 =
      match r.phase2 with
      | Some p -> Fmt.str ", %d concurrent executions" p.stats.Explore.executions
      | None -> ""
    in
    Fmt.str "PASS (%d serial histories%s)" r.phase1.histories p2
  | Check.Cancelled -> "CANCELLED: check incomplete, no verdict"
  | Check.Fail (Check.Nondeterministic _) -> "FAIL: nondeterministic serial behavior"
  | Check.Fail (Check.No_witness _) -> "FAIL: non-linearizable history"
  | Check.Fail (Check.Stuck_unjustified _) -> "FAIL: unjustified blocking (stuck history)"
  | Check.Fail (Check.Thread_exception _) -> "FAIL: operation raised an exception"

let pp_check_result ?(times = false) ppf ~(adapter : Adapter.t) ~test (r : Check.result) =
  let pp_time ppf t = if times then Fmt.pf ppf " in %.3fs" t in
  Fmt.pf ppf "@[<v>Line-Up check of %s@,@,Test:@,%a@,@," adapter.name Test_matrix.pp test;
  (match r.verdict with
   | Check.Pass | Check.Cancelled -> Fmt.pf ppf "Verdict: %s@," (summary r)
   | Check.Fail (Check.Nondeterministic (s1, s2)) ->
     Fmt.pf ppf
       "Line-Up encountered nondeterministic serial behavior;@,\
        no deterministic sequential specification exists.@,\
        Diverging serial histories:@,  %a@,  %a@,"
       Serial_history.pp s1 Serial_history.pp s2
   | Check.Fail (Check.No_witness h) ->
     Fmt.pf ppf
       "Line-Up encountered a non-linearizable history:@,%a" pp_history_section h
   | Check.Fail (Check.Stuck_unjustified (h, op)) ->
     Fmt.pf ppf
       "Line-Up encountered a stuck history whose pending operation %a@,\
        has no serial justification (erroneous blocking):@,%a"
       Op.pp op pp_history_section h
   | Check.Fail (Check.Thread_exception { tid; message }) ->
     Fmt.pf ppf "Operation on thread %d raised: %s@," tid message);
  Fmt.pf ppf "@,Phase 1: %d serial histories%a (%a)@," r.phase1.histories pp_time r.phase1.time
    Explore.pp_stats r.phase1.stats;
  (match r.phase2 with
   | Some p ->
     Fmt.pf ppf "Phase 2: %d concurrent histories%a (%a)@," p.histories pp_time p.time
       Explore.pp_stats p.stats
   | None -> Fmt.pf ppf "Phase 2: not run (phase 1 did not complete)@,");
  Fmt.pf ppf "@]"

let check_result_to_string ?times ~adapter ~test r =
  Fmt.str "%a" (fun ppf () -> pp_check_result ?times ppf ~adapter ~test r) ()
