(** Driving a finite test against an adapter under the model checker.

    Each explored execution creates a fresh instance, runs the [init]
    sequence single-threaded, then runs one thread per test column; the
    harness records the call and return events (with a scheduling point at
    each operation boundary) and hands the resulting history — full or stuck
    — to the caller. The [final] sequence, if any, runs single-threaded
    after all test threads complete and is recorded as operations of an
    extra observer thread. *)

type run_result = {
  history : Lineup_history.History.t;
  outcome : Lineup_scheduler.Explore.exec_outcome;
  log : Lineup_runtime.Exec_ctx.entry list;
      (** the shared-access log of the execution; empty unless
          [Exec_ctx.set_logging true] *)
}

(** [run_phase cfg ~adapter ~test ~on_history] explores the schedules of
    [test] under [cfg] and reports each execution's history. Returning
    [`Stop] aborts the exploration.

    [log] (here and in the variants below): scope the shared-access
    logging flag of {!Lineup_runtime.Exec_ctx} around the exploration —
    [~log:true] enables it, [~log:false] disables it, and either way the
    previous setting is restored on return {e and} on exception. When
    omitted the flag is left untouched. The analysis pipeline passes
    [~log:true] exactly when some attached analyzer reads the access
    log.

    [admit] (here and in {!run_phase_from}): forwarded to the explorer's
    admission filter — executions it rejects are counted in
    [stats.exact_bound_skips] and no history is built for them. *)
val run_phase :
  ?log:bool ->
  ?admit:(Lineup_scheduler.Explore.exec_outcome -> bool) ->
  Lineup_scheduler.Explore.config ->
  adapter:Adapter.t ->
  test:Test_matrix.t ->
  on_history:(run_result -> [ `Continue | `Stop ]) ->
  Lineup_scheduler.Explore.stats

(** [split_phase cfg ~depth ~adapter ~test ~on_history] runs the frontier
    warm-up of {!Lineup_scheduler.Explore.split} under the test harness:
    one full execution per depth-[depth] decision prefix, histories handed
    to [on_history] (return [`Stop] to abandon the warm-up, e.g. on
    cancellation). The returned prefixes partition the schedule tree; each
    is meant to be explored by {!run_phase_from}, possibly on another
    domain with its own adapter instances. *)
val split_phase :
  ?log:bool ->
  Lineup_scheduler.Explore.config ->
  depth:int ->
  adapter:Adapter.t ->
  test:Test_matrix.t ->
  on_history:(run_result -> [ `Continue | `Stop ]) ->
  Lineup_scheduler.Explore.frontier

(** [run_phase_from cfg ~prefix ~adapter ~test ~on_history] explores one
    frontier partition: replays [prefix] frozen and enumerates the subtree
    below it (see {!Lineup_scheduler.Explore.explore_from}). *)
val run_phase_from :
  ?log:bool ->
  ?admit:(Lineup_scheduler.Explore.exec_outcome -> bool) ->
  Lineup_scheduler.Explore.config ->
  prefix:Lineup_scheduler.Explore.prefix ->
  adapter:Adapter.t ->
  test:Test_matrix.t ->
  on_history:(run_result -> [ `Continue | `Stop ]) ->
  Lineup_scheduler.Explore.stats

(** Like {!run_phase} but with uniformly random scheduling decisions instead
    of systematic enumeration — the stress-testing baseline ("simple runtime
    monitoring is not sufficient", §4). *)
val run_phase_random :
  ?log:bool ->
  Lineup_scheduler.Explore.config ->
  rng:Random.State.t ->
  executions:int ->
  adapter:Adapter.t ->
  test:Test_matrix.t ->
  on_history:(run_result -> [ `Continue | `Stop ]) ->
  Lineup_scheduler.Explore.stats

(** The thread id used for [final]-sequence operations: the number of test
    columns. *)
val observer_tid : Test_matrix.t -> int
