module Invocation = Lineup_history.Invocation

type result = {
  test : Test_matrix.t;
  check : Check.result;
  checks_spent : int;
}

(* All tests obtained by deleting exactly one invocation — from any
   column (emptied columns removed), from the init sequence, or from the
   final sequence. Every candidate has exactly one fewer invocation than
   [m], so the greedy descent in [reduce] terminates. Column deletions
   come first: shrinking the concurrent part is what most often simplifies
   the counterexample. *)
let one_smaller (m : Test_matrix.t) =
  let cols = Array.to_list m.columns in
  let drop_nth l n = List.filteri (fun i _ -> i <> n) l in
  let column_deletions =
    List.concat
      (List.mapi
         (fun ci col ->
           List.mapi
             (fun ri _ ->
               let col' = drop_nth col ri in
               let cols' =
                 List.concat
                   (List.mapi (fun cj c -> if cj = ci then (if col' = [] then [] else [ col' ]) else [ c ]) cols)
               in
               Test_matrix.make ~init:m.init ~final:m.final cols')
             col)
         cols)
  in
  let init_deletions =
    List.mapi
      (fun i _ -> Test_matrix.make ~init:(drop_nth m.init i) ~final:m.final cols)
      m.init
  in
  let final_deletions =
    List.mapi
      (fun i _ -> Test_matrix.make ~init:m.init ~final:(drop_nth m.final i) cols)
      m.final
  in
  column_deletions @ init_deletions @ final_deletions

let reduce ?config ?cancelled adapter test =
  let checks_spent = ref 0 in
  let check m =
    incr checks_spent;
    Check.run ?config ?cancelled adapter m
  in
  let initial = check test in
  if Check.passed initial then
    invalid_arg "Minimize.reduce: the given test passes";
  if Check.cancelled initial then
    (* No verdict on the starting test — nothing to minimize. *)
    { test; check = initial; checks_spent = !checks_spent }
  else
    let rec go current current_result =
      let candidates = one_smaller current in
      let rec try_candidates = function
        | [] -> { test = current; check = current_result; checks_spent = !checks_spent }
        | m :: rest ->
          let r = check m in
          (* Shrink only onto candidates that exhibit the violation. A
             [Cancelled] verdict is no verdict: recursing onto it would
             "minimize" toward a test never seen to fail (and, with the
             cancellation token stuck on, walk all the way down). A passing
             candidate is skipped for the same reason as before. *)
          if Check.failed r then go m r else try_candidates rest
      in
      try_candidates candidates
    in
    go test initial
