module Event = Lineup_history.Event
module History = Lineup_history.History
module Rt = Lineup_runtime.Rt
module Exec_ctx = Lineup_runtime.Exec_ctx
module Explore = Lineup_scheduler.Explore

type run_result = {
  history : History.t;
  outcome : Explore.exec_outcome;
  log : Exec_ctx.entry list;
}

let observer_tid (test : Test_matrix.t) = Array.length test.columns

let callbacks ~(adapter : Adapter.t) ~(test : Test_matrix.t) ~on_history =
  let events : Event.t list ref = ref [] in
  let instance : Adapter.instance option ref = ref None in
  let record e = events := e :: !events in
  let run_op (inst : Adapter.instance) ~tid ~op_index inv =
    record (Event.call ~tid ~op_index inv);
    Exec_ctx.log (Exec_ctx.Op_start { tid; op_index });
    let resp = inst.invoke inv in
    (* The return marker is its own scheduling point (no-op in serial mode):
       the step recording the return event then carries an event footprint,
       so the partial-order reduction never commutes two returns — if it
       stayed inside the operation's last access step, two independent
       accesses' steps would swap and silently reorder the history. *)
    Rt.sched Rt.Return_boundary;
    Exec_ctx.log (Exec_ctx.Op_end { tid; op_index });
    record (Event.return ~tid ~op_index resp)
  in
  let column_body inst tid invs () =
    List.iteri
      (fun op_index inv ->
        Rt.op_boundary ();
        run_op inst ~tid ~op_index inv)
      invs
  in
  let setup () =
    events := [];
    let inst = adapter.create () in
    instance := Some inst;
    List.iter (fun inv -> ignore (inst.invoke inv)) test.init;
    Array.mapi (fun tid invs -> column_body inst tid invs) test.columns
  in
  let on_execution (outcome : Explore.exec_outcome) =
    (* Run the final observer sequence only when the test itself completed. *)
    let final_blocked = ref false in
    (match outcome.exec_end, test.final with
     | Explore.All_finished, _ :: _ ->
       let inst = Option.get !instance in
       let tid = observer_tid test in
       Exec_ctx.set_current_tid tid;
       (try
          Rt.run_inline (fun () ->
              List.iteri (fun op_index inv -> run_op inst ~tid ~op_index inv) test.final)
        with Failure _ -> final_blocked := true)
     | (Explore.All_finished | Explore.Deadlock _ | Explore.Serial_stuck _ | Explore.Diverged), _
       -> ());
    let stuck =
      (match outcome.exec_end with
       | Explore.All_finished -> false
       | Explore.Deadlock _ | Explore.Serial_stuck _ | Explore.Diverged -> true)
      || !final_blocked
    in
    let history = History.make ~stuck (List.rev !events) in
    on_history { history; outcome; log = Exec_ctx.current_log () }
  in
  setup, on_execution

(* [?log]: scope the access-logging flag around the exploration (set iff
   some attached analyzer needs the log, restored exception-safely by
   [Exec_ctx.with_logging]); absent, the flag is left untouched. *)
let scoped_log log body =
  match log with None -> body () | Some enabled -> Exec_ctx.with_logging enabled body

let run_phase ?log ?admit cfg ~adapter ~test ~on_history =
  let setup, on_execution = callbacks ~adapter ~test ~on_history in
  scoped_log log (fun () -> Explore.explore cfg ?admit ~setup ~on_execution ())

let split_phase ?log cfg ~depth ~adapter ~test ~on_history =
  let setup, on_execution = callbacks ~adapter ~test ~on_history in
  scoped_log log (fun () -> Explore.split cfg ~depth ~setup ~on_execution)

let run_phase_from ?log ?admit cfg ~prefix ~adapter ~test ~on_history =
  let setup, on_execution = callbacks ~adapter ~test ~on_history in
  scoped_log log (fun () -> Explore.explore_from cfg ?admit ~prefix ~setup ~on_execution ())

let run_phase_random ?log cfg ~rng ~executions ~adapter ~test ~on_history =
  let setup, on_execution = callbacks ~adapter ~test ~on_history in
  scoped_log log (fun () -> Explore.random_walk cfg ~rng ~executions ~setup ~on_execution)
