module Invocation = Lineup_history.Invocation
module Explore = Lineup_scheduler.Explore
module Metrics = Lineup_observe.Metrics

(* Bumped whenever the on-disk format or the key scheme changes; stamped
   into both the file name and the root element, so files written by an
   older scheme are never silently reused. *)
let format_version = 2

let test_key (test : Test_matrix.t) =
  let col invs = String.concat ";" (List.map Invocation.to_string invs) in
  String.concat "|"
    (col test.init
     :: Array.to_list (Array.map col test.columns)
     @ [ col test.final ])

let explore_fingerprint (c : Explore.config) =
  let mode = match c.Explore.mode with Explore.Serial -> "serial" | Explore.Concurrent -> "concurrent" in
  let opt = function None -> "-" | Some n -> string_of_int n in
  String.concat ","
    [ mode; opt c.Explore.preemption_bound; string_of_int c.Explore.max_steps;
      opt c.Explore.max_executions ]

(* Only the phase-1 exploration config shapes the observation set: the
   cached file is a phase-1 artifact, and keying on phase-2 settings would
   needlessly miss when only the bound changes. *)
let config_fingerprint config =
  let c =
    let conf : Check.config = Option.value config ~default:Check.default_config in
    conf.phase1
  in
  Digest.to_hex (Digest.string (explore_fingerprint c))

let cache_path ?config ~dir (adapter : Adapter.t) test =
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            [ string_of_int format_version; config_fingerprint config;
              adapter.Adapter.name; test_key test ]))
  in
  Filename.concat dir (Fmt.str "%s.xml" digest)

(* The pre-version-2 key: adapter + test only. Kept so a cache directory
   written by the old scheme is evicted rather than leaking files forever. *)
let legacy_cache_path ~dir (adapter : Adapter.t) test =
  let digest =
    Digest.to_hex (Digest.string (adapter.Adapter.name ^ "\x00" ^ test_key test))
  in
  Filename.concat dir (Fmt.str "%s.xml" digest)

(* Recursive, and tolerant of a concurrent creation racing us between the
   existence check and the mkdir (parallel workers share the cache dir). *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

let mincr metrics k = match metrics with Some m -> Metrics.incr m k | None -> ()

let phase1 ?config ?metrics ~dir adapter test =
  let path = cache_path ?config ~dir adapter test in
  let fingerprint = config_fingerprint config in
  let version = string_of_int format_version in
  let cached =
    if not (Sys.file_exists path) then None
    else begin
      let attrs, histories = Observation_file.load_full ~path in
      if
        List.assoc_opt "version" attrs = Some version
        && List.assoc_opt "fingerprint" attrs = Some fingerprint
      then Some histories
      else begin
        (* same file name but written under a different format/config:
           evict, don't trust *)
        mincr metrics "obs_cache.stale";
        (try Sys.remove path with Sys_error _ -> ());
        None
      end
    end
  in
  match cached with
  | Some histories -> begin
    mincr metrics "obs_cache.hit";
    match Observation_file.observation_of_histories histories with
    | Ok obs -> Ok (obs, true)
    | Error (s1, s2) -> Error (Check.Nondeterministic (s1, s2))
  end
  | None -> begin
    mincr metrics "obs_cache.miss";
    let legacy = legacy_cache_path ~dir adapter test in
    if Sys.file_exists legacy then begin
      mincr metrics "obs_cache.stale";
      (try Sys.remove legacy with Sys_error _ -> ())
    end;
    match Check.synthesize ?config ?metrics adapter test with
    | Ok (obs, _report) ->
      mkdir_p dir;
      Observation_file.save
        ~root_attrs:[ "version", version; "fingerprint", fingerprint ]
        ~path obs;
      Ok (obs, false)
    | Error (Check.Fail v, _report) -> Error v
    | Error ((Check.Pass | Check.Cancelled), _report) ->
      (* no cancellation token is passed above, so synthesize cannot be
         cancelled, and [Pass] never occurs on the error side *)
      assert false
  end

let check ?config ?cancelled ?metrics ~dir adapter test =
  match phase1 ?config ?metrics ~dir adapter test with
  | Ok (observation, _hit) -> Check.run ?config ?cancelled ?metrics ~observation adapter test
  | Error _ ->
    (* a phase-1 violation (cached or fresh): run uncached so the result
       reflects the current implementation *)
    Check.run ?config ?cancelled ?metrics adapter test
