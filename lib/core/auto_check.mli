(** [AutoCheck(X)] — Fig. 6: fully automatic checking.

    For n = 1, 2, 3, … let [I_n] be the first [n] invocations of the
    adapter's universe and run [Check] on every test in [M_{n×n}^{I_n}].
    On an implementation that is not deterministically linearizable this
    eventually fails (Theorem 7 — soundness); on a correct implementation it
    does not terminate, so a budget of tests must be supplied. *)

type outcome =
  | Failed of {
      test : Test_matrix.t;
      result : Check.result;
      tests_run : int;
          (** 1-based position of [test] in the enumeration — identical for
              every [domains] value *)
      stats : Lineup_scheduler.Explore.stats;
          (** both phases of every counted [Check], merged *)
    }
  | Budget_exhausted of { tests_run : int; stats : Lineup_scheduler.Explore.stats }

(** [run ?config ?domains ~max_tests adapter] executes the AutoCheck loop
    until a violation is found or [max_tests] Check invocations have been
    spent.

    [domains] (default [1]) fans the independent [Check(X, m)] jobs out
    across that many OCaml domains through {!Lineup_parallel.Pool}: the
    test enumeration is still pulled lazily, a violation found by any
    worker cancels in-flight {e later} jobs at their next execution
    boundary, and the reported failure is the {e first} failing test in
    enumeration order — so the outcome (test, verdict, [tests_run], merged
    [stats]) is identical to a sequential run. Parallel partitioning does
    not affect the completeness guarantee of §4.3: each job is a whole
    [Check(X, m)]; the schedule space of a single test is never split.

    [metrics] receives the merged per-job counters (see {!Check.run}) plus
    [auto.tests_run]. Each pool job collects into its own registry which
    travels with the job's result, so only the deterministic result prefix
    is merged — the totals are byte-for-byte [domains]-independent. *)
val run :
  ?config:Check.config ->
  ?domains:int ->
  ?metrics:Lineup_observe.Metrics.t ->
  max_tests:int ->
  Adapter.t ->
  outcome
