module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Event = Lineup_history.Event
module History = Lineup_history.History
module Serial_history = Lineup_history.Serial_history

type key = (int * (Invocation.t * Value.t option) list) list

(* Operation ids are assigned per section: threads in ascending id order,
   operations in per-thread order, numbered from 1. *)
let id_map (key : key) =
  let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 1 in
  List.iter
    (fun (tid, ops) ->
      List.iteri
        (fun op_index _ ->
          Hashtbl.replace tbl (tid, op_index) !next;
          incr next)
        ops)
    key;
  tbl

let thread_label_of_tid = Event.thread_label

let tid_of_thread_label s =
  if s = "" then invalid_arg "Observation_file: empty thread label";
  let letter = Char.code s.[0] - Char.code 'A' in
  if letter < 0 || letter > 25 then
    invalid_arg (Fmt.str "Observation_file: bad thread label %S" s);
  if String.length s = 1 then letter
  else letter + (26 * int_of_string (String.sub s 1 (String.length s - 1)))

let group_to_xml ~(key : key) ~interleavings =
  let ids = id_map key in
  let thread_elems =
    List.map
      (fun (tid, ops) ->
        let tokens =
          List.mapi
            (fun op_index (_, resp) ->
              let id = Hashtbl.find ids (tid, op_index) in
              match resp with
              | Some _ -> string_of_int id
              | None -> string_of_int id ^ "B")
            ops
        in
        Xml.Element
          ( "thread",
            [ "id", thread_label_of_tid tid ],
            match tokens with [] -> [] | _ -> [ Xml.Text (String.concat " " tokens) ] ))
      key
  in
  let op_elems =
    List.concat_map
      (fun (tid, ops) ->
        List.mapi
          (fun op_index ((inv : Invocation.t), resp) ->
            let id = Hashtbl.find ids (tid, op_index) in
            let attrs = [ "id", string_of_int id; "name", inv.name ] in
            let attrs =
              match inv.arg with
              | Value.Unit -> attrs
              | arg -> attrs @ [ "value", Value.to_string arg ]
            in
            let attrs =
              match resp with
              | Some r -> attrs @ [ "result", Value.to_string r ]
              | None -> attrs
            in
            Xml.Element ("op", attrs, []))
          ops)
      key
  in
  let history_elems = List.map (fun s -> Xml.Element ("history", [], [ Xml.Text s ])) interleavings in
  Xml.Element ("observation", [], thread_elems @ op_elems @ history_elems)

(* Tokens of a history using section-style ids (per-thread order). *)
let interleaving_tokens_keyed ids h =
  let tokens =
    List.map
      (fun (e : Event.t) ->
        let id = Hashtbl.find ids (e.tid, e.op_index) in
        match e.dir with
        | Event.Call _ -> Fmt.str "%d[" id
        | Event.Return _ -> Fmt.str "]%d" id)
      (History.events h)
  in
  let tokens = if History.is_stuck h then tokens @ [ "#" ] else tokens in
  String.concat " " tokens

let history_key h : key =
  let tbl : (int, (Invocation.t * Value.t option) list) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun (op : Lineup_history.Op.t) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt tbl op.tid) in
      Hashtbl.replace tbl op.tid ((op.inv, op.resp) :: l))
    (History.ops h);
  Hashtbl.fold (fun tid l acc -> (tid, List.rev l) :: acc) tbl []
  |> List.sort (fun (t1, _) (t2, _) -> Int.compare t1 t2)

let interleaving_tokens h = interleaving_tokens_keyed (id_map (history_key h)) h

let to_xml ?(root_attrs = []) obs =
  let groups : (key, Serial_history.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let insert s =
    let key = Serial_history.thread_key s in
    match Hashtbl.find_opt groups key with
    | Some l -> l := s :: !l
    | None -> Hashtbl.replace groups key (ref [ s ])
  in
  List.iter insert (Observation.full_histories obs);
  List.iter insert (Observation.stuck_histories obs);
  let sections =
    Hashtbl.fold
      (fun key histories acc ->
        let ids = id_map key in
        let interleavings =
          List.rev_map
            (fun s -> interleaving_tokens_keyed ids (Serial_history.to_history s))
            !histories
        in
        (key, group_to_xml ~key ~interleavings) :: acc)
      groups []
    (* deterministic output order *)
    |> List.sort (fun (k1, _) (k2, _) -> Stdlib.compare k1 k2)
    |> List.map snd
  in
  Xml.Element ("observationset", root_attrs, sections)

let to_string ?root_attrs obs = Xml.to_string (to_xml ?root_attrs obs)

let save ?root_attrs ~path obs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?root_attrs obs))

(* ---------------- parsing ---------------- *)

let parse_observation node =
  (* op table: id -> (invocation, response option) *)
  let ops : (int, Invocation.t * Value.t option) Hashtbl.t = Hashtbl.create 16 in
  (* op id -> thread id *)
  let op_tid : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (tag, el) ->
      match tag with
      | "op" ->
        let id = int_of_string (Xml.attr el "id") in
        let name = Xml.attr el "name" in
        let arg =
          match Xml.attr_opt el "value" with
          | Some s -> Value.of_string s
          | None -> Value.Unit
        in
        let resp = Option.map Value.of_string (Xml.attr_opt el "result") in
        Hashtbl.replace ops id (Invocation.make ~arg name, resp)
      | "thread" ->
        let tid = tid_of_thread_label (Xml.attr el "id") in
        let tokens =
          String.split_on_char ' ' (Xml.text el) |> List.filter (fun s -> s <> "")
        in
        List.iter
          (fun tok ->
            let tok =
              if String.length tok > 0 && tok.[String.length tok - 1] = 'B' then
                String.sub tok 0 (String.length tok - 1)
              else tok
            in
            Hashtbl.replace op_tid (int_of_string tok) tid)
          tokens
      | _ -> ())
    (Xml.elements node);
  let lookup id =
    match Hashtbl.find_opt ops id, Hashtbl.find_opt op_tid id with
    | Some (inv, resp), Some tid -> tid, inv, resp
    | _ -> invalid_arg (Fmt.str "Observation_file: unknown op id %d" id)
  in
  (* each <history> is a serial interleaving: "i[ ]i" pairs, optionally a
     final "i[ #" *)
  let parse_history el =
    let tokens = String.split_on_char ' ' (Xml.text el) |> List.filter (fun s -> s <> "") in
    let rec go acc = function
      | [] -> Serial_history.make (List.rev acc)
      | [ call; "#" ] when String.length call > 1 && call.[String.length call - 1] = '[' ->
        let id = int_of_string (String.sub call 0 (String.length call - 1)) in
        let tid, inv, _ = lookup id in
        Serial_history.make ~stuck:(Some (tid, inv)) (List.rev acc)
      | call :: ret :: rest
        when String.length call > 1
             && call.[String.length call - 1] = '['
             && String.length ret > 1
             && ret.[0] = ']' ->
        let cid = int_of_string (String.sub call 0 (String.length call - 1)) in
        let rid = int_of_string (String.sub ret 1 (String.length ret - 1)) in
        if cid <> rid then
          invalid_arg "Observation_file: history is not serial (mismatched call/return)";
        let tid, inv, resp = lookup cid in
        let resp =
          match resp with
          | Some r -> r
          | None -> invalid_arg (Fmt.str "Observation_file: op %d completes but has no result" cid)
        in
        go ({ Serial_history.tid; inv; resp } :: acc) rest
      | tok :: _ -> invalid_arg (Fmt.str "Observation_file: unexpected token %S" tok)
    in
    go [] tokens
  in
  List.filter_map
    (fun (tag, el) -> if tag = "history" then Some (parse_history el) else None)
    (Xml.elements node)

let of_string_full s =
  let root = Xml.of_string s in
  if Xml.tag root <> "observationset" then
    invalid_arg "Observation_file: expected <observationset>";
  let attrs = match root with Xml.Element (_, attrs, _) -> attrs | Xml.Text _ -> [] in
  let histories =
    List.concat_map
      (fun (tag, el) -> if tag = "observation" then parse_observation el else [])
      (Xml.elements root)
  in
  attrs, histories

let of_string s = snd (of_string_full s)

let load_full ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string_full (really_input_string ic (in_channel_length ic)))

let load ~path = snd (load_full ~path)

let observation_of_histories histories =
  let obs = Observation.create () in
  let rec go = function
    | [] -> Ok obs
    | s :: rest -> (
      match Observation.add obs s with
      | Ok () -> go rest
      | Error pair -> Error pair)
  in
  go histories
