(** The observation-file format of Fig. 7.

    Histories are grouped into [<observation>] sections; all histories in a
    section exhibit the same operation sequences for each thread and differ
    only in the interleaving. Each section lists its threads ([<thread
    id="A">1 2</thread>], a blocked final operation carrying a [B] suffix),
    its operations ([<op id="1" name="Add" value="200" result="unit"/>]; a
    blocking operation has no [result]) and one [<history>] element per
    interleaving ([1[ ]1 2[ ]2], stuck histories ending in [#]).

    One deliberate deviation from Fig. 7: operation arguments and results
    are XML attributes rather than element text (the paper's
    [<op id="1" name="Add">value="200"</op>]), which round-trips robustly
    for string-valued arguments. *)

(** [root_attrs] (default [[]]) are attached to the [<observationset>] root
    element — {!Obs_cache} stamps its format version and configuration
    fingerprint there. They do not affect the histories and are ignored by
    {!of_string}/{!load}; use {!of_string_full}/{!load_full} to read them
    back. *)
val to_xml : ?root_attrs:(string * string) list -> Observation.t -> Xml.t

val to_string : ?root_attrs:(string * string) list -> Observation.t -> string
val save : ?root_attrs:(string * string) list -> path:string -> Observation.t -> unit

(** [of_string s] parses an observation file back into its serial
    histories. Raises [Invalid_argument] on malformed input. *)
val of_string : string -> Lineup_history.Serial_history.t list

val load : path:string -> Lineup_history.Serial_history.t list

(** Like {!of_string}/{!load}, additionally returning the root element's
    attributes (empty for files written without [root_attrs]). *)
val of_string_full :
  string -> (string * string) list * Lineup_history.Serial_history.t list

val load_full :
  path:string -> (string * string) list * Lineup_history.Serial_history.t list

(** Rebuild an observation set, reporting nondeterminism like
    [Observation.add]. *)
val observation_of_histories :
  Lineup_history.Serial_history.t list ->
  (Observation.t,
   Lineup_history.Serial_history.t * Lineup_history.Serial_history.t)
  result

(** [group_to_xml ~key ~interleavings] renders one [<observation>] section:
    [key] gives each thread's operation sequence, [interleavings] the token
    strings of its histories. Exposed for {!Report}. *)
val group_to_xml :
  key:(int * (Lineup_history.Invocation.t * Lineup_value.Value.t option) list) list ->
  interleavings:string list ->
  Xml.t

(** Interleaving token string of an arbitrary history, with operation ids
    assigned per-thread as in the section's op table (not call order). *)
val interleaving_tokens : Lineup_history.History.t -> string

(** The section grouping key of a history: per-thread operation sequences. *)
val history_key :
  Lineup_history.History.t ->
  (int * (Lineup_history.Invocation.t * Lineup_value.Value.t option) list) list
