module Explore = Lineup_scheduler.Explore
module Pool = Lineup_parallel.Pool
module Metrics = Lineup_observe.Metrics

type test_outcome = {
  test : Test_matrix.t;
  result : Check.result;
}

type report = {
  outcomes : test_outcome list;
  passed : int;
  failed : int;
  first_failure : test_outcome option;
  stats : Explore.stats;
}

let result_stats (r : Check.result) =
  match r.Check.phase2 with
  | None -> r.Check.phase1.Check.stats
  | Some p2 -> Explore.merge_stats r.Check.phase1.Check.stats p2.Check.stats

let report_of_outcomes outcomes =
  let failing o = Check.failed o.result in
  {
    outcomes;
    passed = List.length (List.filter (fun o -> not (failing o)) outcomes);
    failed = List.length (List.filter failing outcomes);
    first_failure = List.find_opt failing outcomes;
    stats =
      List.fold_left
        (fun acc o -> Explore.merge_stats acc (result_stats o.result))
        Explore.empty_stats outcomes;
  }

let record_samples metrics outcomes =
  match metrics with
  | Some m -> Metrics.add m "random.samples" (List.length outcomes)
  | None -> ()

let run_custom ?config ?(stop_at_first = false) ?metrics ~gen ~samples adapter =
  let outcomes = ref [] in
  (try
     for _ = 1 to samples do
       let test = gen () in
       let result = Check.run ?config ?metrics adapter test in
       outcomes := { test; result } :: !outcomes;
       if Check.failed result && stop_at_first then raise Exit
     done
   with Exit -> ());
  let outcomes = List.rev !outcomes in
  record_samples metrics outcomes;
  report_of_outcomes outcomes

let run ?config ?stop_at_first ?metrics ?(init = []) ?(final = []) ~rng ~invocations ~rows ~cols
    ~samples adapter =
  let gen () = Test_matrix.random ~init ~final ~rng ~invocations ~rows ~cols () in
  run_custom ?config ?stop_at_first ?metrics ~gen ~samples adapter

let run_seqs ?config ?stop_at_first ?(init = []) ?(final = []) ~rng ~sequences ~rows ~cols
    ~samples adapter =
  let gen () = Test_matrix.random_seqs ~init ~final ~rng ~sequences ~rows ~cols () in
  run_custom ?config ?stop_at_first ~gen ~samples adapter

let run_parallel ?config ?(stop_at_first = false) ?metrics ?(init = []) ?(final = []) ~domains
    ~seed ~invocations ~rows ~cols ~samples adapter =
  if domains < 1 then invalid_arg "Random_check.run_parallel: domains must be >= 1";
  let with_metrics = Option.is_some metrics in
  let results =
    Pool.map_seq ~domains
      ~stop:(fun (o, _) -> stop_at_first && Check.failed o.result)
      ~f:(fun ~cancelled i ->
        (* Sample i draws from its own PRNG stream derived from (seed, i),
           so the sample set is a function of the seed alone — the domain
           count affects wall-clock time and nothing else. The per-job
           metrics registry rides with the result so that discarded jobs
           drop their counters (see Auto_check). *)
        let rng = Random.State.make [| seed; i |] in
        let test = Test_matrix.random ~init ~final ~rng ~invocations ~rows ~cols () in
        let jm = if with_metrics then Some (Metrics.create ()) else None in
        ({ test; result = Check.run ?config ~cancelled ?metrics:jm adapter test }, jm))
      (Seq.init samples Fun.id)
  in
  (match metrics with
   | Some m ->
     List.iter (fun (_, jm) -> Option.iter (fun jm -> Metrics.merge_into ~into:m jm) jm) results
   | None -> ());
  let outcomes = List.map fst results in
  record_samples metrics outcomes;
  report_of_outcomes outcomes
