(** [RandomCheck(X, I, i, j, n)] — Fig. 8.

    Runs [Check] on a uniform random sample of tests from [M_{i×j}^I].
    Like [Check], it is complete (any reported violation is real); unlike
    [AutoCheck] it has no soundness guarantee — bugs may be missed — but the
    paper found it very effective in practice (Section 4.3), and it is what
    the evaluation of Section 5 uses (100 random 3×3 tests per class). *)

type test_outcome = {
  test : Test_matrix.t;
  result : Check.result;
}

type report = {
  outcomes : test_outcome list;  (** in sample order *)
  passed : int;
  failed : int;
  first_failure : test_outcome option;
  stats : Lineup_scheduler.Explore.stats;
      (** both phases of every outcome's [Check], merged in sample order *)
}

(** [run ?config ?stop_at_first ~rng ~invocations ~rows ~cols ~samples
    adapter] samples [samples] tests of dimension [rows × cols] (threads =
    columns, as in the paper's matrix view) with entries from [invocations]
    and checks each. When [stop_at_first] is set (default [false]), sampling
    stops after the first failing test.

    [metrics], here and in {!run_custom}/{!run_parallel}, receives the
    counters of every counted [Check] (see {!Check.run}) plus
    [random.samples]; in {!run_parallel} the per-job registries of
    discarded jobs are dropped, keeping the totals [domains]-independent. *)
val run :
  ?config:Check.config ->
  ?stop_at_first:bool ->
  ?metrics:Lineup_observe.Metrics.t ->
  ?init:Lineup_history.Invocation.t list ->
  ?final:Lineup_history.Invocation.t list ->
  rng:Random.State.t ->
  invocations:Lineup_history.Invocation.t list ->
  rows:int ->
  cols:int ->
  samples:int ->
  Adapter.t ->
  report

(** [run_custom ~gen ~samples] samples tests from an arbitrary generator. *)
val run_custom :
  ?config:Check.config ->
  ?stop_at_first:bool ->
  ?metrics:Lineup_observe.Metrics.t ->
  gen:(unit -> Test_matrix.t) ->
  samples:int ->
  Adapter.t ->
  report

(** Like {!run}, but each matrix cell is a whole invocation sequence drawn
    from [sequences] (§4.3). *)
val run_seqs :
  ?config:Check.config ->
  ?stop_at_first:bool ->
  ?init:Lineup_history.Invocation.t list ->
  ?final:Lineup_history.Invocation.t list ->
  rng:Random.State.t ->
  sequences:Lineup_history.Invocation.t list list ->
  rows:int ->
  cols:int ->
  samples:int ->
  Adapter.t ->
  report

(** [run_parallel ~domains ~seed ...] fans the sample out across [domains]
    OCaml domains through {!Lineup_parallel.Pool} — §4.3: random sampling
    "is embarrassingly parallel: it is very easy to distribute the various
    tests and let each core run Check independently".

    Sample [i] is generated from its own PRNG stream derived from
    [(seed, i)], and results are reported in sample order, so the report
    (outcomes, verdicts, first failure, merged stats) is a function of
    [seed] alone: [~domains:8] returns exactly what [~domains:1] returns,
    only faster. With [stop_at_first] (default [false]), the first failing
    sample cancels later in-flight samples at their next execution boundary
    and the report is the deterministic prefix ending at that failure.
    Per-execution state is domain-local, so explorations do not
    interfere. *)
val run_parallel :
  ?config:Check.config ->
  ?stop_at_first:bool ->
  ?metrics:Lineup_observe.Metrics.t ->
  ?init:Lineup_history.Invocation.t list ->
  ?final:Lineup_history.Invocation.t list ->
  domains:int ->
  seed:int ->
  invocations:Lineup_history.Invocation.t list ->
  rows:int ->
  cols:int ->
  samples:int ->
  Adapter.t ->
  report
