module Explore = Lineup_scheduler.Explore
module Exec_ctx = Lineup_runtime.Exec_ctx
module Metrics = Lineup_observe.Metrics
module Trace = Lineup_observe.Trace
module Pool = Lineup_parallel.Pool

type report = {
  packs : Analyzer.packed list;
  stats : Explore.stats;
  interrupted : bool;
}

let add_explore_stats m ~prefix (s : Explore.stats) =
  let c k v = Metrics.add m (Fmt.str "explore.%s.%s" prefix k) v in
  c "executions" s.Explore.executions;
  c "steps" s.Explore.total_steps;
  c "deadlocks" s.Explore.deadlocks;
  c "divergences" s.Explore.divergences;
  c "serial_stucks" s.Explore.serial_stucks;
  c "pruned_choices" s.Explore.pruned_choices;
  c "preemptions" s.Explore.preemptions_spent;
  c "yields" s.Explore.yields;
  (* Conditional: SC explorations never flush, and their metrics files must
     stay byte-identical to the pre-weak-memory output. *)
  if s.Explore.flushes > 0 then c "flushes" s.Explore.flushes;
  c "choice_points" s.Explore.choice_points;
  c "exact_bound_skips" s.Explore.exact_bound_skips;
  c "por.sleep_set_skips" s.Explore.sleep_set_skips;
  c "por.backtrack_points" s.Explore.backtrack_points;
  c "incomplete" (if s.Explore.complete then 0 else 1)

let add_analyzer_metrics m pack =
  let (Analyzer.Packed ((module A), _)) = pack in
  List.iter (fun (k, v) -> Metrics.add m (Fmt.str "analyze.%s.%s" A.name k) v)
    (Analyzer.metrics pack)

let never_cancelled () = false

(* One fleet of running analyzers: the packed states plus a done-latch per
   analyzer. A done analyzer is never stepped again; the exploration stops
   once every latch is set. *)
type fleet = {
  fl_packs : Analyzer.packed array;
  fl_done : bool array;
}

let fleet_make analyzers =
  {
    fl_packs = Array.of_list (List.map Analyzer.fresh analyzers);
    fl_done = Array.make (List.length analyzers) false;
  }

let fleet_step fl r =
  Array.iteri
    (fun i p ->
      if not fl.fl_done.(i) then
        match Analyzer.step p r with `Done -> fl.fl_done.(i) <- true | `Continue -> ())
    fl.fl_packs

let fleet_all_done fl = Array.for_all Fun.id fl.fl_done

(* The single-domain path: one exploration, one fleet. *)
let run_monolithic config ~log ~cancelled ~analyzers ~adapter ~test =
  let fl = fleet_make analyzers in
  let interrupted = ref false in
  let stats =
    Harness.run_phase ~log config ~adapter ~test ~on_history:(fun r ->
        if cancelled () then begin
          interrupted := true;
          `Stop
        end
        else begin
          fleet_step fl r;
          if fleet_all_done fl then `Stop else `Continue
        end)
  in
  (Array.to_list fl.fl_packs, stats, !interrupted, [])

type partition_result = {
  pt_stats : Explore.stats;
  pt_packs : Analyzer.packed array;
  pt_all_done : bool;
  pt_interrupted : bool;
}

(* The frontier path. The warm-up runs on the calling domain with logging
   off (analyzers do not step on warm-up executions — each is re-executed
   as the leftmost leaf of its partition, where it is consumed in canonical
   order); every partition job wraps its own exploration in [with_logging]
   because the flag is domain-local. Determinism: the frontier is fixed
   before any partition runs, [Pool.map_seq] returns the submission-order
   prefix of partition results up to the earliest stopping one regardless
   of [domains], and the fold below merges analyzer states in frontier
   order — so the merged states are a function of the frontier alone. *)
let run_frontier config ~domains ~depth ~log ~cancelled ~analyzers ~adapter ~test =
  let warmup_interrupted = ref false in
  let frontier =
    Harness.split_phase config ~depth ~adapter ~test ~on_history:(fun _r ->
        if cancelled () then begin
          warmup_interrupted := true;
          `Stop
        end
        else `Continue)
  in
  let run_partition ~cancelled:pool_cancelled (i, prefix) =
    let t0 = Lineup_observe.Monotonic.now () in
    let fl = fleet_make analyzers in
    let interrupted = ref false in
    let stats =
      Harness.run_phase_from ~log config ~prefix ~adapter ~test ~on_history:(fun r ->
          if pool_cancelled () || cancelled () then begin
            interrupted := true;
            `Stop
          end
          else begin
            fleet_step fl r;
            if fleet_all_done fl then `Stop else `Continue
          end)
    in
    if Trace.enabled () then
      Trace.emit "pipeline.partition"
        [
          "index", Trace.Int i;
          "executions", Trace.Int stats.Explore.executions;
          "dt", Trace.Float (Lineup_observe.Monotonic.now () -. t0);
        ];
    {
      pt_stats = stats;
      pt_packs = fl.fl_packs;
      pt_all_done = fleet_all_done fl;
      pt_interrupted = !interrupted;
    }
  in
  let results =
    if !warmup_interrupted then []
    else
      Pool.map_seq ~domains
        ~stop:(fun p -> p.pt_all_done || p.pt_interrupted)
        ~f:run_partition
        (List.to_seq (List.mapi (fun i prefix -> i, prefix) frontier.Explore.prefixes))
  in
  let packs =
    match results with
    | [] -> List.map Analyzer.fresh analyzers
    | p0 :: rest ->
      Array.to_list
        (List.fold_left
           (fun acc p -> Array.map2 Analyzer.merge acc p.pt_packs)
           p0.pt_packs rest)
  in
  let stats =
    List.fold_left
      (fun acc p -> Explore.merge_stats acc p.pt_stats)
      frontier.Explore.warmup results
  in
  let interrupted = !warmup_interrupted || List.exists (fun p -> p.pt_interrupted) results in
  (packs, stats, interrupted, [ `Frontier (frontier, results) ])

let run ?domains ?(frontier_depth = 4) ?(cancelled = never_cancelled) ?metrics
    ?(metrics_prefix = "phase2") config ~analyzers ~adapter ~test () =
  if analyzers = [] then invalid_arg "Pipeline.run: no analyzers attached";
  let log = List.exists Analyzer.needs_log analyzers in
  let packs, stats, interrupted, extra =
    match domains with
    | None -> run_monolithic config ~log ~cancelled ~analyzers ~adapter ~test
    | Some domains ->
      run_frontier config ~domains ~depth:frontier_depth ~log ~cancelled ~analyzers ~adapter
        ~test
  in
  (match metrics with
   | Some m ->
     (match extra with
      | [ `Frontier (frontier, results) ] ->
        add_explore_stats m ~prefix:metrics_prefix frontier.Explore.warmup;
        Metrics.add m
          (Fmt.str "explore.%s.partitions" metrics_prefix)
          (List.length frontier.Explore.prefixes);
        Metrics.add m
          (Fmt.str "explore.%s.warmup_executions" metrics_prefix)
          frontier.Explore.warmup.Explore.executions;
        List.iteri
          (fun i p ->
            add_explore_stats m ~prefix:metrics_prefix p.pt_stats;
            Metrics.add m
              (Fmt.str "explore.%s.partition.%03d.executions" metrics_prefix i)
              p.pt_stats.Explore.executions)
          results
      | _ -> add_explore_stats m ~prefix:metrics_prefix stats);
     List.iter (add_analyzer_metrics m) packs
   | None -> ());
  { packs; stats; interrupted }
