(** The black-box interface between Line-Up and an implementation under
    test.

    Line-Up needs nothing from an implementation beyond the ability to
    create a fresh instance and invoke named operations on it — no source
    code, no annotations (the paper's automation claim). An adapter packages
    those two capabilities plus the invocation universe [I_o] used by the
    automatic test generators (Section 3.4).

    Implementations must be written against [Lineup_runtime] so the model
    checker can control their scheduling; [create] runs before the test
    threads start (effects serviced inline) and may perform initialization
    operations. *)

type instance = {
  invoke : Lineup_history.Invocation.t -> Lineup_value.Value.t;
}

type t = {
  name : string;
  universe : Lineup_history.Invocation.t list;
      (** the enumeration [I_o = {i1, i2, ...}] of representative
          invocations; order matters for [Auto_check]'s [I_n] prefixes *)
  spec : Lineup_spec.Spec.packed option;
      (** optional declared sequential specification, serially equivalent to
          the implementation. Purely an acceleration hint: when present, the
          spec-specialized membership layer ([--membership auto]) may decide
          phase-2 history membership by class monitor or P-compositional
          splitting instead of the generic witness search. Verdicts must not
          depend on it — the CI equivalence lane and the cross-validation
          tests enforce that. [None] always means the generic search. *)
  create : unit -> instance;
}

val make :
  name:string ->
  universe:Lineup_history.Invocation.t list ->
  ?spec:Lineup_spec.Spec.packed ->
  (unit -> instance) ->
  t

(** [invocation adapter name] finds the first universe invocation with the
    given operation name. Raises [Not_found] if absent. *)
val invocation : t -> string -> Lineup_history.Invocation.t
