module Invocation = Lineup_history.Invocation
module Value = Lineup_value.Value

type instance = {
  invoke : Invocation.t -> Value.t;
}

type t = {
  name : string;
  universe : Invocation.t list;
  spec : Lineup_spec.Spec.packed option;
  create : unit -> instance;
}

let make ~name ~universe ?spec create = { name; universe; spec; create }

let invocation adapter name =
  match List.find_opt (fun (i : Invocation.t) -> String.equal i.name name) adapter.universe with
  | Some i -> i
  | None -> raise Not_found
