module Trace = Lineup_observe.Trace

type cancelled = unit -> bool

let default_domains () = Domain.recommended_domain_count ()

(* Trace hooks. Events carry the worker's domain id and the submission
   index; the consumer reconstructs queue-depth curves, per-domain job
   distribution, and cancellation latency (the gap between a [pool.stop]
   and the last [pool.job_done] with [kept=false]) from the timestamped
   NDJSON stream. All hooks are behind [Trace.enabled] — one relaxed
   atomic load when tracing is off. *)
let domain_id () = (Domain.self () :> int)

let trace_take ~index ~queue_depth =
  if Trace.enabled () then
    Trace.emit "pool.take"
      [
        "index", Trace.Int index;
        "domain", Trace.Int (domain_id ());
        "queue_depth", Trace.Int queue_depth;
      ]

let trace_job_done ~index ~kept ~dt =
  if Trace.enabled () then
    Trace.emit "pool.job_done"
      [
        "index", Trace.Int index;
        "domain", Trace.Int (domain_id ());
        "kept", Trace.Bool kept;
        "dt", Trace.Float dt;
      ]

let trace_stop ~index =
  if Trace.enabled () then
    Trace.emit "pool.stop"
      [ "index", Trace.Int index; "domain", Trace.Int (domain_id ()) ]

let trace_skip ~index =
  if Trace.enabled () then
    Trace.emit "pool.skip"
      [ "index", Trace.Int index; "domain", Trace.Int (domain_id ()) ]

(* ---------------- sequential fallback (domains <= 1) ---------------- *)

let never_cancelled () = false

let map_sequential ~stop ~f jobs =
  let rec go acc seq =
    match seq () with
    | Seq.Nil -> List.rev acc
    | Seq.Cons (x, rest) ->
      let r = f ~cancelled:never_cancelled x in
      if stop r then List.rev (r :: acc) else go (r :: acc) rest
  in
  go [] jobs

(* ---------------- parallel pool ---------------- *)

(* Shared state. The bounded queue and [closed] are protected by [mutex];
   [stop_at] is the earliest submission index whose result satisfied [stop]
   (or raised), [max_int] while none has. It only ever decreases, which is
   what makes the output deterministic: a job with index <= the final
   [stop_at] can never observe [cancelled () = true] (that would require
   [stop_at] to have been below its index, contradicting monotonicity), so
   every result the caller sees was computed exactly as a sequential run
   would have computed it. *)
type ('a, 'b) state = {
  mutex : Mutex.t;
  not_empty : Condition.t;  (* an item was queued, or the queue was closed *)
  not_full : Condition.t;  (* an item was taken, or [stop_at] dropped *)
  queue : (int * 'a) Queue.t;
  depth : int;
  mutable closed : bool;
  stop_at : int Atomic.t;
}

let lower_stop_at st i =
  let rec cas () =
    let cur = Atomic.get st.stop_at in
    if i < cur && not (Atomic.compare_and_set st.stop_at cur i) then cas ()
  in
  cas ();
  (* The feeder may be blocked on a full queue; it must wake to notice the
     stop and close the queue. *)
  Mutex.lock st.mutex;
  Condition.broadcast st.not_full;
  Mutex.unlock st.mutex

(* The feeder runs on the calling domain: pull the (lazy) job sequence one
   element at a time, never holding more than [depth] unclaimed jobs. *)
let feed st jobs =
  let rec go i seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons (x, rest) ->
      Mutex.lock st.mutex;
      while Queue.length st.queue >= st.depth && Atomic.get st.stop_at >= i do
        Condition.wait st.not_full st.mutex
      done;
      let stopped = Atomic.get st.stop_at < i in
      if not stopped then begin
        Queue.add (i, x) st.queue;
        Condition.signal st.not_empty
      end;
      Mutex.unlock st.mutex;
      if not stopped then go (i + 1) rest
  in
  go 0 jobs;
  Mutex.lock st.mutex;
  st.closed <- true;
  Condition.broadcast st.not_empty;
  Mutex.unlock st.mutex

let worker st ~stop ~f () =
  let results = ref [] in
  let rec loop () =
    Mutex.lock st.mutex;
    while Queue.is_empty st.queue && not st.closed do
      Condition.wait st.not_empty st.mutex
    done;
    match Queue.take_opt st.queue with
    | None -> Mutex.unlock st.mutex (* closed and drained: done *)
    | Some (i, x) ->
      let qd = Queue.length st.queue in
      Condition.signal st.not_full;
      Mutex.unlock st.mutex;
      trace_take ~index:i ~queue_depth:qd;
      (* Jobs past a stopping index are skipped outright; their results
         would be discarded anyway. *)
      if Atomic.get st.stop_at >= i then begin
        (* monotonic, not wall-clock: job durations must survive NTP steps *)
        let t0 = Lineup_observe.Monotonic.now () in
        match f ~cancelled:(fun () -> Atomic.get st.stop_at < i) x with
        | r ->
          (* A raising [stop] is contained like a raising job: recorded as
             this index's error, stopping the sweep, re-raised after every
             worker is joined. It must never escape the worker body — a
             dead worker strands queued jobs, and with all workers dead the
             feeder would block on [not_full] forever. *)
          let stopping = match stop r with s -> Ok s | exception e -> Error e in
          results :=
            (i, match stopping with Ok _ -> Ok r | Error e -> Error e) :: !results;
          trace_job_done ~index:i
            ~kept:(Atomic.get st.stop_at >= i)
            ~dt:(Lineup_observe.Monotonic.elapsed_since t0);
          (match stopping with
           | Ok false -> ()
           | Ok true | Error _ ->
             lower_stop_at st i;
             trace_stop ~index:i)
        | exception e ->
          results := (i, Error e) :: !results;
          trace_job_done ~index:i ~kept:true ~dt:(Lineup_observe.Monotonic.elapsed_since t0);
          lower_stop_at st i;
          trace_stop ~index:i
      end
      else trace_skip ~index:i;
      loop ()
  in
  loop ();
  !results

let map_parallel ~domains ~depth ~stop ~f jobs =
  let st =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      depth;
      closed = false;
      stop_at = Atomic.make max_int;
    }
  in
  let workers = List.init domains (fun _ -> Domain.spawn (worker st ~stop ~f)) in
  (* Every exception path must still close the queue and join every worker:
     an unjoined domain is leaked for the process lifetime, and a worker
     left blocked on [not_empty] after a feeder exception would never
     terminate at all. *)
  let feeder_error =
    match feed st jobs with
    | () -> None
    | exception e ->
      Mutex.lock st.mutex;
      st.closed <- true;
      Condition.broadcast st.not_empty;
      Mutex.unlock st.mutex;
      Some e
  in
  (* [f] exceptions come back as [Error] results; what [Domain.join] can
     re-raise is an escape from [stop] or a trace hook. Join everything
     before letting any of it propagate. *)
  let joined =
    List.map (fun d -> match Domain.join d with rs -> Ok rs | exception e -> Error e) workers
  in
  (match List.find_opt Result.is_error joined with
   | Some (Error e) -> raise e
   | Some (Ok _) | None -> ());
  let all = List.concat_map Result.get_ok joined in
  let cut = Atomic.get st.stop_at in
  let results =
    List.sort (fun (i, _) (j, _) -> Int.compare i j) all
    |> List.filter_map (fun (i, r) ->
           if i > cut then None
           else match r with Ok v -> Some v | Error e -> raise e)
  in
  match feeder_error with Some e -> raise e | None -> results

let map_seq ?(domains = 1) ?queue_depth ?(stop = fun _ -> false) ~f jobs =
  if domains <= 1 then map_sequential ~stop ~f jobs
  else
    let depth =
      match queue_depth with Some d -> max 1 d | None -> 2 * domains
    in
    map_parallel ~domains ~depth ~stop ~f jobs
