(** A domain-based work pool for fanning independent check jobs out across
    cores.

    The paper's evaluation burned ~11 CPU-days precisely because every
    [Check(X, m)] run is an independent, from-scratch re-execution — §4.3:
    random sampling "is embarrassingly parallel: it is very easy to
    distribute the various tests and let each core run Check independently".
    This pool is the one piece of machinery behind every parallel entry
    point ([Auto_check.run ~domains], [Random_check.run_parallel], the CLI
    [-j] flag).

    Design constraints, all load-bearing for the checker:

    - {b Lazy feeding.} Jobs are pulled from a ['a Seq.t] on demand through
      a bounded queue, so an enormous (or infinite) test enumeration such as
      [Test_matrix.enumerate] is never forced up front.
    - {b Deterministic output.} Results are returned in job-submission
      order, regardless of completion order. Together with the cancellation
      rule below, a [map_seq] at [~domains:8] returns {e exactly} the list
      that [~domains:1] returns.
    - {b First-stop early cancellation.} When a result satisfies [stop],
      jobs {e later} in submission order are cancelled: queued ones are
      dropped, in-flight ones see their [cancelled] token flip and are
      expected to bail at their next execution boundary; their results are
      discarded. Jobs {e earlier} in submission order are never cancelled
      and always run to completion — otherwise the earliest stopping result
      (the one a sequential run would report) could be lost. *)

(** A cancellation token, polled by a job at its execution boundaries.
    Returns [true] once some job earlier in submission order produced a
    stopping result, at which point the job's own result will be discarded
    and it should return as cheaply as possible. *)
type cancelled = unit -> bool

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the default for every [-j]. *)

val map_seq :
  ?domains:int ->
  ?queue_depth:int ->
  ?stop:('b -> bool) ->
  f:(cancelled:cancelled -> 'a -> 'b) ->
  'a Seq.t ->
  'b list
(** [map_seq ~domains ~stop ~f jobs] runs [f] over [jobs] on [domains]
    domains (default [1]: fully sequential on the calling domain, no spawn)
    and returns the results in submission order.

    [queue_depth] (default [2 * domains]) bounds how many jobs are
    materialized from [jobs] ahead of the workers.

    If some result satisfies [stop] (default: never), the returned list is
    the prefix of results up to and including the {e earliest} stopping
    result in submission order; the enumeration is not pulled further and
    later in-flight jobs are cancelled (see above). The prefix is identical
    for every [domains] value.

    If [f] raises, the exception is treated like a stopping result
    (cancelling later jobs) and the earliest exception in submission order
    is re-raised on the calling domain once the workers have drained. *)
