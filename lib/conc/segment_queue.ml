module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Var_array = Lineup_runtime.Var_array
module Rt = Lineup_runtime.Rt
open Util

let capacity = 2

type segment = {
  values : int Var_array.t;  (* plain: ordered by the committed flags *)
  committed : bool Var_array.t;
  low : int Var.t;  (* next slot to dequeue *)
  high : int Var.t;  (* next slot to enqueue-reserve *)
  next : segment option Var.t;
}

let new_segment () =
  {
    values = Var_array.make ~name:"seg.val" capacity 0;
    committed = Var_array.make ~volatile:true ~name:"seg.c" capacity false;
    low = Var.make ~volatile:true ~name:"seg.low" 0;
    high = Var.make ~volatile:true ~name:"seg.high" 0;
    next = Var.make ~volatile:true ~name:"seg.next" None;
  }

let universe =
  [ inv_int "Enqueue" 200; inv_int "Enqueue" 400; inv "TryDequeue"; inv "TryPeek"; inv "IsEmpty" ]

let adapter =
  let create () =
    let seg0 = new_segment () in
    let head = Var.make ~volatile:true ~name:"sq.head" seg0 in
    let tail = Var.make ~volatile:true ~name:"sq.tail" seg0 in
    let rec enqueue x =
      let s = Var.read tail in
      let i = Var.read s.high in
      if i < capacity then begin
        if Var.cas s.high i (i + 1) then begin
          (* slot i reserved: fill, then commit *)
          Var_array.write s.values i x;
          Var_array.write s.committed i true
        end
        else begin
          Rt.yield ();
          enqueue x
        end
      end
      else begin
        (* segment full: link a fresh one (or help), advance the tail *)
        (match Var.read s.next with
         | None ->
           let s' = new_segment () in
           if Var.cas s.next None (Some s') then ignore (Var.cas tail s s')
         | Some s' -> ignore (Var.cas tail s s'));
        Rt.yield ();
        enqueue x
      end
    in
    (* wait for a reserved slot to be committed; the reserving enqueuer is
       guaranteed to commit, so this terminates under fair scheduling *)
    let await_commit s i =
      while not (Var_array.read s.committed i) do
        Rt.yield ()
      done
    in
    let rec try_dequeue () =
      let s = Var.read head in
      let i = Var.read s.low in
      if i >= capacity then begin
        (* segment exhausted: advance to the next, if any *)
        match Var.read s.next with
        | None -> Value.Fail
        | Some s' ->
          ignore (Var.cas head s s');
          Rt.yield ();
          try_dequeue ()
      end
      else if i >= Var.read s.high then Value.Fail (* nothing reserved: empty *)
      else if Var.cas s.low i (i + 1) then begin
        (* won slot i *)
        await_commit s i;
        Value.int (Var_array.read s.values i)
      end
      else begin
        Rt.yield ();
        try_dequeue ()
      end
    in
    let rec try_peek () =
      let s = Var.read head in
      let i = Var.read s.low in
      if i >= capacity then begin
        match Var.read s.next with
        | None -> Value.Fail
        | Some s' ->
          ignore (Var.cas head s s');
          Rt.yield ();
          try_peek ()
      end
      else if i >= Var.read s.high then Value.Fail
      else begin
        (* like .NET, peek waits for the head slot to commit *)
        await_commit s i;
        (* the slot may have been dequeued meanwhile; the value cell is
           written once, so reading it is still the value enqueued there,
           and linearizing the peek before that dequeue justifies it *)
        Value.int (Var_array.read s.values i)
      end
    in
    let is_empty () =
      let s = Var.read head in
      Var.read s.low >= Var.read s.high && Option.is_none (Var.read s.next)
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Enqueue", Value.Int x ->
        enqueue x;
        Value.unit
      | "TryDequeue", Value.Unit -> try_dequeue ()
      | "TryPeek", Value.Unit -> try_peek ()
      | "IsEmpty", Value.Unit -> Value.bool (is_empty ())
      | _ -> unexpected "SegmentQueue" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"SegmentQueue" ~universe
    ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.queue) create
