module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Var_array = Lineup_runtime.Var_array
module Mutex_ = Lineup_runtime.Mutex_
module Rt = Lineup_runtime.Rt
open Util

let universe =
  [
    inv_int "Add" 200;
    inv_int "Add" 400;
    inv "Take";
    inv "TryAdd";
    inv "TryTake";
    inv "Count";
    inv "ToArray";
    inv "CompleteAdding";
    inv "IsCompleted";
    inv "IsAddingCompleted";
  ]

(* ------------------------------------------------------------------ *)
(* Single-lock FIFO variant (optionally bounded)                       *)
(* ------------------------------------------------------------------ *)

let make_fifo ?bound name =
  let create () =
    let lock = Mutex_.create ~name:"bc.lock" () in
    let items = Var.make ~name:"bc.items" [] in
    let completed = Var.make ~volatile:true ~name:"bc.completed" false in
    let room () =
      match bound with
      | None -> true
      | Some b -> List.length (Var.peek items) < b
    in
    let rec add ~try_ x =
      Mutex_.acquire lock;
      if Var.read completed then begin
        Mutex_.release lock;
        Value.Fail
      end
      else if
        match bound with None -> true | Some b -> List.length (Var.read items) < b
      then begin
        Var.write items (Var.read items @ [ x ]);
        Mutex_.release lock;
        Value.unit
      end
      else if try_ then begin
        (* TryAdd on a full bounded collection fails immediately *)
        Mutex_.release lock;
        Value.Fail
      end
      else begin
        (* bounded Add blocks until space frees up or adding completes *)
        Mutex_.release lock;
        Rt.block ~wake:(fun () -> room () || Var.peek completed) "space available";
        add ~try_ x
      end
    in
    let try_take () =
      Mutex_.with_lock lock (fun () ->
          match Var.read items with
          | [] -> Value.Fail
          | x :: rest ->
            Var.write items rest;
            Value.int x)
    in
    let rec take () =
      Mutex_.acquire lock;
      match Var.read items with
      | x :: rest ->
        Var.write items rest;
        Mutex_.release lock;
        Value.int x
      | [] ->
        if Var.read completed then begin
          Mutex_.release lock;
          Value.Fail (* models the InvalidOperationException on a completed collection *)
        end
        else begin
          Mutex_.release lock;
          Rt.block
            ~wake:(fun () -> Var.peek items <> [] || Var.peek completed)
            "item available or adding completed";
          take ()
        end
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Add", Value.Int x -> add ~try_:false x
      | "TryAdd", Value.Unit -> add ~try_:true 99
      | "Take", Value.Unit -> take ()
      | "TryTake", Value.Unit -> try_take ()
      | "Count", Value.Unit ->
        Mutex_.with_lock lock (fun () -> Value.int (List.length (Var.read items)))
      | "ToArray", Value.Unit ->
        Mutex_.with_lock lock (fun () -> Value.list (List.map Value.int (Var.read items)))
      | "CompleteAdding", Value.Unit ->
        Mutex_.with_lock lock (fun () ->
            Var.write completed true;
            Value.unit)
      | "IsAddingCompleted", Value.Unit -> Value.bool (Var.read completed)
      | "IsCompleted", Value.Unit ->
        Mutex_.with_lock lock (fun () ->
            Value.bool (Var.read completed && Var.read items = []))
      | _ -> unexpected "BlockingCollection" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe create

let fifo = make_fifo "BlockingCollection (FIFO)"
let fifo_bounded = make_fifo ~bound:1 "BlockingCollection (FIFO, bound 1)"

(* ------------------------------------------------------------------ *)
(* Segmented variant with skip-on-busy scans (root causes I and J)     *)
(* ------------------------------------------------------------------ *)

let max_threads = 4

let segmented =
  let create () =
    let segments = Var_array.make ~name:"bcs.seg" max_threads [] in
    let locks =
      Array.init max_threads (fun i -> Mutex_.create ~name:(Fmt.str "bcs.lock%d" i) ())
    in
    let completed = Var.make ~volatile:true ~name:"bcs.completed" false in
    let own () = Rt.self () mod max_threads in
    let add x =
      if Var.read completed then Value.Fail
      else begin
        let me = own () in
        Mutex_.with_lock locks.(me) (fun () ->
            Var_array.write segments me (Var_array.read segments me @ [ x ]));
        Value.unit
      end
    in
    (* TryTake: skip segments whose lock is busy (root cause J). *)
    let rec try_scan = function
      | [] -> Value.Fail
      | j :: rest ->
        if Mutex_.try_acquire locks.(j) then begin
          let r =
            match Var_array.read segments j with
            | [] -> None
            | x :: tail ->
              Var_array.write segments j tail;
              Some (Value.int x)
          in
          Mutex_.release locks.(j);
          match r with Some v -> v | None -> try_scan rest
        end
        else try_scan rest
    in
    (* Take: full acquisition, re-check loop — never misses. *)
    let rec take () =
      let found = ref None in
      let j = ref 0 in
      while Option.is_none !found && !j < max_threads do
        Mutex_.acquire locks.(!j);
        (match Var_array.read segments !j with
         | x :: tail ->
           Var_array.write segments !j tail;
           found := Some x
         | [] -> ());
        Mutex_.release locks.(!j);
        incr j
      done;
      match !found with
      | Some x -> Value.int x
      | None ->
        if Var.read completed then Value.Fail
        else begin
          Rt.block
            ~wake:(fun () ->
              let rec nonempty j =
                j < max_threads && (Var_array.peek segments j <> [] || nonempty (j + 1))
              in
              Var.peek completed || nonempty 0)
            "item available or adding completed";
          take ()
        end
    in
    (* Count: per-segment locks taken one at a time, busy segments skipped
       (root cause I). *)
    let count () =
      let total = ref 0 in
      for j = 0 to max_threads - 1 do
        if Mutex_.try_acquire locks.(j) then begin
          total := !total + List.length (Var_array.read segments j);
          Mutex_.release locks.(j)
        end
      done;
      !total
    in
    let with_all f =
      Array.iter Mutex_.acquire locks;
      let r = f () in
      Array.iter Mutex_.release locks;
      r
    in
    let scan_order () =
      let me = own () in
      me :: List.filter (fun j -> j <> me) (List.init max_threads Fun.id)
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Add", Value.Int x -> add x
      | "TryAdd", Value.Unit -> add 99
      | "Take", Value.Unit -> take ()
      | "TryTake", Value.Unit -> try_scan (scan_order ())
      | "Count", Value.Unit -> Value.int (count ())
      | "ToArray", Value.Unit ->
        with_all (fun () ->
            Value.list
              (List.concat_map
                 (fun j -> List.map Value.int (Var_array.read segments j))
                 (List.init max_threads Fun.id)))
      | "CompleteAdding", Value.Unit ->
        Var.write completed true;
        Value.unit
      | "IsAddingCompleted", Value.Unit -> Value.bool (Var.read completed)
      | "IsCompleted", Value.Unit ->
        with_all (fun () ->
            let rec empty j =
              j >= max_threads || (Var_array.read segments j = [] && empty (j + 1))
            in
            Value.bool (Var.read completed && empty 0))
      | _ -> unexpected "BlockingCollection" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"BlockingCollection (segmented)" ~universe create
