module Spec = Lineup_spec.Spec
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Rt = Lineup_runtime.Rt

let adapter ?name ?(universe = []) (spec : 'st Spec.t) =
  let name = Option.value name ~default:(spec.Spec.name ^ "-locked") in
  let create () =
    let lock = Mutex_.create ~name:(name ^ ".lock") () in
    let state = Var.make ~name:(name ^ ".state") spec.Spec.initial in
    let rec invoke inv =
      Mutex_.acquire lock;
      let st = Var.read state in
      match spec.Spec.step st inv with
      | Spec.Return (v, st') ->
        Var.write state st';
        Mutex_.release lock;
        v
      | Spec.Blocked ->
        (* Wait (outside the lock) until the operation can proceed, then
           retry; the re-acquisition re-reads the state. *)
        Mutex_.release lock;
        Rt.block
          ~wake:(fun () ->
            match spec.Spec.step (Var.peek state) inv with
            | Spec.Return _ -> true
            | Spec.Blocked -> false)
          (spec.Spec.name ^ " can proceed");
        invoke inv
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe ~spec:(Spec.Packed spec) create
