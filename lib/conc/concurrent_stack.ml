module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Rt = Lineup_runtime.Rt
open Util

let universe =
  [
    inv_int "Push" 1;
    inv_int "Push" 2;
    inv "TryPop";
    inv "TryPeek";
    inv "Count";
    inv ~arg:(Value.list [ Value.int 8; Value.int 9 ]) "PushRange";
    inv_int "TryPopRange" 2;
    inv "ToArray";
  ]

let rec take n l =
  if n = 0 then [], l
  else
    match l with
    | [] -> [], []
    | x :: rest ->
      let popped, rest' = take (n - 1) rest in
      x :: popped, rest'

let make_adapter ~buggy_range name =
  let create () =
    let top = Var.make ~volatile:true ~name:"stack.top" [] in
    let rec cas_update f =
      let l = Var.read top in
      let l', result = f l in
      if Var.cas top l l' then result
      else begin
        Rt.yield ();
        cas_update f
      end
    in
    let try_pop () =
      cas_update (function [] -> [], Value.Fail | x :: rest -> rest, Value.int x)
    in
    let try_pop_range n =
      if buggy_range then begin
        (* BUG (root cause E): the range is assembled from n independent
           pops, so it is not an atomic stack segment *)
        let rec go n acc =
          if n = 0 then List.rev acc
          else
            match try_pop () with
            | Value.Fail -> List.rev acc
            | v -> go (n - 1) (v :: acc)
        in
        Value.list (go n [])
      end
      else
        cas_update (fun l ->
            let popped, rest = take n l in
            rest, Value.list (List.map Value.int popped))
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Push", Value.Int x -> cas_update (fun l -> x :: l, Value.unit)
      | "PushRange", Value.List xs ->
        let xs = List.map Value.get_int xs in
        cas_update (fun l -> xs @ l, Value.unit)
      | "TryPop", Value.Unit -> try_pop ()
      | "TryPopRange", Value.Int n -> try_pop_range n
      | "TryPeek", Value.Unit -> (
        match Var.read top with [] -> Value.Fail | x :: _ -> Value.int x)
      | "Count", Value.Unit -> Value.int (List.length (Var.read top))
      | "ToArray", Value.Unit -> Value.list (List.map Value.int (Var.read top))
      | _ -> unexpected "ConcurrentStack" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.stack)
    create

let correct = make_adapter ~buggy_range:false "ConcurrentStack"
let pre = make_adapter ~buggy_range:true "ConcurrentStack (Pre: non-atomic TryPopRange)"
