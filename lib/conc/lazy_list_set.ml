module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
open Util

type node = {
  key : int;  (* min_int = head sentinel, max_int = tail sentinel *)
  marked : bool Var.t;
  next : node option Var.t;
  lock : Mutex_.t;
}

let new_node key next =
  {
    key;
    marked = Var.make ~volatile:true ~name:(Fmt.str "node%d.marked" key) false;
    next = Var.make ~volatile:true ~name:(Fmt.str "node%d.next" key) next;
    lock = Mutex_.create ~name:(Fmt.str "node%d.lock" key) ();
  }

let universe =
  [
    inv_int "Add" 10;
    inv_int "Add" 15;
    inv_int "Remove" 10;
    inv_int "Remove" 15;
    inv_int "Contains" 10;
    inv_int "Contains" 15;
  ]

let make_adapter ~mark_on_remove name =
  let create () =
    let tail = new_node max_int None in
    let head = new_node min_int (Some tail) in
    (* walk to the first node with key >= k; returns (pred, curr) *)
    let locate k =
      let rec go pred =
        match Var.read pred.next with
        | None -> assert false (* the tail sentinel is never passed *)
        | Some curr -> if curr.key < k then go curr else pred, curr
      in
      go head
    in
    let validate pred curr =
      (not (Var.read pred.marked))
      && (not (Var.read curr.marked))
      && (match Var.read pred.next with Some n -> n == curr | None -> false)
    in
    let rec with_locked_pair k f =
      let pred, curr = locate k in
      Mutex_.acquire pred.lock;
      Mutex_.acquire curr.lock;
      if validate pred curr then begin
        let r = f pred curr in
        Mutex_.release curr.lock;
        Mutex_.release pred.lock;
        r
      end
      else begin
        Mutex_.release curr.lock;
        Mutex_.release pred.lock;
        with_locked_pair k f
      end
    in
    let add k =
      with_locked_pair k (fun pred curr ->
          if curr.key = k then false
          else begin
            let node = new_node k (Some curr) in
            Var.write pred.next (Some node);
            true
          end)
    in
    let remove k =
      with_locked_pair k (fun pred curr ->
          if curr.key <> k then false
          else begin
            (* The published algorithm marks before unlinking; the Pre
               variant forgets (the classic lazy-list defect). *)
            if mark_on_remove then Var.write curr.marked true;
            Var.write pred.next (Var.read curr.next);
            true
          end)
    in
    (* wait-free: no locks, relies on marking for correctness *)
    let contains k =
      let rec go node =
        if node.key < k then
          match Var.read node.next with Some n -> go n | None -> false
        else node.key = k && not (Var.read node.marked)
      in
      go head
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Add", Value.Int k -> Value.bool (add k)
      | "Remove", Value.Int k -> Value.bool (remove k)
      | "Contains", Value.Int k -> Value.bool (contains k)
      | _ -> unexpected "LazyListSet" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.key_set)
    create

let correct = make_adapter ~mark_on_remove:true "LazyListSet"
let pre = make_adapter ~mark_on_remove:false "LazyListSet (Pre: remove without marking)"
