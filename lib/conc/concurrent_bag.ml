module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var_array = Lineup_runtime.Var_array
module Mutex_ = Lineup_runtime.Mutex_
module Rt = Lineup_runtime.Rt
open Util

let max_threads = 4

let universe =
  [ inv_int "Add" 10; inv_int "Add" 20; inv "TryTake"; inv "TryPeek"; inv "Count"; inv "IsEmpty"; inv "ToArray" ]

let adapter =
  let create () =
    let segments = Var_array.make ~name:"bag.seg" max_threads [] in
    let locks = Array.init max_threads (fun i -> Mutex_.create ~name:(Fmt.str "bag.lock%d" i) ()) in
    let own () = Rt.self () mod max_threads in
    let scan_order () =
      let me = own () in
      me :: List.filter (fun j -> j <> me) (List.init max_threads Fun.id)
    in
    (* Non-blocking scan: a busy segment is skipped (the intentional
       nondeterminism of root cause H). *)
    let rec scan ~remove = function
      | [] -> Value.Fail
      | j :: rest ->
        if Mutex_.try_acquire locks.(j) then begin
          let r =
            match Var_array.read segments j with
            | [] -> None
            | x :: tail ->
              if remove then Var_array.write segments j tail;
              Some (Value.int x)
          in
          Mutex_.release locks.(j);
          match r with Some v -> v | None -> scan ~remove rest
        end
        else scan ~remove rest
    in
    let with_all_locks f =
      Array.iter Mutex_.acquire locks;
      let r = f () in
      Array.iter Mutex_.release locks;
      r
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Add", Value.Int x ->
        let me = own () in
        Mutex_.with_lock locks.(me) (fun () ->
            Var_array.write segments me (x :: Var_array.read segments me));
        Value.unit
      | "TryTake", Value.Unit -> scan ~remove:true (scan_order ())
      | "TryPeek", Value.Unit -> scan ~remove:false (scan_order ())
      | "Count", Value.Unit ->
        with_all_locks (fun () ->
            let n = ref 0 in
            for j = 0 to max_threads - 1 do
              n := !n + List.length (Var_array.read segments j)
            done;
            Value.int !n)
      | "IsEmpty", Value.Unit ->
        with_all_locks (fun () ->
            (* short-circuits like Array.for_all did: same read sequence *)
            let rec empty j =
              j >= max_threads || (Var_array.read segments j = [] && empty (j + 1))
            in
            Value.bool (empty 0))
      | "ToArray", Value.Unit ->
        with_all_locks (fun () ->
            Value.list
              (List.concat_map
                 (fun j -> List.map Value.int (Var_array.read segments j))
                 (List.init max_threads Fun.id)))
      | _ -> unexpected "ConcurrentBag" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"ConcurrentBag" ~universe create
