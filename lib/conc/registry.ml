type expected =
  | Pass
  | Bug of string
  | Intentional_nondeterminism of string
  | Intentional_nonlinearizability of string

type entry = {
  adapter : Lineup.Adapter.t;
  class_name : string;
  version : [ `Beta2 | `Pre ];
  expected : expected;
  defect : string option;
  min_dims : (int * int) option;
}

let entry ?defect ?min_dims ~version ~expected class_name adapter =
  { adapter; class_name; version; expected; defect; min_dims }

let all =
  [
    (* known-good Beta2 subjects *)
    entry ~version:`Beta2 ~expected:Pass "LazyInit" Lazy_init.correct;
    entry ~version:`Beta2 ~expected:Pass "ManualResetEvent" Manual_reset_event.correct;
    entry ~version:`Beta2 ~expected:Pass "SemaphoreSlim" Semaphore_slim.correct;
    entry ~version:`Beta2 ~expected:Pass "CountdownEvent" Countdown_event.correct;
    entry ~version:`Beta2 ~expected:Pass "ConcurrentDictionary" Concurrent_dictionary.adapter;
    entry ~version:`Beta2 ~expected:Pass "ConcurrentQueue" Concurrent_queue.correct;
    entry ~version:`Beta2 ~expected:Pass "ConcurrentStack" Concurrent_stack.correct;
    entry ~version:`Beta2 ~expected:Pass "ConcurrentLinkedList" Concurrent_linked_list.adapter;
    entry ~version:`Beta2 ~expected:Pass "TaskCompletionSource" Task_completion_source.correct;
    entry ~version:`Beta2 ~expected:Pass "MichaelScottQueue" Michael_scott_queue.adapter;
    entry ~version:`Beta2 ~expected:Pass "SegmentQueue" Segment_queue.adapter;
    entry ~version:`Beta2 ~expected:Pass "BlockingCollection" Blocking_collection.fifo;
    entry ~version:`Beta2 ~expected:Pass "BlockingCollection" Blocking_collection.fifo_bounded;
    entry ~version:`Beta2 ~expected:Pass "ReaderWriterLockSlim" Rw_lock.correct;
    entry ~version:`Beta2 ~expected:Pass "LazyListSet" Lazy_list_set.correct;
    (* seeded bugs (root causes A-G) *)
    entry ~version:`Pre ~expected:(Bug "A")
      ~defect:"Set drops the signal when its single CAS attempt races a waiter registration"
      ~min_dims:(1, 2) "ManualResetEvent" Manual_reset_event.lost_signal;
    entry ~version:`Pre ~expected:(Bug "A'")
      ~defect:"Wait computes the CAS new-value from a re-read of the shared state (the paper's typo)"
      ~min_dims:(2, 2) "ManualResetEvent" Manual_reset_event.cas_typo;
    entry ~version:`Pre ~expected:(Bug "B")
      ~defect:"TryDequeue's lock acquire can time out and is reported as an empty queue (Fig. 1)"
      ~min_dims:(2, 2) "ConcurrentQueue" Concurrent_queue.pre;
    entry ~version:`Pre ~expected:(Bug "C")
      ~defect:"Release increments the count outside the lock (lost update)" ~min_dims:(1, 2)
      "SemaphoreSlim" Semaphore_slim.pre;
    entry ~version:`Pre ~expected:(Bug "D")
      ~defect:"Signal decrements with an unsynchronized read-modify-write (lost signal)"
      ~min_dims:(1, 2) "CountdownEvent" Countdown_event.pre;
    entry ~version:`Pre ~expected:(Bug "E")
      ~defect:"TryPopRange pops one CAS at a time; the range is not an atomic segment"
      ~min_dims:(2, 2) "ConcurrentStack" Concurrent_stack.pre;
    entry ~version:`Pre ~expected:(Bug "F")
      ~defect:"double-checked init publishes the flag before the value" ~min_dims:(1, 2)
      "LazyInit" Lazy_init.pre;
    entry ~version:`Pre ~expected:(Bug "G")
      ~defect:"TrySetResult is check-then-act; two callers can both win" ~min_dims:(1, 2)
      "TaskCompletionSource" Task_completion_source.pre;
    (* intentional nondeterminism (H, I, J) *)
    entry ~version:`Beta2 ~expected:(Intentional_nondeterminism "H")
      ~defect:"TryTake skips segments whose lock is busy; may fail or take a surprising element"
      ~min_dims:(2, 2) "ConcurrentBag" Concurrent_bag.adapter;
    entry ~version:`Beta2 ~expected:(Intentional_nondeterminism "I+J")
      ~defect:"Count and TryTake skip busy segments; both can miss present elements"
      ~min_dims:(2, 2) "BlockingCollection" Blocking_collection.segmented;
    (* intentional nonlinearizability (K, L) *)
    entry ~version:`Beta2 ~expected:(Intentional_nonlinearizability "K")
      ~defect:"Cancel's callback effects can land after Cancel returns (asynchronous method)"
      ~min_dims:(2, 1) "CancellationTokenSource" Cancellation_token_source.adapter;
    entry ~version:`Beta2 ~expected:(Intentional_nonlinearizability "L")
      ~defect:"SignalAndWait is equivalent to no serial execution (classic barrier)"
      ~min_dims:(1, 2) "Barrier" Barrier.adapter;
    entry ~version:`Pre ~expected:(Bug "O")
      ~defect:"Clear empties stripes one lock at a time; observers see half-cleared tables"
      ~min_dims:(1, 2) "ConcurrentDictionary" Concurrent_dictionary.pre;
    entry ~version:`Pre ~expected:(Bug "M")
      ~defect:"EnterRead's fast path increments the reader count with an unsynchronized RMW"
      ~min_dims:(1, 2) "ReaderWriterLockSlim" Rw_lock.pre;
    entry ~version:`Pre ~expected:(Bug "N")
      ~defect:"Remove unlinks without marking; a validated insert after the victim is lost"
      ~min_dims:(2, 2) "LazyListSet" Lazy_list_set.pre;
    (* pedagogical counters of Section 2.2 *)
    entry ~version:`Pre ~expected:(Bug "Counter1")
      ~defect:"inc is an unsynchronized read-modify-write (Section 2.2.1)" ~min_dims:(1, 2)
      "Counter" Counters.buggy_unlocked;
    entry ~version:`Beta2 ~expected:Pass "Counter" Counters.correct;
    (* the store->load litmus: SC-correct, weak-memory-sensitive. Both
       variants pass the default (sequentially consistent) sweep; the
       fence-free one loses updates only under `--memory tso`/`pso`. *)
    entry ~version:`Beta2 ~expected:Pass "Dekker" Dekker.fenced;
    entry ~version:`Pre ~expected:Pass
      ~defect:
        "enter omits the store->load fence: mutual exclusion fails under TSO (visible to \
         --memory tso/pso only — every SC interleaving passes)"
      ~min_dims:(2, 2) "Dekker" Dekker.fence_free;
  ]

let table2_rows = all
let correct_entries = List.filter (fun e -> e.expected = Pass) all

let failing_entries =
  List.filter_map
    (fun e ->
      match e.expected with
      | Pass -> None
      | Bug id | Intentional_nondeterminism id | Intentional_nonlinearizability id ->
        Some (id, e))
    all

let find name = List.find (fun e -> e.adapter.Lineup.Adapter.name = name) all
