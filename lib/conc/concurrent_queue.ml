module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
open Util

let universe =
  [
    inv_int "Enqueue" 200;
    inv_int "Enqueue" 400;
    inv "TryDequeue";
    inv "TryPeek";
    inv "Count";
    inv "IsEmpty";
    inv "ToArray";
  ]

let make_adapter ~timed_dequeue name =
  let create () =
    let lock = Mutex_.create ~name:"queue.lock" () in
    let items = Var.make ~name:"queue.items" [] in
    let try_dequeue () =
      let acquired = if timed_dequeue then Mutex_.try_acquire_timed lock else (Mutex_.acquire lock; true) in
      if not acquired then
        (* BUG (root cause B, Fig. 1): a timed-out acquire is reported as an
           empty queue *)
        Value.Fail
      else begin
        let r =
          match Var.read items with
          | [] -> Value.Fail
          | x :: rest ->
            Var.write items rest;
            Value.int x
        in
        Mutex_.release lock;
        r
      end
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Enqueue", Value.Int x ->
        Mutex_.with_lock lock (fun () ->
            Var.write items (Var.read items @ [ x ]);
            Value.unit)
      | "TryDequeue", Value.Unit -> try_dequeue ()
      | "TryPeek", Value.Unit ->
        Mutex_.with_lock lock (fun () ->
            match Var.read items with [] -> Value.Fail | x :: _ -> Value.int x)
      | "Count", Value.Unit ->
        Mutex_.with_lock lock (fun () -> Value.int (List.length (Var.read items)))
      | "IsEmpty", Value.Unit ->
        (* Deliberately lock-free: a single read is atomic, so this is
           linearizable — but it races with the locked writers. This is the
           paper's "benign race" pattern (§5.6): the .NET code contained
           such reads because C# cannot declare certain volatiles. *)
        Value.bool (Var.read items = [])
      | "ToArray", Value.Unit ->
        Mutex_.with_lock lock (fun () -> Value.list (List.map Value.int (Var.read items)))
      | _ -> unexpected "ConcurrentQueue" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.queue)
    create

let correct = make_adapter ~timed_dequeue:false "ConcurrentQueue"
let pre = make_adapter ~timed_dequeue:true "ConcurrentQueue (Pre: timed lock in TryDequeue)"
