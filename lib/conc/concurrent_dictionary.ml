module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Var_array = Lineup_runtime.Var_array
module Mutex_ = Lineup_runtime.Mutex_
open Util

let stripes = 2

let universe =
  List.concat_map
    (fun k ->
      [
        inv_int "TryAdd" k;
        inv_int "TryRemove" k;
        inv_int "TryGet" k;
        inv_int "Get" k;
        inv_int "Set" k;
        inv_int "TryUpdate" k;
        inv_int "ContainsKey" k;
      ])
    [ 10; 20 ]
  @ [ inv "Count"; inv "IsEmpty"; inv "Clear" ]

let make_adapter ~atomic_clear name =
  let create () =
    let buckets = Var_array.make ~name:"dict.bucket" stripes [] in
    let locks =
      Array.init stripes (fun i -> Mutex_.create ~name:(Fmt.str "dict.lock%d" i) ())
    in
    (* keys 10 and 20 land in different stripes *)
    let stripe k = k / 10 mod stripes in
    let with_stripe k f =
      Mutex_.with_lock locks.(stripe k) (fun () ->
          let b = Var_array.cell buckets (stripe k) in
          f b)
    in
    let with_all f =
      Array.iter Mutex_.acquire locks;
      let r = f () in
      Array.iter Mutex_.release locks;
      r
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "TryAdd", Value.Int k ->
        with_stripe k (fun b ->
            let l = Var.read b in
            if List.mem_assoc k l then Value.bool false
            else begin
              Var.write b ((k, k * 100) :: l);
              Value.bool true
            end)
      | "TryRemove", Value.Int k ->
        with_stripe k (fun b ->
            let l = Var.read b in
            if List.mem_assoc k l then begin
              Var.write b (List.remove_assoc k l);
              Value.bool true
            end
            else Value.bool false)
      | "TryGet", Value.Int k | "Get", Value.Int k ->
        with_stripe k (fun b ->
            match List.assoc_opt k (Var.read b) with
            | Some v -> Value.int v
            | None -> Value.Fail)
      | "Set", Value.Int k ->
        with_stripe k (fun b ->
            Var.write b (((k, (k * 100) + 1)) :: List.remove_assoc k (Var.read b));
            Value.unit)
      | "TryUpdate", Value.Int k ->
        with_stripe k (fun b ->
            let l = Var.read b in
            match List.assoc_opt k l with
            | Some v ->
              Var.write b ((k, v + 1) :: List.remove_assoc k l);
              Value.bool true
            | None -> Value.bool false)
      | "ContainsKey", Value.Int k ->
        with_stripe k (fun b -> Value.bool (List.mem_assoc k (Var.read b)))
      | "Count", Value.Unit ->
        with_all (fun () ->
            let n = ref 0 in
            for s = 0 to stripes - 1 do
              n := !n + List.length (Var_array.read buckets s)
            done;
            Value.int !n)
      | "IsEmpty", Value.Unit ->
        with_all (fun () ->
            (* short-circuits like Array.for_all did: same read sequence *)
            let rec empty s = s >= stripes || (Var_array.read buckets s = [] && empty (s + 1)) in
            Value.bool (empty 0))
      | "Clear", Value.Unit ->
        if atomic_clear then
          with_all (fun () ->
              for s = 0 to stripes - 1 do
                Var_array.write buckets s []
              done;
              Value.unit)
        else begin
          (* BUG (root cause O): stripes cleared one lock at a time — a
             concurrent TryAdd to an already-cleared stripe survives the
             Clear, so Count can be nonzero right after Clear returned with
             no intervening Add *)
          for s = 0 to stripes - 1 do
            Mutex_.with_lock locks.(s) (fun () -> Var_array.write buckets s [])
          done;
          Value.unit
        end
      | _ -> unexpected "ConcurrentDictionary" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe
    ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.dictionary) create

let adapter = make_adapter ~atomic_clear:true "ConcurrentDictionary"
let pre = make_adapter ~atomic_clear:false "ConcurrentDictionary (Pre: non-atomic Clear)"
