module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Rt = Lineup_runtime.Rt
open Util

type node = {
  value : int;  (* unused in the dummy node *)
  next : node option Var.t;
}

let universe =
  [ inv_int "Enqueue" 200; inv_int "Enqueue" 400; inv "TryDequeue"; inv "TryPeek"; inv "IsEmpty" ]

let adapter =
  let create () =
    let dummy = { value = 0; next = Var.make ~volatile:true ~name:"msq.dummy.next" None } in
    let head = Var.make ~volatile:true ~name:"msq.head" dummy in
    let tail = Var.make ~volatile:true ~name:"msq.tail" dummy in
    let rec enqueue node =
      let last = Var.read tail in
      let next = Var.read last.next in
      if Var.peek tail == last then begin
        match next with
        | None ->
          if Var.cas last.next None (Some node) then
            (* linearized; help swing the tail (failure is benign) *)
            ignore (Var.cas tail last node)
          else begin
            Rt.yield ();
            enqueue node
          end
        | Some n ->
          (* tail lagging: help, then retry *)
          ignore (Var.cas tail last n);
          Rt.yield ();
          enqueue node
      end
      else begin
        Rt.yield ();
        enqueue node
      end
    in
    let rec try_dequeue () =
      let first = Var.read head in
      let last = Var.read tail in
      let next = Var.read first.next in
      if Var.peek head == first then begin
        if first == last then begin
          match next with
          | None -> Value.Fail
          | Some n ->
            ignore (Var.cas tail last n);
            Rt.yield ();
            try_dequeue ()
        end
        else begin
          match next with
          | None -> Value.Fail (* transient; treat as empty *)
          | Some n ->
            if Var.cas head first n then Value.int n.value
            else begin
              Rt.yield ();
              try_dequeue ()
            end
        end
      end
      else begin
        Rt.yield ();
        try_dequeue ()
      end
    in
    let try_peek () =
      let first = Var.read head in
      match Var.read first.next with
      | None -> Value.Fail
      | Some n -> Value.int n.value
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Enqueue", Value.Int x ->
        let node = { value = x; next = Var.make ~volatile:true ~name:"msq.node.next" None } in
        enqueue node;
        Value.unit
      | "TryDequeue", Value.Unit -> try_dequeue ()
      | "TryPeek", Value.Unit -> try_peek ()
      | "IsEmpty", Value.Unit ->
        let first = Var.read head in
        Value.bool (Option.is_none (Var.read first.next))
      | _ -> unexpected "MichaelScottQueue" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"MichaelScottQueue" ~universe
    ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.queue) create
