(* The Dekker/Peterson store→load litmus as a checkable class.

   Two contenders guard a plain (non-atomic) counter with Peterson's
   two-thread mutual-exclusion protocol: raise my flag, yield the turn,
   then spin until the other flag is down or the turn is mine. The
   protocol's correctness hinges on the store→load ordering between
   "flag[me] := true" and the read of flag[other] — exactly the ordering
   TSO store buffers break — and, under PSO, additionally on the
   store→store ordering between "flag[me] := true" and "turn := other"
   (per-location buffers may flush the turn first, letting the other
   thread observe the turn handed over while the flag is still hidden).
   The [fenced] variant drains the buffers with [Rt.fence] after each
   store and is correct under sc, tso and pso; the fence-free variant is
   correct under sequential consistency (every SC interleaving preserves
   mutual exclusion, so no SC exploration can fail it) but loses updates
   under `--memory tso`/`pso`, where both threads read the other's
   still-buffered flag as false and enter the critical section
   together. *)

module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Var_array = Lineup_runtime.Var_array
module Rt = Lineup_runtime.Rt
open Util

let universe = [ inv "Inc"; inv "Get" ]

let make_adapter ~fenced name =
  let create () =
    let flag = Var_array.make ~volatile:true ~name:"dekker.flag" 2 false in
    let turn = Var.make ~volatile:true ~name:"dekker.turn" 0 in
    let count = Var.make ~name:"dekker.count" 0 in
    let enter me other =
      Var_array.write flag me true;
      (* PSO buffers per location: without a fence here the turn store
         below may flush first, publishing the handover while flag[me] is
         still hidden. *)
      if fenced then Rt.fence ();
      Var.write turn other;
      (* The load of flag[other] below must not overtake the store of
         flag[me] above. Volatile is not enough (stores still buffer); only
         a full fence orders a store before a later load on TSO. *)
      if fenced then Rt.fence ();
      while Var_array.read flag other && Var.read turn = other do
        Rt.yield ()
      done
    in
    let leave me =
      (* Release: the protected count store must be visible before the
         flag drops. PSO's per-location buffers would otherwise flush the
         flag first and let the next entrant read a stale count. *)
      if fenced then Rt.fence ();
      Var_array.write flag me false
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Inc", Value.Unit ->
        (* Two columns contend: column tids 0 and 1 map to distinct slots. *)
        let me = Rt.self () land 1 in
        let other = 1 - me in
        enter me other;
        (* the protected section: a non-atomic read-modify-write *)
        Var.write count (Var.read count + 1);
        leave me;
        Value.unit
      | "Get", Value.Unit -> Value.int (Var.read count)
      | _ -> unexpected "Dekker" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe
    ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.counter) create

let fenced = make_adapter ~fenced:true "DekkerCounter"
let fence_free = make_adapter ~fenced:false "DekkerCounter (Pre: missing store-load fence)"
