module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Condvar = Lineup_runtime.Condvar
open Util

let universe =
  [ inv "Release"; inv "Wait"; inv "TryWait"; inv "CurrentCount"; inv_int "ReleaseMany" 2 ]

let make_adapter ~buggy_release name =
  let create () =
    let count = Var.make ~volatile:true ~name:"sem.count" 0 in
    let lock = Mutex_.create ~name:"sem.lock" () in
    let cond = Condvar.create ~name:"sem.cond" () in
    let release n =
      if buggy_release then begin
        (* BUG (root cause C): unsynchronized read-modify-write *)
        let prev = Var.read count in
        Var.write count (prev + n);
        Mutex_.with_lock lock (fun () -> Condvar.pulse_all ~m:lock cond);
        prev
      end
      else
        Mutex_.with_lock lock (fun () ->
            let prev = Var.read count in
            Var.write count (prev + n);
            Condvar.pulse_all ~m:lock cond;
            prev)
    in
    let wait () =
      Mutex_.acquire lock;
      while Var.read count = 0 do
        Condvar.wait cond lock
      done;
      Var.write count (Var.read count - 1);
      Mutex_.release lock
    in
    let try_wait () =
      Mutex_.with_lock lock (fun () ->
          let c = Var.read count in
          if c > 0 then begin
            Var.write count (c - 1);
            true
          end
          else false)
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Release", Value.Unit -> Value.int (release 1)
      | "ReleaseMany", Value.Int n -> Value.int (release n)
      | "Wait", Value.Unit ->
        wait ();
        Value.unit
      | "TryWait", Value.Unit -> Value.bool (try_wait ())
      | "CurrentCount", Value.Unit -> Value.int (Var.read count)
      | _ -> unexpected "SemaphoreSlim" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe
    ~spec:(Lineup_spec.Spec.Packed (Lineup_spec.Specs.semaphore ~initial:0)) create

let correct = make_adapter ~buggy_release:false "SemaphoreSlim"
let pre = make_adapter ~buggy_release:true "SemaphoreSlim (Pre: unlocked release)"
