module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Rt = Lineup_runtime.Rt
open Util

let universe = [ inv "Inc"; inv "Get"; inv_int "Set" 5; inv "Dec" ]

let correct =
  let create () =
    let lock = Mutex_.create ~name:"counter.lock" () in
    let count = Var.make ~name:"counter.count" 0 in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Inc", Value.Unit ->
        Mutex_.with_lock lock (fun () ->
            Var.write count (Var.read count + 1);
            Value.unit)
      | "Get", Value.Unit -> Mutex_.with_lock lock (fun () -> Value.int (Var.read count))
      | "Set", Value.Int x ->
        Mutex_.with_lock lock (fun () ->
            Var.write count x;
            Value.unit)
      | "Dec", Value.Unit ->
        (* semaphore-like: block while the count is zero *)
        let rec dec () =
          Mutex_.acquire lock;
          let c = Var.read count in
          if c > 0 then begin
            Var.write count (c - 1);
            Mutex_.release lock;
            Value.unit
          end
          else begin
            Mutex_.release lock;
            Rt.block ~wake:(fun () -> Var.peek count > 0) "count > 0";
            dec ()
          end
        in
        dec ()
      | _ -> unexpected "counter" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"Counter" ~universe ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.counter) create

(* Counter1 of §2.2.1: inc forgets the lock. *)
let buggy_unlocked =
  let create () =
    let lock = Mutex_.create ~name:"counter1.lock" () in
    let count = Var.make ~name:"counter1.count" 0 in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Inc", Value.Unit ->
        (* BUG: unsynchronized read-modify-write *)
        Var.write count (Var.read count + 1);
        Value.unit
      | "Get", Value.Unit -> Mutex_.with_lock lock (fun () -> Value.int (Var.read count))
      | "Set", Value.Int x ->
        Mutex_.with_lock lock (fun () ->
            Var.write count x;
            Value.unit)
      | _ -> unexpected "counter1" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"Counter1 (unlocked inc)"
    ~universe:[ inv "Inc"; inv "Get"; inv_int "Set" 5 ]
    ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.counter) create

(* Counter2 of §2.2.2: get never releases the lock. *)
let buggy_stuck =
  let create () =
    let lock = Mutex_.create ~name:"counter2.lock" () in
    let count = Var.make ~name:"counter2.count" 0 in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Inc", Value.Unit ->
        Mutex_.acquire lock;
        Var.write count (Var.read count + 1);
        Mutex_.release lock;
        Value.unit
      | "Get", Value.Unit ->
        Mutex_.acquire lock;
        (* BUG: missing release *)
        Value.int (Var.read count)
      | "Set", Value.Int x ->
        Mutex_.acquire lock;
        Var.write count x;
        Mutex_.release lock;
        Value.unit
      | _ -> unexpected "counter2" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"Counter2 (get keeps lock)"
    ~universe:[ inv "Inc"; inv "Get"; inv_int "Set" 5 ]
    ~spec:(Lineup_spec.Spec.Packed Lineup_spec.Specs.counter) create
