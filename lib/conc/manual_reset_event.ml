module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Condvar = Lineup_runtime.Condvar
module Rt = Lineup_runtime.Rt
open Util

(* Combined state word: bit 0 = signaled, upper bits = waiter count. *)
let signaled st = st land 1 = 1
let waiters st = st asr 1

let universe = [ inv "Set"; inv "Wait"; inv "Reset"; inv "IsSet"; inv "TryWait" ]

type variant =
  | Correct
  | Lost_signal  (** Set gives up after one failed CAS *)
  | Cas_typo  (** Wait computes the new state word from a re-read *)

let make_adapter variant name =
  let create () =
    let state = Var.make ~volatile:true ~name:"mre.state" 0 in
    let lock = Mutex_.create ~name:"mre.lock" () in
    let cond = Condvar.create ~name:"mre.cond" () in
    let rec update f =
      let local = Var.read state in
      if not (Var.cas state local (f local)) then update f
    in
    let rec wait () =
      let local = Var.read state in
      if signaled local then ()
      else begin
        (* register as a waiter *)
        let newstate =
          match variant with
          | Cas_typo ->
            (* BUG (paper §5.2.1): the shared variable is read a second
               time when computing the new value *)
            Var.read state + 2
          | Correct | Lost_signal -> local + 2
        in
        if Var.cas state local newstate then begin
          Mutex_.acquire lock;
          while not (signaled (Var.read state)) do
            Condvar.wait cond lock
          done;
          Mutex_.release lock;
          (* deregister *)
          update (fun st -> st - 2)
        end
        else wait ()
      end
    in
    let set () =
      match variant with
      | Lost_signal ->
        (* BUG: no retry loop — a concurrent waiter registration makes the
           CAS fail and the signal is silently dropped *)
        let local = Var.read state in
        if Var.cas state local (local lor 1) && waiters local > 0 then
          Mutex_.with_lock lock (fun () -> Condvar.pulse_all ~m:lock cond)
      | Correct | Cas_typo ->
        update (fun st -> st lor 1);
        if waiters (Var.read state) > 0 then
          Mutex_.with_lock lock (fun () -> Condvar.pulse_all ~m:lock cond)
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Set", Value.Unit ->
        set ();
        Value.unit
      | "Reset", Value.Unit ->
        update (fun st -> st land lnot 1);
        Value.unit
      | "Wait", Value.Unit ->
        wait ();
        Value.unit
      | "TryWait", Value.Unit -> Value.bool (signaled (Var.read state))
      | "IsSet", Value.Unit -> Value.bool (signaled (Var.read state))
      | _ -> unexpected "ManualResetEvent" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe
    ~spec:(Lineup_spec.Spec.Packed (Lineup_spec.Specs.manual_reset_event ~initial:false))
    create

let correct = make_adapter Correct "ManualResetEvent"
let lost_signal = make_adapter Lost_signal "ManualResetEvent (Pre: lost signal)"
let cas_typo = make_adapter Cas_typo "ManualResetEvent (Pre: CAS typo)"
