(** The shard server: runs phase 1 and the frontier warm-up locally, fans
    the partitions out to worker processes over the {!Wire} protocol,
    checkpoints every completed partition into the run directory, and
    merges in canonical frontier order.

    Determinism contract: the final {!Lineup.Check.result}, its rendered
    report and the metrics registry are byte-identical to the in-process
    frontier path ([lineup check -j N]) — for any worker count, any
    completion order, any number of worker crashes and retries, and any
    number of kill/[--resume] cycles (see DESIGN.md). *)

type stats = {
  mutable s_partitions : int;  (** frontier size *)
  mutable s_dispatched : int;  (** tasks sent to workers this server run *)
  mutable s_completed : int;  (** results received this server run *)
  mutable s_checkpoint_hits : int;  (** partitions restored from [parts/], not re-explored *)
  mutable s_retries : int;  (** re-dispatches after a worker died or failed *)
  mutable s_workers : int;  (** distinct worker connections accepted *)
}

type outcome =
  | Report of Lineup.Check.result  (** the sweep completed and merged *)
  | Halted of int
      (** [--halt-after] fired after this many checkpoints: the run
          directory is durable, no verdict was produced (exit code 2) *)
  | Failed_run of string  (** operational failure (bad directory, workers kept dying) *)

(** [run ~dir ~adapter ~test ()] drives one sweep.

    [listen] (default [DIR/sock]) is a Unix-domain path or ["host:port"].
    [local] spawns that many [shard-worker --connect] child processes of
    the current executable. [resume] loads phase 1, the frontier and all
    valid partition checkpoints from [dir] instead of recomputing;
    [halt_after] stops the server (without merging) after that many
    checkpoint writes — the deterministic "kill" used by the CI resume
    smoke test. [max_retries] bounds re-dispatches per partition.

    Progress goes to stderr; nothing is printed to stdout. Each completed
    run (including a halted one) writes [DIR/shard-stats.json]. *)
val run :
  ?config:Lineup.Check.config ->
  ?metrics:Lineup_observe.Metrics.t ->
  ?listen:string ->
  ?local:int ->
  ?resume:bool ->
  ?halt_after:int ->
  ?max_retries:int ->
  dir:string ->
  adapter:Lineup.Adapter.t ->
  test:Lineup.Test_matrix.t ->
  unit ->
  outcome
