module Check = Lineup.Check
module Observation_file = Lineup.Observation_file
module Explore = Lineup_scheduler.Explore

let epr fmt = Fmt.epr ("shard-worker: " ^^ fmt ^^ "@.")

(* The server binds before spawning local workers, but remote start order
   is anyone's guess — retry the connect for ~5s. *)
let connect_with_retry addr_str =
  let sockaddr = Wire.parse_addr addr_str in
  let rec go n =
    let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> Some fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.1;
      go (n - 1)
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
  in
  go 50

type job = {
  j_config : Check.config;
  j_adapter : Lineup.Adapter.t;
  j_test : Lineup.Test_matrix.t;
  j_observation : Lineup.Observation.t;
}

let run ~connect ~lookup () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match connect_with_retry connect with
  | None ->
    epr "cannot reach server at %s" connect;
    3
  | Some fd -> (
    (* A dead server mid-send is a clean exit: the partition in flight is
       simply re-dispatched to another worker on resume. *)
    let send msg = try Wire.send_to_server fd msg; true with Unix.Unix_error _ -> false in
    if not (send (Wire.Hello { wire = Wire.wire_version })) then 0
    else
      let rec loop job =
        match Wire.recv_to_worker fd with
        | None | Some Wire.Shutdown -> 0
        | Some (Wire.Init i) -> (
          match lookup i.Wire.i_adapter with
          | None ->
            epr "unknown adapter %S" i.Wire.i_adapter;
            3
          | Some adapter -> (
            match
              Observation_file.observation_of_histories
                (Observation_file.of_string i.Wire.i_observation)
            with
            | Error _ ->
              epr "received a nondeterministic observation set";
              3
            | Ok observation ->
              loop
                (Some
                   {
                     j_config = i.Wire.i_config;
                     j_adapter = adapter;
                     j_test = i.Wire.i_test;
                     j_observation = observation;
                   })))
        | Some (Wire.Task { index; prefix }) -> (
          match job with
          | None ->
            epr "received a task before the job context";
            3
          | Some j -> (
            match Explore.prefix_of_string prefix with
            | Error msg ->
              if send (Wire.Failed { index; message = "bad prefix: " ^ msg }) then loop job
              else 0
            | Ok p -> (
              match
                Check.run_partition ~config:j.j_config ~observation:j.j_observation ~index
                  ~prefix:p j.j_adapter j.j_test
              with
              | part -> if send (Wire.Result { index; part }) then loop job else 0
              | exception e ->
                let message = Printexc.to_string e in
                if send (Wire.Failed { index; message }) then loop job else 0)))
      in
      let code = loop None in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      code)
