module Check = Lineup.Check
module Test_matrix = Lineup.Test_matrix
module Explore = Lineup_scheduler.Explore
module Invocation = Lineup_history.Invocation

(* Version 2: the memory model entered [explore_fp] (a TSO sweep must never
   resume from an SC checkpoint or vice versa) and [Explore.stats] grew the
   [flushes] counter, changing the marshaled payload shape. *)
let format_version = 2

(* Same shape as Obs_cache's key: every knob that shapes the frontier, a
   partition's exploration, or the membership decisions. [phase2_domains]
   is deliberately absent — it never changes results, and a sweep recorded
   on one machine must resume on another with a different core count. *)
let explore_fp (c : Explore.config) =
  let mode =
    match c.Explore.mode with Explore.Serial -> "serial" | Explore.Concurrent -> "concurrent"
  in
  let opt = function None -> "-" | Some n -> string_of_int n in
  String.concat ","
    [
      mode;
      opt c.Explore.preemption_bound;
      string_of_int c.Explore.max_steps;
      opt c.Explore.max_executions;
      string_of_bool c.Explore.por;
      Lineup_runtime.Memory_model.to_string c.Explore.memory;
    ]

let test_key (test : Test_matrix.t) =
  let col invs = String.concat ";" (List.map Invocation.to_string invs) in
  String.concat "|"
    ((col test.init :: Array.to_list (Array.map col test.columns)) @ [ col test.final ])

let fingerprint ~(config : Check.config) ~adapter ~test =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            string_of_int format_version;
            explore_fp config.Check.phase1;
            explore_fp config.Check.phase2;
            string_of_bool config.Check.classic_only;
            string_of_bool config.Check.dedup_histories;
            Check.membership_name config.Check.membership;
            string_of_int config.Check.phase2_frontier_depth;
            adapter;
            test_key test;
          ]))

(* ---------------- files ---------------- *)

let manifest_path dir = Filename.concat dir "manifest"
let phase1_path dir = Filename.concat dir "phase1.bin"
let frontier_path dir = Filename.concat dir "frontier.bin"
let parts_dir dir = Filename.concat dir "parts"
let part_path dir index = Filename.concat (parts_dir dir) (Fmt.str "%04d.part" index)
let stats_path ~dir = Filename.concat dir "shard-stats.json"
let header fingerprint = Fmt.str "lineup-shard/%d\n%s\n" format_version fingerprint

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

(* Atomic: a reader (or a resumed server) never sees a torn file. *)
let write_file path contents = Lineup_observe.Atomic_file.write ~path contents

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [Some payload-marshal-string] iff the file exists and its header names
   this exact format version and fingerprint. *)
let read_stamped path ~fingerprint =
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | contents ->
      let h = header fingerprint in
      let hl = String.length h in
      if String.length contents >= hl && String.sub contents 0 hl = h then
        Some (String.sub contents hl (String.length contents - hl))
      else None
    | exception Sys_error _ -> None

let write_stamped path ~fingerprint payload =
  write_file path (header fingerprint ^ payload)

(* ---------------- directory lifecycle ---------------- *)

let remove_parts dir =
  let d = parts_dir dir in
  if Sys.file_exists d && Sys.is_directory d then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      (Sys.readdir d)

let init_dir ~dir ~fingerprint =
  mkdir_p (parts_dir dir);
  (* A fresh sweep never trusts leftovers — neither stale files from a
     different configuration nor checkpoints of a previous identical run
     (those are what [--resume] is for). *)
  remove_parts dir;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ phase1_path dir; frontier_path dir ];
  write_file (manifest_path dir) (header fingerprint)

let validate_dir ~dir ~fingerprint =
  if not (Sys.file_exists dir) then Error (Fmt.str "run directory %s does not exist" dir)
  else if not (Sys.file_exists (manifest_path dir)) then
    Error (Fmt.str "%s is not a shard run directory (no manifest)" dir)
  else if read_file (manifest_path dir) <> header fingerprint then
    Error
      (Fmt.str
         "%s was recorded under a different format version or configuration fingerprint — it \
          cannot resume this sweep"
         dir)
  else Ok ()

(* ---------------- payloads ---------------- *)

let save_phase1 ~dir ~fingerprint ~observation_xml (phase1 : Check.phase_report) =
  write_stamped (phase1_path dir) ~fingerprint
    (Marshal.to_string (observation_xml, phase1) [])

let load_phase1 ~dir ~fingerprint =
  match read_stamped (phase1_path dir) ~fingerprint with
  | None -> None
  | Some payload -> (
    try Some (Marshal.from_string payload 0 : string * Check.phase_report)
    with Failure _ | Invalid_argument _ -> None)

(* Prefixes travel as their textual encoding, the same representation the
   wire protocol uses — a checkpoint is readable (`head frontier.bin`) and
   the decode path is exercised on every resume. *)
let save_frontier ~dir ~fingerprint (frontier : Explore.frontier) =
  let encoded = List.map Explore.prefix_to_string frontier.Explore.prefixes in
  write_stamped (frontier_path dir) ~fingerprint
    (Marshal.to_string (encoded, frontier.Explore.warmup) [])

let load_frontier ~dir ~fingerprint =
  match read_stamped (frontier_path dir) ~fingerprint with
  | None -> None
  | Some payload -> (
    match (Marshal.from_string payload 0 : string list * Explore.stats) with
    | encoded, warmup ->
      let rec decode acc = function
        | [] -> Some (List.rev acc)
        | s :: rest -> (
          match Explore.prefix_of_string s with
          | Ok p -> decode (p :: acc) rest
          | Error _ -> None)
      in
      Option.map
        (fun prefixes -> { Explore.prefixes; warmup })
        (decode [] encoded)
    | exception (Failure _ | Invalid_argument _) -> None)

let save_part ~dir ~fingerprint part =
  write_stamped (part_path dir (Check.partition_index part)) ~fingerprint
    (Marshal.to_string part [])

let load_parts ~dir ~fingerprint =
  let d = parts_dir dir in
  if not (Sys.file_exists d && Sys.is_directory d) then []
  else
    let seen = Hashtbl.create 64 in
    let files = Sys.readdir d in
    Array.sort String.compare files;
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".part" then
          match read_stamped (Filename.concat d f) ~fingerprint with
          | None -> ()
          | Some payload -> (
            match (Marshal.from_string payload 0 : Check.p2_partition) with
            | part ->
              let i = Check.partition_index part in
              if not (Hashtbl.mem seen i) then Hashtbl.replace seen i part
            | exception (Failure _ | Invalid_argument _) -> ()))
      files;
    Hashtbl.fold (fun _ p acc -> p :: acc) seen []
