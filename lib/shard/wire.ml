let wire_version = 1

(* Backstop against a corrupted or misaligned length prefix: no legitimate
   message (the largest is [Init] with an observation file) approaches this. *)
let max_payload = 1 lsl 28

type init = {
  i_fingerprint : string;
  i_config : Lineup.Check.config;
  i_adapter : string;
  i_test : Lineup.Test_matrix.t;
  i_observation : string;
}

type to_server =
  | Hello of { wire : int }
  | Result of { index : int; part : Lineup.Check.p2_partition }
  | Failed of { index : int; message : string }

type to_worker =
  | Init of init
  | Task of { index : int; prefix : string }
  | Shutdown

(* OCaml delivers signals by interrupting blocking syscalls, so any signal
   landing mid-frame (SIGCHLD from a finished worker, a profiler's SIGPROF,
   an operator's SIGHUP) makes [Unix.read]/[Unix.write] raise [EINTR].
   Without the retry, [recv_*]'s blanket [Unix_error] handler turned that
   into a spurious EOF and killed the server/worker mid-protocol. *)
let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let rec write_all fd buf ofs len =
  if len > 0 then begin
    let n = retry_eintr (fun () -> Unix.write fd buf ofs len) in
    write_all fd buf (ofs + n) (len - n)
  end

(* [Some buf] or [None] on EOF before [len] bytes arrived. *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go ofs =
    if ofs >= len then Some buf
    else
      match retry_eintr (fun () -> Unix.read fd buf ofs (len - ofs)) with
      | 0 -> None
      | n -> go (ofs + n)
  in
  go 0

let send fd msg =
  let payload = Marshal.to_bytes msg [] in
  let len = Bytes.length payload in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  write_all fd header 0 4;
  write_all fd payload 0 len

let recv fd =
  match read_exact fd 4 with
  | None -> None
  | Some header -> (
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_payload then None
    else
      match read_exact fd len with
      | None -> None
      | Some payload -> (
        try Some (Marshal.from_bytes payload 0)
        with Failure _ | Invalid_argument _ -> None))

let send_to_server fd (msg : to_server) = send fd msg
let send_to_worker fd (msg : to_worker) = send fd msg

let recv_to_server fd : to_server option =
  try recv fd with Unix.Unix_error _ -> None

let recv_to_worker fd : to_worker option =
  try recv fd with Unix.Unix_error _ -> None

let parse_addr s =
  match String.rindex_opt s ':' with
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | None -> invalid_arg (Fmt.str "bad TCP address %S (port is not a number)" s)
     | Some port ->
       let addr =
         if host = "" || host = "localhost" then Unix.inet_addr_loopback
         else
           try Unix.inet_addr_of_string host
           with Failure _ -> (
             try (Unix.gethostbyname host).Unix.h_addr_list.(0)
             with Not_found -> invalid_arg (Fmt.str "cannot resolve host %S" host))
       in
       Unix.ADDR_INET (addr, port))
  | None -> Unix.ADDR_UNIX s
