(** The checkpointed run directory of a sharded sweep.

    Layout:
    {v
    RUNDIR/
      manifest          format version + configuration fingerprint
      phase1.bin        observation set (Fig. 7 XML) + phase-1 report
      frontier.bin      encoded decision prefixes + warm-up statistics
      parts/
        0007.part       one completed partition result (Check.p2_partition)
      shard-stats.json  progress counters of the last server run
      sock              default Unix-domain listening socket
    v}

    Every data file carries the same discipline {!Lineup.Obs_cache} uses:
    a header line with the format version and a second line with the
    fingerprint of (check configuration, adapter name, test content). A
    file whose header does not match the current run is stale — it is
    ignored (and never merged), so a run directory can {e only} resume the
    exact sweep that wrote it. Writes go through a temp file + atomic
    rename: a checkpoint either exists completely or not at all, and a
    server killed mid-write never corrupts the directory. *)

val format_version : int

(** [fingerprint ~config ~adapter ~test] keys the run: both exploration
    configs (including [por] and the preemption bound), the membership
    mode and dedup/classic flags, the frontier depth, the adapter name and
    the full test content. Anything that could change the frontier, a
    partition's result, or the merge is covered. *)
val fingerprint :
  config:Lineup.Check.config -> adapter:string -> test:Lineup.Test_matrix.t -> string

(** [init_dir ~dir ~fingerprint] prepares [dir] for a fresh sweep:
    creates it (recursively) if missing, evicts stale data files
    (mismatched header) {e and} any previous partition checkpoints, and
    writes the manifest. *)
val init_dir : dir:string -> fingerprint:string -> unit

(** [validate_dir ~dir ~fingerprint] checks that [dir] holds a resumable
    run of this exact sweep. *)
val validate_dir : dir:string -> fingerprint:string -> (unit, string) result

val save_phase1 :
  dir:string ->
  fingerprint:string ->
  observation_xml:string ->
  Lineup.Check.phase_report ->
  unit

val load_phase1 :
  dir:string -> fingerprint:string -> (string * Lineup.Check.phase_report) option

val save_frontier :
  dir:string -> fingerprint:string -> Lineup_scheduler.Explore.frontier -> unit

(** [None] when absent, stale, or any stored prefix fails to decode —
    never a partially trusted frontier. *)
val load_frontier :
  dir:string -> fingerprint:string -> Lineup_scheduler.Explore.frontier option

val save_part : dir:string -> fingerprint:string -> Lineup.Check.p2_partition -> unit

(** All valid partition checkpoints, deduplicated by partition index
    (first wins); stale or undecodable files are skipped. *)
val load_parts : dir:string -> fingerprint:string -> Lineup.Check.p2_partition list

val stats_path : dir:string -> string
