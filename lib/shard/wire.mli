(** The shard socket protocol: length-prefixed [Marshal] frames over a
    Unix-domain or TCP stream.

    Every frame is a 4-byte big-endian payload length followed by the
    marshaled message. Payloads are pure data ({!Lineup.Check.p2_partition}
    and friends contain no closures), so the frames survive a process
    boundary; they do {e not} survive a differing OCaml runtime, which is
    fine — server and workers are the same binary ([--local]) or the same
    build deployed across machines.

    Receive functions return [None] on a cleanly closed peer, a truncated
    frame, an oversized length prefix or an undecodable payload — the
    caller treats all of these as "the peer is gone" and re-dispatches. *)

(** Bumped on any message or framing change; checked in {!to_server.Hello}
    before any work is dispatched. *)
val wire_version : int

(** Everything a worker needs to run partitions: the check configuration,
    the adapter (by registry name — adapters hold closures and cannot
    travel), the test matrix, and the phase-1 observation set as Fig. 7
    XML. [i_fingerprint] is the run's {!Store.fingerprint}, forwarded so
    workers can label diagnostics. *)
type init = {
  i_fingerprint : string;
  i_config : Lineup.Check.config;
  i_adapter : string;
  i_test : Lineup.Test_matrix.t;
  i_observation : string;
}

type to_server =
  | Hello of { wire : int }
  | Result of { index : int; part : Lineup.Check.p2_partition }
  | Failed of { index : int; message : string }
      (** the partition could not be run (decode error, adapter exception
          outside the modeled threads); the server re-dispatches or aborts *)

type to_worker =
  | Init of init
  | Task of { index : int; prefix : string }
      (** [prefix] is {!Lineup_scheduler.Explore.prefix_to_string} *)
  | Shutdown

val send_to_server : Unix.file_descr -> to_server -> unit
val send_to_worker : Unix.file_descr -> to_worker -> unit
val recv_to_server : Unix.file_descr -> to_server option
val recv_to_worker : Unix.file_descr -> to_worker option

(** [parse_addr s] — ["host:port"] is a TCP address, anything else a
    Unix-domain socket path. *)
val parse_addr : string -> Unix.sockaddr
