module Check = Lineup.Check
module Adapter = Lineup.Adapter
module Observation = Lineup.Observation
module Observation_file = Lineup.Observation_file
module Explore = Lineup_scheduler.Explore
module Metrics = Lineup_observe.Metrics

type stats = {
  mutable s_partitions : int;
  mutable s_dispatched : int;
  mutable s_completed : int;
  mutable s_checkpoint_hits : int;
  mutable s_retries : int;
  mutable s_workers : int;
}

type outcome =
  | Report of Check.result
  | Halted of int
  | Failed_run of string

let epr fmt = Fmt.epr ("shard-server: " ^^ fmt ^^ "@.")
let mincr metrics k = match metrics with Some m -> Metrics.incr m k | None -> ()

let write_stats ~dir ~halted (st : stats) =
  let oc = open_out (Store.stats_path ~dir) in
  Printf.fprintf oc
    "{\"schema\": \"lineup-shard-stats/1\", \"partitions\": %d, \"dispatched\": %d, \
     \"completed\": %d, \"checkpoint_hits\": %d, \"retries\": %d, \"workers\": %d, \
     \"halted\": %b}\n"
    st.s_partitions st.s_dispatched st.s_completed st.s_checkpoint_hits st.s_retries
    st.s_workers halted;
  close_out oc

(* One connected worker. [w_task] is the partition index in flight — on any
   send/receive failure it goes back to the pending queue. *)
type worker = {
  w_fd : Unix.file_descr;
  mutable w_task : int option;
}

(* The socket fan-out over one prepared sweep. Fills [parts] (index →
   checkpointed result) until every partition at or below the current cut
   index is present, [halt_after] fires, or the run fails operationally. *)
let serve ~config ~listen ~local ~halt_after ~max_retries ~dir ~fingerprint ~(st : stats)
    ~adapter ~test ~observation_xml ~prefixes ~parts ~cut ~pending () =
  let nparts = Array.length prefixes in
  let finished () =
    let upper = min !cut (nparts - 1) in
    let ok = ref true in
    for i = 0 to upper do
      if not (Hashtbl.mem parts i) then ok := false
    done;
    !ok
  in
  let written = ref 0 in
  let halt_hit () = match halt_after with Some k -> !written >= k | None -> false in
  let outcome = ref None in
  let fail msg =
    epr "%s" msg;
    if !outcome = None then outcome := Some msg
  in
  let addr_str = match listen with Some a -> a | None -> Filename.concat dir "sock" in
  let sockaddr = Wire.parse_addr addr_str in
  (match sockaddr with
   | Unix.ADDR_UNIX p when Sys.file_exists p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
   | _ -> ());
  let lsock = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock sockaddr;
  Unix.listen lsock 64;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  epr "listening on %s (%d partitions, %d checkpointed)" addr_str nparts (Hashtbl.length parts);
  let children =
    List.init local (fun _ ->
        Unix.create_process Sys.executable_name
          [| Sys.executable_name; "shard-worker"; "--connect"; addr_str |]
          Unix.stdin Unix.stderr Unix.stderr)
  in
  let live_children = ref children in
  let workers : (Unix.file_descr, worker) Hashtbl.t = Hashtbl.create 8 in
  let retries = Hashtbl.create 16 in
  let requeue i =
    let n = (match Hashtbl.find_opt retries i with Some n -> n | None -> 0) + 1 in
    Hashtbl.replace retries i n;
    st.s_retries <- st.s_retries + 1;
    if n > max_retries then fail (Fmt.str "partition %d failed %d times; giving up" i n)
    else if i <= !cut && not (Hashtbl.mem parts i) then
      pending := List.sort Int.compare (i :: !pending)
  in
  let drop_worker w =
    (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
    Hashtbl.remove workers w.w_fd;
    match w.w_task with
    | Some i ->
      w.w_task <- None;
      requeue i
    | None -> ()
  in
  let send w msg =
    try
      Wire.send_to_worker w.w_fd msg;
      true
    with Unix.Unix_error _ | Sys_error _ ->
      drop_worker w;
      false
  in
  (* Lowest pending index first: the merge only waits on indices at or
     below the cut, so converging from the left finishes sweeps with an
     early violation fastest. *)
  let dispatch w =
    match !pending with
    | i :: rest when i <= !cut ->
      pending := rest;
      w.w_task <- Some i;
      if send w (Wire.Task { index = i; prefix = prefixes.(i) }) then
        st.s_dispatched <- st.s_dispatched + 1
    | _ :: _ | [] -> ignore (send w Wire.Shutdown)
  in
  let handle_msg w = function
    | Wire.Hello { wire } ->
      if wire <> Wire.wire_version then begin
        epr "worker speaks wire v%d, this server is v%d — closing" wire Wire.wire_version;
        drop_worker w
      end
      else if
        send w
          (Wire.Init
             {
               Wire.i_fingerprint = fingerprint;
               i_config = config;
               i_adapter = adapter.Adapter.name;
               i_test = test;
               i_observation = observation_xml;
             })
      then dispatch w
    | Wire.Result { index; part } ->
      w.w_task <- None;
      st.s_completed <- st.s_completed + 1;
      if index < nparts && not (Hashtbl.mem parts index) then begin
        Store.save_part ~dir ~fingerprint part;
        Hashtbl.replace parts index part;
        incr written;
        if Check.partition_stop part && index < !cut then begin
          (* Partitions past the earliest stopping one can never reach the
             merge (the deterministic prefix rule) — stop dispatching them. *)
          cut := index;
          pending := List.filter (fun i -> i <= !cut) !pending
        end
      end;
      if not (halt_hit ()) then dispatch w
    | Wire.Failed { index; message } ->
      w.w_task <- None;
      epr "worker failed on partition %d: %s" index message;
      requeue index;
      dispatch w
  in
  (try
     while !outcome = None && (not (finished ())) && not (halt_hit ()) do
       live_children :=
         List.filter
           (fun pid -> match Unix.waitpid [ Unix.WNOHANG ] pid with 0, _ -> true | _ -> false)
           !live_children;
       if local > 0 && !live_children = [] && Hashtbl.length workers = 0 then
         fail "all local workers exited before the sweep completed"
       else begin
         let fds = lsock :: Hashtbl.fold (fun fd _ acc -> fd :: acc) workers [] in
         let readable, _, _ = Unix.select fds [] [] 1.0 in
         List.iter
           (fun fd ->
             if fd == lsock then begin
               let cfd, _ = Unix.accept lsock in
               st.s_workers <- st.s_workers + 1;
               Hashtbl.replace workers cfd { w_fd = cfd; w_task = None }
             end
             else
               match Hashtbl.find_opt workers fd with
               | None -> ()
               | Some w -> (
                 match Wire.recv_to_server fd with
                 | None -> drop_worker w
                 | Some msg -> handle_msg w msg))
           readable
       end
     done
   with Unix.Unix_error (e, fn, _) ->
     fail (Fmt.str "socket error: %s in %s" (Unix.error_message e) fn));
  (* Wind down: idle workers get a clean Shutdown; workers mid-flight on a
     no-longer-needed partition see EOF and exit on their next send. *)
  Hashtbl.iter (fun _ w -> if w.w_task = None then ignore (send w Wire.Shutdown)) workers;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) workers;
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  (match sockaddr with
   | Unix.ADDR_UNIX p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
   | _ -> ());
  List.iter
    (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    !live_children;
  match !outcome with
  | Some msg -> Error msg
  | None -> if finished () then Ok `Complete else Ok (`Halted !written)

let run ?(config = Check.default_config) ?metrics ?listen ?(local = 0) ?(resume = false)
    ?halt_after ?(max_retries = 3) ~dir ~adapter ~test () =
  let fingerprint = Store.fingerprint ~config ~adapter:adapter.Adapter.name ~test in
  let st =
    {
      s_partitions = 0;
      s_dispatched = 0;
      s_completed = 0;
      s_checkpoint_hits = 0;
      s_retries = 0;
      s_workers = 0;
    }
  in
  (* Phase 1 + frontier: restored from checkpoints on --resume (with the
     stored counters re-ingested so the metrics registry stays identical
     to an uninterrupted run), recomputed and checkpointed otherwise. *)
  let prepared =
    if resume then
      match Store.validate_dir ~dir ~fingerprint with
      | Error e -> Error e
      | Ok () -> (
        match
          (Store.load_phase1 ~dir ~fingerprint, Store.load_frontier ~dir ~fingerprint)
        with
        | Some (xml, phase1), Some frontier -> (
          match Observation_file.observation_of_histories (Observation_file.of_string xml) with
          | Ok observation ->
            Check.ingest_phase1 ?metrics phase1;
            Ok (`Sweep (observation, xml, phase1, frontier))
          | Error _ ->
            Error "checkpointed observation set is nondeterministic — phase1.bin is corrupt")
        | _ -> Error (Fmt.str "%s has no resumable phase-1/frontier checkpoint" dir))
    else begin
      Store.init_dir ~dir ~fingerprint;
      match Check.synthesize ~config ?metrics adapter test with
      | Error (verdict, phase1) ->
        (* Replicates Check.run's phase-1 failure path, counters included. *)
        mincr metrics "check.runs";
        (match verdict with
         | Check.Fail _ -> mincr metrics "check.violations"
         | Check.Cancelled -> mincr metrics "check.cancelled"
         | Check.Pass -> ());
        Ok
          (`Phase1_failed
            {
              Check.verdict;
              observation = Observation.create ();
              phase1;
              phase2 = None;
              analyses = [];
            })
      | Ok (observation, phase1) ->
        let xml = Observation_file.to_string observation in
        Store.save_phase1 ~dir ~fingerprint ~observation_xml:xml phase1;
        let frontier, _ = Check.split_frontier ~config adapter test in
        Store.save_frontier ~dir ~fingerprint frontier;
        Ok (`Sweep (observation, xml, phase1, frontier))
    end
  in
  match prepared with
  | Error e -> Failed_run e
  | Ok (`Phase1_failed result) -> Report result
  | Ok (`Sweep (observation, observation_xml, phase1, frontier)) -> (
    let prefixes =
      Array.of_list (List.map Explore.prefix_to_string frontier.Explore.prefixes)
    in
    let nparts = Array.length prefixes in
    st.s_partitions <- nparts;
    let parts : (int, Check.p2_partition) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun p ->
        let i = Check.partition_index p in
        if i < nparts && not (Hashtbl.mem parts i) then Hashtbl.replace parts i p)
      (Store.load_parts ~dir ~fingerprint);
    st.s_checkpoint_hits <- Hashtbl.length parts;
    let cut = ref max_int in
    Hashtbl.iter (fun i p -> if Check.partition_stop p && i < !cut then cut := i) parts;
    let pending = ref [] in
    for i = nparts - 1 downto 0 do
      if i <= !cut && not (Hashtbl.mem parts i) then pending := i :: !pending
    done;
    let merge () =
      let plist = Hashtbl.fold (fun _ p acc -> p :: acc) parts [] in
      Report (Check.merge_partitions ?metrics ~observation ~phase1 ~frontier plist)
    in
    if !pending = [] then begin
      (* Everything needed is already checkpointed (e.g. a resume after
         the sweep finished): no sockets, no workers, straight to merge. *)
      write_stats ~dir ~halted:false st;
      merge ()
    end
    else
      match
        serve ~config ~listen ~local ~halt_after ~max_retries ~dir ~fingerprint ~st ~adapter
          ~test ~observation_xml ~prefixes ~parts ~cut ~pending ()
      with
      | Error msg ->
        write_stats ~dir ~halted:false st;
        Failed_run msg
      | Ok (`Halted n) ->
        write_stats ~dir ~halted:true st;
        epr "halted after %d checkpoints; resume with --resume %s" n dir;
        Halted n
      | Ok `Complete ->
        write_stats ~dir ~halted:false st;
        merge ())
