(** The shard worker: connects to a {!Server}, receives the job context
    ({!Wire.init}), then loops running partition tasks with
    {!Lineup.Check.run_partition} and shipping the serializable results
    back. Stateless beyond the [Init] message — a worker can die at any
    point and the server re-dispatches its partition.

    All diagnostics go to stderr; stdout is never written (the server's
    stdout is the comparable report). *)

(** [run ~connect ~lookup ()] returns the process exit code: 0 on a clean
    shutdown (including the server going away mid-sweep — the work is
    re-dispatched, not lost), 3 on a setup error (unknown adapter, task
    before init, unreachable server). [lookup] resolves an adapter
    registry name; the catalog lives with the CLI, not this library. *)
val run : connect:string -> lookup:(string -> Lineup.Adapter.t option) -> unit -> int
