(* The analyzer pipeline: N checkers over ONE exploration.

   The load-bearing properties:
   - single-pass results are byte-identical to the legacy one-exploration-
     per-checker paths, on correct and buggy adapters alike (each analyzer
     sees every execution because the exploration stops early only when
     every attached analyzer is done);
   - analyzer-state merges are order-insensitive for the set-union /
     counter accumulators (qcheck), so the frontier-split path cannot
     depend on partition completion order;
   - `phase2_domains = Some j` gives byte-identical renders and verdicts
     for every j, and matches the monolithic path;
   - one pipeline run is ONE exploration: the per-analyzer execution
     counters all equal `explore.phase2.executions`;
   - the shared-access logging flag is scoped exception-safely. *)

open Helpers
module Exec_ctx = Lineup_runtime.Exec_ctx
module Explore = Lineup_scheduler.Explore
module Metrics = Lineup_observe.Metrics
module Conc = Lineup_conc
module Checkers = Lineup_checkers
open Lineup

(* hand-built logs (same constructors as test_checkers) *)
let acc ?(volatile = false) tid loc kind =
  Exec_ctx.Access { tid; loc; loc_name = Fmt.str "loc%d" loc; kind; volatile }

let acq tid lock = Exec_ctx.Lock_acquire { tid; lock; name = Fmt.str "lock%d" lock }
let rel tid lock = Exec_ctx.Lock_release { tid; lock; name = Fmt.str "lock%d" lock }
let op_start tid op_index = Exec_ctx.Op_start { tid; op_index }
let op_end tid op_index = Exec_ctx.Op_end { tid; op_index }

(* A synthetic run_result carrying just an access log — all the comparison
   analyzers consume. *)
let rr log =
  {
    Harness.history = history [];
    outcome =
      {
        Explore.exec_end = Explore.All_finished;
        steps = 0;
        preemptions = 0;
        yields = 0;
        flushes = 0;
        choice_points = 0;
        errors = [];
        por_pruned = false;
      };
    log;
  }

(* ------------------------------------------------------------------ *)
(* qcheck: merge order-insensitivity                                   *)
(* ------------------------------------------------------------------ *)

let entry_gen =
  let open QCheck.Gen in
  let tid = int_range 0 2 in
  let loc = int_range 1 3 in
  let kind = oneofl [ Exec_ctx.Read; Exec_ctx.Write; Exec_ctx.Rmw ] in
  frequency
    [
      (6, map3 (fun t l k -> acc t l k) tid loc kind);
      (1, map2 acq tid (int_range 8 9));
      (1, map2 rel tid (int_range 8 9));
      (1, map2 op_start tid (int_range 0 2));
      (1, map2 op_end tid (int_range 0 2));
    ]

let logs_gen =
  QCheck.Gen.(list_size (int_range 1 6) (list_size (int_range 0 12) entry_gen))

(* A list of per-sub-exploration logs plus a permutation of it. *)
let logs_and_perm_arb =
  QCheck.make
    ~print:(fun (logs, _) -> Fmt.str "%d logs" (List.length logs))
    QCheck.Gen.(logs_gen >>= fun logs -> shuffle_l logs >>= fun p -> return (logs, p))

(* Build one state per log, then fold-merge in the given order; the
   observable outcome (render + metrics) must not depend on the order. *)
let merged_outcome analyzer logs =
  let states =
    List.map
      (fun log ->
        let p = Analyzer.fresh analyzer in
        ignore (Analyzer.step p (rr log));
        p)
      logs
  in
  let m = List.fold_left Analyzer.merge (List.hd states) (List.tl states) in
  Analyzer.render m, Analyzer.metrics m

let merge_order_insensitive name mk =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(name ^ " merge is order-insensitive")
       ~count:150 logs_and_perm_arb
       (fun (logs, permuted) -> merged_outcome (mk ()) logs = merged_outcome (mk ()) permuted))

(* ------------------------------------------------------------------ *)
(* Single pass vs legacy per-checker runs                              *)
(* ------------------------------------------------------------------ *)

let comparison_analyzers test =
  let threads = Test_matrix.num_threads test + 1 in
  [ Checkers.Race_detector.analyzer ~threads; Checkers.Serializability.analyzer () ]

(* The renders the legacy CLI used to assemble from the standalone
   entry points — the byte-level contract the analyzers must preserve. *)
let legacy_races_render ~adapter ~test =
  let races = Checkers.Race_detector.run ~adapter ~test () in
  Fmt.str "data races: %d@.%a" (List.length races)
    Fmt.(list ~sep:nop (fun ppf r -> Fmt.pf ppf "  %a@." Checkers.Race_detector.pp_race r))
    races

let legacy_ser_render ~adapter ~test =
  let report = Checkers.Serializability.run ~adapter ~test () in
  Fmt.str "conflict-serializability: %d of %d executions violate@."
    report.Checkers.Serializability.violations report.Checkers.Serializability.executions

let check_single_pass_matches_legacy ~adapter ~test () =
  let r = Check.run ~analyzers:(comparison_analyzers test) adapter test in
  let nth i = List.nth r.Check.analyses i in
  Alcotest.(check string) "races render" (legacy_races_render ~adapter ~test) (nth 0).Check.a_render;
  Alcotest.(check string) "ser render" (legacy_ser_render ~adapter ~test) (nth 1).Check.a_render;
  let legacy = Check.run adapter test in
  Alcotest.(check string) "line-up summary" (Report.summary legacy) (Report.summary r)

let counter_test = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]

(* ------------------------------------------------------------------ *)
(* The suite                                                           *)
(* ------------------------------------------------------------------ *)

exception Boom

(* An analyzer whose step raises — the logging-restoration probe. *)
let raising_analyzer () =
  let sid = Stdlib.Type.Id.make () in
  let module A = struct
    type state = unit ref

    let id = sid
    let name = "boom"
    let needs_log = true
    let init () = ref ()
    let step _ _ = raise Boom
    let merge a _ = a
    let metrics _ = []
    let render _ = "boom\n"
    let violation _ = false
  end in
  Analyzer.T (module A)

let suite =
  [
    test "with_logging restores the previous flag on exception" (fun () ->
        Exec_ctx.set_logging false;
        (try
           Exec_ctx.with_logging true (fun () ->
               Alcotest.(check bool) "enabled inside" true (Exec_ctx.logging_enabled ());
               raise Exit)
         with Exit -> ());
        Alcotest.(check bool) "restored" false (Exec_ctx.logging_enabled ());
        Exec_ctx.with_logging true (fun () ->
            Alcotest.(check bool) "nested restore" false
              (Exec_ctx.with_logging false Exec_ctx.logging_enabled));
        Alcotest.(check bool) "off again" false (Exec_ctx.logging_enabled ()));
    test "pipeline restores logging when an analyzer raises mid-exploration" (fun () ->
        Exec_ctx.set_logging false;
        let adapter = Conc.Counters.correct in
        (match
           Pipeline.run Explore.default_config
             ~analyzers:[ raising_analyzer () ]
             ~adapter ~test:counter_test ()
         with
        | _ -> Alcotest.fail "expected the analyzer's exception to propagate"
        | exception Boom -> ());
        Alcotest.(check bool) "logging restored" false (Exec_ctx.logging_enabled ()));
    test "pipeline rejects an empty analyzer list" (fun () ->
        match
          Pipeline.run Explore.default_config ~analyzers:[] ~adapter:Conc.Counters.correct
            ~test:counter_test ()
        with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    merge_order_insensitive "races" (fun () -> Checkers.Race_detector.analyzer ~threads:3);
    merge_order_insensitive "serializability" (fun () -> Checkers.Serializability.analyzer ());
    merge_order_insensitive "tso" (fun () -> Checkers.Tso_monitor.analyzer ~threads:3);
    test "single pass = legacy per-checker runs (correct counter)"
      (check_single_pass_matches_legacy ~adapter:Conc.Counters.correct ~test:counter_test);
    test "single pass = legacy per-checker runs (buggy counter)"
      (check_single_pass_matches_legacy ~adapter:Conc.Counters.buggy_unlocked ~test:counter_test);
    test "single pass = legacy per-checker runs (correct queue)"
      (check_single_pass_matches_legacy ~adapter:Conc.Concurrent_queue.correct
         ~test:
           (Test_matrix.make
              [ [ inv_int "Enqueue" 200 ]; [ inv "IsEmpty"; inv "TryDequeue" ] ]));
    test "single-pass renders and verdict are -j invariant" (fun () ->
        let adapter = Conc.Counters.buggy_unlocked in
        let run config =
          let r = Check.run ~config ~analyzers:(comparison_analyzers counter_test) adapter counter_test in
          List.map (fun a -> a.Check.a_render) r.Check.analyses, Report.summary r
        in
        let mono = run Check.default_config in
        let j1 = run (Check.config_with ~phase2_domains:1 ()) in
        let j4 = run (Check.config_with ~phase2_domains:4 ()) in
        Alcotest.(check (pair (list string) string)) "-j 1 = monolithic" mono j1;
        Alcotest.(check (pair (list string) string)) "-j 4 = -j 1" j1 j4);
    test "one pipeline run is one exploration (metrics)" (fun () ->
        let m = Metrics.create () in
        let r =
          Check.run ~metrics:m ~analyzers:(comparison_analyzers counter_test)
            Conc.Counters.correct counter_test
        in
        Alcotest.(check bool) "passes" true (Check.passed r);
        let executions = Metrics.get m "explore.phase2.executions" in
        Alcotest.(check bool) "explored something" true (executions > 0);
        Alcotest.(check int) "races analyzer saw each execution once" executions
          (Metrics.get m "analyze.races.executions");
        Alcotest.(check int) "ser analyzer saw each execution once" executions
          (Metrics.get m "analyze.serializability.executions"));
    test "analysis metrics surface in the check result" (fun () ->
        let r =
          Check.run ~analyzers:(comparison_analyzers counter_test) Conc.Counters.buggy_unlocked
            counter_test
        in
        let races = List.nth r.Check.analyses 0 in
        Alcotest.(check string) "name" "races" races.Check.a_name;
        Alcotest.(check bool) "informational" false races.Check.a_violation;
        Alcotest.(check bool) "counted races" true
          (List.assoc "races" races.Check.a_metrics > 0));
  ]

let tests = suite
