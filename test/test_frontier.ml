(* Frontier splitting (intra-check parallelism) and the cancelled-run
   verdict.

   The load-bearing property: for any program and any depth, the frontier
   partitions of Explore.split, explored in frontier order by
   Explore.explore_from, reproduce the sequential exploration exactly —
   same execution count, same executions in the same canonical order. On
   top of that sit Check's guarantees: `phase2_domains = Some j` produces
   byte-identical reports and metrics for every j, and a cancelled run
   reports Cancelled, never a pass. *)

open Helpers
module Explore = Lineup_scheduler.Explore

let explore_all config ~setup ~on_execution = Explore.explore config ~setup ~on_execution ()

module Var = Lineup_runtime.Shared_var
module Metrics = Lineup_observe.Metrics
module Conc = Lineup_conc
open Lineup

let unbounded = { Explore.default_config with preemption_bound = None }

(* k threads, each performing n accesses to a shared variable. *)
let accesses_program ~threads ~accesses () =
  let v = Var.make 0 in
  Array.init threads (fun _ () ->
      for _ = 1 to accesses do
        ignore (Var.read v)
      done)

(* A fingerprint of one execution, strong enough to detect a changed
   schedule: outcome kind plus all the deterministic counters. *)
let fingerprint (o : Explore.exec_outcome) =
  let kind =
    match o.Explore.exec_end with
    | Explore.All_finished -> 0
    | Explore.Deadlock _ -> 1
    | Explore.Serial_stuck _ -> 2
    | Explore.Diverged -> 3
  in
  kind, o.Explore.steps, o.Explore.preemptions, o.Explore.choice_points

let sequential_fingerprints config setup =
  let fps = ref [] in
  let stats =
    explore_all config ~setup ~on_execution:(fun o ->
        fps := fingerprint o :: !fps;
        `Continue)
  in
  List.rev !fps, stats

let frontier_fingerprints config ~depth setup =
  let frontier =
    Explore.split config ~depth ~setup ~on_execution:(fun _ -> `Continue)
  in
  let fps =
    List.concat_map
      (fun prefix ->
        let fps = ref [] in
        let _ =
          Explore.explore_from config ~prefix ~setup
            ~on_execution:(fun o ->
              fps := fingerprint o :: !fps;
              `Continue)
            ()
        in
        List.rev !fps)
      frontier.Explore.prefixes
  in
  fps, frontier

let union_case ~config ~name setup =
  test name (fun () ->
      let seq, _ = sequential_fingerprints config setup in
      List.iter
        (fun depth ->
          let par, frontier = frontier_fingerprints config ~depth setup in
          Alcotest.(check int)
            (Fmt.str "depth %d: one warm-up execution per partition" depth)
            (List.length frontier.Explore.prefixes)
            frontier.Explore.warmup.Explore.executions;
          Alcotest.(check bool)
            (Fmt.str "depth %d: partition union == sequential schedule set" depth)
            true (seq = par))
        [ 1; 2; 3; 4; 8 ])

(* ---- harness level: partitioned histories == sequential histories ---- *)

let harness_histories config ~adapter ~test =
  let acc = ref [] in
  let _ =
    Harness.run_phase config ~adapter ~test ~on_history:(fun r ->
        acc := (History.events r.history, History.is_stuck r.history) :: !acc;
        `Continue)
  in
  List.rev !acc

let harness_frontier_histories config ~depth ~adapter ~test =
  let frontier =
    Harness.split_phase config ~depth ~adapter ~test ~on_history:(fun _ -> `Continue)
  in
  List.concat_map
    (fun prefix ->
      let acc = ref [] in
      let _ =
        Harness.run_phase_from config ~prefix ~adapter ~test ~on_history:(fun r ->
            acc := (History.events r.history, History.is_stuck r.history) :: !acc;
            `Continue)
      in
      List.rev !acc)
    frontier.Explore.prefixes

let history_union_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"random tests: frontier histories == sequential histories (order included)"
       ~count:25
       (QCheck.make
          (QCheck.Gen.map
             (fun seed ->
               let rng = Random.State.make [| seed; 7 |] in
               Test_matrix.random ~rng
                 ~invocations:Conc.Concurrent_queue.correct.Adapter.universe ~rows:2 ~cols:2 ())
             QCheck.Gen.small_signed_int))
       (fun test ->
         let adapter = Conc.Concurrent_queue.correct in
         let config = Explore.default_config in
         let seq = harness_histories config ~adapter ~test in
         List.for_all
           (fun depth -> harness_frontier_histories config ~depth ~adapter ~test = seq)
           [ 2; 4 ]))

(* ---- partition transport: serialize . deserialize is the identity on
   exploration results, not just on the prefix value ---- *)

let roundtrip_prefix prefix =
  match Explore.prefix_of_string (Explore.prefix_to_string prefix) with
  | Ok p -> p
  | Error msg -> Alcotest.failf "prefix round-trip rejected its own encoding: %s" msg

let partition_histories config ~prefix ~adapter ~test =
  let acc = ref [] in
  let _ =
    Harness.run_phase_from config ~prefix ~adapter ~test ~on_history:(fun r ->
        acc := (History.events r.history, History.is_stuck r.history) :: !acc;
        `Continue)
  in
  List.rev !acc

let prefix_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:
         "random tests: deserialized frontier partitions explore byte-identical history \
          sequences"
       ~count:20
       (QCheck.make
          (QCheck.Gen.map
             (fun seed ->
               let rng = Random.State.make [| seed; 23 |] in
               Test_matrix.random ~rng
                 ~invocations:Conc.Concurrent_queue.correct.Adapter.universe ~rows:2 ~cols:2 ())
             QCheck.Gen.small_signed_int))
       (fun test ->
         let adapter = Conc.Concurrent_queue.correct in
         let config = Explore.default_config in
         let frontier =
           Harness.split_phase config ~depth:3 ~adapter ~test ~on_history:(fun _ -> `Continue)
         in
         List.for_all
           (fun prefix ->
             let revived = roundtrip_prefix prefix in
             revived = prefix
             && partition_histories config ~prefix:revived ~adapter ~test
                = partition_histories config ~prefix ~adapter ~test)
           frontier.Explore.prefixes))

(* ---- Check-level determinism and the Cancelled verdict ---- *)

let stable_result ~adapter ~test r m =
  Report.check_result_to_string ~adapter ~test r ^ "\n" ^ Metrics.to_json m

let check_with_domains ~adapter ~test ?cancelled domains =
  let config = { Check.default_config with phase2_domains = domains } in
  let m = Metrics.create () in
  let r = Check.run ~config ?cancelled ~metrics:m adapter test in
  r, stable_result ~adapter ~test r m

(* Fires after [n] polls; deterministic, so both paths can be compared. *)
let cancel_after n =
  let polls = ref 0 in
  fun () ->
    incr polls;
    !polls > n

let suite =
  [
    union_case ~config:unbounded ~name:"frontier union: 2 threads x 3 accesses, unbounded"
      (accesses_program ~threads:2 ~accesses:3);
    union_case ~config:unbounded ~name:"frontier union: 3 threads x 2 accesses, unbounded"
      (accesses_program ~threads:3 ~accesses:2);
    union_case ~config:Explore.default_config
      ~name:"frontier union survives preemption bounding (pb=2)"
      (accesses_program ~threads:3 ~accesses:2);
    test "split rejects depth < 1" (fun () ->
        Alcotest.check_raises "invalid depth"
          (Invalid_argument "Explore.split: depth must be >= 1") (fun () ->
            ignore
              (Explore.split unbounded ~depth:0
                 ~setup:(accesses_program ~threads:2 ~accesses:1)
                 ~on_execution:(fun _ -> `Continue))));
    history_union_prop;
    prefix_roundtrip_prop;
    test "prefix_of_string rejects malformed encodings" (fun () ->
        List.iter
          (fun s ->
            match Explore.prefix_of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted malformed prefix %S" s)
          [ "x1"; "s"; "s-1"; "v1"; "v2/2"; "v1/"; "s1;;s2"; "s1,s2" ]);
    test "check -j: verdict, report and metrics identical for j=1 and j=4" (fun () ->
        let adapter = Conc.Manual_reset_event.lost_signal in
        let test = Test_matrix.make [ [ inv "Wait" ]; [ inv "Set" ] ] in
        let r1, s1 = check_with_domains ~adapter ~test (Some 1) in
        let r4, s4 = check_with_domains ~adapter ~test (Some 4) in
        Alcotest.(check bool) "both fail" true (Check.failed r1 && Check.failed r4);
        Alcotest.(check string) "byte-identical" s1 s4);
    test "check -j on a correct class: identical for j=1 and j=4" (fun () ->
        let adapter = Conc.Counters.correct in
        let test = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ] in
        let r1, s1 = check_with_domains ~adapter ~test (Some 1) in
        let r4, s4 = check_with_domains ~adapter ~test (Some 4) in
        Alcotest.(check bool) "both pass" true (Check.passed r1 && Check.passed r4);
        Alcotest.(check string) "byte-identical" s1 s4);
    test "cancelled run reports Cancelled, not a pass (monolithic)" (fun () ->
        let adapter = Conc.Counters.correct in
        let test = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ] in
        let r = Check.run ~cancelled:(cancel_after 5) adapter test in
        Alcotest.(check bool) "cancelled" true (Check.cancelled r);
        Alcotest.(check bool) "not passed" false (Check.passed r);
        Alcotest.(check bool) "not failed" false (Check.failed r));
    test "cancelled run reports Cancelled, not a pass (frontier)" (fun () ->
        let adapter = Conc.Counters.correct in
        let test = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ] in
        let config = { Check.default_config with phase2_domains = Some 2 } in
        let r = Check.run ~config ~cancelled:(cancel_after 5) adapter test in
        Alcotest.(check bool) "cancelled" true (Check.cancelled r);
        Alcotest.(check bool) "not passed" false (Check.passed r));
    test "cancellation during phase 1 cancels synthesize" (fun () ->
        let adapter = Conc.Counters.correct in
        let test = Test_matrix.make [ [ inv "Inc" ]; [ inv "Inc" ] ] in
        match Check.synthesize ~cancelled:(fun () -> true) adapter test with
        | Error (Check.Cancelled, _) -> ()
        | Error ((Check.Pass | Check.Fail _), _) -> Alcotest.fail "expected Cancelled"
        | Ok _ -> Alcotest.fail "expected cancellation");
    test "a violation found before cancellation wins over Cancelled" (fun () ->
        let adapter = Conc.Manual_reset_event.lost_signal in
        let test = Test_matrix.make [ [ inv "Wait" ]; [ inv "Set" ] ] in
        (* a token that never fires: baseline failure, for comparison with
           one that fires far past the violating execution *)
        let r = Check.run ~cancelled:(cancel_after 1_000_000) adapter test in
        Alcotest.(check bool) "failed" true (Check.failed r));
    test "exact-bound sweep admits each schedule exactly once" (fun () ->
        let setup = accesses_program ~threads:2 ~accesses:2 in
        let total, _ = sequential_fingerprints unbounded setup in
        let admitted = ref 0 in
        let per_bound, stopped =
          Explore.explore_iterative Explore.default_config ~max_bound:6 ~setup
            ~on_execution:(fun _ ->
              incr admitted;
              `Continue)
        in
        Alcotest.(check (option int)) "ran to the bound" None stopped;
        Alcotest.(check int) "admissions == schedules" (List.length total) !admitted;
        let skips =
          List.fold_left (fun acc s -> acc + s.Explore.exact_bound_skips) 0 per_bound
        in
        Alcotest.(check bool) "re-executions were skipped, not re-admitted" true (skips > 0));
  ]

let tests = suite
