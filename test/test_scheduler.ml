open Helpers
module Rt = Lineup_runtime.Rt
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Explore = Lineup_scheduler.Explore

let explore_all config ~setup ~on_execution = Explore.explore config ~setup ~on_execution ()


let unbounded = { Explore.default_config with preemption_bound = None }

let count_executions ?(config = unbounded) setup =
  let n = ref 0 in
  let stats =
    explore_all config ~setup ~on_execution:(fun _ ->
        incr n;
        `Continue)
  in
  !n, stats

(* k threads, each performing n accesses to a shared variable. *)
let accesses_program ~threads ~accesses () =
  let v = Var.make 0 in
  Array.init threads (fun _ () ->
      for _ = 1 to accesses do
        ignore (Var.read v)
      done)

let multinomial ks =
  let fact n = List.fold_left ( * ) 1 (List.init n (fun i -> i + 1)) in
  fact (List.fold_left ( + ) 0 ks) / List.fold_left (fun acc k -> acc * fact k) 1 ks

let suite =
  [
    test "exhaustive interleavings: 2 threads x 2 accesses = C(4,2)" (fun () ->
        let n, stats = count_executions (accesses_program ~threads:2 ~accesses:2) in
        Alcotest.(check int) "executions" (multinomial [ 2; 2 ]) n;
        Alcotest.(check bool) "complete" true stats.Explore.complete);
    test "exhaustive interleavings: 3 threads x 1 access = 3!" (fun () ->
        let n, _ = count_executions (accesses_program ~threads:3 ~accesses:1) in
        Alcotest.(check int) "executions" 6 n);
    test "exhaustive interleavings: 2 threads x 3 accesses = C(6,3)" (fun () ->
        let n, _ = count_executions (accesses_program ~threads:2 ~accesses:3) in
        Alcotest.(check int) "executions" (multinomial [ 3; 3 ]) n);
    test "single thread explores once" (fun () ->
        let n, _ = count_executions (accesses_program ~threads:1 ~accesses:5) in
        Alcotest.(check int) "executions" 1 n);
    test "preemption bound 0 forbids mid-run switches" (fun () ->
        (* with PB=0, a thread runs its accesses to completion: one
           execution per thread order... but switches at voluntary points
           only; threads never block so each runs to completion: orders of
           threads = 2 ... however switch can only happen at thread end, so
           executions = 1 starting thread choice? The first decision can
           pick either thread (no previous running thread): 2 executions. *)
        let n, _ =
          count_executions
            ~config:{ Explore.default_config with preemption_bound = Some 0 }
            (accesses_program ~threads:2 ~accesses:3)
        in
        Alcotest.(check int) "executions" 2 n);
    test "preemption bound 1 allows one switch" (fun () ->
        let n0, _ =
          count_executions
            ~config:{ Explore.default_config with preemption_bound = Some 0 }
            (accesses_program ~threads:2 ~accesses:2)
        in
        let n1, _ =
          count_executions
            ~config:{ Explore.default_config with preemption_bound = Some 1 }
            (accesses_program ~threads:2 ~accesses:2)
        in
        let nu, _ = count_executions (accesses_program ~threads:2 ~accesses:2) in
        Alcotest.(check bool) "monotone" true (n0 < n1 && n1 < nu));
    test "preemption bounding reports pruned choices" (fun () ->
        let _, stats =
          count_executions
            ~config:{ Explore.default_config with preemption_bound = Some 0 }
            (accesses_program ~threads:2 ~accesses:2)
        in
        Alcotest.(check bool) "pruned" true (stats.Explore.pruned_choices > 0));
    test "deterministic replay: outcomes stable across runs" (fun () ->
        let run () =
          let ends = ref [] in
          let _ =
            explore_all unbounded
              ~setup:(fun () ->
                let v = Var.make 0 in
                [|
                  (fun () -> Var.write v 1);
                  (fun () -> ignore (Var.read v));
                |])
              ~on_execution:(fun o ->
                ends := o.Explore.steps :: !ends;
                `Continue)
          in
          !ends
        in
        Alcotest.(check (list int)) "same step sequence" (run ()) (run ()));
    test "deadlock detection: classic lock-order inversion" (fun () ->
        let deadlocks = ref 0 in
        let _ =
          explore_all unbounded
            ~setup:(fun () ->
              let m1 = Mutex_.create ~name:"m1" () in
              let m2 = Mutex_.create ~name:"m2" () in
              [|
                (fun () ->
                  Mutex_.acquire m1;
                  Mutex_.acquire m2;
                  Mutex_.release m2;
                  Mutex_.release m1);
                (fun () ->
                  Mutex_.acquire m2;
                  Mutex_.acquire m1;
                  Mutex_.release m1;
                  Mutex_.release m2);
              |])
            ~on_execution:(fun o ->
              (match o.Explore.exec_end with
               | Explore.Deadlock [ 0; 1 ] -> incr deadlocks
               | _ -> ());
              `Continue)
        in
        Alcotest.(check bool) "deadlock found" true (!deadlocks > 0));
    test "no false deadlocks with consistent lock order" (fun () ->
        let deadlocks = ref 0 in
        let _ =
          explore_all unbounded
            ~setup:(fun () ->
              let m1 = Mutex_.create () in
              let m2 = Mutex_.create () in
              let body () =
                Mutex_.acquire m1;
                Mutex_.acquire m2;
                Mutex_.release m2;
                Mutex_.release m1
              in
              [| body; body |])
            ~on_execution:(fun o ->
              (match o.Explore.exec_end with
               | Explore.Deadlock _ -> incr deadlocks
               | _ -> ());
              `Continue)
        in
        Alcotest.(check int) "none" 0 !deadlocks);
    test "choose explores both branches" (fun () ->
        let seen = Hashtbl.create 4 in
        let _ =
          explore_all unbounded
            ~setup:(fun () ->
              let v = Var.make (-1) in
              [| (fun () -> Var.write v (Rt.choose 2)) |])
            ~on_execution:(fun _ -> `Continue)
        in
        ignore seen;
        let n, _ =
          count_executions (fun () -> [| (fun () -> ignore (Rt.choose 3)) |])
        in
        Alcotest.(check int) "three branches" 3 n);
    test "nested choices multiply" (fun () ->
        let n, _ =
          count_executions (fun () ->
              [| (fun () -> ignore (Rt.choose 2); ignore (Rt.choose 2)) |])
        in
        Alcotest.(check int) "four" 4 n);
    test "serial mode: accesses are not scheduling points" (fun () ->
        let n, _ =
          count_executions ~config:Explore.serial_config
            (accesses_program ~threads:2 ~accesses:5)
        in
        (* no operation boundaries in this program, so each thread runs
           atomically during start fusion: a single execution covers the
           space *)
        Alcotest.(check int) "one execution" 1 n);
    test "serial mode: boundaries are scheduling points" (fun () ->
        let program () =
          let v = Var.make 0 in
          Array.init 2 (fun _ () ->
              for _ = 1 to 2 do
                Rt.op_boundary ();
                ignore (Var.read v)
              done)
        in
        let n, _ = count_executions ~config:Explore.serial_config program in
        Alcotest.(check int) "multinomial orders" (multinomial [ 2; 2 ]) n);
    test "serial mode stops at a blocked thread" (fun () ->
        let stucks = ref 0 in
        let _ =
          explore_all Explore.serial_config
            ~setup:(fun () ->
              let flag = Var.make false in
              [|
                (fun () ->
                  Rt.op_boundary ();
                  Rt.block ~wake:(fun () -> Var.peek flag) "flag");
                (fun () ->
                  Rt.op_boundary ();
                  Var.write flag true);
              |])
            ~on_execution:(fun o ->
              (match o.Explore.exec_end with
               | Explore.Serial_stuck 0 -> incr stucks
               | _ -> ());
              `Continue)
        in
        Alcotest.(check bool) "serial stuck branch observed" true (!stucks > 0));
    test "fairness: spin loop against a finite writer terminates" (fun () ->
        let diverged = ref 0 in
        let stats =
          explore_all
            { unbounded with max_steps = 5_000 }
            ~setup:(fun () ->
              let flag = Var.make ~volatile:true false in
              [|
                (fun () ->
                  (* spin until the flag is set, yielding as lock-free code
                     does *)
                  while not (Var.read flag) do
                    Rt.yield ()
                  done);
                (fun () -> Var.write flag true);
              |])
            ~on_execution:(fun o ->
              (match o.Explore.exec_end with
               | Explore.Diverged -> incr diverged
               | _ -> ());
              `Continue)
        in
        Alcotest.(check int) "no divergence" 0 !diverged;
        Alcotest.(check bool) "explored" true (stats.Explore.executions > 0));
    test "divergence backstop trips on a genuine livelock" (fun () ->
        let diverged = ref 0 in
        let _ =
          explore_all
            { unbounded with max_steps = 200 }
            ~setup:(fun () ->
              let flag = Var.make false in
              [|
                (fun () ->
                  while not (Var.read flag) do
                    Rt.yield ()
                  done);
              |])
            ~on_execution:(fun o ->
              (match o.Explore.exec_end with
               | Explore.Diverged -> incr diverged
               | _ -> ());
              `Continue)
        in
        Alcotest.(check bool) "diverged" true (!diverged > 0));
    test "max_executions caps the exploration" (fun () ->
        let n, stats =
          count_executions
            ~config:{ unbounded with max_executions = Some 3 }
            (accesses_program ~threads:2 ~accesses:3)
        in
        Alcotest.(check int) "capped" 3 n;
        Alcotest.(check bool) "incomplete" true (not stats.Explore.complete));
    test "on_execution `Stop ends exploration" (fun () ->
        let n = ref 0 in
        let stats =
          explore_all unbounded
            ~setup:(accesses_program ~threads:2 ~accesses:2)
            ~on_execution:(fun _ ->
              incr n;
              `Stop)
        in
        Alcotest.(check int) "one" 1 !n;
        Alcotest.(check bool) "incomplete" true (not stats.Explore.complete));
    test "thread exceptions are reported, not thrown" (fun () ->
        let errors = ref 0 in
        let _ =
          explore_all unbounded
            ~setup:(fun () -> [| (fun () -> failwith "kaboom") |])
            ~on_execution:(fun o ->
              if o.Explore.errors <> [] then incr errors;
              `Continue)
        in
        Alcotest.(check int) "reported" 1 !errors);
    test "lost update found exhaustively" (fun () ->
        (* the classic increment race must be observable *)
        let lost = ref false in
        let result = Var.make 0 in
        let _ =
          explore_all unbounded
            ~setup:(fun () ->
              Var.poke result 0;
              let v = Var.make 0 in
              let incr_body () =
                let x = Var.read v in
                Var.write v (x + 1);
                Var.poke result (Var.peek v)
              in
              [| incr_body; incr_body |])
            ~on_execution:(fun _ ->
              if Var.peek result = 1 then lost := true;
              `Continue)
        in
        Alcotest.(check bool) "lost update observed" true !lost);
    test "blocked threads wake when the predicate turns true" (fun () ->
        let deadlocks = ref 0 in
        let _ =
          explore_all unbounded
            ~setup:(fun () ->
              let flag = Var.make false in
              [|
                (fun () -> Rt.block ~wake:(fun () -> Var.peek flag) "flag");
                (fun () -> Var.write flag true);
              |])
            ~on_execution:(fun o ->
              (match o.Explore.exec_end with
               | Explore.Deadlock _ -> incr deadlocks
               | _ -> ());
              `Continue)
        in
        Alcotest.(check int) "no deadlock" 0 !deadlocks);
    test "random walk runs the requested number of executions" (fun () ->
        let n = ref 0 in
        let stats =
          Explore.random_walk unbounded
            ~rng:(Random.State.make [| 42 |])
            ~executions:25
            ~setup:(accesses_program ~threads:2 ~accesses:2)
            ~on_execution:(fun _ ->
              incr n;
              `Continue)
        in
        Alcotest.(check int) "count" 25 !n;
        Alcotest.(check bool) "never complete" true (not stats.Explore.complete));
    test "random walk is reproducible from the seed" (fun () ->
        let run () =
          let steps = ref [] in
          let _ =
            Explore.random_walk unbounded
              ~rng:(Random.State.make [| 7 |])
              ~executions:10
              ~setup:(accesses_program ~threads:3 ~accesses:2)
              ~on_execution:(fun o ->
                steps := o.Explore.steps :: !steps;
                `Continue)
          in
          !steps
        in
        Alcotest.(check (list int)) "same" (run ()) (run ()));
  ]

let tests = suite
