(* Tests for the observability layer: the metrics registry's determinism
   contract (identical counters — and bytes — for every -j value), and the
   NDJSON trace sink. *)

open Helpers
module Conc = Lineup_conc
module Metrics = Lineup_observe.Metrics
module Trace = Lineup_observe.Trace
open Lineup

let counter_test = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]

let with_temp_file f =
  let path = Filename.temp_file "lineup" "observe" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let suite =
  [
    test "metrics: add/incr/get basics" (fun () ->
        let m = Metrics.create () in
        Alcotest.(check int) "unregistered is 0" 0 (Metrics.get m "a");
        Metrics.incr m "a";
        Metrics.add m "a" 2;
        Metrics.add m "b" 0;
        Alcotest.(check int) "a" 3 (Metrics.get m "a");
        Alcotest.(check int) "b pinned at 0" 0 (Metrics.get m "b");
        Alcotest.(check (list (pair string int))) "sorted assoc"
          [ "a", 3; "b", 0 ]
          (Metrics.to_assoc m));
    test "metrics: merge_into is pointwise addition" (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        Metrics.add a "x" 1;
        Metrics.add b "x" 2;
        Metrics.add b "y" 5;
        Metrics.merge_into ~into:a b;
        Alcotest.(check int) "x" 3 (Metrics.get a "x");
        Alcotest.(check int) "y" 5 (Metrics.get a "y"));
    test "metrics: to_json is order-insensitive and byte-stable" (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        List.iter (fun (k, v) -> Metrics.add a k v) [ "z", 1; "a", 2; "m", 3 ];
        List.iter (fun (k, v) -> Metrics.add b k v) [ "m", 3; "z", 1; "a", 2 ];
        Alcotest.(check string) "identical JSON" (Metrics.to_json a) (Metrics.to_json b));
    test "auto: metrics are -j independent" (fun () ->
        let collect domains =
          let m = Metrics.create () in
          ignore (Auto_check.run ~domains ~metrics:m ~max_tests:9 Conc.Counters.correct);
          Metrics.to_json m
        in
        Alcotest.(check string) "j=1 equals j=4" (collect 1) (collect 4));
    test "random run_parallel: metrics are -j independent" (fun () ->
        let collect domains =
          let m = Metrics.create () in
          ignore
            (Random_check.run_parallel ~domains ~metrics:m ~seed:7
               ~invocations:[ inv "Inc"; inv "Get" ]
               ~rows:2 ~cols:2 ~samples:8 Conc.Counters.correct);
          Metrics.to_json m
        in
        Alcotest.(check string) "j=1 equals j=3" (collect 1) (collect 3));
    test "random run_parallel with stop_at_first: metrics are -j independent" (fun () ->
        (* the deterministic prefix cut: discarded jobs must not leak
           counters into the merged summary *)
        let collect domains =
          let m = Metrics.create () in
          ignore
            (Random_check.run_parallel ~domains ~stop_at_first:true ~metrics:m ~seed:3
               ~invocations:[ inv "Inc"; inv "Get" ]
               ~rows:2 ~cols:2 ~samples:12 Conc.Counters.buggy_unlocked);
          Metrics.to_json m
        in
        let j1 = collect 1 in
        Alcotest.(check string) "j=1 equals j=4" j1 (collect 4);
        Alcotest.(check string) "repeatable" j1 (collect 1));
    test "check: counters reflect the run" (fun () ->
        let m = Metrics.create () in
        let r = Check.run ~metrics:m Conc.Counters.correct counter_test in
        Alcotest.(check bool) "passes" true (Check.passed r);
        Alcotest.(check int) "one run" 1 (Metrics.get m "check.runs");
        Alcotest.(check int) "one pass" 1 (Metrics.get m "check.passes");
        Alcotest.(check int) "phase-1 histories" r.Check.phase1.Check.histories
          (Metrics.get m "check.phase1.histories");
        Alcotest.(check int) "phase-1 executions"
          r.Check.phase1.Check.stats.Lineup_scheduler.Explore.executions
          (Metrics.get m "explore.phase1.executions");
        Alcotest.(check bool) "witness searches happened" true
          (Metrics.get m "check.phase2.witness_searches" > 0);
        Alcotest.(check bool) "probes >= searches" true
          (Metrics.get m "check.phase2.witness_probes"
           >= Metrics.get m "check.phase2.witness_searches"));
    test "metrics file parses and carries the schema marker" (fun () ->
        with_temp_file (fun path ->
            let m = Metrics.create () in
            Metrics.add m "check.runs" 1;
            Metrics.write_file m ~path;
            let ic = open_in path in
            let content =
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            Alcotest.(check string) "file equals to_json" (Metrics.to_json m) content;
            Alcotest.(check bool) "schema marker" true
              (contains ~sub:"lineup-metrics/1" content)));
    test "trace: emits one well-formed NDJSON line per event" (fun () ->
        with_temp_file (fun path ->
            Trace.with_trace ~path:(Some path) (fun () ->
                Alcotest.(check bool) "enabled inside" true (Trace.enabled ());
                Trace.emit "test.event"
                  [ "n", Trace.Int 3; "ok", Trace.Bool true; "s", Trace.Str "a\"b" ];
                Trace.emit "test.other" []);
            Alcotest.(check bool) "disabled outside" false (Trace.enabled ());
            let ic = open_in path in
            let lines = ref [] in
            (try
               while true do
                 lines := input_line ic :: !lines
               done
             with End_of_file -> close_in ic);
            let lines = List.rev !lines in
            Alcotest.(check int) "two lines" 2 (List.length lines);
            List.iter
              (fun line ->
                Alcotest.(check bool) "object shape" true
                  (String.length line > 2 && line.[0] = '{'
                   && line.[String.length line - 1] = '}'))
              lines;
            Alcotest.(check bool) "event name present" true
              (contains ~sub:"\"ev\":\"test.event\"" (List.hd lines));
            Alcotest.(check bool) "escaped string field" true
              (contains ~sub:"\"s\":\"a\\\"b\"" (List.hd lines))));
    test "trace: emit outside with_trace is a no-op" (fun () ->
        Trace.emit "never.seen" [ "n", Trace.Int 1 ];
        Alcotest.(check bool) "disabled" false (Trace.enabled ()));
    test "trace: killed-mid-run file parses line-by-line (per-event flush)" (fun () ->
        (* The crash-durability guarantee: every emitted event is a complete
           line on disk the moment [emit] returns — a SIGKILL at any point
           loses at most the event being written. Simulated by reading the
           file while the sink is still open: what a concurrent reader sees
           is exactly what a post-kill reader would see. *)
        with_temp_file (fun path ->
            Trace.enable ~path;
            Fun.protect ~finally:Trace.close (fun () ->
                for i = 1 to 50 do
                  Trace.emit "kill.test" [ "i", Trace.Int i ]
                done;
                let ic = open_in path in
                let lines = ref [] in
                (try
                   while true do
                     lines := input_line ic :: !lines
                   done
                 with End_of_file -> close_in ic);
                Alcotest.(check int) "all 50 events on disk before close" 50
                  (List.length !lines);
                List.iter
                  (fun line ->
                    Alcotest.(check bool) "complete object line" true
                      (String.length line > 2
                       && String.sub line 0 5 = "{\"t\":"
                       && line.[String.length line - 1] = '}'))
                  !lines)));
  ]

(* -------- the NDJSON parser, non-finite floats, atomic writes -------- *)

module Ndjson = Lineup_observe.Ndjson
module Atomic_file = Lineup_observe.Atomic_file

let crash_path_suite =
  [
    test "ndjson: parses the trace vocabulary" (fun () ->
        let ok s = match Ndjson.parse s with Ok j -> j | Error e -> Alcotest.fail e in
        let j = ok {|{"t":1.5,"ev":"call","tid":0,"op":3,"name":"A \"b\"","neg":-2,"u":"é"}|} in
        Alcotest.(check (option int)) "tid" (Some 0)
          (Option.bind (Ndjson.member "tid" j) Ndjson.to_int);
        Alcotest.(check (option int)) "op" (Some 3)
          (Option.bind (Ndjson.member "op" j) Ndjson.to_int);
        Alcotest.(check (option int)) "neg" (Some (-2))
          (Option.bind (Ndjson.member "neg" j) Ndjson.to_int);
        Alcotest.(check (option string)) "escaped name" (Some {|A "b"|})
          (Option.bind (Ndjson.member "name" j) Ndjson.to_str);
        Alcotest.(check (option string)) "unicode escape" (Some "\xc3\xa9")
          (Option.bind (Ndjson.member "u" j) Ndjson.to_str);
        ignore (ok {|[1, 2.5, true, false, null, "x", {}]|});
        ignore (ok {|{"nested":{"a":[{"b":1}]}}|}));
    test "ndjson: rejects malformed input" (fun () ->
        let bad s =
          match Ndjson.parse s with Ok _ -> Alcotest.failf "parsed %S" s | Error _ -> ()
        in
        List.iter bad
          [ ""; "{"; "{\"a\":}"; "tru"; "1 2"; "{\"a\":1,}"; "\"unterminated";
            "{\"a\" 1}"; "nan" ]);
    test "ndjson: to_int only on exact integers" (fun () ->
        let geti s = Option.bind (Result.to_option (Ndjson.parse s)) Ndjson.to_int in
        Alcotest.(check (option int)) "int" (Some 7) (geti "7");
        Alcotest.(check (option int)) "fraction" None (geti "7.25");
        Alcotest.(check (option int)) "too big for exact float" None (geti "1e300"));
    test "trace: non-finite floats are emitted as null" (fun () ->
        (* crash-path regression: "%f" would print "nan"/"inf", which is
           not JSON — a monitor replaying the trace would abort *)
        with_temp_file (fun path ->
            Trace.enable ~path;
            Fun.protect ~finally:Trace.close (fun () ->
                Trace.emit "x"
                  [ "a", Trace.Float Float.nan;
                    "b", Trace.Float Float.infinity;
                    "c", Trace.Float 1.5;
                  ];
                let ic = open_in path in
                let line = input_line ic in
                close_in ic;
                match Ndjson.parse line with
                | Error e -> Alcotest.failf "unparseable trace line %S: %s" line e
                | Ok j ->
                  Alcotest.(check bool) "nan is null" true
                    (Ndjson.member "a" j = Some Ndjson.Null);
                  Alcotest.(check bool) "inf is null" true
                    (Ndjson.member "b" j = Some Ndjson.Null);
                  Alcotest.(check bool) "finite survives" true
                    (match Ndjson.member "c" j with
                     | Some (Ndjson.Num f) -> f = 1.5
                     | _ -> false))));
    test "atomic_file: complete content, no temp residue" (fun () ->
        with_temp_file (fun path ->
            Atomic_file.write ~path "first";
            Atomic_file.write ~path "second version";
            let ic = open_in_bin path in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            Alcotest.(check string) "last write wins, complete" "second version" s;
            let dir = Filename.dirname path and base = Filename.basename path in
            let residue =
              Array.to_list (Sys.readdir dir)
              |> List.filter (fun f ->
                     String.length f > String.length base
                     && String.sub f 0 (String.length base) = base)
            in
            Alcotest.(check (list string)) "no tmp files left" [] residue));
    test "metrics: write_file is atomic (never a partial JSON)" (fun () ->
        (* kill-durability regression for the truncate-then-write bug: a
           reader opening the path mid-write must always see a complete
           JSON object — with rename-into-place it sees either the old or
           the new version, never a prefix *)
        with_temp_file (fun path ->
            let m = Metrics.create () in
            Metrics.add m "ops" 1 ;
            Metrics.write_file m ~path;
            for i = 2 to 20 do
              Metrics.add m "ops" 1;
              Metrics.write_file m ~path;
              let ic = open_in_bin path in
              let s = really_input_string ic (in_channel_length ic) in
              close_in ic;
              match Ndjson.parse s with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "partial metrics file at step %d: %s" i e
            done));
  ]

let tests = suite @ crash_path_suite
