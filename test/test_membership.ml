(* The spec-specialized phase-2 membership layer, cross-validated against
   the generic machinery it replaces:

   - the queue/stack decrease-and-conquer monitors against the Wing–Gong
     oracle on random synthetic histories — both accepting and rejecting
     ones, which harness-produced histories of correct implementations
     cannot provide;
   - the P-compositional per-key splitter against the whole-history oracle,
     on synthetic set histories and on every history the harness actually
     produces for the set/dictionary adapters (correct and seeded-bug);
   - [Check.run] end-to-end: --membership auto/monitor against generic on
     correct, seeded-bug and blocking adapters — same verdict, same
     distinct-history count (the modes may only differ in wall-clock);
   - [Lin_check]'s structured [`Unsupported] on >62-operation histories
     (the legacy entry points still raise), and the splitter deciding a
     63-operation history the direct search refuses;
   - the [Minimize.reduce] descent skipping cancelled candidates — the
     regression for "any non-passing candidate counts as failing". *)

open Helpers
module Value = Lineup_value.Value
module History = Lineup_history.History
module Lin_check = Lineup_spec.Lin_check
module Monitor = Lineup_spec.Monitor
module Pcomp = Lineup_spec.Pcomp
module Spec = Lineup_spec.Spec
module Specs = Lineup_spec.Specs
module Explore = Lineup_scheduler.Explore
module Conc = Lineup_conc
open Lineup

(* ---------------- synthetic history generation ---------------- *)

(* A random well-formed complete history: [ops] are (inv, resp) pairs,
   distributed round-robin-randomly over two threads, then interleaved by a
   random walk over per-thread "call next / return current" moves. Every
   generated history is complete (no pending operations). *)
let interleave rng ops =
  let cols = [| ref []; ref [] |] in
  List.iter (fun op -> let c = cols.(Random.State.int rng 2) in c := op :: !c) ops;
  let pending = Array.map (fun c -> ref (List.rev !c)) cols in
  let in_flight = [| None; None |] in
  let next_index = [| 0; 0 |] in
  let events = ref [] in
  let moves_left () =
    Array.exists Option.is_some in_flight
    || Array.exists (fun p -> !p <> []) pending
  in
  while moves_left () do
    let tid = Random.State.int rng 2 in
    match in_flight.(tid) with
    | Some resp ->
      events := ret tid next_index.(tid) resp :: !events;
      in_flight.(tid) <- None;
      next_index.(tid) <- next_index.(tid) + 1
    | None -> (
      match !(pending.(tid)) with
      | [] -> ()
      | (i, resp) :: rest ->
        events := Lineup_history.Event.call ~tid ~op_index:next_index.(tid) i :: !events;
        in_flight.(tid) <- Some resp;
        pending.(tid) := rest)
  done;
  history (List.rev !events)

(* Random queue/stack-shaped op multiset: distinct insert values; removes
   answer [Fail] or a random insert value — duplicated and out-of-thin-air
   answers included on purpose, so the generator produces rejecting
   histories as well as accepting ones. *)
let random_lifo_fifo_ops rng ~insert ~remove =
  let n = 2 + Random.State.int rng 5 in
  let kinds = List.init n (fun i -> i, Random.State.bool rng) in
  let inserts = List.filter_map (fun (i, k) -> if k then Some (100 * (i + 1)) else None) kinds in
  List.map
    (fun (i, k) ->
      if k then inv_int insert (100 * (i + 1)), Value.unit
      else
        let resp =
          if inserts = [] || Random.State.int rng 3 = 0 then Value.Fail
          else Value.int (List.nth inserts (Random.State.int rng (List.length inserts)))
        in
        inv remove, resp)
    kinds

let random_set_ops rng =
  let n = 2 + Random.State.int rng 5 in
  List.init n (fun _ ->
      let name = List.nth [ "Add"; "Remove"; "Contains" ] (Random.State.int rng 3) in
      let key = 1 + Random.State.int rng 2 in
      inv_int name key, Value.bool (Random.State.bool rng))

let seed_arb = QCheck.make QCheck.Gen.small_signed_int

(* ---------------- monitor vs the Wing–Gong oracle ---------------- *)

let monitor_agrees ~name ~cls ~spec ~insert ~remove =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:500 seed_arb (fun seed ->
         let rng = Random.State.make [| seed |] in
         let h = interleave rng (random_lifo_fifo_ops rng ~insert ~remove) in
         match Monitor.check ~cls h, Lin_check.check_outcome spec h with
         | Monitor.Accept, `Linearizable | Monitor.Reject, `Not_linearizable -> true
         | Monitor.Unsupported _, _ ->
           (* distinct insert values + complete histories: the monitor must
              always be decisive here *)
           false
         | _, `Unsupported _ -> false (* tiny histories never overflow *)
         | Monitor.Accept, `Not_linearizable | Monitor.Reject, `Linearizable -> false))

let monitor_props =
  [
    monitor_agrees ~name:"queue monitor agrees with the oracle (random histories)"
      ~cls:Spec.Queue ~spec:Specs.queue ~insert:"Enqueue" ~remove:"TryDequeue";
    monitor_agrees ~name:"stack monitor agrees with the oracle (random histories)"
      ~cls:Spec.Stack ~spec:Specs.stack ~insert:"Push" ~remove:"TryPop";
  ]

(* deterministic corner cases, so a qcheck seed change cannot hide them *)
let monitor_units =
  let u = Value.unit in
  [
    test "monitor: FIFO inversion rejected" (fun () ->
        let h =
          history
            [
              call 0 0 "Enqueue" ~arg:(Value.int 1) (); ret 0 0 u;
              call 0 1 "Enqueue" ~arg:(Value.int 2) (); ret 0 1 u;
              call 1 0 "TryDequeue" (); ret 1 0 (Value.int 2);
              call 1 1 "TryDequeue" (); ret 1 1 (Value.int 1);
            ]
        in
        Alcotest.(check bool) "rejected" true (Monitor.check_queue h = Monitor.Reject);
        Alcotest.(check bool) "oracle agrees" false (Lin_check.check Specs.queue h));
    test "monitor: covered empty dequeue rejected" (fun () ->
        let h =
          history
            [
              call 0 0 "Enqueue" ~arg:(Value.int 7) (); ret 0 0 u;
              call 1 0 "TryDequeue" (); ret 1 0 Value.Fail;
            ]
        in
        Alcotest.(check bool) "rejected" true (Monitor.check_queue h = Monitor.Reject));
    test "monitor: overlapping enqueues accept either dequeue order" (fun () ->
        let h =
          history
            [
              call 0 0 "Enqueue" ~arg:(Value.int 1) ();
              call 1 0 "Enqueue" ~arg:(Value.int 2) ();
              ret 0 0 u; ret 1 0 u;
              call 0 1 "TryDequeue" (); ret 0 1 (Value.int 2);
              call 1 1 "TryDequeue" (); ret 1 1 (Value.int 1);
            ]
        in
        Alcotest.(check bool) "accepted" true (Monitor.check_queue h = Monitor.Accept));
    test "monitor: LIFO pop order rejected on a queue, accepted on a stack" (fun () ->
        let events insert remove =
          [
            call 0 0 insert ~arg:(Value.int 1) (); ret 0 0 u;
            call 0 1 insert ~arg:(Value.int 2) (); ret 0 1 u;
            call 1 0 remove (); ret 1 0 (Value.int 2);
            call 1 1 remove (); ret 1 1 (Value.int 1);
          ]
        in
        Alcotest.(check bool) "stack accepts" true
          (Monitor.check_stack (history (events "Push" "TryPop")) = Monitor.Accept);
        Alcotest.(check bool) "queue rejects" true
          (Monitor.check_queue (history (events "Enqueue" "TryDequeue")) = Monitor.Reject));
    test "monitor: pending operation is Unsupported" (fun () ->
        let h =
          history ~stuck:true [ call 0 0 "Enqueue" ~arg:(Value.int 1) (); ret 0 0 u; call 1 0 "TryDequeue" () ]
        in
        match Monitor.check_queue h with
        | Monitor.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported on a pending op");
  ]

(* ---------------- splitter vs the whole-history oracle ---------------- *)

let pcomp_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pcomp agrees with the whole-history oracle (random set histories)"
         ~count:500 seed_arb (fun seed ->
             let rng = Random.State.make [| seed + 31 |] in
             let h = interleave rng (random_set_ops rng) in
             match Pcomp.check Specs.key_set h, Lin_check.check_outcome Specs.key_set h with
             | Monitor.Accept, `Linearizable | Monitor.Reject, `Not_linearizable -> true
             | Monitor.Unsupported _, _ -> false (* every op here is keyed *)
             | _ -> false));
  ]

(* every history the harness actually produces for the keyed adapters *)
let explore_histories adapter test ~cap =
  let histories = ref [] in
  let config = { Explore.default_config with Explore.max_executions = Some cap } in
  let _ =
    Harness.run_phase config ~adapter ~test ~on_history:(fun r ->
        histories := r.Harness.history :: !histories;
        `Continue)
  in
  !histories

let pcomp_harness_tests =
  let check_adapter name adapter (Spec.Packed spec) columns =
    test (Fmt.str "pcomp agrees on every explored %s history" name) (fun () ->
        let histories = explore_histories adapter (Test_matrix.make columns) ~cap:400 in
        let decided = ref 0 in
        List.iter
          (fun h ->
            if not (History.is_stuck h) then
              match Pcomp.check spec h with
              | Monitor.Unsupported _ -> () (* unkeyed op (Count/Clear/...) *)
              | Monitor.Accept ->
                incr decided;
                Alcotest.(check bool) "oracle accepts too" true (Lin_check.check spec h)
              | Monitor.Reject ->
                incr decided;
                Alcotest.(check bool) "oracle rejects too" false (Lin_check.check spec h))
          histories;
        Alcotest.(check bool) "some histories were decided" true (!decided > 0))
  in
  [
    check_adapter "LazyListSet" Conc.Lazy_list_set.correct (Spec.Packed Specs.key_set)
      [ [ inv_int "Add" 10; inv_int "Remove" 10 ]; [ inv_int "Add" 15; inv_int "Contains" 10 ] ];
    check_adapter "LazyListSet (Pre)" Conc.Lazy_list_set.pre (Spec.Packed Specs.key_set)
      [ [ inv_int "Add" 10; inv_int "Remove" 10 ]; [ inv_int "Contains" 10; inv_int "Add" 10 ] ];
    check_adapter "ConcurrentDictionary" Conc.Concurrent_dictionary.adapter
      (Spec.Packed Specs.dictionary)
      [ [ inv_int "TryAdd" 10; inv_int "TryGet" 10 ]; [ inv_int "Set" 10; inv_int "TryRemove" 10 ] ];
  ]

(* ---------------- Check.run: auto/monitor vs generic ---------------- *)

let e2e_matrix =
  [
    (* correct keyed/monitored classes *)
    "ConcurrentQueue", Conc.Concurrent_queue.correct,
    Test_matrix.make
      [ [ inv_int "Enqueue" 200; inv "TryDequeue" ]; [ inv_int "Enqueue" 400; inv "TryDequeue" ] ],
    false;
    "ConcurrentStack", Conc.Concurrent_stack.correct,
    Test_matrix.make [ [ inv_int "Push" 1; inv "TryPop" ]; [ inv_int "Push" 2; inv "TryPop" ] ],
    false;
    "LazyListSet", Conc.Lazy_list_set.correct,
    Test_matrix.make
      [ [ inv_int "Add" 10; inv_int "Remove" 10 ]; [ inv_int "Add" 15; inv_int "Contains" 10 ] ],
    false;
    "ConcurrentDictionary", Conc.Concurrent_dictionary.adapter,
    Test_matrix.make
      [ [ inv_int "TryAdd" 10; inv_int "TryGet" 10 ]; [ inv_int "Set" 20; inv_int "TryRemove" 20 ] ],
    false;
    (* seeded bugs: every mode must still fail *)
    "ConcurrentQueue (Pre)", Conc.Concurrent_queue.pre,
    Test_matrix.make
      [ [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ]; [ inv "TryDequeue"; inv "TryDequeue" ] ],
    true;
    "ConcurrentStack (Pre)", Conc.Concurrent_stack.pre,
    Test_matrix.make [ [ inv_int "Push" 1; inv_int "Push" 2 ]; [ inv_int "TryPopRange" 2 ] ],
    true;
    (* the seeded set bug needs a non-empty init, which also exercises the
       spec-advance-over-init path of the dispatch *)
    "LazyListSet (Pre)", Conc.Lazy_list_set.pre,
    Test_matrix.make ~init:[ inv_int "Add" 10 ]
      [ [ inv_int "Remove" 10 ]; [ inv_int "Add" 15; inv_int "Contains" 15 ] ],
    true;
    "ConcurrentDictionary (Pre)", Conc.Concurrent_dictionary.pre,
    Test_matrix.make [ [ inv_int "TryAdd" 10; inv_int "TryAdd" 20; inv "Clear" ]; [ inv "Count" ] ],
    true;
    (* blocking classes: the stuck paths of every mode *)
    "ManualResetEvent (lost signal)", Conc.Manual_reset_event.lost_signal,
    Test_matrix.make [ [ inv "Wait" ]; [ inv "Set" ] ], true;
    "SemaphoreSlim", Conc.Semaphore_slim.correct,
    Test_matrix.make [ [ inv "Wait" ]; [ inv "Release" ] ], false;
  ]

let run_with membership adapter matrix =
  Check.run ~config:(Check.config_with ~membership ()) adapter matrix

let e2e_tests =
  List.map
    (fun (name, adapter, matrix, expect_fail) ->
      test (Fmt.str "auto/monitor verdicts match generic: %s" name) (fun () ->
          let generic = run_with Check.Generic adapter matrix in
          let auto = run_with Check.Auto adapter matrix in
          let monitor = run_with Check.Monitor adapter matrix in
          Alcotest.(check bool) "generic verdict as expected" expect_fail (Check.failed generic);
          Alcotest.(check bool) "auto = generic (pass)" (Check.passed generic) (Check.passed auto);
          Alcotest.(check bool) "monitor = generic (pass)" (Check.passed generic) (Check.passed monitor);
          Alcotest.(check bool) "auto = generic (fail)" (Check.failed generic) (Check.failed auto);
          Alcotest.(check bool) "monitor = generic (fail)" (Check.failed generic) (Check.failed monitor);
          let histories r =
            match r.Check.phase2 with Some p -> p.Check.histories | None -> -1
          in
          Alcotest.(check int) "auto sees the same distinct histories" (histories generic)
            (histories auto);
          Alcotest.(check int) "monitor sees the same distinct histories" (histories generic)
            (histories monitor)))
    e2e_matrix

(* ---------------- the 62-operation boundary ---------------- *)

let oversize_tests =
  [
    test "Lin_check: 63 operations is a structured Unsupported" (fun () ->
        let events =
          List.concat
            (List.init 63 (fun i ->
                 [ call 0 i "Enqueue" ~arg:(Value.int i) (); ret 0 i Value.unit ]))
        in
        let h = history events in
        (match Lin_check.check_outcome Specs.queue h with
         | `Unsupported _ -> ()
         | `Linearizable | `Not_linearizable -> Alcotest.fail "expected `Unsupported");
        (match Lin_check.check_general_outcome Specs.queue h with
         | `Unsupported _ -> ()
         | _ -> Alcotest.fail "expected `Unsupported");
        match Lin_check.check Specs.queue h with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "legacy entry point must still raise");
    test "pcomp decides a 63-operation history the direct search refuses" (fun () ->
        (* alternate Add/Remove on two keys: each per-key part is ~32 ops,
           far under the 62-op direct limit, so the splitter succeeds where
           the whole-history search cannot even start *)
        let events =
          List.concat
            (List.init 63 (fun i ->
                 let key = 1 + (i mod 2) in
                 let name = if i mod 4 < 2 then "Add" else "Remove" in
                 [ call 0 i name ~arg:(Value.int key) (); ret 0 i (Value.bool true) ]))
        in
        let h = history events in
        (match Lin_check.check_outcome Specs.key_set h with
         | `Unsupported _ -> ()
         | _ -> Alcotest.fail "direct search should refuse 63 ops");
        match Pcomp.check Specs.key_set h with
        | Monitor.Accept -> ()
        | Monitor.Reject -> Alcotest.fail "serial alternation is linearizable"
        | Monitor.Unsupported r -> Alcotest.failf "splitter refused: %s" r);
  ]

(* ---------------- Minimize: cancelled candidates ---------------- *)

let minimize_tests =
  [
    test "reduce skips cancelled candidates (regression)" (fun () ->
        let adapter = Conc.Semaphore_slim.pre in
        let matrix =
          Test_matrix.make [ [ inv "Release" ]; [ inv "Release"; inv "CurrentCount" ] ]
        in
        (* learn exactly how many cancellation polls the initial check
           makes, then hand [reduce] a token that fires just after: the
           initial check completes (and fails), every candidate check is
           cancelled at its first boundary *)
        let polls = ref 0 in
        let counting () = incr polls; false in
        let r0 = Check.run ~cancelled:counting adapter matrix in
        Alcotest.(check bool) "the seed test fails" true (Check.failed r0);
        let budget = !polls in
        let n = ref 0 in
        let token () = incr n; !n > budget in
        let r = Minimize.reduce ~cancelled:token adapter matrix in
        (* the fixed descent returns the original failing test; the broken
           one recursed onto cancelled candidates and bottomed out with a
           Cancelled (non-failing) result on a test never seen to fail *)
        Alcotest.(check bool) "result is a seen failure" true (Check.failed r.Minimize.check);
        Alcotest.(check bool) "more than one check was spent" true (r.Minimize.checks_spent > 1);
        Alcotest.(check string) "the original test is returned"
          (Fmt.str "%a" Test_matrix.pp matrix)
          (Fmt.str "%a" Test_matrix.pp r.Minimize.test));
    test "reduce returns unreduced on an initially-cancelled check" (fun () ->
        let adapter = Conc.Semaphore_slim.pre in
        let matrix =
          Test_matrix.make [ [ inv "Release" ]; [ inv "Release"; inv "CurrentCount" ] ]
        in
        let r = Minimize.reduce ~cancelled:(fun () -> true) adapter matrix in
        Alcotest.(check bool) "no verdict" true (Check.cancelled r.Minimize.check);
        Alcotest.(check int) "exactly one check spent" 1 r.Minimize.checks_spent);
  ]

let tests =
  monitor_props @ monitor_units @ pcomp_props @ pcomp_harness_tests @ e2e_tests @ oversize_tests
  @ minimize_tests
