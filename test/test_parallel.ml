(* The domain-parallel check fan-out: the work pool itself, and the
   determinism contract of the parallel entry points — verdicts, violation
   sets and rendered reports must be identical for -j 1 and -j 4, including
   when early cancellation kicks in on a failing adapter. *)

open Helpers
module Conc = Lineup_conc
module Explore = Lineup_scheduler.Explore
module Pool = Lineup_parallel.Pool
open Lineup

(* Keep every Check cheap: small matrices, capped phase 2. *)
let config = Check.config_with ~max_executions:(Some 300) ()

let stats_t : Explore.stats Alcotest.testable =
  Alcotest.testable Explore.pp_stats ( = )

(* ---------------- the pool itself ---------------- *)

let pool_suite =
  [
    test "map_seq preserves submission order at any domain count" (fun () ->
        let jobs = List.init 50 Fun.id in
        let f ~cancelled:_ x = x * x in
        let expected = Pool.map_seq ~f (List.to_seq jobs) in
        List.iter
          (fun domains ->
            Alcotest.(check (list int))
              (Fmt.str "domains=%d" domains)
              expected
              (Pool.map_seq ~domains ~f (List.to_seq jobs)))
          [ 2; 4; 8 ]);
    test "map_seq stop truncates at the earliest stopping result" (fun () ->
        let jobs = List.init 50 Fun.id in
        let f ~cancelled:_ x = x in
        let stop x = x >= 17 in
        let expected = List.init 18 Fun.id in
        List.iter
          (fun domains ->
            Alcotest.(check (list int))
              (Fmt.str "domains=%d" domains)
              expected
              (Pool.map_seq ~domains ~stop ~f (List.to_seq jobs)))
          [ 1; 4 ]);
    test "map_seq pulls the sequence lazily" (fun () ->
        let pulled = Atomic.make 0 in
        let jobs =
          Seq.init 1000 (fun i ->
              Atomic.incr pulled;
              i)
        in
        let got =
          Pool.map_seq ~domains:4 ~queue_depth:4 ~stop:(fun x -> x >= 5)
            ~f:(fun ~cancelled:_ x -> x)
            jobs
        in
        Alcotest.(check (list int)) "prefix" [ 0; 1; 2; 3; 4; 5 ] got;
        (* enumeration stops shortly after the stop point: the bounded queue
           can overrun by at most its depth plus in-flight jobs *)
        Alcotest.(check bool)
          (Fmt.str "pulled %d of 1000" (Atomic.get pulled))
          true
          (Atomic.get pulled < 100));
    test "map_seq re-raises a job exception" (fun () ->
        let f ~cancelled:_ x = if x = 3 then failwith "boom" else x in
        List.iter
          (fun domains ->
            match Pool.map_seq ~domains ~f (List.to_seq (List.init 10 Fun.id)) with
            | _ -> Alcotest.fail "expected an exception"
            | exception Failure msg ->
              Alcotest.(check string) (Fmt.str "domains=%d" domains) "boom" msg)
          [ 1; 4 ]);
    test "map_seq joins every worker when stop raises" (fun () ->
        (* A raising [stop] escapes the worker body and resurfaces at
           [Domain.join]. The pool must join ALL workers before letting it
           propagate: after map_seq raises, no worker may still be running
           jobs — otherwise the domains (and their in-flight effects) leak
           past the call. *)
        let ran = Atomic.make 0 in
        let f ~cancelled:_ x =
          Atomic.incr ran;
          x
        in
        (match
           Pool.map_seq ~domains:4 ~queue_depth:2
             ~stop:(fun _ -> raise Exit)
             ~f
             (List.to_seq (List.init 200 Fun.id))
         with
         | _ -> Alcotest.fail "expected Exit"
         | exception Exit -> ());
        let quiescent = Atomic.get ran in
        Unix.sleepf 0.05;
        Alcotest.(check int) "no worker ran a job after map_seq returned" quiescent
          (Atomic.get ran));
    test "map_seq joins every worker when the job sequence raises" (fun () ->
        (* A lazy job sequence can raise from the feeder (the calling
           domain). Workers blocked on the queue must still be woken,
           drained and joined — the old behavior was a permanent hang —
           and the feeder's exception must propagate. *)
        let jobs =
          Seq.append (Seq.init 5 Fun.id) (fun () -> failwith "seq-boom")
        in
        match Pool.map_seq ~domains:4 ~f:(fun ~cancelled:_ x -> x) jobs with
        | _ -> Alcotest.fail "expected the feeder exception"
        | exception Failure msg -> Alcotest.(check string) "feeder exception" "seq-boom" msg);
    test "cancelled token is never set for results that are kept" (fun () ->
        (* Jobs record whether they ever observed cancellation; kept results
           must all say no — that is what makes the output deterministic. *)
        let f ~cancelled x =
          (* busy-poll a few times to give a racing stop a chance *)
          let saw = ref false in
          for _ = 1 to 100 do
            if cancelled () then saw := true
          done;
          x, !saw
        in
        let got =
          Pool.map_seq ~domains:4 ~stop:(fun (x, _) -> x = 10)
            ~f
            (List.to_seq (List.init 40 Fun.id))
        in
        List.iter
          (fun (x, saw) ->
            Alcotest.(check bool) (Fmt.str "job %d uncancelled" x) false saw)
          got);
  ]

(* ---------------- determinism of the parallel runners ---------------- *)

(* Adapters covering the three interesting regimes: a correct class (full
   sample runs), a racy buggy class (early cancellation on No_witness), and
   a blocking buggy class (stuck-history violations). *)
let subjects =
  [
    "Counter (correct)", Conc.Counters.correct;
    "Counter1 (buggy)", Conc.Counters.buggy_unlocked;
    "SemaphoreSlim (Pre)", Conc.Semaphore_slim.pre;
    "ManualResetEvent (Pre: lost signal)", Conc.Manual_reset_event.lost_signal;
  ]

let render_random (adapter : Adapter.t) (r : Random_check.report) =
  Fmt.str "%d/%d/%d %a %s" (List.length r.outcomes) r.passed r.failed
    Fmt.(list ~sep:sp string)
    (List.map (fun (o : Random_check.test_outcome) -> Report.summary o.result) r.outcomes)
    (match r.first_failure with
     | None -> "-"
     | Some o -> Report.check_result_to_string ~adapter ~test:o.test o.result)

let random_report ~domains ~stop_at_first ~seed (adapter : Adapter.t) =
  Random_check.run_parallel ~config ~stop_at_first ~domains ~seed
    ~invocations:adapter.Adapter.universe ~rows:2 ~cols:2 ~samples:8 adapter

let determinism_suite =
  [
    test "random_check: -j 1 and -j 4 reports are identical per adapter" (fun () ->
        List.iter
          (fun (name, adapter) ->
            let r1 = random_report ~domains:1 ~stop_at_first:false ~seed:42 adapter in
            let r4 = random_report ~domains:4 ~stop_at_first:false ~seed:42 adapter in
            Alcotest.(check string)
              (name ^ ": rendered reports")
              (render_random adapter r1) (render_random adapter r4);
            Alcotest.(check stats_t) (name ^ ": merged stats") r1.stats r4.stats;
            Alcotest.(check (list bool))
              (name ^ ": violation set")
              (List.map (fun (o : Random_check.test_outcome) -> Check.passed o.result) r1.outcomes)
              (List.map (fun (o : Random_check.test_outcome) -> Check.passed o.result) r4.outcomes))
          subjects);
    test "random_check: stop_at_first early cancellation stays deterministic" (fun () ->
        (* known-buggy adapters: the first failure cancels in-flight
           siblings; the reported prefix must not depend on -j *)
        List.iter
          (fun (name, adapter) ->
            let r1 = random_report ~domains:1 ~stop_at_first:true ~seed:7 adapter in
            let r4 = random_report ~domains:4 ~stop_at_first:true ~seed:7 adapter in
            Alcotest.(check string)
              (name ^ ": rendered reports")
              (render_random adapter r1) (render_random adapter r4))
          [ List.nth subjects 1; List.nth subjects 3 ]);
    test "auto_check: -j 1 and -j 3 agree on the failing test" (fun () ->
        let run domains = Auto_check.run ~config ~domains ~max_tests:200 Conc.Lazy_init.pre in
        match run 1, run 3 with
        | ( Auto_check.Failed { test = t1; result = r1; tests_run = n1; stats = s1 },
            Auto_check.Failed { test = t4; result = r4; tests_run = n4; stats = s4 } ) ->
          Alcotest.(check bool) "same failing test" true (Test_matrix.equal t1 t4);
          Alcotest.(check int) "same tests_run" n1 n4;
          Alcotest.(check stats_t) "same merged stats" s1 s4;
          Alcotest.(check string) "same rendered report"
            (Report.check_result_to_string ~adapter:Conc.Lazy_init.pre ~test:t1 r1)
            (Report.check_result_to_string ~adapter:Conc.Lazy_init.pre ~test:t4 r4)
        | _ -> Alcotest.fail "expected Failed from both runs");
    test "auto_check: -j 1 and -j 4 agree on budget exhaustion" (fun () ->
        let run domains = Auto_check.run ~config ~domains ~max_tests:12 Conc.Counters.correct in
        match run 1, run 4 with
        | ( Auto_check.Budget_exhausted { tests_run = n1; stats = s1 },
            Auto_check.Budget_exhausted { tests_run = n4; stats = s4 } ) ->
          Alcotest.(check int) "same tests_run" n1 n4;
          Alcotest.(check stats_t) "same merged stats" s1 s4
        | _ -> Alcotest.fail "expected Budget_exhausted from both runs");
  ]

(* Property: for arbitrary seeds the parallel report is a function of the
   seed alone (never of the domain count), on a buggy adapter so failing
   prefixes are exercised too. *)
let prop_suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:8 ~name:"random_check report independent of -j (arbitrary seed)"
         QCheck.(int_bound 10_000)
         (fun seed ->
           let adapter = Conc.Counters.buggy_unlocked in
           let r1 = random_report ~domains:1 ~stop_at_first:false ~seed adapter in
           let r4 = random_report ~domains:4 ~stop_at_first:false ~seed adapter in
           String.equal (render_random adapter r1) (render_random adapter r4)));
  ]

let tests = pool_suite @ determinism_suite @ prop_suite
