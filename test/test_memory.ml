(* Relaxed-memory exploration: TSO/PSO store buffers as scheduler choices.

   The load-bearing properties:
   - `--memory sc` (the default) is byte-identical to the pre-weak-memory
     checker: same summary, same metrics JSON, and no flushes key ever
     appears (qcheck over random counter matrices);
   - the fence-free Dekker adapter passes under SC (every sequentially
     consistent interleaving preserves Peterson's mutual exclusion — the
     seeded bug is *provably* invisible to SC exploration) and fails under
     both tso and pso, while the fenced variant passes everywhere;
   - weak-memory runs are -j invariant (flush choices ride the prefix
     codec across the frontier split);
   - the §5.7 store-buffering monitor cross-validates the real weak
     exploration: the adapter it flags genuinely fails under `--memory
     tso`, and the adapter it passes genuinely survives it;
   - Shared_var.peek forwards from the blocked thread's own store buffer
     (a thread that buffered a write and then blocks on peeking it must
     wake, not deadlock). *)

open Helpers
module Explore = Lineup_scheduler.Explore
module Memory_model = Lineup_runtime.Memory_model
module Var = Lineup_runtime.Shared_var
module Rt = Lineup_runtime.Rt
module Metrics = Lineup_observe.Metrics
module Tso = Lineup_checkers.Tso_monitor
module Conc = Lineup_conc
open Lineup

let dekker_test = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]

let run_with ?phase2_domains ?(por = false) ?pb ~memory adapter test =
  let m = Metrics.create () in
  let config =
    match pb with
    | None -> Check.config_with ?phase2_domains ~por ~memory ()
    | Some b -> Check.config_with ~preemption_bound:(Some b) ?phase2_domains ~por ~memory ()
  in
  let r = Check.run ~config ~metrics:m adapter test in
  r, m

(* ------------------------------------------------------------------ *)
(* SC byte-identity                                                    *)
(* ------------------------------------------------------------------ *)

let sc_identity adapter test () =
  let m_default = Metrics.create () in
  let r_default = Check.run ~metrics:m_default adapter test in
  let r_sc, m_sc = run_with ~memory:Memory_model.Sc adapter test in
  Alcotest.(check string) "summary" (Report.summary r_default) (Report.summary r_sc);
  Alcotest.(check string) "metrics json" (Metrics.to_json m_default) (Metrics.to_json m_sc);
  Alcotest.(check bool) "no flushes key under sc" false
    (List.mem_assoc "explore.phase2.flushes" (Metrics.to_assoc m_sc))

let counter_ops = [| inv "Inc"; inv "Get"; inv_int "Set" 5 |]

let matrix_gen =
  let open QCheck.Gen in
  let op = map (fun i -> counter_ops.(i)) (int_bound 2) in
  let col = list_size (int_range 1 2) op in
  map Test_matrix.make (list_size (int_range 1 2) col)

let matrix_arb = QCheck.make ~print:(Fmt.to_to_string Test_matrix.pp) matrix_gen

let qcheck_sc_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"explicit sc = default on random counter matrices" ~count:25
       matrix_arb (fun test ->
         let m_default = Metrics.create () in
         let r_default = Check.run ~metrics:m_default Conc.Counters.correct test in
         let r_sc, m_sc = run_with ~memory:Memory_model.Sc Conc.Counters.correct test in
         Report.summary r_default = Report.summary r_sc
         && Metrics.to_json m_default = Metrics.to_json m_sc
         && not (List.mem_assoc "explore.phase2.flushes" (Metrics.to_assoc m_sc))))

(* ------------------------------------------------------------------ *)
(* The seeded fence bug                                                *)
(* ------------------------------------------------------------------ *)

let fence_free = Conc.Dekker.fence_free
let fenced = Conc.Dekker.fenced

let peek_forwards_adapter =
  (* writes a flag, then blocks until its own peek sees it — only read
     forwarding from the issuing thread's buffer makes this wake under
     tso/pso (the write is still buffered when the wake predicate runs) *)
  let create () =
    let flag = Var.make ~name:"fw.flag" false in
    let invoke (i : Lineup_history.Invocation.t) =
      match i.Lineup_history.Invocation.name with
      | "SetAndWait" ->
        Var.write flag true;
        Rt.block ~wake:(fun () -> Var.peek flag) "own write visible";
        Lineup_value.Value.unit
      | n -> Fmt.invalid_arg "peek_forwards: %s" n
    in
    { Adapter.invoke }
  in
  Adapter.make ~name:"peek-forwards" ~universe:[ inv "SetAndWait" ] create

let counter_test_matrix = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]

let suite =
  [
    test "sc identity: correct counter" (sc_identity Conc.Counters.correct counter_test_matrix);
    test "sc identity: segment queue"
      (sc_identity Conc.Segment_queue.adapter
         (Test_matrix.make [ [ inv_int "Enqueue" 200 ]; [ inv "TryDequeue"; inv "IsEmpty" ] ]));
    test "sc identity: fence-free dekker (the bug is invisible to sc)"
      (sc_identity fence_free dekker_test);
    qcheck_sc_identity;
    test "tso finds the fence bug sc cannot" (fun () ->
        let r_sc, _ = run_with ~memory:Memory_model.Sc fence_free dekker_test in
        Alcotest.(check bool) "sc passes" true (Check.passed r_sc);
        let r_tso, _ = run_with ~memory:Memory_model.Tso fence_free dekker_test in
        Alcotest.(check bool) "tso fails" true (Check.failed r_tso));
    test "pso finds the fence bug too" (fun () ->
        let r, _ = run_with ~memory:Memory_model.Pso fence_free dekker_test in
        Alcotest.(check bool) "pso fails" true (Check.failed r));
    test "the fences restore correctness under tso and pso" (fun () ->
        (* exhausting the fenced protocol at the default preemption bound
           takes minutes (every spin iteration is a choice point); bound 1
           with por keeps the run ~20s while preserving the contrast — the
           seeded bug needs exactly one preemption, so it is found at this
           bound (asserted below on the fence-free variant). *)
        List.iter
          (fun memory ->
            let r, _ = run_with ~por:true ~pb:1 ~memory fenced dekker_test in
            if not (Check.passed r) then
              Alcotest.failf "fenced dekker under %s: %s" (Memory_model.to_string memory)
                (Report.summary r);
            let r, _ = run_with ~por:true ~pb:1 ~memory fence_free dekker_test in
            if not (Check.failed r) then
              Alcotest.failf "fence-free dekker under %s at bound 1: %s"
                (Memory_model.to_string memory) (Report.summary r))
          [ Memory_model.Tso; Memory_model.Pso ]);
    test "weak runs count their flushes" (fun () ->
        let _, m =
          run_with ~memory:Memory_model.Tso peek_forwards_adapter
            (Test_matrix.make [ [ inv "SetAndWait" ] ])
        in
        Alcotest.(check bool) "flushes > 0" true (Metrics.get m "explore.phase2.flushes" > 0));
    test "tso verdict and histories are -j invariant" (fun () ->
        let run phase2_domains =
          let r, _ = run_with ?phase2_domains ~memory:Memory_model.Tso fence_free dekker_test in
          Report.summary r
        in
        let mono = run None in
        Alcotest.(check string) "-j 1 = monolithic" mono (run (Some 1));
        Alcotest.(check string) "-j 4 = monolithic" mono (run (Some 4)));
    test "tso monitor warning cross-validates against real tso exploration" (fun () ->
        (* the monitor flags a store-load window on the fence-free variant,
           and the flagged behaviour is genuinely weak: the same test fails
           under --memory tso. The fenced variant is clean both ways. *)
        let flagged = Tso.run ~adapter:fence_free ~test:dekker_test () in
        Alcotest.(check bool) "monitor flags fence-free" true (List.length flagged > 0);
        let r, _ = run_with ~memory:Memory_model.Tso fence_free dekker_test in
        Alcotest.(check bool) "flagged => fails under tso" true (Check.failed r);
        let clean = Tso.run ~adapter:fenced ~test:dekker_test () in
        Alcotest.(check int) "monitor passes fenced" 0 (List.length clean)
        (* the pass direction (fenced survives --memory tso) is asserted by
           "the fences restore correctness" above; not re-run here. *));
    test "peek forwards from the blocked thread's own buffer" (fun () ->
        List.iter
          (fun memory ->
            let r, _ =
              run_with ~memory peek_forwards_adapter
                (Test_matrix.make [ [ inv "SetAndWait" ]; [ inv "SetAndWait" ] ])
            in
            if not (Check.passed r) then
              Alcotest.failf "peek forwarding under %s: %s" (Memory_model.to_string memory)
                (Report.summary r))
          [ Memory_model.Sc; Memory_model.Tso; Memory_model.Pso ]);
    test "memory model strings round-trip" (fun () ->
        List.iter
          (fun m ->
            match Memory_model.of_string (Memory_model.to_string m) with
            | Some m' when m' = m -> ()
            | _ -> Alcotest.failf "round-trip failed for %s" (Memory_model.to_string m))
          [ Memory_model.Sc; Memory_model.Tso; Memory_model.Pso ];
        Alcotest.(check bool) "unknown rejected" true (Memory_model.of_string "weak" = None));
  ]

let tests = suite
