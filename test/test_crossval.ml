(* Cross-validation of the two-phase check against the explicit-spec
   Wing–Gong–Lowe oracle — Theorems 5/6 exercised empirically.

   For implementations that have a matching explicit specification:
   - every concurrent history of a correct implementation must satisfy
     general linearizability w.r.t. the spec (so the implementations are
     validated against their specs, and the harness produces only real
     histories);
   - on correct implementations the two-phase verdict must agree with the
     oracle history-by-history (witness found <=> WGL accepts);
   - when Line-Up reports a violation on a seeded defect, the oracle must
     refute the reported history too (completeness: no false alarms). *)

open Helpers
module History = Lineup_history.History
module Lin_check = Lineup_spec.Lin_check
module Spec = Lineup_spec.Spec
module Specs = Lineup_spec.Specs
module Explore = Lineup_scheduler.Explore
module Conc = Lineup_conc
open Lineup

(* implementation/specification pairs, with the invocations valid for both *)
type pair =
  | Pair : {
      name : string;
      adapter : Adapter.t;
      spec : 'st Spec.t;
      invocations : Lineup_history.Invocation.t list;
    }
      -> pair

let pairs =
  [
    Pair
      {
        name = "Counter";
        adapter = Conc.Counters.correct;
        spec = Specs.counter;
        invocations = [ inv "Inc"; inv "Get"; inv_int "Set" 3; inv "Dec" ];
      };
    Pair
      {
        name = "ConcurrentQueue";
        adapter = Conc.Concurrent_queue.correct;
        spec = Specs.queue;
        invocations =
          [ inv_int "Enqueue" 1; inv_int "Enqueue" 2; inv "TryDequeue"; inv "TryPeek"; inv "Count"; inv "IsEmpty" ];
      };
    Pair
      {
        name = "MichaelScottQueue";
        adapter = Conc.Michael_scott_queue.adapter;
        spec = Specs.queue;
        invocations = [ inv_int "Enqueue" 1; inv_int "Enqueue" 2; inv "TryDequeue"; inv "TryPeek"; inv "IsEmpty" ];
      };
    Pair
      {
        name = "SegmentQueue";
        adapter = Conc.Segment_queue.adapter;
        spec = Specs.queue;
        invocations = [ inv_int "Enqueue" 1; inv_int "Enqueue" 2; inv "TryDequeue"; inv "TryPeek"; inv "IsEmpty" ];
      };
    Pair
      {
        name = "ConcurrentStack";
        adapter = Conc.Concurrent_stack.correct;
        spec = Specs.stack;
        invocations =
          [ inv_int "Push" 1; inv_int "Push" 2; inv "TryPop"; inv "TryPeek"; inv "Count"; inv_int "TryPopRange" 2 ];
      };
    Pair
      {
        name = "SemaphoreSlim";
        adapter = Conc.Semaphore_slim.correct;
        spec = Specs.semaphore ~initial:0;
        invocations = [ inv "Release"; inv "Wait"; inv "TryWait"; inv "CurrentCount"; inv_int "ReleaseMany" 2 ];
      };
    Pair
      {
        name = "ManualResetEvent";
        adapter = Conc.Manual_reset_event.correct;
        spec = Specs.manual_reset_event ~initial:false;
        invocations = [ inv "Set"; inv "Reset"; inv "Wait"; inv "TryWait"; inv "IsSet" ];
      };
  ]

(* random 2x2 test over the pair's invocations *)
let random_test rng invocations =
  Test_matrix.random ~rng ~invocations ~rows:2 ~cols:2 ()

let explore_histories adapter test ~cap =
  let histories = ref [] in
  let config = { Explore.default_config with Explore.max_executions = Some cap } in
  let _ =
    Harness.run_phase config ~adapter ~test ~on_history:(fun r ->
        histories := r.Harness.history :: !histories;
        `Continue)
  in
  !histories

(* distinct histories only: the oracle is the expensive side *)
let distinct histories =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun h ->
      let key = History.events h, History.is_stuck h in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    histories

let correctness_props =
  List.map
    (fun (Pair p) ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:(Fmt.str "%s: every explored history satisfies the spec" p.name)
           ~count:20
           (QCheck.make
              (QCheck.Gen.map
                 (fun seed -> random_test (Random.State.make [| seed |]) p.invocations)
                 QCheck.Gen.small_signed_int))
           (fun test ->
             let histories = distinct (explore_histories p.adapter test ~cap:120) in
             List.for_all (fun h -> Lin_check.check_general p.spec h) histories)))
    pairs

let agreement_props =
  List.map
    (fun (Pair p) ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:(Fmt.str "%s: witness search agrees with the oracle" p.name)
           ~count:15
           (QCheck.make
              (QCheck.Gen.map
                 (fun seed -> random_test (Random.State.make [| seed + 977 |]) p.invocations)
                 QCheck.Gen.small_signed_int))
           (fun test ->
             match Check.synthesize p.adapter test with
             | Error _ -> false (* correct implementations are deterministic *)
             | Ok (obs, _) ->
               let histories = distinct (explore_histories p.adapter test ~cap:120) in
               List.for_all
                 (fun h ->
                   if History.is_stuck h then
                     Result.is_ok (Observation.linearizable_stuck obs h)
                     = Result.is_ok (Lin_check.check_stuck p.spec h)
                   else
                     Option.is_some (Observation.find_witness_full obs h)
                     = Lin_check.check p.spec h)
                 histories)))
    pairs

(* seeded defects whose violating histories the oracle must refute *)
type buggy_pair =
  | Buggy : {
      name : string;
      adapter : Adapter.t;
      spec : 'st Spec.t;
      columns : Lineup_history.Invocation.t list list;
    }
      -> buggy_pair

let buggy_pairs =
  [
    Buggy
      {
        name = "ConcurrentQueue (Pre)";
        adapter = Conc.Concurrent_queue.pre;
        spec = Specs.queue;
        columns =
          [ [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ]; [ inv "TryDequeue"; inv "TryDequeue" ] ];
      };
    Buggy
      {
        name = "SemaphoreSlim (Pre)";
        adapter = Conc.Semaphore_slim.pre;
        spec = Specs.semaphore ~initial:0;
        columns = [ [ inv "Release" ]; [ inv "Release"; inv "CurrentCount" ] ];
      };
    Buggy
      {
        name = "ConcurrentStack (Pre)";
        adapter = Conc.Concurrent_stack.pre;
        spec = Specs.stack;
        columns = [ [ inv_int "Push" 1; inv_int "Push" 2 ]; [ inv_int "TryPopRange" 2 ] ];
      };
    Buggy
      {
        name = "ManualResetEvent (Pre: lost signal)";
        adapter = Conc.Manual_reset_event.lost_signal;
        spec = Specs.manual_reset_event ~initial:false;
        columns = [ [ inv "Wait" ]; [ inv "Set" ] ];
      };
  ]

let completeness_tests =
  List.map
    (fun (Buggy b) ->
      test (Fmt.str "%s: the reported violation is refuted by the oracle" b.name) (fun () ->
          let r = Check.run b.adapter (Test_matrix.make b.columns) in
          match r.Check.verdict with
          | Check.Fail (Check.No_witness h) ->
            Alcotest.(check bool) "oracle refutes" false (Lin_check.check b.spec h)
          | Check.Fail (Check.Stuck_unjustified (h, _)) ->
            Alcotest.(check bool) "oracle refutes" false
              (Result.is_ok (Lin_check.check_stuck b.spec h))
          | Check.Fail v -> Alcotest.failf "unexpected violation: %a" Check.pp_violation v
          | Check.Pass | Check.Cancelled -> Alcotest.fail "expected a violation"))
    buggy_pairs

let tests = correctness_props @ agreement_props @ completeness_tests
