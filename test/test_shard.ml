(* The multi-process sharding layer (lib/shard): the checkpoint store's
   format/fingerprint discipline, the wire framing, and — the load-bearing
   contract — that splitting phase 2 into marshaled partition jobs and
   merging the checkpoints reproduces the in-process frontier run
   byte-for-byte, regardless of completion order or resume cycles. *)

open Helpers
module Conc = Lineup_conc
module Explore = Lineup_scheduler.Explore
module Metrics = Lineup_observe.Metrics
module Wire = Lineup_shard.Wire
module Store = Lineup_shard.Store
module Server = Lineup_shard.Server
open Lineup

(* Small matrices, capped phase 2, frontier path on: every test here stays
   well under a second of exploration. *)
let config = Check.config_with ~max_executions:(Some 300) ~phase2_domains:2 ~frontier_depth:3 ()

let counter_test = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]
let mre_test = Test_matrix.make [ [ inv "Wait" ]; [ inv "Set" ] ]

let with_temp_dir f =
  let dir = Filename.temp_file "lineup" "shard" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* Run the sharded pipeline in-process: synthesize, split, run each
   partition as the worker would, and hand the parts to the merge in the
   given order. *)
let shard_run ?metrics ~order adapter test =
  match Check.synthesize ~config ?metrics adapter test with
  | Error _ -> Alcotest.fail "phase 1 unexpectedly failed"
  | Ok (observation, phase1) ->
    let frontier, interrupted = Check.split_frontier ~config adapter test in
    Alcotest.(check bool) "warm-up ran to completion" false interrupted;
    let parts =
      List.mapi
        (fun index prefix -> Check.run_partition ~config ~observation ~index ~prefix adapter test)
        frontier.Explore.prefixes
    in
    observation, phase1, frontier, order parts

let render adapter test r = Report.check_result_to_string ~adapter ~test r

let stats_t : Explore.stats Alcotest.testable = Alcotest.testable Explore.pp_stats ( = )

(* ---------------- checkpoint store ---------------- *)

let store_suite =
  [
    test "fingerprint keys the sweep, not the domain count" (fun () ->
        let fp c = Store.fingerprint ~config:c ~adapter:"Counter" ~test:counter_test in
        let base = fp config in
        let with_ ?(cap = 300) ?(depth = 3) ?classic_only ?por j =
          Check.config_with ~max_executions:(Some cap) ~phase2_domains:j ~frontier_depth:depth
            ?classic_only ?por ()
        in
        Alcotest.(check bool)
          "phase2_domains excluded (any -j resumes the same dir)" true
          (String.equal base (fp (with_ 7)));
        List.iter
          (fun (what, c) ->
            Alcotest.(check bool) (what ^ " changes the fingerprint") false
              (String.equal base (fp c)))
          [
            "frontier depth", with_ ~depth:4 2;
            "execution budget", with_ ~cap:299 2;
            "classic_only", with_ ~classic_only:true 2;
            "por", with_ ~por:true 2;
          ];
        Alcotest.(check bool) "adapter name changes the fingerprint" false
          (String.equal base
             (Store.fingerprint ~config ~adapter:"Counter1" ~test:counter_test));
        Alcotest.(check bool) "test content changes the fingerprint" false
          (String.equal base (Store.fingerprint ~config ~adapter:"Counter" ~test:mre_test)));
    test "phase1/frontier/parts round-trip through a run directory" (fun () ->
        with_temp_dir (fun dir ->
            let adapter = Conc.Counters.correct in
            let fingerprint =
              Store.fingerprint ~config ~adapter:adapter.Adapter.name ~test:counter_test
            in
            Store.init_dir ~dir ~fingerprint;
            Alcotest.(check (result unit string)) "fresh dir validates" (Ok ())
              (Store.validate_dir ~dir ~fingerprint);
            let observation, phase1, frontier, parts =
              shard_run ~order:Fun.id adapter counter_test
            in
            let xml = Observation_file.to_string observation in
            Store.save_phase1 ~dir ~fingerprint ~observation_xml:xml phase1;
            (match Store.load_phase1 ~dir ~fingerprint with
             | None -> Alcotest.fail "phase1 checkpoint did not load"
             | Some (xml', phase1') ->
               Alcotest.(check string) "observation XML" xml xml';
               Alcotest.(check stats_t) "phase-1 stats" phase1.Check.stats phase1'.Check.stats;
               Alcotest.(check int) "phase-1 histories" phase1.Check.histories
                 phase1'.Check.histories);
            Store.save_frontier ~dir ~fingerprint frontier;
            (match Store.load_frontier ~dir ~fingerprint with
             | None -> Alcotest.fail "frontier checkpoint did not load"
             | Some f' ->
               Alcotest.(check (list string)) "prefixes"
                 (List.map Explore.prefix_to_string frontier.Explore.prefixes)
                 (List.map Explore.prefix_to_string f'.Explore.prefixes);
               Alcotest.(check stats_t) "warm-up stats" frontier.Explore.warmup
                 f'.Explore.warmup);
            List.iter (Store.save_part ~dir ~fingerprint) parts;
            let loaded = Store.load_parts ~dir ~fingerprint in
            let indices ps = List.sort Int.compare (List.map Check.partition_index ps) in
            Alcotest.(check (list int)) "all partition indices restored" (indices parts)
              (indices loaded);
            let execs ps =
              let by_index a b = Int.compare (Check.partition_index a) (Check.partition_index b) in
              List.map Check.partition_executions (List.sort by_index ps)
            in
            Alcotest.(check (list int)) "per-partition executions survive" (execs parts)
              (execs loaded)));
    test "stale fingerprints are ignored, never merged" (fun () ->
        with_temp_dir (fun dir ->
            let adapter = Conc.Counters.correct in
            let fp_a = Store.fingerprint ~config ~adapter:adapter.Adapter.name ~test:counter_test in
            let fp_b = Store.fingerprint ~config ~adapter:adapter.Adapter.name ~test:mre_test in
            Store.init_dir ~dir ~fingerprint:fp_a;
            let _, phase1, frontier, parts = shard_run ~order:Fun.id adapter counter_test in
            Store.save_phase1 ~dir ~fingerprint:fp_a ~observation_xml:"<x/>" phase1;
            Store.save_frontier ~dir ~fingerprint:fp_a frontier;
            List.iter (Store.save_part ~dir ~fingerprint:fp_a) parts;
            Alcotest.(check bool) "mismatched manifest fails validation" true
              (Result.is_error (Store.validate_dir ~dir ~fingerprint:fp_b));
            Alcotest.(check bool) "stale phase1 not loaded" true
              (Option.is_none (Store.load_phase1 ~dir ~fingerprint:fp_b));
            Alcotest.(check bool) "stale frontier not loaded" true
              (Option.is_none (Store.load_frontier ~dir ~fingerprint:fp_b));
            Alcotest.(check int) "stale parts not loaded" 0
              (List.length (Store.load_parts ~dir ~fingerprint:fp_b))));
    test "corrupt or truncated checkpoints are skipped" (fun () ->
        with_temp_dir (fun dir ->
            let adapter = Conc.Counters.correct in
            let fingerprint =
              Store.fingerprint ~config ~adapter:adapter.Adapter.name ~test:counter_test
            in
            Store.init_dir ~dir ~fingerprint;
            let _, _, _, parts = shard_run ~order:Fun.id adapter counter_test in
            List.iter (Store.save_part ~dir ~fingerprint) parts;
            let plant name content =
              let oc = open_out (Filename.concat (Filename.concat dir "parts") name) in
              output_string oc content;
              close_out oc
            in
            plant "9998.part" "not a checkpoint at all";
            (* right header, garbage payload *)
            plant "9999.part" (Fmt.str "lineup-shard/%d\n%s\n@@@" Store.format_version fingerprint);
            let loaded = Store.load_parts ~dir ~fingerprint in
            Alcotest.(check int) "only the valid checkpoints load" (List.length parts)
              (List.length loaded)));
  ]

(* ---------------- wire protocol ---------------- *)

let wire_suite =
  [
    test "messages round-trip over a socketpair" (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close a with Unix.Unix_error _ -> ());
            try Unix.close b with Unix.Unix_error _ -> ())
          (fun () ->
            Wire.send_to_server a (Wire.Hello { wire = Wire.wire_version });
            (match Wire.recv_to_server b with
             | Some (Wire.Hello { wire }) ->
               Alcotest.(check int) "hello carries the wire version" Wire.wire_version wire
             | _ -> Alcotest.fail "expected Hello");
            Wire.send_to_server a (Wire.Failed { index = 7; message = "boom" });
            (match Wire.recv_to_server b with
             | Some (Wire.Failed { index; message }) ->
               Alcotest.(check int) "failed index" 7 index;
               Alcotest.(check string) "failed message" "boom" message
             | _ -> Alcotest.fail "expected Failed");
            let adapter = Conc.Counters.correct in
            let _, _, frontier, parts = shard_run ~order:Fun.id adapter counter_test in
            let part = List.hd parts in
            Wire.send_to_server a (Wire.Result { index = 0; part });
            (match Wire.recv_to_server b with
             | Some (Wire.Result { index; part = part' }) ->
               Alcotest.(check int) "result index" 0 index;
               Alcotest.(check int) "partition index" (Check.partition_index part)
                 (Check.partition_index part');
               Alcotest.(check int) "partition executions" (Check.partition_executions part)
                 (Check.partition_executions part')
             | _ -> Alcotest.fail "expected Result");
            Wire.send_to_worker b
              (Wire.Init
                 {
                   i_fingerprint = "fp";
                   i_config = config;
                   i_adapter = adapter.Adapter.name;
                   i_test = counter_test;
                   i_observation = "<lineup/>";
                 });
            (match Wire.recv_to_worker a with
             | Some (Wire.Init i) ->
               Alcotest.(check string) "init fingerprint" "fp" i.Wire.i_fingerprint;
               Alcotest.(check string) "init adapter" adapter.Adapter.name i.Wire.i_adapter;
               Alcotest.(check bool) "init test" true
                 (Test_matrix.equal counter_test i.Wire.i_test)
             | _ -> Alcotest.fail "expected Init");
            let prefix = Explore.prefix_to_string (List.hd frontier.Explore.prefixes) in
            Wire.send_to_worker b (Wire.Task { index = 3; prefix });
            (match Wire.recv_to_worker a with
             | Some (Wire.Task { index; prefix = p }) ->
               Alcotest.(check int) "task index" 3 index;
               Alcotest.(check string) "task prefix" prefix p
             | _ -> Alcotest.fail "expected Task");
            Wire.send_to_worker b Wire.Shutdown;
            match Wire.recv_to_worker a with
            | Some Wire.Shutdown -> ()
            | _ -> Alcotest.fail "expected Shutdown"));
    test "a truncated frame or closed peer reads as None" (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (* length prefix promising 100 bytes, then EOF *)
        let partial = Bytes.create 4 in
        Bytes.set_uint8 partial 0 0;
        Bytes.set_uint8 partial 1 0;
        Bytes.set_uint8 partial 2 0;
        Bytes.set_uint8 partial 3 100;
        ignore (Unix.write a partial 0 4);
        Unix.close a;
        Alcotest.(check bool) "truncated frame" true (Option.is_none (Wire.recv_to_server b));
        Alcotest.(check bool) "closed peer" true (Option.is_none (Wire.recv_to_server b));
        Unix.close b);
  ]

(* ---------------- EINTR on the blocking paths ---------------- *)

(* Regression tests for [Wire]'s EINTR handling: OCaml installs signal
   handlers without SA_RESTART, so any signal (a SIGCHLD from a finished
   worker, a SIGALRM from a user's profiler) interrupts a blocking
   [Unix.read]/[Unix.write] mid-frame. Before the fix, [read_exact]
   returned a torn frame (recv [None] → the server declared a live worker
   dead) and [write_all] raised [EINTR], killing the worker mid-send.
   Here a repeating interval timer hammers the calling thread with
   SIGALRM while the main domain blocks in recv/send. *)
let with_sigalrm_storm f =
  let prev = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let interval = { Unix.it_interval = 0.005; it_value = 0.005 } in
  ignore (Unix.setitimer Unix.ITIMER_REAL interval);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.; it_value = 0. });
      Sys.set_signal Sys.sigalrm prev)
    f

let eintr_suite =
  [
    test "recv survives signals while blocked mid-frame" (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            Unix.close a;
            Unix.close b)
          (fun () ->
            let sender =
              Domain.spawn (fun () ->
                  (* long enough for several timer ticks to land while the
                     main domain is parked inside Unix.read *)
                  Unix.sleepf 0.15;
                  Wire.send_to_server a (Wire.Failed { index = 3; message = "late" }))
            in
            with_sigalrm_storm (fun () ->
                match Wire.recv_to_server b with
                | Some (Wire.Failed { index; message }) ->
                  Alcotest.(check int) "index" 3 index;
                  Alcotest.(check string) "message" "late" message
                | _ -> Alcotest.fail "frame lost to EINTR");
            Domain.join sender));
    test "send survives signals across a many-buffer payload" (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            Unix.close a;
            Unix.close b)
          (fun () ->
            (* far larger than a socket buffer, so write_all needs many
               partial writes — each a chance to be interrupted *)
            let payload = String.make (8 * 1024 * 1024) 'x' in
            (* the payload dwarfs the socket buffer, so the sender blocks
               on buffer space over and over while the drain catches up —
               each block a chance for SIGALRM to interrupt the write *)
            let receiver = Domain.spawn (fun () -> Wire.recv_to_server b) in
            with_sigalrm_storm (fun () ->
                Wire.send_to_server a (Wire.Failed { index = 0; message = payload }));
            match Domain.join receiver with
            | Some (Wire.Failed { message; _ }) ->
              Alcotest.(check int) "payload intact" (String.length payload)
                (String.length message)
            | _ -> Alcotest.fail "large frame lost"));
  ]

(* ---------------- merge determinism ---------------- *)

let merge_suite =
  [
    test "merge is byte-identical to the in-process frontier run (passing class)" (fun () ->
        let adapter = Conc.Counters.correct in
        let m_ref = Metrics.create () in
        let reference = Check.run ~config ~metrics:m_ref adapter counter_test in
        let m_shard = Metrics.create () in
        (* reversed completion order: the merge must not care *)
        let observation, phase1, frontier, parts =
          shard_run ~metrics:m_shard ~order:List.rev adapter counter_test
        in
        let merged =
          Check.merge_partitions ~metrics:m_shard ~observation ~phase1 ~frontier parts
        in
        Alcotest.(check bool) "verdict passes" true (Check.passed merged);
        Alcotest.(check string) "rendered report"
          (render adapter counter_test reference)
          (render adapter counter_test merged);
        Alcotest.(check string) "metrics registry" (Metrics.to_json m_ref)
          (Metrics.to_json m_shard));
    test "merge re-applies the cut rule on a failing class" (fun () ->
        (* Checkpoints past the earliest stopping partition may exist on
           disk (written before the stop, or by a resumed over-eager
           sweep); the merge must ignore them exactly as the in-process
           pool discards late siblings. *)
        let adapter = Conc.Manual_reset_event.lost_signal in
        let m_ref = Metrics.create () in
        let reference = Check.run ~config ~metrics:m_ref adapter mre_test in
        Alcotest.(check bool) "reference fails" true (Check.failed reference);
        let m_shard = Metrics.create () in
        let observation, phase1, frontier, parts =
          shard_run ~metrics:m_shard ~order:Fun.id adapter mre_test
        in
        (* every partition completed — a superset of what -j would keep *)
        let merged =
          Check.merge_partitions ~metrics:m_shard ~observation ~phase1 ~frontier
            (List.rev parts)
        in
        Alcotest.(check bool) "verdict fails" true (Check.failed merged);
        Alcotest.(check string) "rendered report"
          (render adapter mre_test reference) (render adapter mre_test merged);
        Alcotest.(check string) "metrics registry" (Metrics.to_json m_ref)
          (Metrics.to_json m_shard));
    test "server --resume with a fully checkpointed dir merges without workers" (fun () ->
        (* The socket-free resume path: every partition already on disk →
           Server.run goes straight to the merge and must reproduce the
           in-process run, re-ingesting phase-1 counters for metric
           byte-identity. Also proves no finished partition is re-explored
           (there are no workers to explore anything). *)
        with_temp_dir (fun dir ->
            let adapter = Conc.Counters.correct in
            let m_ref = Metrics.create () in
            let reference = Check.run ~config ~metrics:m_ref adapter counter_test in
            let fingerprint =
              Store.fingerprint ~config ~adapter:adapter.Adapter.name ~test:counter_test
            in
            Store.init_dir ~dir ~fingerprint;
            let observation, phase1, frontier, parts =
              shard_run ~order:Fun.id adapter counter_test
            in
            Store.save_phase1 ~dir ~fingerprint
              ~observation_xml:(Observation_file.to_string observation)
              phase1;
            Store.save_frontier ~dir ~fingerprint frontier;
            List.iter (Store.save_part ~dir ~fingerprint) parts;
            let m_resume = Metrics.create () in
            (match
               Server.run ~config ~metrics:m_resume ~resume:true ~dir ~adapter
                 ~test:counter_test ()
             with
             | Server.Report merged ->
               Alcotest.(check string) "rendered report"
                 (render adapter counter_test reference)
                 (render adapter counter_test merged);
               Alcotest.(check string) "metrics registry" (Metrics.to_json m_ref)
                 (Metrics.to_json m_resume)
             | Server.Halted _ | Server.Failed_run _ ->
               Alcotest.fail "expected a merged report");
            (* progress counters land in shard-stats.json *)
            let ic = open_in (Store.stats_path ~dir) in
            let stats_json =
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            let contains sub =
              let n = String.length sub and m = String.length stats_json in
              let rec go i = i + n <= m && (String.sub stats_json i n = sub || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) "schema marker" true (contains "lineup-shard-stats/1");
            Alcotest.(check bool) "all partitions were checkpoint hits" true
              (contains (Fmt.str "\"checkpoint_hits\": %d" (List.length parts)))));
  ]

let tests = store_suite @ wire_suite @ eintr_suite @ merge_suite
