(* The streaming monitor stack, bottom to top:

   - the NDJSON event codec ([Mevent.render]/[parse]): qcheck round-trip
     over random events (the [arg]/[val] strings are [Value.to_string]
     images, so any value round-trips), plus the skip/blank/malformed
     line taxonomy;
   - the fast streaming engines ([Monitor.Stream]) against the offline
     decrease-and-conquer monitors on random accepting AND rejecting
     queue/stack histories — windowed GC must never change the verdict,
     so the property runs at min_batch 1 (a window per quiescent point)
     and 4;
   - the chunked feasible-state engine ([Kmon]) against the Wing–Gong
     oracle on random keyed set histories and unkeyed counter histories;
   - windowing as a memory bound: a long bounded-occupancy stream keeps
     [resident] small, and a stream with no quiescent point inside
     [max_window] answers [Unsupported], never a wrong verdict;
   - load-shedding amnesty: a shed insert excuses the retained remove of
     its value (accept-lean, no false reject);
   - the driver end to end over temp NDJSON files: streaming accept and
     reject verdicts, and [--replay] grouping by the [hist] tag. *)

open Helpers
module Value = Lineup_value.Value
module Event = Lineup_history.Event
module Monitor = Lineup_spec.Monitor
module Kmon = Lineup_spec.Kmon
module Lin_check = Lineup_spec.Lin_check
module Spec = Lineup_spec.Spec
module Specs = Lineup_spec.Specs
module Mevent = Lineup_monitor.Mevent
module Engine = Lineup_monitor.Engine
module Driver = Lineup_monitor.Driver
module Ingest = Lineup_monitor.Ingest

let verdict : Monitor.verdict Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Monitor.Accept -> Fmt.string ppf "Accept"
      | Monitor.Reject -> Fmt.string ppf "Reject"
      | Monitor.Unsupported r -> Fmt.pf ppf "Unsupported %S" r)
    ( = )

(* ---------------- NDJSON codec ---------------- *)

let event_gen =
  let open QCheck.Gen in
  let* tid = int_bound 7 and* op_index = int_bound 99 in
  let* is_call = bool in
  if is_call then
    let* name = oneofl [ "Enqueue"; "TryDequeue"; "Add"; "weird name \"x\"\\" ] in
    let* arg = value_gen in
    return (Event.call ~tid ~op_index (inv ~arg name))
  else
    let* v = value_gen in
    return (Event.return ~tid ~op_index v)

let event_arb = QCheck.make ~print:(Fmt.to_to_string Event.pp) event_gen

let codec_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"render/parse round-trips any event" ~count:500
       QCheck.(pair event_arb (option (int_bound 1000)))
       (fun (ev, hist) ->
         match Mevent.parse (Mevent.render ?hist ev) with
         | Mevent.Ev { hist = h; event } -> h = hist && Event.equal event ev
         | _ -> false))

let codec_units =
  [
    test "codec: blank and whitespace lines" (fun () ->
        Alcotest.(check bool) "empty" true (Mevent.parse "" = Mevent.Blank);
        Alcotest.(check bool) "spaces" true (Mevent.parse "   \t " = Mevent.Blank));
    test "codec: non-event lines are skipped, not errors" (fun () ->
        (* a raw check --trace interleaves scheduler/pool records *)
        let skippable =
          [
            {|{"t":1.0,"ev":"monitor.tick","ops":12}|};
            {|{"t":1.0,"ev":"pool.task"}|};
            {|{"no_ev_field":true}|};
          ]
        in
        List.iter
          (fun l ->
            Alcotest.(check bool) l true (Mevent.parse l = Mevent.Skip))
          skippable);
    test "codec: malformed lines are malformed" (fun () ->
        let is_malformed l =
          match Mevent.parse l with Mevent.Malformed _ -> true | _ -> false
        in
        Alcotest.(check bool) "not json" true (is_malformed "{not json");
        Alcotest.(check bool) "no tid" true
          (is_malformed {|{"ev":"call","op":0,"name":"Enqueue"}|});
        Alcotest.(check bool) "no name" true
          (is_malformed {|{"ev":"call","tid":0,"op":0}|});
        Alcotest.(check bool) "bad value image" true
          (is_malformed {|{"ev":"ret","tid":0,"op":0,"val":"<junk>"}|}));
    test "codec: missing arg decodes as Unit" (fun () ->
        match Mevent.parse {|{"ev":"call","tid":1,"op":2,"name":"TryPop"}|} with
        | Mevent.Ev { event; hist } ->
          Alcotest.(check bool) "no hist" true (hist = None);
          Alcotest.(check bool) "is unit call" true
            (Event.equal event (call 1 2 "TryPop" ()))
        | _ -> Alcotest.fail "expected an event");
  ]

(* ---------------- streaming engines vs the offline monitors ---------------- *)

(* same synthetic generators as test_membership.ml: random well-formed
   complete two-thread histories, with rejecting answers on purpose *)
let interleave rng ops =
  let cols = [| ref []; ref [] |] in
  List.iter (fun op -> let c = cols.(Random.State.int rng 2) in c := op :: !c) ops;
  let pending = Array.map (fun c -> ref (List.rev !c)) cols in
  let in_flight = [| None; None |] in
  let next_index = [| 0; 0 |] in
  let events = ref [] in
  let moves_left () =
    Array.exists Option.is_some in_flight || Array.exists (fun p -> !p <> []) pending
  in
  while moves_left () do
    let tid = Random.State.int rng 2 in
    match in_flight.(tid) with
    | Some resp ->
      events := ret tid next_index.(tid) resp :: !events;
      in_flight.(tid) <- None;
      next_index.(tid) <- next_index.(tid) + 1
    | None -> (
      match !(pending.(tid)) with
      | [] -> ()
      | (i, resp) :: rest ->
        events := Event.call ~tid ~op_index:next_index.(tid) i :: !events;
        in_flight.(tid) <- Some resp;
        pending.(tid) := rest)
  done;
  List.rev !events

let random_lifo_fifo_ops rng ~insert ~remove =
  let n = 2 + Random.State.int rng 5 in
  let kinds = List.init n (fun i -> i, Random.State.bool rng) in
  let inserts =
    List.filter_map (fun (i, k) -> if k then Some (100 * (i + 1)) else None) kinds
  in
  List.map
    (fun (i, k) ->
      if k then inv_int insert (100 * (i + 1)), Value.unit
      else
        let resp =
          if inserts = [] || Random.State.int rng 3 = 0 then Value.Fail
          else Value.int (List.nth inserts (Random.State.int rng (List.length inserts)))
        in
        inv remove, resp)
    kinds

let seed_arb = QCheck.make QCheck.Gen.small_signed_int

let stream_of_cls ~min_batch = function
  | Spec.Queue -> Monitor.Stream.create_queue ~min_batch ()
  | Spec.Stack -> Monitor.Stream.create_stack ~min_batch ()
  | _ -> assert false

let stream_verdict ~cls ~min_batch events =
  let s = stream_of_cls ~min_batch cls in
  List.iter (Monitor.Stream.feed s) events;
  Monitor.Stream.finalize s

let stream_agrees ~name ~cls ~insert ~remove =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:500 seed_arb (fun seed ->
         let rng = Random.State.make [| seed |] in
         let events = interleave rng (random_lifo_fifo_ops rng ~insert ~remove) in
         let offline = Monitor.check ~cls (history events) in
         (* min_batch 1 windows at every quiescent point — the most GC
            pressure possible; both must equal the offline verdict *)
         stream_verdict ~cls ~min_batch:1 events = offline
         && stream_verdict ~cls ~min_batch:4 events = offline))

let stream_props =
  [
    stream_agrees ~name:"queue stream agrees with the offline monitor"
      ~cls:Spec.Queue ~insert:"Enqueue" ~remove:"TryDequeue";
    stream_agrees ~name:"stack stream agrees with the offline monitor"
      ~cls:Spec.Stack ~insert:"Push" ~remove:"TryPop";
  ]

(* ---------------- Kmon vs the Wing–Gong oracle ---------------- *)

let random_set_ops rng =
  let n = 2 + Random.State.int rng 5 in
  List.init n (fun _ ->
      let name = List.nth [ "Add"; "Remove"; "Contains" ] (Random.State.int rng 3) in
      let key = 1 + Random.State.int rng 2 in
      inv_int name key, Value.bool (Random.State.bool rng))

let random_counter_ops rng =
  let n = 2 + Random.State.int rng 4 in
  List.init n (fun _ ->
      match Random.State.int rng 3 with
      | 0 -> inv "Inc", Value.unit
      | 1 -> inv "Get", Value.int (Random.State.int rng 3)
      | _ -> inv_int "Set" (Random.State.int rng 2), Value.unit)

let kmon_verdict ~spec ~keyed ~chunk events =
  let k = Kmon.create spec ~keyed ~chunk ~max_window:1_048_576 in
  List.iter k.Kmon.feed events;
  k.Kmon.finalize ()

let kmon_agrees ~name ~spec ~keyed ~gen =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:500 seed_arb (fun seed ->
         let rng = Random.State.make [| seed |] in
         let events = interleave rng (gen rng) in
         let oracle =
           match Lin_check.check_outcome spec (history events) with
           | `Linearizable -> Monitor.Accept
           | `Not_linearizable -> Monitor.Reject
           | `Unsupported r -> Monitor.Unsupported r
         in
         (* chunk 1 closes a chunk at every quiescent point, maximally
            exercising the feasible-state propagation *)
         kmon_verdict ~spec ~keyed ~chunk:1 events = oracle
         && kmon_verdict ~spec ~keyed ~chunk:4 events = oracle))

let kmon_props =
  [
    kmon_agrees ~name:"keyed Kmon agrees with the oracle on set histories"
      ~spec:Specs.key_set ~keyed:true ~gen:random_set_ops;
    kmon_agrees ~name:"unkeyed Kmon agrees with the oracle on counter histories"
      ~spec:Specs.counter ~keyed:false ~gen:random_counter_ops;
  ]

let kmon_units =
  let feed_serial k entries =
    List.iteri
      (fun op_index (i, resp) ->
        k.Kmon.feed (Event.call ~tid:0 ~op_index i);
        k.Kmon.feed (Event.return ~tid:0 ~op_index resp))
      entries
  in
  [
    test "kmon: violation across a chunk boundary is caught" (fun () ->
        (* chunk 1: Add(1)=true closes alone; the stale Contains(1)=false
           must be rejected via the propagated feasible state *)
        let k = Kmon.create Specs.key_set ~keyed:true ~chunk:1 ~max_window:64 in
        feed_serial k
          [
            inv_int "Add" 1, Value.bool true;
            inv_int "Contains" 1, Value.bool false;
          ];
        Alcotest.check verdict "rejected" Monitor.Reject (k.Kmon.finalize ());
        Alcotest.(check bool) "two chunks" true (k.Kmon.chunks () >= 1));
    test "kmon: consistent reads across chunk boundaries accepted" (fun () ->
        let k = Kmon.create Specs.key_set ~keyed:true ~chunk:1 ~max_window:64 in
        feed_serial k
          [
            inv_int "Add" 1, Value.bool true;
            inv_int "Contains" 1, Value.bool true;
            inv_int "Remove" 1, Value.bool true;
            inv_int "Contains" 1, Value.bool false;
          ];
        Alcotest.check verdict "accepted" Monitor.Accept (k.Kmon.finalize ()));
    test "kmon: keys are independent" (fun () ->
        (* a violation on key 2 must not be masked by clean key 1 traffic *)
        let k = Kmon.create Specs.key_set ~keyed:true ~chunk:1 ~max_window:64 in
        feed_serial k
          [
            inv_int "Add" 1, Value.bool true;
            inv_int "Contains" 2, Value.bool true;
            inv_int "Contains" 1, Value.bool true;
          ];
        Alcotest.check verdict "rejected" Monitor.Reject (k.Kmon.finalize ()));
    test "kmon: no quiescent point within max_window is Unsupported" (fun () ->
        let k = Kmon.create Specs.counter ~keyed:false ~chunk:2 ~max_window:4 in
        (* five overlapping Incs: call all, then return all — no quiescent
           point until far past the window bound *)
        for i = 0 to 4 do
          k.Kmon.feed (Event.call ~tid:0 ~op_index:i (inv "Inc"))
        done;
        for i = 0 to 4 do
          k.Kmon.feed (Event.return ~tid:0 ~op_index:i Value.unit)
        done;
        (match k.Kmon.finalize () with
         | Monitor.Unsupported _ -> ()
         | v -> Alcotest.failf "expected Unsupported, got %a" (Alcotest.pp verdict) v));
    test "kmon: shed op degrades only its key" (fun () ->
        let k = Kmon.create Specs.key_set ~keyed:true ~chunk:1 ~max_window:64 in
        k.Kmon.shed
          ~call:(Event.call ~tid:1 ~op_index:0 (inv_int "Add" 1))
          ~ret:(Event.return ~tid:1 ~op_index:0 (Value.bool true));
        feed_serial k
          [
            (* key 1 is now amnestied: this inconsistent pair is excused *)
            inv_int "Contains" 1, Value.bool true;
            (* key 2 is not: its violation must still be caught *)
            inv_int "Add" 2, Value.bool true;
            inv_int "Contains" 2, Value.bool false;
          ];
        Alcotest.check verdict "rejected" Monitor.Reject (k.Kmon.finalize ()));
  ]

(* ---------------- windowed GC: memory bound and degradation ---------------- *)

(* a deterministic bounded-occupancy producer/consumer queue stream: the
   live set never exceeds [occupancy], so windowed GC must keep resident
   state small no matter how long the stream runs *)
let bounded_stream ~n ~occupancy =
  let events = ref [] in
  let emit e = events := e :: !events in
  let bag = Queue.create () in
  let next = ref 0 in
  let op = Array.make 2 0 in
  let complete tid i resp =
    let op_index = op.(tid) in
    op.(tid) <- op_index + 1;
    emit (Event.call ~tid ~op_index i);
    emit (Event.return ~tid ~op_index resp)
  in
  for k = 1 to n do
    if Queue.length bag < occupancy && (k mod 2 = 0 || Queue.is_empty bag) then begin
      incr next;
      Queue.add !next bag;
      complete 0 (inv_int "Enqueue" !next) Value.unit
    end
    else complete 1 (inv "TryDequeue") (Value.int (Queue.pop bag))
  done;
  List.rev !events

let gc_units =
  [
    test "stream: long run keeps resident state bounded" (fun () ->
        let s = Monitor.Stream.create_queue ~min_batch:64 () in
        let peak = ref 0 in
        List.iteri
          (fun i ev ->
            Monitor.Stream.feed s ev;
            if i mod 256 = 0 then
              peak := max !peak (Monitor.Stream.resident s))
          (bounded_stream ~n:50_000 ~occupancy:8);
        Alcotest.check verdict "accepted" Monitor.Accept (Monitor.Stream.finalize s);
        Alcotest.(check bool) "many windows" true (Monitor.Stream.windows s > 50);
        (* 50k ops retained in full would be ~50000; windowing keeps the
           tracked set near the window size + live occupancy *)
        Alcotest.(check bool)
          (Printf.sprintf "resident peak %d <= 256" !peak)
          true (!peak <= 256);
        Alcotest.(check bool) "interval-compressed diets" true
          (Monitor.Stream.intervals s <= 8));
    test "stream: no quiescent point within max_window is Unsupported" (fun () ->
        let s = Monitor.Stream.create_queue ~min_batch:4 ~max_window:16 () in
        (* op (1,0) never returns, so no window can ever close *)
        Monitor.Stream.feed s (call 1 0 "TryDequeue" ());
        for i = 0 to 20 do
          Monitor.Stream.feed s (call 0 i "Enqueue" ~arg:(Value.int (i + 1)) ());
          Monitor.Stream.feed s (ret 0 i Value.unit)
        done;
        match Monitor.Stream.verdict_now s with
        | Some (Monitor.Unsupported _) -> ()
        | Some v -> Alcotest.failf "expected Unsupported, got %a" (Alcotest.pp verdict) v
        | None -> Alcotest.fail "window bound not enforced");
    test "stream: shed insert amnesties its retained remove" (fun () ->
        let s = Monitor.Stream.create_queue ~min_batch:1 () in
        Monitor.Stream.shed s
          ~call:(call 0 0 "Enqueue" ~arg:(Value.int 5) ())
          ~ret:(ret 0 0 Value.unit);
        (* the remove of the shed value survived in the stream: accept-lean
           means this must NOT reject *)
        Monitor.Stream.feed s (call 1 0 "TryDequeue" ());
        Monitor.Stream.feed s (ret 1 0 (Value.int 5));
        Alcotest.check verdict "accepted" Monitor.Accept (Monitor.Stream.finalize s);
        Alcotest.(check int) "one shed" 1 (Monitor.Stream.sheds s));
    test "stream: reject is sticky and survives later clean traffic" (fun () ->
        let s = Monitor.Stream.create_queue ~min_batch:1 () in
        let feed_complete i v resp_ins =
          Monitor.Stream.feed s (call 0 i "Enqueue" ~arg:(Value.int v) ());
          Monitor.Stream.feed s (ret 0 i resp_ins)
        in
        feed_complete 0 1 Value.unit;
        feed_complete 1 2 Value.unit;
        (* FIFO inversion *)
        Monitor.Stream.feed s (call 1 0 "TryDequeue" ());
        Monitor.Stream.feed s (ret 1 0 (Value.int 2));
        Monitor.Stream.feed s (call 1 1 "TryDequeue" ());
        Monitor.Stream.feed s (ret 1 1 (Value.int 1));
        Alcotest.(check bool) "decided mid-stream" true
          (Monitor.Stream.verdict_now s = Some Monitor.Reject);
        feed_complete 2 3 Value.unit;
        Alcotest.check verdict "still rejected" Monitor.Reject
          (Monitor.Stream.finalize s));
  ]

(* ---------------- the driver over NDJSON files ---------------- *)

let write_lines lines =
  let path = Filename.temp_file "lineup_test_monitor" ".ndjson" in
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  path

let with_file lines f =
  let path = write_lines lines in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic))

let queue_spec = Spec.Packed Specs.queue

let render_history ?hist events = List.map (Mevent.render ?hist) events

let accepting_events =
  [
    call 0 0 "Enqueue" ~arg:(Value.int 1) (); ret 0 0 Value.unit;
    call 0 1 "Enqueue" ~arg:(Value.int 2) (); ret 0 1 Value.unit;
    call 1 0 "TryDequeue" (); ret 1 0 (Value.int 1);
    call 1 1 "TryDequeue" (); ret 1 1 (Value.int 2);
  ]

let rejecting_events =
  [
    call 0 0 "Enqueue" ~arg:(Value.int 1) (); ret 0 0 Value.unit;
    call 0 1 "Enqueue" ~arg:(Value.int 2) (); ret 0 1 Value.unit;
    call 1 0 "TryDequeue" (); ret 1 0 (Value.int 2);
    call 1 1 "TryDequeue" (); ret 1 1 (Value.int 1);
  ]

let driver_units =
  let opts = { Driver.default_opts with min_batch = 1 } in
  [
    test "driver: accepting stream" (fun () ->
        with_file (render_history accepting_events) (fun ic ->
            let o = Driver.run ~spec:queue_spec ~opts ic in
            Alcotest.check verdict "accept" Monitor.Accept o.Driver.verdict;
            Alcotest.(check int) "ops" 4 o.Driver.ops));
    test "driver: rejecting stream" (fun () ->
        with_file (render_history rejecting_events) (fun ic ->
            let o = Driver.run ~spec:queue_spec ~opts ic in
            Alcotest.check verdict "reject" Monitor.Reject o.Driver.verdict));
    test "driver: malformed line settles Unsupported" (fun () ->
        with_file [ {|{"ev":"call","tid":0|} ] (fun ic ->
            let o = Driver.run ~spec:queue_spec ~opts ic in
            match o.Driver.verdict with
            | Monitor.Unsupported _ -> ()
            | v -> Alcotest.failf "expected Unsupported, got %a" (Alcotest.pp verdict) v));
    test "driver: skippable lines and blanks are transparent" (fun () ->
        let lines =
          ({|{"ev":"scheduler.step","t":0.1}|} :: "" :: render_history accepting_events)
          @ [ {|{"ev":"pool.done"}|} ]
        in
        with_file lines (fun ic ->
            let o = Driver.run ~spec:queue_spec ~opts ic in
            Alcotest.check verdict "accept" Monitor.Accept o.Driver.verdict));
    test "driver: keyed stream shards across domains" (fun () ->
        let events =
          List.concat_map
            (fun k ->
              [
                Event.call ~tid:0 ~op_index:k (inv_int "Add" k);
                Event.return ~tid:0 ~op_index:k (Value.bool true);
              ])
            (List.init 8 (fun k -> k))
        in
        with_file (render_history events) (fun ic ->
            let o =
              Driver.run ~spec:(Spec.Packed Specs.key_set)
                ~opts:{ opts with domains = 2 } ic
            in
            Alcotest.check verdict "accept" Monitor.Accept o.Driver.verdict;
            Alcotest.(check int) "sharded" 2 o.Driver.shards));
    test "replay: groups by hist tag, rejects if any history rejects" (fun () ->
        let lines =
          render_history ~hist:0 accepting_events
          @ render_history ~hist:1 rejecting_events
          @ render_history ~hist:2 accepting_events
        in
        with_file lines (fun ic ->
            let per_hist, o = Driver.replay ~spec:queue_spec ~opts ic in
            Alcotest.(check int) "three histories" 3 (List.length per_hist);
            Alcotest.check verdict "combined" Monitor.Reject o.Driver.verdict;
            Alcotest.check verdict "hist 1" Monitor.Reject
              (List.assoc (Some 1) per_hist);
            Alcotest.check verdict "hist 0" Monitor.Accept
              (List.assoc (Some 0) per_hist)));
    test "follow: reader re-arms across FIFO writer sessions" (fun () ->
        (* Two separate writer sessions on one FIFO: the first closes its
           end (EOF at the reader) after a clean prefix; under --follow the
           monitor re-arms instead of finalizing Accept, so the second
           session's out-of-order dequeues still settle Reject. The second
           session continues the same logical stream — same engine state —
           so it uses fresh op indices and values. *)
        let second_session =
          [
            call 0 2 "Enqueue" ~arg:(Value.int 3) (); ret 0 2 Value.unit;
            call 0 3 "Enqueue" ~arg:(Value.int 4) (); ret 0 3 Value.unit;
            call 1 2 "TryDequeue" (); ret 1 2 (Value.int 4);
            call 1 3 "TryDequeue" (); ret 1 3 (Value.int 3);
          ]
        in
        let path = Filename.temp_file "lineup_test_monitor" ".fifo" in
        Sys.remove path;
        Unix.mkfifo path 0o600;
        Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        @@ fun () ->
        let session lines =
          (* open_out blocks until the reader has the FIFO open *)
          let oc = open_out path in
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            lines;
          close_out oc
        in
        let writer =
          Domain.spawn (fun () ->
              session (render_history accepting_events);
              (* give the reader time to hit EOF and re-arm *)
              Unix.sleepf 0.2;
              session (render_history second_session))
        in
        let ic = open_in path in
        let o =
          Driver.run ~spec:queue_spec
            ~opts:{ Driver.default_opts with min_batch = 1; follow = true }
            ic
        in
        Domain.join writer;
        close_in_noerr ic;
        Alcotest.check verdict "reject from the second session" Monitor.Reject
          o.Driver.verdict);
    test "replay: interleaved hist tags are demultiplexed" (fun () ->
        (* events of two histories arrive interleaved, as a sharded
           checker's trace would record them *)
        let tag h evs = render_history ~hist:h evs in
        let l0 = tag 0 accepting_events and l1 = tag 1 accepting_events in
        let lines = List.concat (List.map2 (fun a b -> [ a; b ]) l0 l1) in
        with_file lines (fun ic ->
            let per_hist, o = Driver.replay ~spec:queue_spec ~opts ic in
            Alcotest.(check int) "two histories" 2 (List.length per_hist);
            Alcotest.check verdict "combined" Monitor.Accept o.Driver.verdict));
  ]

(* ---------------- engine dispatch ---------------- *)

let engine_units =
  [
    test "engine: any registered spec is monitorable" (fun () ->
        List.iter
          (fun name ->
            let spec = Option.get (Specs.find name) in
            let e = Engine.create ~spec ~min_batch:4 ~max_window:1024 in
            Alcotest.check verdict
              (name ^ " empty stream accepts")
              Monitor.Accept (Engine.finalize e))
          Specs.names);
  ]

let tests =
  List.concat
    [
      [ codec_roundtrip ];
      codec_units;
      stream_props;
      kmon_props;
      kmon_units;
      gc_units;
      driver_units;
      engine_units;
      [ QCheck_alcotest.to_alcotest
          (QCheck.Test.make ~name:"driver agrees with the offline checker"
             ~count:60 seed_arb (fun seed ->
               let rng = Random.State.make [| seed |] in
               let events =
                 interleave rng
                   (random_lifo_fifo_ops rng ~insert:"Enqueue" ~remove:"TryDequeue")
               in
               let offline = Monitor.check ~cls:Spec.Queue (history events) in
               with_file (render_history events) (fun ic ->
                   let o =
                     Driver.run ~spec:queue_spec
                       ~opts:{ Driver.default_opts with min_batch = 1 }
                       ic
                   in
                   o.Driver.verdict = offline)));
      ];
    ]
