open Helpers
module Conc = Lineup_conc
open Lineup

let counter1_invs = [ inv "Inc"; inv "Get"; inv_int "Set" 5 ]

let suite =
  [
    test "random_check finds the counter1 bug" (fun () ->
        let report =
          Random_check.run ~stop_at_first:true
            ~rng:(Random.State.make [| 1 |])
            ~invocations:counter1_invs ~rows:2 ~cols:2 ~samples:50 Conc.Counters.buggy_unlocked
        in
        Alcotest.(check bool) "found" true (report.Random_check.failed > 0));
    test "random_check passes the correct counter" (fun () ->
        let report =
          Random_check.run
            ~rng:(Random.State.make [| 2 |])
            ~invocations:counter1_invs ~rows:2 ~cols:2 ~samples:10 Conc.Counters.correct
        in
        Alcotest.(check int) "failures" 0 report.Random_check.failed;
        Alcotest.(check int) "passes" 10 report.Random_check.passed);
    test "random_check is reproducible from the seed" (fun () ->
        let run () =
          let r =
            Random_check.run
              ~rng:(Random.State.make [| 3 |])
              ~invocations:counter1_invs ~rows:2 ~cols:2 ~samples:8 Conc.Counters.buggy_unlocked
          in
          List.map
            (fun (o : Random_check.test_outcome) -> Check.passed o.result)
            r.Random_check.outcomes
        in
        Alcotest.(check (list bool)) "same verdicts" (run ()) (run ()));
    test "random_check stop_at_first stops early" (fun () ->
        let report =
          Random_check.run ~stop_at_first:true
            ~rng:(Random.State.make [| 4 |])
            ~invocations:[ inv "Release" ] ~rows:1 ~cols:2 ~samples:100 Conc.Semaphore_slim.pre
        in
        Alcotest.(check int) "stopped after first failure" 1
          (List.length report.Random_check.outcomes));
    test "test_matrix.random has the requested dimensions" (fun () ->
        let rng = Random.State.make [| 5 |] in
        let m = Test_matrix.random ~rng ~invocations:counter1_invs ~rows:3 ~cols:2 () in
        Alcotest.(check (pair int int)) "dims" (3, 2) (Test_matrix.dims m);
        Alcotest.(check int) "cells" 6 (Test_matrix.num_invocations m));
    test "test_matrix.enumerate counts |I|^(rows*cols)" (fun () ->
        let n =
          Seq.fold_left
            (fun acc _ -> acc + 1)
            0
            (Test_matrix.enumerate ~invocations:[ inv "A"; inv "B" ] ~rows:1 ~cols:2)
        in
        Alcotest.(check int) "4 tests" 4 n;
        let n =
          Seq.fold_left
            (fun acc _ -> acc + 1)
            0
            (Test_matrix.enumerate ~invocations:[ inv "A"; inv "B"; inv "C" ] ~rows:2 ~cols:1)
        in
        Alcotest.(check int) "9 tests" 9 n);
    test "test_matrix.is_prefix" (fun () ->
        let m1 = Test_matrix.make [ [ inv "A" ]; [ inv "B" ] ] in
        let m2 = Test_matrix.make [ [ inv "A"; inv "C" ]; [ inv "B" ]; [ inv "D" ] ] in
        Alcotest.(check bool) "prefix" true (Test_matrix.is_prefix m1 m2);
        Alcotest.(check bool) "not prefix" false (Test_matrix.is_prefix m2 m1));
    test "auto_check finds the lazy bug on a small universe" (fun () ->
        match Auto_check.run ~max_tests:200 Conc.Lazy_init.pre with
        | Auto_check.Failed { test; tests_run; _ } ->
          Alcotest.(check bool) "within budget" true (tests_run <= 200);
          Alcotest.(check bool) "small test" true (Test_matrix.num_invocations test <= 4)
        | Auto_check.Budget_exhausted _ -> Alcotest.fail "expected a failure");
    test "auto_check exhausts budget on a correct implementation" (fun () ->
        match Auto_check.run ~max_tests:10 Conc.Counters.correct with
        | Auto_check.Budget_exhausted { tests_run; _ } ->
          Alcotest.(check int) "ran" 10 tests_run
        | Auto_check.Failed _ -> Alcotest.fail "correct implementation failed");
    test "lemma 8: a failing test still fails as a prefix of a larger test" (fun () ->
        let small = Test_matrix.make [ [ inv "Release" ]; [ inv "Release" ] ] in
        let large =
          Test_matrix.make
            [ [ inv "Release"; inv "CurrentCount" ]; [ inv "Release"; inv "TryWait" ] ]
        in
        Alcotest.(check bool) "prefix" true (Test_matrix.is_prefix small large);
        Alcotest.(check bool) "small fails" false
          (Check.passed (Check.run Conc.Semaphore_slim.pre small));
        Alcotest.(check bool) "large fails too" false
          (Check.passed (Check.run Conc.Semaphore_slim.pre large)));
    test "minimize reduces the Fig. 1 test" (fun () ->
        let big =
          Test_matrix.make
            [
              [ inv_int "Enqueue" 200; inv_int "Enqueue" 400; inv "Count" ];
              [ inv "TryDequeue"; inv "TryDequeue"; inv "IsEmpty" ];
            ]
        in
        let r = Minimize.reduce Conc.Concurrent_queue.pre big in
        Alcotest.(check bool) "still fails" false (Check.passed r.Minimize.check);
        Alcotest.(check bool) "smaller" true
          (Test_matrix.num_invocations r.Minimize.test < Test_matrix.num_invocations big);
        (* the Fig. 1 bug needs one enqueue and one dequeue plus contention *)
        Alcotest.(check bool) "at least 2 invocations" true
          (Test_matrix.num_invocations r.Minimize.test >= 2));
    test "minimize rejects passing tests" (fun () ->
        let passing = Test_matrix.make [ [ inv "Inc" ] ] in
        match Minimize.reduce Conc.Counters.correct passing with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    test "minimized semaphore bug is 1x2" (fun () ->
        let big =
          Test_matrix.make
            [ [ inv "Release"; inv "Release" ]; [ inv "CurrentCount"; inv "Release" ] ]
        in
        let r = Minimize.reduce Conc.Semaphore_slim.pre big in
        let rows, cols = Test_matrix.dims r.Minimize.test in
        Alcotest.(check bool) "tiny" true (rows * cols <= 3 && cols = 2));
  ]

let tests = suite
