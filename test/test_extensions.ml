(* Tests for the features beyond the core algorithm: phase-1 synthesis and
   observation-file caching (§4.1), sequence-based test construction (§4.3),
   parallel RandomCheck (§4.3), iterative context bounding, and the two
   bonus subjects (ReaderWriterLockSlim, the lazy-list set). *)

open Helpers
module Conc = Lineup_conc
module Explore = Lineup_scheduler.Explore
module Rt = Lineup_runtime.Rt
module Var = Lineup_runtime.Shared_var
open Lineup

let with_temp_dir f =
  let dir = Filename.temp_file "lineup" "cache" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let counter_test = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]

let suite =
  [
    test "synthesize returns the phase-1 observation set" (fun () ->
        match Check.synthesize Conc.Counters.correct counter_test with
        | Ok (obs, report) ->
          Alcotest.(check int) "histories" 3 (Observation.num_full obs);
          Alcotest.(check int) "report histories" 3 report.Check.histories
        | Error _ -> Alcotest.fail "expected phase-1 success");
    test "synthesize reports nondeterminism" (fun () ->
        let test = Test_matrix.make [ [ inv "Cancel"; inv "IsCancellationRequested" ] ] in
        match Check.synthesize Conc.Cancellation_token_source.adapter test with
        | Error (Check.Fail (Check.Nondeterministic _), _) -> ()
        | Error _ -> Alcotest.fail "wrong violation"
        | Ok _ -> Alcotest.fail "expected nondeterminism");
    test "run with a supplied observation skips phase 1" (fun () ->
        match Check.synthesize Conc.Counters.correct counter_test with
        | Error _ -> Alcotest.fail "synthesis failed"
        | Ok (obs, _) ->
          let r = Check.run ~observation:obs Conc.Counters.correct counter_test in
          Alcotest.(check bool) "passes" true (Check.passed r);
          Alcotest.(check int) "no phase-1 executions" 0
            r.Check.phase1.Check.stats.Explore.executions);
    test "a mismatched observation produces a violation (regression workflow)" (fun () ->
        (* spec synthesized from the correct counter, implementation is the
           buggy one: phase 2 must fail *)
        match Check.synthesize Conc.Counters.correct counter_test with
        | Error _ -> Alcotest.fail "synthesis failed"
        | Ok (obs, _) ->
          let r = Check.run ~observation:obs Conc.Counters.buggy_unlocked counter_test in
          Alcotest.(check bool) "fails" false (Check.passed r));
    test "obs_cache: second run hits the cache and agrees" (fun () ->
        with_temp_dir (fun dir ->
            let r1 = Obs_cache.check ~dir Conc.Counters.correct counter_test in
            let path = Obs_cache.cache_path ~dir Conc.Counters.correct counter_test in
            Alcotest.(check bool) "cache file written" true (Sys.file_exists path);
            (match Obs_cache.phase1 ~dir Conc.Counters.correct counter_test with
             | Ok (_, hit) -> Alcotest.(check bool) "hit" true hit
             | Error _ -> Alcotest.fail "unexpected phase-1 violation");
            let r2 = Obs_cache.check ~dir Conc.Counters.correct counter_test in
            Alcotest.(check bool) "same verdict" (Check.passed r1) (Check.passed r2);
            Alcotest.(check int) "same spec size" r1.Check.phase1.Check.histories
              r2.Check.phase1.Check.histories));
    test "obs_cache: different tests use different files" (fun () ->
        with_temp_dir (fun dir ->
            let t2 = Test_matrix.make [ [ inv "Get" ] ] in
            let p1 = Obs_cache.cache_path ~dir Conc.Counters.correct counter_test in
            let p2 = Obs_cache.cache_path ~dir Conc.Counters.correct t2 in
            Alcotest.(check bool) "distinct" false (String.equal p1 p2)));
    test "obs_cache: cached spec catches a regression" (fun () ->
        with_temp_dir (fun dir ->
            (* record the spec of the correct queue, then "upgrade" to the
               buggy one under the same adapter name: the cached spec is
               keyed by name+test, so the buggy implementation is checked
               against the recorded correct behavior *)
            let test =
              Test_matrix.make
                [
                  [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ];
                  [ inv "TryDequeue"; inv "TryDequeue" ];
                ]
            in
            ignore (Obs_cache.check ~dir Conc.Concurrent_queue.correct test);
            let obs =
              match Obs_cache.phase1 ~dir Conc.Concurrent_queue.correct test with
              | Ok (obs, true) -> obs
              | _ -> Alcotest.fail "expected a cache hit"
            in
            let r = Check.run ~observation:obs Conc.Concurrent_queue.pre test in
            Alcotest.(check bool) "regression caught" false (Check.passed r)));
    test "obs_cache: a different phase-1 config misses (stale-key regression)" (fun () ->
        with_temp_dir (fun dir ->
            (* a phase-1 config with a tighter step budget can record a
               smaller observation set; reusing the default-config file for
               it would be a stale hit. Under the pre-fingerprint key scheme
               both configs mapped to the same file, so this test failed. *)
            let small_phase1 =
              {
                Check.default_config with
                Check.phase1 = { Explore.serial_config with Explore.max_steps = 123 };
              }
            in
            let p_default = Obs_cache.cache_path ~dir Conc.Counters.correct counter_test in
            let p_small =
              Obs_cache.cache_path ~config:small_phase1 ~dir Conc.Counters.correct counter_test
            in
            Alcotest.(check bool) "distinct cache files" false (String.equal p_default p_small);
            (match Obs_cache.phase1 ~dir Conc.Counters.correct counter_test with
             | Ok (_, hit) -> Alcotest.(check bool) "first run misses" false hit
             | Error _ -> Alcotest.fail "unexpected phase-1 violation");
            match Obs_cache.phase1 ~config:small_phase1 ~dir Conc.Counters.correct counter_test with
            | Ok (_, hit) -> Alcotest.(check bool) "other config misses" false hit
            | Error _ -> Alcotest.fail "unexpected phase-1 violation"));
    test "obs_cache: a file without the embedded stamp is evicted as stale" (fun () ->
        with_temp_dir (fun dir ->
            let m = Lineup_observe.Metrics.create () in
            (match Obs_cache.phase1 ~metrics:m ~dir Conc.Counters.correct counter_test with
             | Ok (obs, _) ->
               (* overwrite the cache file without the version/fingerprint
                  attributes, as a pre-versioned writer would have *)
               let path = Obs_cache.cache_path ~dir Conc.Counters.correct counter_test in
               Observation_file.save ~path obs
             | Error _ -> Alcotest.fail "unexpected phase-1 violation");
            (match Obs_cache.phase1 ~metrics:m ~dir Conc.Counters.correct counter_test with
             | Ok (_, hit) -> Alcotest.(check bool) "stamp mismatch misses" false hit
             | Error _ -> Alcotest.fail "unexpected phase-1 violation");
            Alcotest.(check int) "stale eviction counted" 1
              (Lineup_observe.Metrics.get m "obs_cache.stale");
            match Obs_cache.phase1 ~metrics:m ~dir Conc.Counters.correct counter_test with
            | Ok (_, hit) -> Alcotest.(check bool) "rewritten file hits" true hit
            | Error _ -> Alcotest.fail "unexpected phase-1 violation"));
    test "obs_cache: concurrent writers create the cache dir race-free" (fun () ->
        (* a nested, not-yet-existing directory, populated by four domains
           at once: the old non-recursive Sys.mkdir raised ENOENT on the
           nesting and EEXIST on the race *)
        let base = Filename.temp_file "lineup" "mkdirp" in
        Sys.remove base;
        let dir = Filename.concat (Filename.concat base "a") "b" in
        let tests =
          [|
            Test_matrix.make [ [ inv "Inc" ] ];
            Test_matrix.make [ [ inv "Get" ] ];
            Test_matrix.make [ [ inv "Inc"; inv "Get" ] ];
            Test_matrix.make [ [ inv "Inc" ]; [ inv "Get" ] ];
          |]
        in
        let domains =
          Array.map
            (fun test ->
              Domain.spawn (fun () -> Obs_cache.phase1 ~dir Conc.Counters.correct test))
            tests
        in
        Array.iter
          (fun d ->
            match Domain.join d with
            | Ok (_, hit) -> Alcotest.(check bool) "fresh dir misses" false hit
            | Error _ -> Alcotest.fail "unexpected phase-1 violation")
          domains;
        Alcotest.(check int) "all four files written" 4 (Array.length (Sys.readdir dir));
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir;
        Sys.rmdir (Filename.concat base "a");
        Sys.rmdir base);
    test "minimize also deletes from init and final" (fun () ->
        (* the counter bug needs only the concurrent part; a padded init and
           final must be stripped — the pre-fix minimizer only ever deleted
           from the columns, so the reduced test kept the padding *)
        let padded =
          Test_matrix.make ~init:[ inv "Inc" ] ~final:[ inv "Inc" ]
            [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]
        in
        let r = Minimize.reduce Conc.Counters.buggy_unlocked padded in
        Alcotest.(check bool) "still fails" false (Check.passed r.Minimize.check);
        Alcotest.(check int) "init stripped" 0 (List.length r.Minimize.test.Test_matrix.init);
        Alcotest.(check int) "final stripped" 0 (List.length r.Minimize.test.Test_matrix.final));
    test "random_seqs cells are whole sequences" (fun () ->
        let rng = Random.State.make [| 9 |] in
        let sequences = [ [ inv "A"; inv "B" ]; [ inv "C" ] ] in
        let m = Test_matrix.random_seqs ~rng ~sequences ~rows:2 ~cols:2 () in
        Alcotest.(check int) "cols" 2 (Test_matrix.num_threads m);
        (* each column concatenates two sequences: length 2..4, and every
           A is immediately followed by B *)
        Array.iter
          (fun col ->
            let names = List.map (fun (i : Lineup_history.Invocation.t) -> i.name) col in
            let rec ok = function
              | "A" :: "B" :: rest -> ok rest
              | "C" :: rest -> ok rest
              | [] -> true
              | _ -> false
            in
            Alcotest.(check bool) "well-formed column" true (ok names))
          m.Test_matrix.columns);
    test "run_seqs finds the semaphore bug with release-heavy sequences" (fun () ->
        let report =
          Random_check.run_seqs ~stop_at_first:true
            ~rng:(Random.State.make [| 5 |])
            ~sequences:[ [ inv "Release" ]; [ inv "Release"; inv "CurrentCount" ] ]
            ~rows:1 ~cols:2 ~samples:20 Conc.Semaphore_slim.pre
        in
        Alcotest.(check bool) "found" true (report.Random_check.failed > 0));
    test "run_parallel agrees with the sequential sampler" (fun () ->
        (* domains share nothing; with the same per-domain seeds the merged
           verdict counts must be stable *)
        let run domains =
          let r =
            Random_check.run_parallel ~domains ~seed:3
              ~invocations:[ inv "Inc"; inv "Get" ]
              ~rows:2 ~cols:2 ~samples:6 Conc.Counters.buggy_unlocked
          in
          r.Random_check.passed, r.Random_check.failed
        in
        let p1, f1 = run 2 in
        let p2, f2 = run 2 in
        Alcotest.(check (pair int int)) "reproducible" (p1, f1) (p2, f2);
        Alcotest.(check int) "all sampled" 6 (p1 + f1));
    test "explore_iterative finds the lost update at bound 1" (fun () ->
        let lost = ref false in
        let final = Var.make 0 in
        let setup () =
          Var.poke final 0;
          let v = Var.make 0 in
          let incr_body () =
            let x = Var.read v in
            Var.write v (x + 1);
            Var.poke final (Var.peek v)
          in
          [| incr_body; incr_body |]
        in
        let stats_list, stopped =
          Explore.explore_iterative Explore.default_config ~max_bound:3 ~setup
            ~on_execution:(fun _ ->
              if Var.peek final = 1 then begin
                lost := true;
                `Stop
              end
              else `Continue)
        in
        Alcotest.(check bool) "found" true !lost;
        Alcotest.(check (option int)) "at bound 1" (Some 1) stopped;
        Alcotest.(check int) "two bounds explored" 2 (List.length stats_list));
    test "explore_iterative explores all bounds when nothing stops it" (fun () ->
        let setup () =
          let v = Var.make 0 in
          [| (fun () -> Var.write v 1); (fun () -> ignore (Var.read v)) |]
        in
        let stats_list, stopped =
          Explore.explore_iterative Explore.default_config ~max_bound:2 ~setup
            ~on_execution:(fun _ -> `Continue)
        in
        Alcotest.(check (option int)) "never stopped" None stopped;
        Alcotest.(check int) "three bounds" 3 (List.length stats_list);
        (* higher bounds explore at least as many executions *)
        let execs = List.map (fun (s : Explore.stats) -> s.Explore.executions) stats_list in
        Alcotest.(check bool) "monotone" true (List.sort compare execs = execs));
    (* the two bonus subjects *)
    test "rwlock: correct version passes reader/writer mix" (fun () ->
        let r =
          Check.run Conc.Rw_lock.correct
            (Test_matrix.make
               [ [ inv "EnterRead"; inv "ExitRead" ]; [ inv "EnterWrite"; inv "ExitWrite" ] ])
        in
        Alcotest.(check bool) "passes" true (Check.passed r));
    test "rwlock: writer blocks while a reader holds (stuck history justified)" (fun () ->
        let r =
          Check.run Conc.Rw_lock.correct
            (Test_matrix.make [ [ inv "EnterRead" ]; [ inv "EnterWrite" ] ])
        in
        Alcotest.(check bool) "passes" true (Check.passed r);
        Alcotest.(check bool) "has stuck serial histories" true
          (Observation.num_stuck r.Check.observation > 0));
    test "rwlock: racy reader count caught" (fun () ->
        let r =
          Check.run Conc.Rw_lock.pre
            (Test_matrix.make [ [ inv "EnterRead" ]; [ inv "EnterRead"; inv "CurrentReadCount" ] ])
        in
        match r.Check.verdict with
        | Check.Fail (Check.No_witness _) -> ()
        | _ -> Alcotest.fail "expected a wrong-value violation");
    test "rwlock: exits without holds fail sequentially" (fun () ->
        let seq invs =
          Lineup_runtime.Exec_ctx.reset ();
          Lineup_runtime.Exec_ctx.set_current_tid 0;
          Rt.run_inline (fun () ->
              let inst = Conc.Rw_lock.correct.Adapter.create () in
              List.map inst.Adapter.invoke invs)
        in
        Alcotest.(check (list value)) "exit fail"
          [ Lineup_value.Value.Fail; Lineup_value.Value.Fail ]
          (seq [ inv "ExitRead"; inv "ExitWrite" ]));
    test "lazy list: published algorithm passes an adversarial mix" (fun () ->
        let r =
          Check.run Conc.Lazy_list_set.correct
            (Test_matrix.make ~init:[ inv_int "Add" 10 ]
               [ [ inv_int "Remove" 10 ]; [ inv_int "Add" 15; inv_int "Contains" 15 ] ])
        in
        Alcotest.(check bool) "passes" true (Check.passed r));
    test "lazy list: wait-free contains during removal is linearizable" (fun () ->
        let r =
          Check.run Conc.Lazy_list_set.correct
            (Test_matrix.make ~init:[ inv_int "Add" 10; inv_int "Add" 15 ]
               [ [ inv_int "Remove" 10; inv_int "Remove" 15 ]; [ inv_int "Contains" 15 ] ])
        in
        Alcotest.(check bool) "passes" true (Check.passed r));
    test "lazy list: unmarked removal loses a validated insert" (fun () ->
        let r =
          Check.run Conc.Lazy_list_set.pre
            (Test_matrix.make ~init:[ inv_int "Add" 10 ]
               [ [ inv_int "Remove" 10 ]; [ inv_int "Add" 15; inv_int "Contains" 15 ] ])
        in
        match r.Check.verdict with
        | Check.Fail (Check.No_witness _) -> ()
        | _ -> Alcotest.fail "expected the lost-insert violation");
    test "segment queue: FIFO across segment boundaries" (fun () ->
        let seq invs =
          Lineup_runtime.Exec_ctx.reset ();
          Lineup_runtime.Exec_ctx.set_current_tid 0;
          Rt.run_inline (fun () ->
              let inst = Conc.Segment_queue.adapter.Adapter.create () in
              List.map inst.Adapter.invoke invs)
        in
        let vi = Lineup_value.Value.int and vu = Lineup_value.Value.unit in
        Alcotest.(check (list value)) "five elements through capacity-2 segments"
          [ vu; vu; vu; vi 1; vi 2; vu; vi 3; vi 4; Lineup_value.Value.Fail ]
          (seq
             [
               inv_int "Enqueue" 1; inv_int "Enqueue" 2; inv_int "Enqueue" 3; inv "TryDequeue";
               inv "TryDequeue"; inv_int "Enqueue" 4; inv "TryDequeue"; inv "TryDequeue";
               inv "TryDequeue";
             ]));
    test "segment queue: commit-before-fill mutation is caught" (fun () ->
        (* a mutated enqueue that publishes the committed flag before
           writing the value: a concurrent dequeue can observe slot's stale
           content — the checker must reject the protocol *)
        let broken =
          let module Var = Lineup_runtime.Shared_var in
          let create () =
            let values = Array.init 4 (fun i -> Var.make ~name:(Fmt.str "v%d" i) 0) in
            let committed =
              Array.init 4 (fun i -> Var.make ~volatile:true ~name:(Fmt.str "c%d" i) false)
            in
            let low = Var.make ~volatile:true ~name:"low" 0 in
            let high = Var.make ~volatile:true ~name:"high" 0 in
            let rec enqueue x =
              let i = Var.read high in
              if i >= 4 then failwith "full"
              else if Var.cas high i (i + 1) then begin
                (* BUG: committed before the value is written *)
                Var.write committed.(i) true;
                Var.write values.(i) x
              end
              else (Rt.yield (); enqueue x)
            in
            let rec try_dequeue () =
              let i = Var.read low in
              if i >= Var.read high then Lineup_value.Value.Fail
              else if Var.cas low i (i + 1) then begin
                while not (Var.read committed.(i)) do
                  Rt.yield ()
                done;
                Lineup_value.Value.int (Var.read values.(i))
              end
              else (Rt.yield (); try_dequeue ())
            in
            {
              Adapter.invoke =
                (fun (iv : Lineup_history.Invocation.t) ->
                  match iv.name, iv.arg with
                  | "Enqueue", Lineup_value.Value.Int x ->
                    enqueue x;
                    Lineup_value.Value.unit
                  | "TryDequeue", Lineup_value.Value.Unit -> try_dequeue ()
                  | _ -> assert false);
            }
          in
          Adapter.make ~name:"broken-segment-queue"
            ~universe:[ inv_int "Enqueue" 200; inv "TryDequeue" ]
            create
        in
        let r =
          Check.run broken
            (Test_matrix.make [ [ inv_int "Enqueue" 200 ]; [ inv "TryDequeue" ] ])
        in
        match r.Check.verdict with
        | Check.Fail (Check.No_witness _) -> ()
        | _ -> Alcotest.failf "expected a violation, got %s" (Report.summary r));
    test "lazy list: sequential set semantics" (fun () ->
        let seq invs =
          Lineup_runtime.Exec_ctx.reset ();
          Lineup_runtime.Exec_ctx.set_current_tid 0;
          Rt.run_inline (fun () ->
              let inst = Conc.Lazy_list_set.correct.Adapter.create () in
              List.map inst.Adapter.invoke invs)
        in
        let vb b = Lineup_value.Value.bool b in
        Alcotest.(check (list value)) "semantics"
          [ vb true; vb false; vb true; vb true; vb false; vb false ]
          (seq
             [
               inv_int "Add" 10; inv_int "Add" 10; inv_int "Contains" 10; inv_int "Remove" 10;
               inv_int "Remove" 10; inv_int "Contains" 10;
             ]));
  ]

let tests = suite
