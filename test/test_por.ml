(* Dynamic partial-order reduction.

   The load-bearing property, checked at every level the reduction touches:
   with [por = true] the explorer runs no more (usually far fewer)
   executions, and nothing observable changes — the set of distinct
   histories, the verdict, deadlock/stuck classification, and the [-j]
   byte-identity contract are all exactly as without the reduction. On top
   of that sit the targeted regressions: the sleep set must never prune the
   sole schedule reaching a known bug, serial mode must never be reduced,
   and the hoisted admission filter must skip history construction
   entirely for rejected executions. *)

open Helpers
module Rt = Lineup_runtime.Rt
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Footprint = Lineup_runtime.Footprint
module Exec_ctx = Lineup_runtime.Exec_ctx
module Explore = Lineup_scheduler.Explore
module Metrics = Lineup_observe.Metrics
module Conc = Lineup_conc
open Lineup

let explore_all ?(por = false) config ~setup ~on_execution =
  Explore.explore { config with Explore.por } ~setup ~on_execution ()

let unbounded = { Explore.default_config with preemption_bound = None }

(* ---- footprint conflict semantics ---- *)

let fp_tests =
  let a1 = Footprint.access ~loc:1 ~kind:Exec_ctx.Read in
  let a1w = Footprint.access ~loc:1 ~kind:Exec_ctx.Write in
  let a1r = Footprint.access ~loc:1 ~kind:Exec_ctx.Rmw in
  let a2w = Footprint.access ~loc:2 ~kind:Exec_ctx.Write in
  let chk name expect x y =
    Alcotest.(check bool) name expect (Footprint.conflicts x y);
    Alcotest.(check bool) (name ^ " (sym)") expect (Footprint.conflicts y x)
  in
  test "footprint conflicts: the commutation matrix" (fun () ->
      chk "read/read same loc commute" false a1 a1;
      chk "read/write same loc conflict" true a1 a1w;
      chk "rmw/rmw same loc conflict" true a1r a1r;
      chk "write/write different locs commute" false a1w a2w;
      chk "pure commutes with everything" false Footprint.pure a1w;
      chk "pure commutes with unknown" false Footprint.pure Footprint.unknown;
      chk "pure commutes with events" false Footprint.pure Footprint.event;
      chk "events never commute with events" true Footprint.event Footprint.event;
      chk "events commute with accesses" false Footprint.event a1w;
      chk "unknown conflicts with accesses" true Footprint.unknown a1;
      chk "unknown conflicts with events" true Footprint.unknown Footprint.event;
      chk "unknown conflicts with unknown" true Footprint.unknown Footprint.unknown)

(* ---- explorer level: observable outcomes are preserved ---- *)

(* The classic lost-update race: the reduction must preserve the set of
   reachable final values — both the correct 2 and the racy 1 — even as it
   collapses the execution count. *)
let preserved_results_case ~name ~config =
  test name (fun () ->
      let run ~por =
        let seen = Hashtbl.create 8 in
        let n = ref 0 in
        let v_cell = ref None in
        let stats =
          explore_all ~por config
            ~setup:(fun () ->
              let v = Var.make 0 in
              v_cell := Some v;
              let body () =
                let x = Var.read v in
                Var.write v (x + 1)
              in
              [| body; body |])
            ~on_execution:(fun _ ->
              incr n;
              Hashtbl.replace seen (Var.peek (Option.get !v_cell)) ();
              `Continue)
        in
        let set = Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare in
        set, !n, stats
      in
      let set_off, n_off, _ = run ~por:false in
      let set_on, n_on, stats_on = run ~por:true in
      Alcotest.(check (list int)) "same result set (lost update still found)" set_off set_on;
      Alcotest.(check (list int)) "both outcomes reachable" [ 1; 2 ] set_on;
      Alcotest.(check bool) "no more executions" true (n_on <= n_off);
      Alcotest.(check bool) "exploration complete" true stats_on.Explore.complete)

let deadlock_preserved =
  test "por: lock-order-inversion deadlock is still found" (fun () ->
      let count ~por =
        let deadlocks = ref 0 in
        let n = ref 0 in
        let _ =
          explore_all ~por unbounded
            ~setup:(fun () ->
              let m1 = Mutex_.create ~name:"m1" () in
              let m2 = Mutex_.create ~name:"m2" () in
              [|
                (fun () ->
                  Mutex_.acquire m1;
                  Mutex_.acquire m2;
                  Mutex_.release m2;
                  Mutex_.release m1);
                (fun () ->
                  Mutex_.acquire m2;
                  Mutex_.acquire m1;
                  Mutex_.release m1;
                  Mutex_.release m2);
              |])
            ~on_execution:(fun o ->
              incr n;
              (match o.Explore.exec_end with
               | Explore.Deadlock _ -> incr deadlocks
               | _ -> ());
              `Continue)
        in
        !deadlocks, !n
      in
      let d_off, n_off = count ~por:false in
      let d_on, n_on = count ~por:true in
      Alcotest.(check bool) "deadlock found unreduced" true (d_off > 0);
      Alcotest.(check bool) "deadlock found reduced" true (d_on > 0);
      Alcotest.(check bool) "no more executions" true (n_on <= n_off))

let serial_noop =
  test "por is a no-op in serial mode" (fun () ->
      let run ~por =
        let steps = ref [] in
        let stats =
          explore_all ~por Explore.serial_config
            ~setup:(fun () ->
              let v = Var.make 0 in
              Array.init 2 (fun _ () ->
                  for _ = 1 to 2 do
                    Rt.op_boundary ();
                    Var.write v (Var.read v + 1)
                  done))
            ~on_execution:(fun o ->
              steps := o.Explore.steps :: !steps;
              `Continue)
        in
        List.rev !steps, stats
      in
      let s_off, st_off = run ~por:false in
      let s_on, st_on = run ~por:true in
      Alcotest.(check (list int)) "identical execution sequence" s_off s_on;
      Alcotest.(check int) "identical execution count" st_off.Explore.executions
        st_on.Explore.executions;
      Alcotest.(check int) "nothing slept" 0 st_on.Explore.sleep_set_skips)

(* ---- harness level: the distinct-history set is preserved ---- *)

let histories ?admit ?(por = false) ?(pb = Explore.default_config.Explore.preemption_bound)
    ~adapter ~test () =
  let config = { Explore.default_config with por; preemption_bound = pb } in
  let seen = Hashtbl.create 64 in
  let stats =
    Harness.run_phase ?admit config ~adapter ~test ~on_history:(fun r ->
        Hashtbl.replace seen (History.events r.history, History.is_stuck r.history) ();
        `Continue)
  in
  let set = Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare in
  set, stats

let history_set_case ~name ~adapter ~test:t =
  test name (fun () ->
      let set_off, stats_off = histories ~adapter ~test:t () in
      let set_on, stats_on = histories ~por:true ~adapter ~test:t () in
      Alcotest.(check int) "same distinct-history count" (List.length set_off)
        (List.length set_on);
      Alcotest.(check bool) "same distinct-history set" true (set_off = set_on);
      Alcotest.(check bool) "reduced"
        true
        (stats_on.Explore.executions <= stats_off.Explore.executions);
      Alcotest.(check bool) "something was actually pruned" true
        (stats_on.Explore.sleep_set_skips > 0 || stats_on.Explore.executions < stats_off.Explore.executions))

(* ---- qcheck: random programs, random bounds ---- *)

let por_equivalence_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"random tests x bounds: por preserves verdict and distinct histories"
       ~count:40
       (QCheck.make
          QCheck.Gen.(pair small_signed_int (int_bound 2))
          ~print:(fun (seed, pb) -> Printf.sprintf "seed=%d pb=%d" seed pb))
       (fun (seed, pb) ->
         let rng = Random.State.make [| seed; 23 |] in
         let adapter = Conc.Concurrent_queue.correct in
         let t =
           Test_matrix.random ~rng ~invocations:adapter.Adapter.universe ~rows:2 ~cols:2 ()
         in
         let set_off, stats_off = histories ~pb:(Some pb) ~adapter ~test:t () in
         let set_on, stats_on = histories ~por:true ~pb:(Some pb) ~adapter ~test:t () in
         set_off = set_on && stats_on.Explore.executions <= stats_off.Explore.executions))

(* ---- check level: verdicts, bug reproduction, -j composition ---- *)

let check_verdict_case ~name ~adapter ~test:t ~expect_fail =
  test name (fun () ->
      let run por =
        Check.run ~config:(Check.config_with ~por ()) adapter t
      in
      let r_off = run false in
      let r_on = run true in
      Alcotest.(check bool) "same verdict kind" true
        (Check.passed r_off = Check.passed r_on && Check.failed r_off = Check.failed r_on);
      Alcotest.(check bool) "expected verdict" expect_fail (Check.failed r_on))

(* The Fig. 1-style bug: TryDequeue's timed lock acquisition times out and
   misreports an empty queue. The violating schedule needs the demonic
   timeout branch *and* a specific contention pattern; a sleep set that
   over-prunes around the lock's Rmw footprint would lose it. *)
let timed_lock_not_pruned =
  let t =
    Test_matrix.make ~init:[ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ]
      [ [ inv "TryDequeue" ]; [ inv "TryDequeue" ] ]
  in
  check_verdict_case ~name:"por: the timed-lock bug (Fig. 1) is never slept away"
    ~adapter:Conc.Concurrent_queue.pre ~test:t ~expect_fail:true

let stable_result ~adapter ~test r m =
  Report.check_result_to_string ~adapter ~test r ^ "\n" ^ Metrics.to_json m

let jobs_identical_with_por =
  test "por x -j: verdict, report and metrics identical for j=1 and j=4" (fun () ->
      let adapter = Conc.Counters.correct in
      let t = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ] in
      let with_domains j =
        let config = { (Check.config_with ~por:true ()) with Check.phase2_domains = Some j } in
        let m = Metrics.create () in
        let r = Check.run ~config ~metrics:m adapter t in
        r, stable_result ~adapter ~test:t r m
      in
      let r1, s1 = with_domains 1 in
      let r4, s4 = with_domains 4 in
      Alcotest.(check bool) "both pass" true (Check.passed r1 && Check.passed r4);
      Alcotest.(check string) "byte-identical" s1 s4)

(* ---- the hoisted admission filter ---- *)

let admit_skips_history_building =
  test "admit: rejected executions never reach on_history" (fun () ->
      let adapter = Conc.Counters.correct in
      let t = Test_matrix.make [ [ inv "Inc" ]; [ inv "Inc" ] ] in
      let delivered = ref 0 in
      let stats =
        Harness.run_phase ~admit:(fun _ -> false) Explore.default_config ~adapter ~test:t
          ~on_history:(fun _ ->
            incr delivered;
            `Continue)
      in
      Alcotest.(check int) "no history built" 0 !delivered;
      Alcotest.(check bool) "executions still ran" true (stats.Explore.executions > 0);
      Alcotest.(check int) "every execution counted as a skip" stats.Explore.executions
        stats.Explore.exact_bound_skips)

let iterative_union_under_por =
  test "iterative sweep under por: exact-bound admission discipline holds" (fun () ->
      let setup () =
        let v = Var.make 0 in
        let w = Var.make 0 in
        [|
          (fun () ->
            Var.write v 1;
            ignore (Var.read w));
          (fun () ->
            Var.write w 1;
            ignore (Var.read v));
        |]
      in
      (* Admission discipline: every admitted execution at bound b spent
         exactly b preemptions (nothing above the sweep bound leaks
         through), re-executed lower-bound schedules are skipped rather
         than re-admitted, and the reduced sweep runs no more executions
         than the unreduced one. *)
      let run por =
        let violations = ref 0 in
        let per_bound, _ =
          Explore.explore_iterative
            { Explore.default_config with por }
            ~max_bound:2 ~setup
            ~on_execution:(fun o ->
              if o.Explore.preemptions > 2 then incr violations;
              `Continue)
        in
        !violations, per_bound
      in
      let v_off, bounds_off = run false in
      let v_on, bounds_on = run true in
      Alcotest.(check int) "no over-bound admissions (off)" 0 v_off;
      Alcotest.(check int) "no over-bound admissions (on)" 0 v_on;
      let skips l =
        List.fold_left (fun acc s -> acc + s.Explore.exact_bound_skips) 0 l
      in
      Alcotest.(check bool) "re-executions skipped, not re-admitted (off)" true
        (skips bounds_off > 0);
      Alcotest.(check bool) "re-executions skipped, not re-admitted (on)" true
        (skips bounds_on > 0);
      let execs l = List.fold_left (fun acc s -> acc + s.Explore.executions) 0 l in
      Alcotest.(check bool) "sweep is reduced too" true (execs bounds_on <= execs bounds_off))

let suite =
  [
    fp_tests;
    preserved_results_case ~name:"por: lost-update result set preserved (bounded)"
      ~config:Explore.default_config;
    preserved_results_case ~name:"por: lost-update result set preserved (unbounded)"
      ~config:unbounded;
    deadlock_preserved;
    serial_noop;
    history_set_case ~name:"por: ConcurrentQueue distinct histories preserved"
      ~adapter:Conc.Concurrent_queue.correct
      ~test:
        (Test_matrix.make
           [ [ inv_int "Enqueue" 1; inv "TryDequeue" ]; [ inv_int "Enqueue" 2 ] ]);
    history_set_case ~name:"por: Counter distinct histories preserved"
      ~adapter:Conc.Counters.correct
      ~test:(Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc"; inv "Dec" ] ]);
    history_set_case ~name:"por: MichaelScottQueue (lock-free, yields) histories preserved"
      ~adapter:Conc.Michael_scott_queue.adapter
      ~test:(Test_matrix.make [ [ inv_int "Enqueue" 1 ]; [ inv "TryDequeue" ] ]);
    por_equivalence_prop;
    check_verdict_case ~name:"por: correct SemaphoreSlim still passes"
      ~adapter:Conc.Semaphore_slim.correct
      ~test:(Test_matrix.make [ [ inv "Wait"; inv "Release" ]; [ inv "Wait"; inv "Release" ] ])
      ~expect_fail:false;
    check_verdict_case ~name:"por: unlocked-increment bug still fails"
      ~adapter:Conc.Counters.buggy_unlocked
      ~test:(Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ])
      ~expect_fail:true;
    timed_lock_not_pruned;
    jobs_identical_with_por;
    admit_skips_history_building;
    iterative_union_under_por;
  ]

let tests = suite
