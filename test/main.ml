let () =
  Alcotest.run "lineup"
    [
      "value", Test_value.tests;
      "history", Test_history.tests;
      "serial-history", Test_serial_history.tests;
      "witness", Test_witness.tests;
      "spec", Test_spec.tests;
      "lin-check", Test_lin_check.tests;
      "runtime", Test_runtime.tests;
      "scheduler", Test_scheduler.tests;
      "harness", Test_harness.tests;
      "observation", Test_observation.tests;
      "xml", Test_xml.tests;
      "observation-file", Test_observation_file.tests;
      "check", Test_check.tests;
      "collections", Test_collections.tests;
      "random-auto", Test_random_auto.tests;
      "parallel", Test_parallel.tests;
      "extensions", Test_extensions.tests;
      "frontier", Test_frontier.tests;
      "por", Test_por.tests;
      "observe", Test_observe.tests;
      "checkers", Test_checkers.tests;
      "pipeline", Test_pipeline.tests;
      "tso", Test_tso.tests;
      "memory", Test_memory.tests;
      "cross-validation", Test_crossval.tests;
      "membership", Test_membership.tests;
      "shard", Test_shard.tests;
      "monitor", Test_monitor.tests;
    ]
