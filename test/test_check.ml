open Helpers
module Value = Lineup_value.Value
module History = Lineup_history.History
module Lin_check = Lineup_spec.Lin_check
module Specs = Lineup_spec.Specs
module Conc = Lineup_conc
open Lineup

let run ?config adapter cols = Check.run ?config adapter (Test_matrix.make cols)

let expect_pass name r =
  if not (Check.passed r) then
    Alcotest.failf "%s: expected PASS, got %s" name (Report.summary r)

let expect_fail name r =
  if Check.passed r then Alcotest.failf "%s: expected FAIL, got PASS" name

let suite =
  [
    test "correct counter passes" (fun () ->
        expect_pass "counter"
          (run Conc.Counters.correct [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]));
    test "counter1 fails with a non-witnessed history (§2.2.1)" (fun () ->
        let r = run Conc.Counters.buggy_unlocked [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ] in
        match r.Check.verdict with
        | Check.Fail (Check.No_witness h) ->
          (* cross-validate with the explicit-spec checker: the violating
             history must also be refuted by the counter specification *)
          Alcotest.(check bool) "WGL agrees" false (Lin_check.check Specs.counter h)
        | _ -> Alcotest.failf "unexpected verdict: %s" (Report.summary r));
    test "counter2 passes the two-phase check (its blocking is serial too)" (fun () ->
        (* §2.2.2: the synthesized spec itself blocks — Line-Up cannot
           refute Counter2; only a manual spec can (test_lin_check) *)
        expect_pass "counter2"
          (run Conc.Counters.buggy_stuck [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]));
    test "spec-backed queue passes with blocking Take" (fun () ->
        let adapter = Conc.Spec_impl.adapter Specs.queue in
        expect_pass "queue"
          (run adapter [ [ inv_int "Enqueue" 1; inv "Take" ]; [ inv "Take"; inv_int "Enqueue" 2 ] ]));
    test "spec-backed semaphore passes" (fun () ->
        let adapter = Conc.Spec_impl.adapter (Specs.semaphore ~initial:0) in
        expect_pass "semaphore"
          (run adapter [ [ inv "Wait" ]; [ inv "Release"; inv "TryWait" ] ]));
    test "fig. 1 queue bug caught" (fun () ->
        let r =
          run Conc.Concurrent_queue.pre
            [
              [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ];
              [ inv "TryDequeue"; inv "TryDequeue" ];
            ]
        in
        match r.Check.verdict with
        | Check.Fail (Check.No_witness h) ->
          (* the violating history shows a TryDequeue failing although the
             queue was provably non-empty; the explicit queue spec agrees *)
          Alcotest.(check bool) "WGL agrees" false (Lin_check.check Specs.queue h)
        | _ -> Alcotest.failf "unexpected verdict: %s" (Report.summary r));
    test "generalized vs classic: MRE lost signal (§5.5)" (fun () ->
        let cols = [ [ inv "Wait" ]; [ inv "Set" ] ] in
        let generalized = run Conc.Manual_reset_event.lost_signal cols in
        (match generalized.Check.verdict with
         | Check.Fail (Check.Stuck_unjustified _) -> ()
         | _ -> Alcotest.failf "expected stuck violation, got %s" (Report.summary generalized));
        let classic =
          run ~config:(Check.config_with ~classic_only:true ()) Conc.Manual_reset_event.lost_signal
            cols
        in
        expect_pass "classic misses the blocking bug" classic);
    test "phase-1 nondeterminism: CancellationTokenSource" (fun () ->
        let r =
          run Conc.Cancellation_token_source.adapter
            [ [ inv "Cancel" ]; [ inv "IsCancellationRequested" ] ]
        in
        match r.Check.verdict with
        | Check.Fail (Check.Nondeterministic (s1, s2)) ->
          Alcotest.(check bool) "distinct" false (Lineup_history.Serial_history.equal s1 s2);
          Alcotest.(check (option Alcotest.reject)) "phase 2 skipped" None
            (Option.map ignore r.Check.phase2)
        | _ -> Alcotest.failf "expected nondeterminism, got %s" (Report.summary r));
    test "barrier: nonlinearizable by absence of full serial histories" (fun () ->
        let r = run Conc.Barrier.adapter [ [ inv "SignalAndWait" ]; [ inv "SignalAndWait" ] ] in
        (match r.Check.verdict with
         | Check.Fail (Check.No_witness _) -> ()
         | _ -> Alcotest.failf "expected no-witness, got %s" (Report.summary r));
        (* phase 1 must have recorded only stuck serial histories *)
        Alcotest.(check int) "no full serial histories" 0
          (Observation.num_full r.Check.observation);
        Alcotest.(check bool) "stuck histories exist" true
          (Observation.num_stuck r.Check.observation > 0));
    test "phase-1 history count: 1x2 with two ops = 2 orders" (fun () ->
        let r = run Conc.Counters.correct [ [ inv "Inc" ]; [ inv "Get" ] ] in
        Alcotest.(check int) "histories" 2 r.Check.phase1.Check.histories);
    test "phase-2 completeness: violating histories are real (cross-validated)" (fun () ->
        (* every violation Line-Up reports on the buggy semaphore must be
           refuted by the explicit semaphore spec too — Theorem 5 in
           practice *)
        let r = run Conc.Semaphore_slim.pre [ [ inv "Release" ]; [ inv "Release" ] ] in
        match r.Check.verdict with
        | Check.Fail (Check.No_witness h) ->
          Alcotest.(check bool) "spec agrees" false
            (Lin_check.check (Specs.semaphore ~initial:0) h)
        | _ -> Alcotest.failf "unexpected verdict: %s" (Report.summary r));
    test "exception in an operation is reported as Thread_exception" (fun () ->
        let adapter =
          Adapter.make ~name:"thrower" ~universe:[ inv "Boom" ] (fun () ->
              { Adapter.invoke = (fun _ -> failwith "kaboom") })
        in
        let r = run adapter [ [ inv "Boom" ] ] in
        match r.Check.verdict with
        | Check.Fail (Check.Thread_exception _) -> ()
        | _ -> Alcotest.failf "expected exception report, got %s" (Report.summary r));
    test "config_with applies preemption bound and caps" (fun () ->
        let config = Check.config_with ~preemption_bound:(Some 0) ~max_executions:(Some 5) () in
        let r =
          run ~config Conc.Counters.correct [ [ inv "Inc"; inv "Inc" ]; [ inv "Inc"; inv "Get" ] ]
        in
        match r.Check.phase2 with
        | Some p2 ->
          Alcotest.(check bool) "capped" true (p2.Check.stats.Lineup_scheduler.Explore.executions <= 5)
        | None -> Alcotest.fail "phase 2 missing");
    test "verdict summary strings" (fun () ->
        let r = run Conc.Counters.correct [ [ inv "Inc" ] ] in
        Alcotest.(check bool) "pass prefix" true
          (String.length (Report.summary r) >= 4 && String.sub (Report.summary r) 0 4 = "PASS"));
    test "bag nondeterminism is flagged (root cause H)" (fun () ->
        let r =
          run Conc.Concurrent_bag.adapter
            [ [ inv_int "Add" 10; inv_int "Add" 20 ]; [ inv "TryTake" ] ]
        in
        expect_fail "bag" r);
    test "segmented blocking collection Count anomaly (root cause I)" (fun () ->
        let r =
          run Conc.Blocking_collection.segmented
            [ [ inv_int "Add" 200; inv_int "Add" 400 ]; [ inv "Count" ] ]
        in
        expect_fail "count" r);
    test "fifo blocking collection passes the same test" (fun () ->
        let r =
          run Conc.Blocking_collection.fifo
            [ [ inv_int "Add" 200; inv_int "Add" 400 ]; [ inv "Count" ] ]
        in
        expect_pass "fifo" r);
    test "michael-scott queue passes a mixed test" (fun () ->
        let r =
          run Conc.Michael_scott_queue.adapter
            [ [ inv_int "Enqueue" 200; inv "TryDequeue" ]; [ inv_int "Enqueue" 400; inv "TryPeek" ] ]
        in
        expect_pass "msq" r);
  ]

let tests = suite
