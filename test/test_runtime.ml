open Helpers
module Rt = Lineup_runtime.Rt
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Condvar = Lineup_runtime.Condvar
module Exec_ctx = Lineup_runtime.Exec_ctx
module Explore = Lineup_scheduler.Explore

let explore_all config ~setup ~on_execution = Explore.explore config ~setup ~on_execution ()


(* Run a single-threaded program under the inline handler. *)
let inline = Rt.run_inline

let suite =
  [
    test "var read/write" (fun () ->
        inline (fun () ->
            let v = Var.make 1 in
            Alcotest.(check int) "initial" 1 (Var.read v);
            Var.write v 5;
            Alcotest.(check int) "written" 5 (Var.read v)));
    test "var cas success and failure" (fun () ->
        inline (fun () ->
            let v = Var.make 1 in
            Alcotest.(check bool) "cas ok" true (Var.cas v 1 2);
            Alcotest.(check bool) "cas stale" false (Var.cas v 1 3);
            Alcotest.(check int) "value" 2 (Var.read v)));
    test "var fetch_and_add" (fun () ->
        inline (fun () ->
            let v = Var.make 10 in
            Alcotest.(check int) "prev" 10 (Var.fetch_and_add v 5);
            Alcotest.(check int) "now" 15 (Var.read v)));
    test "var exchange" (fun () ->
        inline (fun () ->
            let v = Var.make "a" in
            Alcotest.(check string) "prev" "a" (Var.exchange v "b");
            Alcotest.(check string) "now" "b" (Var.read v)));
    test "var update" (fun () ->
        inline (fun () ->
            let v = Var.make 3 in
            Alcotest.(check int) "new" 6 (Var.update v (fun x -> x * 2))));
    test "peek/poke do not schedule" (fun () ->
        (* peek/poke are usable outside any handler *)
        let v = Var.make 1 in
        Var.poke v 9;
        Alcotest.(check int) "poked" 9 (Var.peek v));
    test "mutex acquire/release" (fun () ->
        inline (fun () ->
            Exec_ctx.set_current_tid 0;
            let m = Mutex_.create () in
            Alcotest.(check (option int)) "free" None (Mutex_.holder m);
            Mutex_.acquire m;
            Alcotest.(check (option int)) "held" (Some 0) (Mutex_.holder m);
            Mutex_.release m;
            Alcotest.(check (option int)) "free again" None (Mutex_.holder m)));
    test "mutex release by non-holder rejected" (fun () ->
        inline (fun () ->
            Exec_ctx.set_current_tid 0;
            let m = Mutex_.create () in
            Mutex_.acquire m;
            Exec_ctx.set_current_tid 1;
            (match Mutex_.release m with
             | exception Invalid_argument _ -> ()
             | () -> Alcotest.fail "expected rejection");
            Exec_ctx.set_current_tid 0;
            Mutex_.release m));
    test "mutex release when free rejected" (fun () ->
        inline (fun () ->
            let m = Mutex_.create () in
            match Mutex_.release m with
            | exception Invalid_argument _ -> ()
            | () -> Alcotest.fail "expected rejection"));
    test "try_acquire" (fun () ->
        inline (fun () ->
            Exec_ctx.set_current_tid 0;
            let m = Mutex_.create () in
            Alcotest.(check bool) "take" true (Mutex_.try_acquire m);
            Exec_ctx.set_current_tid 1;
            Alcotest.(check bool) "busy" false (Mutex_.try_acquire m)));
    test "with_lock releases on exception" (fun () ->
        inline (fun () ->
            Exec_ctx.set_current_tid 0;
            let m = Mutex_.create () in
            (match Mutex_.with_lock m (fun () -> failwith "boom") with
             | exception Failure _ -> ()
             | () -> Alcotest.fail "expected exception");
            Alcotest.(check (option int)) "released" None (Mutex_.holder m)));
    test "run_inline services choose with 0" (fun () ->
        Alcotest.(check int) "choice" 0 (inline (fun () -> Rt.choose 5)));
    test "run_inline fails on false block" (fun () ->
        match inline (fun () -> Rt.block ~wake:(fun () -> false) "never") with
        | exception Failure _ -> ()
        | () -> Alcotest.fail "expected failure");
    test "block with true predicate is a no-op" (fun () ->
        inline (fun () -> Rt.block ~wake:(fun () -> true) "already"));
    test "exec_ctx loc ids are sequential after reset" (fun () ->
        Exec_ctx.reset ();
        Alcotest.(check int) "0" 0 (Exec_ctx.fresh_loc ());
        Alcotest.(check int) "1" 1 (Exec_ctx.fresh_loc ());
        Exec_ctx.reset ();
        Alcotest.(check int) "0 again" 0 (Exec_ctx.fresh_loc ()));
    test "exec_ctx logging gate" (fun () ->
        Exec_ctx.reset ();
        Exec_ctx.set_logging false;
        Exec_ctx.log (Exec_ctx.Op_start { tid = 0; op_index = 0 });
        Alcotest.(check int) "off" 0 (List.length (Exec_ctx.current_log ()));
        Exec_ctx.set_logging true;
        Exec_ctx.log (Exec_ctx.Op_start { tid = 0; op_index = 0 });
        Alcotest.(check int) "on" 1 (List.length (Exec_ctx.current_log ()));
        Exec_ctx.set_logging false);
    test "condvar: pulse before wait is lost (monitor semantics)" (fun () ->
        (* run under the explorer: T0 pulses then T1 waits forever *)
        let deadlocks = ref 0 in
        let stats =
          explore_all
            { Explore.default_config with max_executions = Some 100 }
            ~setup:(fun () ->
              let m = Mutex_.create () in
              let cv = Condvar.create () in
              [|
                (fun () -> Mutex_.with_lock m (fun () -> Condvar.pulse_all ~m cv));
                (fun () ->
                  Mutex_.acquire m;
                  Condvar.wait cv m;
                  Mutex_.release m);
              |])
            ~on_execution:(fun o ->
              (match o.Explore.exec_end with
               | Explore.Deadlock _ -> incr deadlocks
               | _ -> ());
              `Continue)
        in
        Alcotest.(check bool) "some execution loses the wakeup" true (!deadlocks > 0);
        Alcotest.(check bool) "ran" true (stats.Explore.executions > 0));
    test "condvar: wait before pulse is woken" (fun () ->
        (* waiter first, then pulse: no execution may deadlock when the
           waiter provably registers first (single schedule: forced by
           making the pulser block on the waiter's registration) *)
        let deadlocks = ref 0 in
        let _ =
          explore_all
            { Explore.default_config with max_executions = Some 200 }
            ~setup:(fun () ->
              let m = Mutex_.create () in
              let cv = Condvar.create () in
              let registered = Var.make ~name:"registered" false in
              [|
                (fun () ->
                  Rt.block ~wake:(fun () -> Var.peek registered) "waiter registered";
                  Mutex_.with_lock m (fun () -> Condvar.pulse_all ~m cv));
                (fun () ->
                  Mutex_.acquire m;
                  Var.write registered true;
                  Condvar.wait cv m;
                  Mutex_.release m);
              |])
            ~on_execution:(fun o ->
              (match o.Explore.exec_end with
               | Explore.Deadlock _ -> incr deadlocks
               | _ -> ());
              `Continue)
        in
        Alcotest.(check int) "no lost wakeup" 0 !deadlocks);
    test "condvar: pulse wakes exactly one waiter" (fun () ->
        (* two waiters, one pulse: exactly one execution outcome class —
           one waiter completes, one deadlocks *)
        let saw_partial = ref false in
        let _ =
          explore_all
            { Explore.default_config with max_executions = Some 200 }
            ~setup:(fun () ->
              let m = Mutex_.create () in
              let cv = Condvar.create () in
              let registered = Var.make ~name:"count" 0 in
              [|
                (fun () ->
                  Rt.block ~wake:(fun () -> Var.peek registered = 2) "both registered";
                  Mutex_.with_lock m (fun () -> Condvar.pulse ~m cv));
                (fun () ->
                  Mutex_.acquire m;
                  Var.write registered (Var.read registered + 1);
                  Condvar.wait cv m;
                  Mutex_.release m);
                (fun () ->
                  Mutex_.acquire m;
                  Var.write registered (Var.read registered + 1);
                  Condvar.wait cv m;
                  Mutex_.release m);
              |])
            ~on_execution:(fun o ->
              (match o.Explore.exec_end with
               | Explore.Deadlock [ _ ] -> saw_partial := true
               | _ -> ());
              `Continue)
        in
        Alcotest.(check bool) "one waiter left blocked" true !saw_partial);
    test "condvar: pulse without the monitor is rejected" (fun () ->
        inline (fun () ->
            Exec_ctx.set_current_tid 0;
            let m = Mutex_.create () in
            let cv = Condvar.create () in
            match Condvar.pulse_all ~m cv with
            | exception Invalid_argument _ -> ()
            | () -> Alcotest.fail "expected rejection"));
  ]

let tests = suite
