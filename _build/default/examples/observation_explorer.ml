(* The observation file of Fig. 7.

   The paper's 2x2 test on a blocking FIFO:
     Thread A: Add(200); Add(400)    Thread B: Take; TryTake
   Phase 1 records every serial history of the test — including the stuck
   one where Take runs first on the empty collection and blocks — grouped
   into <observation> sections by per-thread operation sequences.

   Run: dune exec examples/observation_explorer.exe *)

module Conc = Lineup_conc
module Invocation = Lineup_history.Invocation
module Value = Lineup_value.Value
open Lineup

let inv_int name n = Invocation.make ~arg:(Value.int n) name
let inv name = Invocation.make name

let test =
  Test_matrix.make
    [ [ inv_int "Add" 200; inv_int "Add" 400 ]; [ inv "Take"; inv "TryTake" ] ]

let () =
  let adapter = Conc.Blocking_collection.fifo in
  let result = Check.run adapter test in
  Fmt.pr "Verdict: %s@.@." (Report.summary result);
  let obs = result.Check.observation in
  Fmt.pr "Phase 1 recorded %d full and %d stuck serial histories.@.@."
    (Observation.num_full obs) (Observation.num_stuck obs);
  Fmt.pr "Observation file (Fig. 7 format):@.@.%s@." (Observation_file.to_string obs);
  (* Round-trip through the parser, as a regression-test workflow would. *)
  let histories = Observation_file.of_string (Observation_file.to_string obs) in
  Fmt.pr "Parsed back %d serial histories from the file.@." (List.length histories)
