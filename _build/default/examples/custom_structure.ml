(* Checking your own data structure: a bounded ring buffer.

   The scenario the paper's introduction motivates: "a growing number of
   programmers will develop concurrent components that are tailored to
   their applications" — components that ship without a formal spec.
   Line-Up needs none.

   We build a fixed-capacity ring buffer protected by a lock, with one
   "optimization": [Size] reads the two cursors without the lock, one after
   the other. Reading two related cells non-atomically is exactly the kind
   of plausible-looking shortcut that breaks linearizability — Line-Up
   produces the counterexample, and the fixed version passes.

   Run: dune exec examples/custom_structure.exe *)

module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
open Lineup

let capacity = 3

let make ~atomic_size () =
  let lock = Mutex_.create () in
  let slots = Array.init capacity (fun i -> Var.make ~name:(Fmt.str "slot%d" i) 0) in
  let head = Var.make ~name:"head" 0 in
  (* next slot to read *)
  let tail = Var.make ~name:"tail" 0 in
  (* next slot to write *)
  let invoke (i : Invocation.t) =
    match i.Invocation.name, i.Invocation.arg with
    | "TryPut", Value.Int x ->
      Mutex_.with_lock lock (fun () ->
          let h = Var.read head and t = Var.read tail in
          if t - h >= capacity then Value.bool false
          else begin
            Var.write slots.(t mod capacity) x;
            Var.write tail (t + 1);
            Value.bool true
          end)
    | "TryGet", Value.Unit ->
      Mutex_.with_lock lock (fun () ->
          let h = Var.read head and t = Var.read tail in
          if h = t then Value.Fail
          else begin
            let x = Var.read slots.(h mod capacity) in
            Var.write head (h + 1);
            Value.int x
          end)
    | "Size", Value.Unit ->
      if atomic_size then Mutex_.with_lock lock (fun () -> Value.int (Var.read tail - Var.read head))
      else begin
        (* the shortcut: two unlocked reads — a producer or consumer can
           slip between them *)
        let h = Var.read head in
        let t = Var.read tail in
        Value.int (t - h)
      end
    | _ -> Fmt.invalid_arg "ring: unknown operation %s" i.Invocation.name
  in
  { Adapter.invoke }

let adapter ~atomic_size name =
  Adapter.make ~name
    ~universe:
      [
        Invocation.make ~arg:(Value.int 1) "TryPut";
        Invocation.make ~arg:(Value.int 2) "TryPut";
        Invocation.make "TryGet";
        Invocation.make "Size";
      ]
    (make ~atomic_size)

let () =
  let buggy = adapter ~atomic_size:false "ring buffer (racy Size)" in
  (* Seed one element so Size has something to misreport (the §4.3 init
     sequence), then hunt with RandomCheck. *)
  let init = [ Invocation.make ~arg:(Value.int 9) "TryPut" ] in
  Fmt.pr "Hunting with RandomCheck (40 random 2x2 tests, pre-seeded buffer)...@.@.";
  let report =
    Random_check.run ~stop_at_first:true ~init
      ~rng:(Random.State.make [| 2025 |])
      ~invocations:buggy.Adapter.universe ~rows:2 ~cols:2 ~samples:40 buggy
  in
  (match report.Random_check.first_failure with
   | Some o ->
     Fmt.pr "RandomCheck found it after %d tests:@.%s@.@."
       (List.length report.Random_check.outcomes)
       (Report.check_result_to_string ~adapter:buggy ~test:o.Random_check.test
          o.Random_check.result)
   | None -> Fmt.pr "RandomCheck missed it in this sample — as §4.3 warns it may.@.@.");
  (* The targeted scenario: Size must overlap a TryGet/TryPut pair so its
     two unlocked reads straddle both updates, observing a size that never
     existed. *)
  let targeted =
    Test_matrix.make ~init
      [
        [ Invocation.make "Size" ];
        [ Invocation.make "TryGet"; Invocation.make ~arg:(Value.int 2) "TryPut" ];
      ]
  in
  Fmt.pr "Targeted test:@.@.";
  let result = Check.run buggy targeted in
  Fmt.pr "%s@.@." (Report.check_result_to_string ~adapter:buggy ~test:targeted result);
  let fixed = adapter ~atomic_size:true "ring buffer (locked Size)" in
  let result = Check.run fixed targeted in
  Fmt.pr "Fixed version on the same test: %s@." (Report.summary result);
  let report =
    Random_check.run ~init
      ~rng:(Random.State.make [| 2025 |])
      ~invocations:fixed.Adapter.universe ~rows:2 ~cols:2 ~samples:40 fixed
  in
  Fmt.pr "Fixed version under RandomCheck: %d/40 random tests passed@."
    report.Random_check.passed
