(* Fig. 9 of the paper: erroneous blocking in ManualResetEvent, the bug that
   motivates generalized linearizability (stuck histories, Definition 2).

   "Irrespective of the interleaving between the two threads, one expects
   Thread 1 to be eventually unblocked."

   We run both seeded defects of our MRE reimplementation:
   - the lost-signal variant: a Wait can block forever although Set
     returned — caught only by the stuck-history check (classic
     linearizability passes);
   - the paper's literal CAS typo ([newstate = f(state)] instead of
     [f(localstate)]): a Set/Reset racing with the waiter registration
     corrupts the state word, observable as IsSet = true after a completed
     Reset.

   Run: dune exec examples/fig9_mre.exe *)

module Conc = Lineup_conc
module Invocation = Lineup_history.Invocation
open Lineup

let inv name = Invocation.make name

let () =
  (* Part 1: the lost signal. Thread 1: Wait. Thread 2: Set. *)
  let adapter = Conc.Manual_reset_event.lost_signal in
  let test = Test_matrix.make [ [ inv "Wait" ]; [ inv "Set" ] ] in
  Fmt.pr "=== lost-signal variant, test {Wait / Set} ===@.@.";
  let generalized = Check.run adapter test in
  Fmt.pr "%s@.@." (Report.check_result_to_string ~adapter ~test generalized);
  (* The same check restricted to classic linearizability (Definition 1)
     passes: returned values are all consistent; only the blocking is
     wrong. This is §5.5's point — 5 of the paper's 13 classes could not
     have been tested without stuck histories. *)
  let classic =
    Check.run ~config:(Check.config_with ~classic_only:true ()) adapter test
  in
  Fmt.pr "Classic linearizability (Definition 1 only): %s@.@." (Report.summary classic);

  (* Part 2: the CAS typo, Fig. 9's test extended with an observer. *)
  let adapter = Conc.Manual_reset_event.cas_typo in
  let test =
    Test_matrix.make [ [ inv "Wait"; inv "IsSet" ]; [ inv "Set"; inv "Reset" ] ]
  in
  Fmt.pr "=== CAS-typo variant, test {Wait;IsSet / Set;Reset} ===@.@.";
  let result = Check.run adapter test in
  Fmt.pr "%s@.@." (Report.check_result_to_string ~adapter ~test result);

  (* The corrected implementation passes both tests, including the paper's
     original Fig. 9 matrix. *)
  let adapter = Conc.Manual_reset_event.correct in
  let fig9 = Test_matrix.make [ [ inv "Wait" ]; [ inv "Set"; inv "Reset"; inv "Set" ] ] in
  let r = Check.run adapter fig9 in
  Fmt.pr "Correct MRE on the original Fig. 9 matrix {Wait / Set;Reset;Set}: %s@."
    (Report.summary r)
