(* Fig. 1 of the paper: the ConcurrentQueue bug from the .NET 4.0 CTP.

   A TryDequeue whose lock acquisition accidentally carries a timeout can
   report "empty" on a provably non-empty queue. Line-Up finds the violating
   scenario automatically; the scenario makes sense without knowing any
   implementation detail — the paper's argument for the tool's reports.

   Run: dune exec examples/fig1_queue.exe *)

module Conc = Lineup_conc
module Invocation = Lineup_history.Invocation
module Value = Lineup_value.Value
open Lineup

let inv_int name n = Invocation.make ~arg:(Value.int n) name
let inv name = Invocation.make name

(* Thread 1: Add(200); Add(400).  Thread 2: TryTake; TryTake. *)
let test =
  Test_matrix.make
    [
      [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ];
      [ inv "TryDequeue"; inv "TryDequeue" ];
    ]

let () =
  Fmt.pr "Fig. 1 scenario on the CTP queue (timed lock in TryDequeue):@.@.";
  let adapter = Conc.Concurrent_queue.pre in
  let result = Check.run adapter test in
  Fmt.pr "%s@.@." (Report.check_result_to_string ~adapter ~test result);
  (* Automatically reduce the failing test, as §5.1 does by hand. *)
  let reduced = Minimize.reduce adapter test in
  Fmt.pr "Minimal failing test (%d checks spent):@.%a@.@." reduced.Minimize.checks_spent
    Test_matrix.pp reduced.Minimize.test;
  (* The Beta2 queue (plain lock) passes the same test. *)
  let fixed = Conc.Concurrent_queue.correct in
  let result = Check.run fixed test in
  Fmt.pr "Fixed queue: %s@." (Report.summary result)
