(* Quickstart: check a tiny concurrent component with Line-Up.

   We implement a counter twice — once correctly (all operations under a
   lock) and once with the unlocked increment of the paper's §2.2.1 — wrap
   each in an adapter, and let Line-Up decide.

   Run: dune exec examples/quickstart.exe *)

module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
open Lineup

(* 1. Write the component against the instrumented runtime: Var for shared
   cells, Mutex_ for locks. Every access is a point where the model checker
   may preempt the thread. *)
let make_counter ~locked =
  let lock = Mutex_.create () in
  let count = Var.make ~name:"count" 0 in
  let invoke (i : Invocation.t) =
    match i.Invocation.name with
    | "Inc" ->
      if locked then Mutex_.with_lock lock (fun () -> Var.write count (Var.read count + 1))
      else Var.write count (Var.read count + 1);
      Value.unit
    | "Get" -> Mutex_.with_lock lock (fun () -> Value.int (Var.read count))
    | name -> Fmt.invalid_arg "counter: unknown operation %s" name
  in
  { Adapter.invoke }

(* 2. Pack it in an adapter: a name, the invocation universe, and a factory
   producing a fresh instance per explored execution. *)
let adapter ~locked name =
  Adapter.make ~name
    ~universe:[ Invocation.make "Inc"; Invocation.make "Get" ]
    (fun () -> make_counter ~locked)

(* 3. Pick a finite test: each column is one thread's operation sequence.
   This is the only manual step (paper, §1.1). *)
let test =
  let inc = Invocation.make "Inc" and get = Invocation.make "Get" in
  Test_matrix.make [ [ inc; get ]; [ inc ] ]

let run name adapter =
  Fmt.pr "--- checking %s ---@." name;
  let result = Check.run adapter test in
  Fmt.pr "%s@." (Report.check_result_to_string ~adapter ~test result);
  Fmt.pr "@."

let () =
  run "a correct counter" (adapter ~locked:true "counter (locked)");
  run "the buggy counter of §2.2.1" (adapter ~locked:false "counter (unlocked inc)")
