examples/observation_explorer.ml: Check Fmt Lineup Lineup_conc Lineup_history Lineup_value List Observation Observation_file Report Test_matrix
