examples/custom_structure.ml: Adapter Array Check Fmt Lineup Lineup_history Lineup_runtime Lineup_value List Random Random_check Report Test_matrix
