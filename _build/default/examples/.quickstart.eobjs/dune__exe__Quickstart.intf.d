examples/quickstart.mli:
