examples/regression_workflow.ml: Array Check Filename Fmt Lineup Lineup_conc Lineup_history Lineup_value Obs_cache Observation Report Sys Test_matrix
