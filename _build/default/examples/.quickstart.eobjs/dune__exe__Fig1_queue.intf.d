examples/fig1_queue.mli:
