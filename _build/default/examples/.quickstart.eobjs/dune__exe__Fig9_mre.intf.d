examples/fig9_mre.mli:
