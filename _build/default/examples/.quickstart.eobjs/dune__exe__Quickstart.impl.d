examples/quickstart.ml: Adapter Check Fmt Lineup Lineup_history Lineup_runtime Lineup_value Report Test_matrix
