examples/observation_explorer.mli:
