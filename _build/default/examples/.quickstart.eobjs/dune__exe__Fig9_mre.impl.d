examples/fig9_mre.ml: Check Fmt Lineup Lineup_conc Lineup_history Report Test_matrix
