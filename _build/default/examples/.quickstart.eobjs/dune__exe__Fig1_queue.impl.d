examples/fig1_queue.ml: Check Fmt Lineup Lineup_conc Lineup_history Lineup_value Minimize Report Test_matrix
