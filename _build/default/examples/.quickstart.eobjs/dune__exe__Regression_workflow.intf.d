examples/regression_workflow.mli:
