open Helpers
module Value = Lineup_value.Value
module History = Lineup_history.History
module Lin_check = Lineup_spec.Lin_check
module Specs = Lineup_spec.Specs

let u = Value.unit

(* §2.2.1: the Counter1 history — two completed Incs, Get returns 1. *)
let counter1_history =
  history
    [
      call 0 0 "Inc" ();
      call 1 0 "Inc" ();
      ret 0 0 u;
      ret 1 0 u;
      call 0 1 "Get" ();
      ret 0 1 (Value.int 1);
    ]

(* §2.2.2 / Fig. 4: the Counter2 stuck history — inc, get(1), then a second
   inc that blocks forever. *)
let counter2_history =
  history ~stuck:true
    [
      call 0 0 "Inc" ();
      ret 0 0 u;
      call 0 1 "Get" ();
      ret 0 1 (Value.int 1);
      call 1 0 "Inc" ();
    ]

let suite =
  [
    test "counter1 history refuted (Def. 1)" (fun () ->
        Alcotest.(check bool) "not linearizable" false
          (Lin_check.check Specs.counter counter1_history));
    test "counter1 history with Get=2 accepted" (fun () ->
        let h =
          history
            [
              call 0 0 "Inc" ();
              call 1 0 "Inc" ();
              ret 0 0 u;
              ret 1 0 u;
              call 0 1 "Get" ();
              ret 0 1 (Value.int 2);
            ]
        in
        Alcotest.(check bool) "linearizable" true (Lin_check.check Specs.counter h);
        match Lin_check.linearization Specs.counter h with
        | Some order -> Alcotest.(check int) "order length" 3 (List.length order)
        | None -> Alcotest.fail "expected a linearization");
    test "Fig. 4: Counter2 stuck history passes Def. 1" (fun () ->
        (* complete(H) drops the pending inc; the remaining history is
           serial and valid — exactly the paper's point *)
        Alcotest.(check bool) "Def. 1 accepts" true
          (Lin_check.check Specs.counter (History.complete counter2_history)));
    test "Fig. 4: Counter2 stuck history fails Def. 2" (fun () ->
        match Lin_check.check_stuck Specs.counter counter2_history with
        | Error op ->
          Alcotest.(check string) "pending op" "Inc" op.Lineup_history.Op.inv.Lineup_history.Invocation.name
        | Ok () -> Alcotest.fail "generalized linearizability should refute this");
    test "check_general dispatches on stuckness" (fun () ->
        Alcotest.(check bool) "stuck refuted" false
          (Lin_check.check_general Specs.counter counter2_history);
        Alcotest.(check bool) "full refuted" false
          (Lin_check.check_general Specs.counter counter1_history));
    test "legitimately blocked dec is justified" (fun () ->
        let h = history ~stuck:true [ call 0 0 "Dec" () ] in
        Alcotest.(check bool) "justified" true
          (Result.is_ok (Lin_check.check_stuck Specs.counter h)));
    test "dec blocked after inc is NOT justified" (fun () ->
        let h =
          history ~stuck:true [ call 1 0 "Inc" (); ret 1 0 u; call 0 0 "Dec" () ]
        in
        Alcotest.(check bool) "unjustified" false
          (Result.is_ok (Lin_check.check_stuck Specs.counter h)));
    test "pending call may be completed by the extension" (fun () ->
        (* Enqueue pending, but TryDequeue already observed its value: the
           witness must linearize the pending enqueue (Def. 1's extension) *)
        let h =
          history
            [
              call 0 0 "Enqueue" ~arg:(Value.int 5) ();
              call 1 0 "TryDequeue" ();
              ret 1 0 (Value.int 5);
            ]
        in
        Alcotest.(check bool) "linearizable" true (Lin_check.check Specs.queue h));
    test "pending call cannot justify the impossible" (fun () ->
        let h =
          history
            [ call 0 0 "Enqueue" ~arg:(Value.int 5) (); call 1 0 "TryDequeue" (); ret 1 0 (Value.int 6) ]
        in
        Alcotest.(check bool) "refuted" false (Lin_check.check Specs.queue h));
    test "queue FIFO violation refuted" (fun () ->
        let h =
          history
            [
              call 0 0 "Enqueue" ~arg:(Value.int 1) ();
              ret 0 0 u;
              call 0 1 "Enqueue" ~arg:(Value.int 2) ();
              ret 0 1 u;
              call 1 0 "TryDequeue" ();
              ret 1 0 (Value.int 2);
            ]
        in
        Alcotest.(check bool) "refuted" false (Lin_check.check Specs.queue h));
    test "overlapping enqueues allow either dequeue order" (fun () ->
        let h order =
          history
            [
              call 0 0 "Enqueue" ~arg:(Value.int 1) ();
              call 1 0 "Enqueue" ~arg:(Value.int 2) ();
              ret 0 0 u;
              ret 1 0 u;
              call 0 1 "TryDequeue" ();
              ret 0 1 (Value.int order);
            ]
        in
        Alcotest.(check bool) "first" true (Lin_check.check Specs.queue (h 1));
        Alcotest.(check bool) "second" true (Lin_check.check Specs.queue (h 2)));
    test "check_complete rejects pending" (fun () ->
        let h = history [ call 0 0 "Inc" () ] in
        match Lin_check.check_complete Specs.counter h with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    test "empty history is linearizable" (fun () ->
        Alcotest.(check bool) "empty" true (Lin_check.check Specs.counter (history [])));
    test "stuck Take on empty queue is justified" (fun () ->
        let h = history ~stuck:true [ call 0 0 "Take" () ] in
        Alcotest.(check bool) "justified" true
          (Result.is_ok (Lin_check.check_stuck Specs.queue h)));
    test "stuck Take after completed Enqueue is NOT justified" (fun () ->
        let h =
          history ~stuck:true
            [ call 1 0 "Enqueue" ~arg:(Value.int 5) (); ret 1 0 u; call 0 0 "Take" () ]
        in
        Alcotest.(check bool) "unjustified" false
          (Result.is_ok (Lin_check.check_stuck Specs.queue h)));
    test "stuck Take with overlapping TryDequeue that stole the element is justified" (fun () ->
        let h =
          history ~stuck:true
            [
              call 1 0 "Enqueue" ~arg:(Value.int 5) ();
              ret 1 0 u;
              call 0 0 "Take" ();
              call 1 1 "TryDequeue" ();
              ret 1 1 (Value.int 5);
            ]
        in
        (* H[Take] removes nothing else pending; the witness is
           Enqueue, TryDequeue, then Take blocked on the empty queue *)
        Alcotest.(check bool) "justified" true
          (Result.is_ok (Lin_check.check_stuck Specs.queue h)));
  ]

(* Property: random serial executions of a spec are always linearizable, and
   random well-formed interleavings agree between Lin_check and a brute-force
   reference on small sizes. *)
let serial_history_gen spec invs =
  let open QCheck.Gen in
  list_size (int_bound 6) (oneofl invs) >|= fun chosen ->
  let rec go st acc = function
    | [] -> List.rev acc
    | i :: rest -> (
      match spec.Lineup_spec.Spec.step st i with
      | Lineup_spec.Spec.Return (v, st') -> go st' ((i, v) :: acc) rest
      | Lineup_spec.Spec.Blocked -> List.rev acc)
  in
  go spec.Lineup_spec.Spec.initial [] chosen

let props =
  let mk_history pairs =
    (* turn (inv, resp) list into a serial single-thread history *)
    History.make
      (List.concat
         (List.mapi
            (fun i (iv, v) ->
              [ Lineup_history.Event.call ~tid:0 ~op_index:i iv;
                Lineup_history.Event.return ~tid:0 ~op_index:i v ])
            pairs))
  in
  let queue_invs =
    [ inv_int "Enqueue" 1; inv_int "Enqueue" 2; inv "TryDequeue"; inv "TryPeek"; inv "Count" ]
  in
  let counter_invs = [ inv "Inc"; inv "Get"; inv_int "Set" 3 ] in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"serial queue executions are linearizable" ~count:200
         (QCheck.make (serial_history_gen Specs.queue queue_invs))
         (fun pairs -> Lin_check.check Specs.queue (mk_history pairs)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"serial counter executions are linearizable" ~count:200
         (QCheck.make (serial_history_gen Specs.counter counter_invs))
         (fun pairs -> Lin_check.check Specs.counter (mk_history pairs)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"corrupting a response breaks linearizability or is detectable"
         ~count:200
         (QCheck.make (serial_history_gen Specs.counter [ inv "Inc"; inv "Get" ]))
         (fun pairs ->
           (* bump every Get response by 1: if any Get exists, the serial
              history must become non-linearizable *)
           let corrupted =
             List.map
               (fun ((iv : Lineup_history.Invocation.t), v) ->
                 match iv.name, v with
                 | "Get", Value.Int n -> iv, Value.int (n + 1)
                 | _ -> iv, v)
               pairs
           in
           let has_get =
             List.exists (fun ((iv : Lineup_history.Invocation.t), _) -> iv.name = "Get") pairs
           in
           (not has_get) || not (Lin_check.check Specs.counter (mk_history corrupted))));
  ]

let tests = suite @ props
