open Helpers
module Exec_ctx = Lineup_runtime.Exec_ctx
module Race_detector = Lineup_checkers.Race_detector
module Serializability = Lineup_checkers.Serializability
module Vector_clock = Lineup_checkers.Vector_clock
module Conc = Lineup_conc
open Lineup

(* hand-built logs *)
let acc ?(volatile = false) tid loc kind =
  Exec_ctx.Access { tid; loc; loc_name = Fmt.str "loc%d" loc; kind; volatile }

let acq tid lock = Exec_ctx.Lock_acquire { tid; lock; name = Fmt.str "lock%d" lock }
let rel tid lock = Exec_ctx.Lock_release { tid; lock; name = Fmt.str "lock%d" lock }
let op_start tid op_index = Exec_ctx.Op_start { tid; op_index }
let op_end tid op_index = Exec_ctx.Op_end { tid; op_index }

let suite =
  [
    test "vector clock basics" (fun () ->
        let a = Vector_clock.make ~threads:2 in
        let b = Vector_clock.make ~threads:2 in
        Vector_clock.tick a 0;
        Vector_clock.tick a 0;
        Vector_clock.tick b 1;
        Vector_clock.join b a;
        Alcotest.(check int) "joined" 2 (Vector_clock.get b 0);
        Alcotest.(check bool) "hb" true (Vector_clock.happens_before ~clock:2 ~tid:0 b);
        Alcotest.(check bool) "not hb" false (Vector_clock.happens_before ~clock:3 ~tid:0 b));
    test "race: unsynchronized write/write" (fun () ->
        let races =
          Race_detector.analyze ~threads:2
            [ acc 0 1 Exec_ctx.Write; acc 1 1 Exec_ctx.Write ]
        in
        Alcotest.(check int) "one race" 1 (List.length races));
    test "no race: read/read" (fun () ->
        let races =
          Race_detector.analyze ~threads:2 [ acc 0 1 Exec_ctx.Read; acc 1 1 Exec_ctx.Read ]
        in
        Alcotest.(check int) "none" 0 (List.length races));
    test "no race: lock-ordered accesses" (fun () ->
        let races =
          Race_detector.analyze ~threads:2
            [
              acq 0 9; acc 0 1 Exec_ctx.Write; rel 0 9;
              acq 1 9; acc 1 1 Exec_ctx.Read; rel 1 9;
            ]
        in
        Alcotest.(check int) "none" 0 (List.length races));
    test "race: different locks do not synchronize" (fun () ->
        let races =
          Race_detector.analyze ~threads:2
            [
              acq 0 8; acc 0 1 Exec_ctx.Write; rel 0 8;
              acq 1 9; acc 1 1 Exec_ctx.Write; rel 1 9;
            ]
        in
        Alcotest.(check int) "one" 1 (List.length races));
    test "no race: volatile publication discipline" (fun () ->
        (* T0 writes data then a volatile flag; T1 reads the flag then
           data — the volatile pair orders the plain accesses *)
        let races =
          Race_detector.analyze ~threads:2
            [
              acc 0 1 Exec_ctx.Write;
              acc ~volatile:true 0 2 Exec_ctx.Write;
              acc ~volatile:true 1 2 Exec_ctx.Read;
              acc 1 1 Exec_ctx.Read;
            ]
        in
        Alcotest.(check int) "none" 0 (List.length races));
    test "race: plain flag does not synchronize" (fun () ->
        let races =
          Race_detector.analyze ~threads:2
            [
              acc 0 1 Exec_ctx.Write;
              acc 0 2 Exec_ctx.Write;
              acc 1 2 Exec_ctx.Read;
              acc 1 1 Exec_ctx.Read;
            ]
        in
        Alcotest.(check bool) "at least the data race" true (List.length races >= 1));
    test "program-order accesses never race" (fun () ->
        let races =
          Race_detector.analyze ~threads:2 [ acc 0 1 Exec_ctx.Write; acc 0 1 Exec_ctx.Write ]
        in
        Alcotest.(check int) "none" 0 (List.length races));
    test "serializability: disjoint transactions are serializable" (fun () ->
        let v =
          Serializability.analyze
            [
              op_start 0 0; acc 0 1 Exec_ctx.Write; op_end 0 0;
              op_start 1 0; acc 1 2 Exec_ctx.Write; op_end 1 0;
            ]
        in
        Alcotest.(check bool) "serializable" true v.Serializability.serializable);
    test "serializability: sequential conflicts are serializable" (fun () ->
        let v =
          Serializability.analyze
            [
              op_start 0 0; acc 0 1 Exec_ctx.Write; op_end 0 0;
              op_start 1 0; acc 1 1 Exec_ctx.Write; op_end 1 0;
            ]
        in
        Alcotest.(check bool) "serializable" true v.Serializability.serializable);
    test "serializability: interleaved read-write-read cycle detected" (fun () ->
        (* T0 reads x, T1 writes x, T0 reads x again inside the same op:
           T0 -> T1 (read before write) and T1 -> T0 (write before read) *)
        let v =
          Serializability.analyze
            [
              op_start 0 0;
              acc 0 1 Exec_ctx.Read;
              op_start 1 0;
              acc 1 1 Exec_ctx.Write;
              op_end 1 0;
              acc 0 1 Exec_ctx.Read;
              op_end 0 0;
            ]
        in
        Alcotest.(check bool) "not serializable" false v.Serializability.serializable;
        Alcotest.(check bool) "cycle nonempty" true (List.length v.Serializability.cycle >= 2));
    test "serializability: volatile accesses participate in conflicts" (fun () ->
        let v =
          Serializability.analyze
            [
              op_start 0 0;
              acc ~volatile:true 0 1 Exec_ctx.Rmw;
              op_start 1 0;
              acc ~volatile:true 1 1 Exec_ctx.Rmw;
              op_end 1 0;
              acc ~volatile:true 0 1 Exec_ctx.Rmw;
              op_end 0 0;
            ]
        in
        Alcotest.(check bool) "not serializable" false v.Serializability.serializable);
    test "driver: counter1 has a real race" (fun () ->
        let races =
          Race_detector.run ~adapter:Conc.Counters.buggy_unlocked
            ~test:(Test_matrix.make [ [ inv "Inc" ]; [ inv "Inc" ] ])
            ()
        in
        Alcotest.(check bool) "found" true (List.length races > 0));
    test "driver: correct counter is race-free" (fun () ->
        let races =
          Race_detector.run ~adapter:Conc.Counters.correct
            ~test:(Test_matrix.make [ [ inv "Inc" ]; [ inv "Inc"; inv "Get" ] ])
            ()
        in
        Alcotest.(check int) "none" 0 (List.length races));
    test "driver: correct lock-free stack triggers serializability false alarms (§5.6)" (fun () ->
        let report =
          Serializability.run ~adapter:Conc.Concurrent_stack.correct
            ~test:(Test_matrix.make [ [ inv_int "Push" 1; inv "TryPop" ]; [ inv_int "Push" 2 ] ])
            ()
        in
        Alcotest.(check bool) "violations on correct code" true
          (report.Serializability.violations > 0));
    test "driver: serial executions are always serializable" (fun () ->
        let report =
          Serializability.run ~config:Lineup_scheduler.Explore.serial_config
            ~adapter:Conc.Concurrent_stack.correct
            ~test:(Test_matrix.make [ [ inv_int "Push" 1; inv "TryPop" ]; [ inv_int "Push" 2 ] ])
            ()
        in
        Alcotest.(check int) "none" 0 report.Serializability.violations);
  ]

let tests = suite
