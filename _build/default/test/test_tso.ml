open Helpers
module Exec_ctx = Lineup_runtime.Exec_ctx
module Tso = Lineup_checkers.Tso_monitor
module Var = Lineup_runtime.Shared_var
module Conc = Lineup_conc
open Lineup

let acc ?(volatile = false) tid loc kind =
  Exec_ctx.Access { tid; loc; loc_name = Fmt.str "loc%d" loc; kind; volatile }

let acq tid lock = Exec_ctx.Lock_acquire { tid; lock; name = Fmt.str "lock%d" lock }
let rel tid lock = Exec_ctx.Lock_release { tid; lock; name = Fmt.str "lock%d" lock }

(* The Dekker litmus: T0: st x; ld y.  T1: st y; ld x. *)
let dekker =
  [
    acc 0 1 Exec_ctx.Write;
    acc 1 2 Exec_ctx.Write;
    acc 0 2 Exec_ctx.Read;
    acc 1 1 Exec_ctx.Read;
  ]

(* A register-based Dekker adapter for the end-to-end driver. *)
let dekker_adapter ~interlocked =
  let create () =
    let x = Var.make ~name:"x" 0 in
    let y = Var.make ~name:"y" 0 in
    let store v n = if interlocked then ignore (Var.exchange v n) else Var.write v n in
    let invoke (i : Lineup_history.Invocation.t) =
      match i.Lineup_history.Invocation.name with
      | "StoreXLoadY" ->
        store x 1;
        Lineup_value.Value.int (Var.read y)
      | "StoreYLoadX" ->
        store y 1;
        Lineup_value.Value.int (Var.read x)
      | n -> Fmt.invalid_arg "dekker: %s" n
    in
    { Adapter.invoke }
  in
  Adapter.make ~name:"dekker" ~universe:[ inv "StoreXLoadY"; inv "StoreYLoadX" ] create

let suite =
  [
    test "dekker pattern flagged" (fun () ->
        let reports = Tso.analyze ~threads:2 dekker in
        Alcotest.(check int) "one" 1 (List.length reports));
    test "fence between store and load suppresses the window" (fun () ->
        let log =
          [
            acc 0 1 Exec_ctx.Write;
            acc 0 9 Exec_ctx.Rmw;
            (* interlocked = fence *)
            acc 0 2 Exec_ctx.Read;
            acc 1 2 Exec_ctx.Write;
            acc 1 1 Exec_ctx.Read;
          ]
        in
        Alcotest.(check int) "none" 0 (List.length (Tso.analyze ~threads:2 log)));
    test "lock operations are fences" (fun () ->
        let log =
          [
            acc 0 1 Exec_ctx.Write;
            acq 0 9;
            rel 0 9;
            acc 0 2 Exec_ctx.Read;
            acc 1 2 Exec_ctx.Write;
            acc 1 1 Exec_ctx.Read;
          ]
        in
        Alcotest.(check int) "none" 0 (List.length (Tso.analyze ~threads:2 log)));
    test "volatile stores are still bufferable (the .NET volatile gotcha)" (fun () ->
        let log =
          [
            acc ~volatile:true 0 1 Exec_ctx.Write;
            acc ~volatile:true 0 2 Exec_ctx.Read;
            acc ~volatile:true 1 2 Exec_ctx.Write;
            acc ~volatile:true 1 1 Exec_ctx.Read;
          ]
        in
        Alcotest.(check int) "flagged" 1 (List.length (Tso.analyze ~threads:2 log)));
    test "same location store/load is not a window" (fun () ->
        let log =
          [
            acc 0 1 Exec_ctx.Write;
            acc 0 1 Exec_ctx.Read;
            acc 1 1 Exec_ctx.Write;
            acc 1 1 Exec_ctx.Read;
          ]
        in
        Alcotest.(check int) "none" 0 (List.length (Tso.analyze ~threads:2 log)));
    test "happens-before-ordered windows are not concurrent" (fun () ->
        (* T1's window is entirely after T0's via a lock hand-off *)
        let log =
          [
            acc 0 1 Exec_ctx.Write;
            acc 0 2 Exec_ctx.Read;
            acq 0 9;
            rel 0 9;
            acq 1 9;
            rel 1 9;
            acc 1 2 Exec_ctx.Write;
            acc 1 1 Exec_ctx.Read;
          ]
        in
        Alcotest.(check int) "none" 0 (List.length (Tso.analyze ~threads:2 log)));
    test "driver flags the racy dekker implementation" (fun () ->
        let reports =
          Tso.run
            ~adapter:(dekker_adapter ~interlocked:false)
            ~test:(Test_matrix.make [ [ inv "StoreXLoadY" ]; [ inv "StoreYLoadX" ] ])
            ()
        in
        Alcotest.(check bool) "flagged" true (List.length reports > 0));
    test "driver: interlocked dekker is clean" (fun () ->
        let reports =
          Tso.run
            ~adapter:(dekker_adapter ~interlocked:true)
            ~test:(Test_matrix.make [ [ inv "StoreXLoadY" ]; [ inv "StoreYLoadX" ] ])
            ()
        in
        Alcotest.(check int) "clean" 0 (List.length reports));
    test "driver: the studied implementations are clean (§5.7)" (fun () ->
        (* the correct classes use interlocked operations and locks at all
           the critical points, exactly as the paper observed *)
        List.iter
          (fun (e : Conc.Registry.entry) ->
            let u = Array.of_list e.adapter.Adapter.universe in
            let pick i = u.(i mod Array.length u) in
            let test = Test_matrix.make [ [ pick 0; pick 2 ]; [ pick 1; pick 3 ] ] in
            let config =
              { Lineup_scheduler.Explore.default_config with max_executions = Some 200 }
            in
            let reports = Tso.run ~config ~adapter:e.adapter ~test () in
            Alcotest.(check int) (e.adapter.Adapter.name ^ " clean") 0 (List.length reports))
          (List.filteri (fun i _ -> i < 6) Conc.Registry.correct_entries));
  ]

let tests = suite
