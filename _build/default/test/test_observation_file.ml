open Helpers
module Value = Lineup_value.Value
module Serial_history = Lineup_history.Serial_history
module Conc = Lineup_conc
open Lineup

let u = Value.Unit

(* Build an observation set by actually running phase 1 of a test. *)
let phase1_observation adapter cols =
  let r = Check.run adapter (Test_matrix.make cols) in
  r.Check.observation

let sort = List.sort Serial_history.compare

let roundtrip obs =
  let str = Observation_file.to_string obs in
  Observation_file.of_string str

let suite =
  [
    test "roundtrip of a real phase-1 observation set" (fun () ->
        let obs =
          phase1_observation Conc.Counters.correct [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]
        in
        let parsed = roundtrip obs in
        let original =
          sort (Observation.full_histories obs @ Observation.stuck_histories obs)
        in
        Alcotest.(check (list serial_t)) "histories" original (sort parsed));
    test "roundtrip with stuck histories (blocking Take)" (fun () ->
        let adapter = Conc.Spec_impl.adapter Lineup_spec.Specs.queue in
        let obs =
          phase1_observation adapter [ [ inv "Take" ]; [ inv_int "Enqueue" 5 ] ]
        in
        Alcotest.(check bool) "has stuck" true (Observation.num_stuck obs > 0);
        let parsed = roundtrip obs in
        let original =
          sort (Observation.full_histories obs @ Observation.stuck_histories obs)
        in
        Alcotest.(check (list serial_t)) "histories" original (sort parsed));
    test "roundtrip preserves arguments and results" (fun () ->
        let obs = Observation.create () in
        (match
           Observation.add obs
             (serial
                [ 0, "Add", Value.int 200, Value.unit; 1, "Take", u, Value.int 200 ])
         with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "unexpected nondet");
        let parsed = roundtrip obs in
        Alcotest.(check int) "one history" 1 (List.length parsed);
        let s = List.hd parsed in
        let e0 = List.hd s.Serial_history.entries in
        Alcotest.check value "arg" (Value.int 200) e0.Serial_history.inv.Lineup_history.Invocation.arg);
    test "fig. 7 structure: sections group by thread sequences" (fun () ->
        let obs =
          phase1_observation Conc.Blocking_collection.fifo
            [ [ inv_int "Add" 200; inv_int "Add" 400 ]; [ inv "Take"; inv "TryTake" ] ]
        in
        let xml = Observation_file.to_xml obs in
        Alcotest.(check string) "root" "observationset" (Xml.tag xml);
        let sections = Xml.elements xml in
        Alcotest.(check bool) "has sections" true (List.length sections > 0);
        List.iter
          (fun (tag, section) ->
            Alcotest.(check string) "section tag" "observation" tag;
            let elems = Xml.elements section in
            let count t = List.length (List.filter (fun (tg, _) -> tg = t) elems) in
            Alcotest.(check bool) "has threads" true (count "thread" > 0);
            Alcotest.(check bool) "has histories" true (count "history" > 0))
          sections);
    test "interleaving tokens of a concurrent history" (fun () ->
        let h =
          history
            [ call 0 0 "A" (); call 1 0 "B" (); ret 0 0 Value.unit; ret 1 0 Value.unit ]
        in
        Alcotest.(check string) "tokens" "1[ 2[ ]1 ]2" (Observation_file.interleaving_tokens h));
    test "stuck interleaving ends with #" (fun () ->
        let h = history ~stuck:true [ call 0 0 "Take" () ] in
        Alcotest.(check string) "tokens" "1[ #" (Observation_file.interleaving_tokens h));
    test "blocked ops are marked with B in thread lists" (fun () ->
        let obs = Observation.create () in
        (match Observation.add obs (serial ~stuck:(0, "Take", u) []) with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "nondet");
        let str = Observation_file.to_string obs in
        let contains affix s =
          let n = String.length affix and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "contains 1B" true (contains "1B" str));
    test "observation_of_histories detects nondeterminism" (fun () ->
        let h1 = serial [ 0, "Get", u, Value.int 0 ] in
        let h2 = serial [ 0, "Get", u, Value.int 1 ] in
        match Observation_file.observation_of_histories [ h1; h2 ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected nondeterminism");
    test "save/load through a file" (fun () ->
        let obs =
          phase1_observation Conc.Counters.correct [ [ inv "Inc" ]; [ inv "Get" ] ]
        in
        let path = Filename.temp_file "lineup" ".xml" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Observation_file.save ~path obs;
            let parsed = Observation_file.load ~path in
            Alcotest.(check int) "count" (Observation.num_full obs) (List.length parsed)));
  ]

let tests = suite
