(* Sequential unit tests of every implementation under test (driven through
   the inline effect handler), plus the full Line-Up sweep of the registry:
   every known-good subject must PASS a generic test and every seeded defect
   must FAIL its targeted test — the Table 2 ground truth. *)

open Helpers
module Value = Lineup_value.Value
module Rt = Lineup_runtime.Rt
module Exec_ctx = Lineup_runtime.Exec_ctx
module Conc = Lineup_conc
open Lineup

(* Invoke a sequence of operations sequentially on a fresh instance. *)
let seq_run (adapter : Adapter.t) invs =
  Exec_ctx.reset ();
  Exec_ctx.set_current_tid 0;
  Rt.run_inline (fun () ->
      let inst = adapter.Adapter.create () in
      List.map inst.Adapter.invoke invs)

let check_seq name adapter invs expected () =
  let actual = seq_run adapter invs in
  Alcotest.(check (list value)) name expected actual

let vi = Value.int
let vu = Value.unit
let vb = Value.bool
let vf = Value.Fail

let sequential =
  [
    test "queue FIFO order"
      (check_seq "queue" Conc.Concurrent_queue.correct
         [ inv_int "Enqueue" 1; inv_int "Enqueue" 2; inv "TryDequeue"; inv "TryDequeue"; inv "TryDequeue" ]
         [ vu; vu; vi 1; vi 2; vf ]);
    test "queue observers"
      (check_seq "queue" Conc.Concurrent_queue.correct
         [ inv "IsEmpty"; inv_int "Enqueue" 7; inv "IsEmpty"; inv "Count"; inv "TryPeek"; inv "ToArray" ]
         [ vb true; vu; vb false; vi 1; vi 7; Value.list [ vi 7 ] ]);
    test "queue pre is sequentially correct"
      (check_seq "queue-pre" Conc.Concurrent_queue.pre
         [ inv_int "Enqueue" 1; inv "TryDequeue"; inv "TryDequeue" ]
         [ vu; vi 1; vf ]);
    test "michael-scott queue FIFO"
      (check_seq "msq" Conc.Michael_scott_queue.adapter
         [ inv "IsEmpty"; inv_int "Enqueue" 1; inv_int "Enqueue" 2; inv "TryPeek"; inv "TryDequeue";
           inv "TryDequeue"; inv "TryDequeue"; inv "IsEmpty" ]
         [ vb true; vu; vu; vi 1; vi 1; vi 2; vf; vb true ]);
    test "stack LIFO order"
      (check_seq "stack" Conc.Concurrent_stack.correct
         [ inv_int "Push" 1; inv_int "Push" 2; inv "TryPeek"; inv "TryPop"; inv "TryPop"; inv "TryPop" ]
         [ vu; vu; vi 2; vi 2; vi 1; vf ]);
    test "stack ranges"
      (check_seq "stack" Conc.Concurrent_stack.correct
         [
           inv ~arg:(Value.list [ vi 8; vi 9 ]) "PushRange";
           inv "Count";
           inv_int "TryPopRange" 2;
           inv "Count";
         ]
         [ vu; vi 2; Value.list [ vi 8; vi 9 ]; vi 0 ]);
    test "buggy stack range is sequentially identical"
      (check_seq "stack-pre" Conc.Concurrent_stack.pre
         [ inv_int "Push" 1; inv_int "Push" 2; inv_int "TryPopRange" 2 ]
         [ vu; vu; Value.list [ vi 2; vi 1 ] ]);
    test "bag add/take from own segment"
      (check_seq "bag" Conc.Concurrent_bag.adapter
         [ inv_int "Add" 10; inv_int "Add" 20; inv "Count"; inv "TryTake"; inv "TryTake"; inv "TryTake" ]
         [ vu; vu; vi 2; vi 20; vi 10; vf ]);
    test "bag observers"
      (check_seq "bag" Conc.Concurrent_bag.adapter
         [ inv "IsEmpty"; inv_int "Add" 10; inv "IsEmpty"; inv "TryPeek"; inv "ToArray" ]
         [ vb true; vu; vb false; vi 10; Value.list [ vi 10 ] ]);
    test "dictionary add/get/remove"
      (check_seq "dict" Conc.Concurrent_dictionary.adapter
         [
           inv_int "TryAdd" 10; inv_int "TryAdd" 10; inv_int "TryGet" 10; inv_int "ContainsKey" 10;
           inv_int "TryRemove" 10; inv_int "ContainsKey" 10; inv_int "TryGet" 10;
         ]
         [ vb true; vb false; vi 1000; vb true; vb true; vb false; vf ]);
    test "dictionary indexer and update"
      (check_seq "dict" Conc.Concurrent_dictionary.adapter
         [
           inv_int "Set" 20; inv_int "Get" 20; inv_int "TryUpdate" 20; inv_int "Get" 20;
           inv_int "TryUpdate" 10; inv "Count"; inv "Clear"; inv "IsEmpty";
         ]
         [ vu; vi 2001; vb true; vi 2002; vb false; vi 1; vu; vb true ]);
    test "blocking collection fifo take/complete"
      (check_seq "bc" Conc.Blocking_collection.fifo
         [
           inv_int "Add" 200; inv "Take"; inv "TryTake"; inv "CompleteAdding"; inv_int "Add" 400;
           inv "IsAddingCompleted"; inv "IsCompleted"; inv "Take";
         ]
         [ vu; vi 200; vf; vu; vf; vb true; vb true; vf ]);
    test "blocking collection segmented basics"
      (check_seq "bcs" Conc.Blocking_collection.segmented
         [ inv_int "Add" 200; inv "Count"; inv "TryTake"; inv "TryTake"; inv "CompleteAdding"; inv "IsCompleted" ]
         [ vu; vi 1; vi 200; vf; vu; vb true ]);
    test "semaphore counting"
      (check_seq "sem" Conc.Semaphore_slim.correct
         [ inv "CurrentCount"; inv "Release"; inv "Release"; inv "TryWait"; inv "CurrentCount"; inv_int "ReleaseMany" 2; inv "CurrentCount" ]
         [ vi 0; vi 0; vi 1; vb true; vi 1; vi 1; vi 3 ]);
    test "semaphore wait consumes"
      (check_seq "sem" Conc.Semaphore_slim.correct
         [ inv "Release"; inv "Wait"; inv "TryWait" ]
         [ vi 0; vu; vb false ]);
    test "countdown event reaches zero"
      (check_seq "cde" Conc.Countdown_event.correct
         [ inv "CurrentCount"; inv "IsSet"; inv "Signal"; inv "IsSet"; inv "Signal"; inv "IsSet"; inv "Signal"; inv "Wait" ]
         [ vi 2; vb false; vb false; vb false; vb true; vb true; vf; vu ]);
    test "countdown add count"
      (check_seq "cde" Conc.Countdown_event.correct
         [ inv "AddCount"; inv "CurrentCount"; inv "Signal"; inv "Signal"; inv "Signal"; inv "TryAddCount" ]
         [ vu; vi 3; vb false; vb false; vb true; vb false ]);
    test "manual reset event set/reset"
      (check_seq "mre" Conc.Manual_reset_event.correct
         [ inv "IsSet"; inv "Set"; inv "IsSet"; inv "Wait"; inv "TryWait"; inv "Reset"; inv "IsSet"; inv "TryWait" ]
         [ vb false; vu; vb true; vu; vb true; vu; vb false; vb false ]);
    test "lazy initializes once"
      (check_seq "lazy" Conc.Lazy_init.correct
         [ inv "IsValueCreated"; inv "ToString"; inv "Value"; inv "Value"; inv "IsValueCreated"; inv "ToString" ]
         [ vb false; Value.str "<uncreated>"; vi 1; vi 1; vb true; Value.str "1" ]);
    test "lazy pre is sequentially identical"
      (check_seq "lazy-pre" Conc.Lazy_init.pre
         [ inv "Value"; inv "Value"; inv "IsValueCreated" ]
         [ vi 1; vi 1; vb true ]);
    test "task completion source single winner"
      (check_seq "tcs" Conc.Task_completion_source.correct
         [
           inv "IsCompleted"; inv "GetResult"; inv_int "TrySetResult" 10; inv_int "TrySetResult" 20;
           inv "TrySetCanceled"; inv "GetResult"; inv "IsCompleted"; inv "Wait";
         ]
         [ vb false; vf; vb true; vb false; vb false; vi 10; vb true; vu ]);
    test "task completion source cancel"
      (check_seq "tcs" Conc.Task_completion_source.correct
         [ inv "TrySetCanceled"; inv_int "TrySetResult" 10; inv "GetResult" ]
         [ vb true; vb false; vf ]);
    test "cancellation token source drains serially"
      (check_seq "cts" Conc.Cancellation_token_source.adapter
         [ inv "CanBeCanceled"; inv "IsCancellationRequested"; inv "Cancel"; inv "IsCancellationRequested" ]
         (* under the inline handler Choose picks 0: the callback is not
            synchronous, so the first read after Cancel still sees the
            pending flag being drained *)
         [ vb true; vb false; vu; vb false ]);
    test "cancellation token source second read observes the drain"
      (check_seq "cts" Conc.Cancellation_token_source.adapter
         [ inv "Cancel"; inv "IsCancellationRequested"; inv "IsCancellationRequested" ]
         [ vu; vb false; vb true ]);
    test "linked list deque semantics"
      (check_seq "cll" Conc.Concurrent_linked_list.adapter
         [
           inv_int "AddFirst" 1; inv_int "AddLast" 2; inv_int "AddFirst" 3; inv "ToArray";
           inv "RemoveFirst"; inv "RemoveLast"; inv "Count"; inv "RemoveFirst"; inv "RemoveFirst";
         ]
         [ vu; vu; vu; Value.list [ vi 3; vi 1; vi 2 ]; vi 3; vi 2; vi 1; vi 1; vf ]);
    test "barrier participants bookkeeping"
      (check_seq "barrier" Conc.Barrier.adapter
         [ inv "ParticipantCount"; inv "AddParticipant"; inv "ParticipantCount"; inv "ParticipantsRemaining"; inv "CurrentPhaseNumber" ]
         [ vi 2; vu; vi 3; vi 3; vi 0 ]);
  ]

(* The registry sweep: ground truth for Table 2. *)
let registry_sweep =
  let generic_test (e : Conc.Registry.entry) =
    let u = Array.of_list e.adapter.Adapter.universe in
    let pick i = u.(i mod Array.length u) in
    Test_matrix.make [ [ pick 0; pick 2 ]; [ pick 1; pick 3 ] ]
  in
  let targeted =
    [
      "ManualResetEvent (Pre: lost signal)", [ [ inv "Wait" ]; [ inv "Set" ] ];
      ( "ManualResetEvent (Pre: CAS typo)",
        [ [ inv "Wait"; inv "IsSet" ]; [ inv "Set"; inv "Reset" ] ] );
      ( "ConcurrentQueue (Pre: timed lock in TryDequeue)",
        [ [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ]; [ inv "TryDequeue"; inv "TryDequeue" ] ]
      );
      "SemaphoreSlim (Pre: unlocked release)", [ [ inv "Release" ]; [ inv "Release" ] ];
      "CountdownEvent (Pre: racy signal)", [ [ inv "Signal" ]; [ inv "Signal" ] ];
      ( "ConcurrentStack (Pre: non-atomic TryPopRange)",
        [ [ inv_int "Push" 1; inv_int "Push" 2 ]; [ inv_int "TryPopRange" 2 ] ] );
      "LazyInit (Pre: early publish)", [ [ inv "Value" ]; [ inv "Value" ] ];
      ( "TaskCompletionSource (Pre: racy TrySetResult)",
        [ [ inv_int "TrySetResult" 10 ]; [ inv_int "TrySetResult" 20 ] ] );
      "ConcurrentBag", [ [ inv_int "Add" 10; inv_int "Add" 20 ]; [ inv "TryTake" ] ];
      ( "BlockingCollection (segmented)",
        [ [ inv_int "Add" 200; inv_int "Add" 400 ]; [ inv "Count" ] ] );
      "CancellationTokenSource", [ [ inv "Cancel" ]; [ inv "IsCancellationRequested" ] ];
      "Barrier", [ [ inv "SignalAndWait" ]; [ inv "SignalAndWait" ] ];
      "Counter1 (unlocked inc)", [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ];
    ]
  in
  List.map
    (fun (e : Conc.Registry.entry) ->
      test ("registry PASS: " ^ e.adapter.Adapter.name) (fun () ->
          let r = Check.run e.adapter (generic_test e) in
          if not (Check.passed r) then
            Alcotest.failf "%s should pass: %s" e.adapter.Adapter.name (Report.summary r)))
    Conc.Registry.correct_entries
  @ List.map
      (fun (name, cols) ->
        test ("registry FAIL: " ^ name) (fun () ->
            let e = Conc.Registry.find name in
            let r = Check.run e.adapter (Test_matrix.make cols) in
            if Check.passed r then Alcotest.failf "%s should fail" name))
      targeted

let tests = sequential @ registry_sweep
