(* Shared test helpers. *)

module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Event = Lineup_history.Event
module History = Lineup_history.History
module Serial_history = Lineup_history.Serial_history

let inv ?arg name = Invocation.make ?arg name
let inv_int name n = Invocation.make ~arg:(Value.int n) name

(* Compact history construction: a list of (tid, op_index, action) where the
   action is either a call or a return. *)
let call tid op_index name ?arg () = Event.call ~tid ~op_index (inv ?arg name)
let ret tid op_index v = Event.return ~tid ~op_index v

let history ?stuck events = History.make ?stuck events

(* A serial history from (tid, name, arg, resp) tuples. *)
let serial ?stuck entries =
  Serial_history.make
    ~stuck:(Option.map (fun (tid, name, arg) -> tid, Invocation.make ~arg name) stuck)
    (List.map
       (fun (tid, name, arg, resp) -> { Serial_history.tid; inv = Invocation.make ~arg name; resp })
       entries)

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal

let history_t : History.t Alcotest.testable = Alcotest.testable History.pp History.equal

let serial_t : Serial_history.t Alcotest.testable =
  Alcotest.testable Serial_history.pp Serial_history.equal

let test name f = Alcotest.test_case name `Quick f

(* Value generator for qcheck. *)
let value_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let base =
            oneof
              [
                return Value.Unit;
                map Value.bool bool;
                map Value.int small_signed_int;
                map Value.str (string_size ~gen:printable (int_bound 8));
                return Value.Fail;
                return (Value.Opt None);
              ]
          in
          if n = 0 then base
          else
            frequency
              [
                3, base;
                1, map2 Value.pair (self (n / 2)) (self (n / 2));
                1, map Value.list (list_size (int_bound 3) (self (n / 3)));
                1, map Value.some (self (n / 2));
              ])
        n)

let value_arb = QCheck.make ~print:Value.to_string value_gen
