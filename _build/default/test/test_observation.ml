open Helpers
module Value = Lineup_value.Value
module History = Lineup_history.History
module Serial_history = Lineup_history.Serial_history
open Lineup

let u = Value.Unit

let add_ok obs s =
  match Observation.add obs s with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unexpected nondeterminism"

let suite =
  [
    test "add and count" (fun () ->
        let obs = Observation.create () in
        add_ok obs (serial [ 0, "Inc", u, Value.unit ]);
        add_ok obs (serial ~stuck:(0, "Dec", u) []);
        Alcotest.(check int) "full" 1 (Observation.num_full obs);
        Alcotest.(check int) "stuck" 1 (Observation.num_stuck obs));
    test "duplicates are ignored" (fun () ->
        let obs = Observation.create () in
        add_ok obs (serial [ 0, "Inc", u, Value.unit ]);
        add_ok obs (serial [ 0, "Inc", u, Value.unit ]);
        Alcotest.(check int) "full" 1 (Observation.num_full obs));
    test "nondeterminism detected on differing responses" (fun () ->
        let obs = Observation.create () in
        add_ok obs (serial [ 0, "Get", u, Value.int 0 ]);
        match Observation.add obs (serial [ 0, "Get", u, Value.int 1 ]) with
        | Error (s1, s2) ->
          Alcotest.(check bool) "pair differs" false (Serial_history.equal s1 s2)
        | Ok () -> Alcotest.fail "expected nondeterminism");
    test "nondeterminism detected on response vs stuck" (fun () ->
        let obs = Observation.create () in
        add_ok obs (serial [ 0, "Dec", u, Value.unit ]);
        match Observation.add obs (serial ~stuck:(0, "Dec", u) []) with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected nondeterminism");
    test "no false nondeterminism across different prefixes" (fun () ->
        let obs = Observation.create () in
        add_ok obs (serial [ 0, "Inc", u, Value.unit; 0, "Get", u, Value.int 1 ]);
        add_ok obs (serial [ 0, "Get", u, Value.int 0; 0, "Inc", u, Value.unit ]);
        add_ok obs (serial ~stuck:(1, "Dec", u) [ 0, "Get", u, Value.int 0 ]);
        Alcotest.(check int) "full" 2 (Observation.num_full obs));
    test "witness lookup finds matching group" (fun () ->
        let obs = Observation.create () in
        let s =
          serial [ 0, "Inc", u, Value.unit; 1, "Inc", u, Value.unit; 0, "Get", u, Value.int 2 ]
        in
        add_ok obs s;
        let h =
          history
            [
              call 0 0 "Inc" ();
              call 1 0 "Inc" ();
              ret 0 0 Value.unit;
              ret 1 0 Value.unit;
              call 0 1 "Get" ();
              ret 0 1 (Value.int 2);
            ]
        in
        Alcotest.(check (option serial_t)) "found" (Some s) (Observation.find_witness_full obs h));
    test "witness lookup respects real-time order" (fun () ->
        let obs = Observation.create () in
        (* only witness orders Get before B's Inc *)
        add_ok obs
          (serial [ 0, "Inc", u, Value.unit; 0, "Get", u, Value.int 1; 1, "Inc", u, Value.unit ]);
        (* but in H, B's Inc completes before Get starts *)
        let h =
          history
            [
              call 0 0 "Inc" ();
              ret 0 0 Value.unit;
              call 1 0 "Inc" ();
              ret 1 0 Value.unit;
              call 0 1 "Get" ();
              ret 0 1 (Value.int 1);
            ]
        in
        Alcotest.(check (option serial_t)) "no witness" None (Observation.find_witness_full obs h));
    test "stuck lookup goes through H[e]" (fun () ->
        let obs = Observation.create () in
        add_ok obs (serial ~stuck:(0, "Wait", u) []);
        add_ok obs (serial ~stuck:(1, "Wait", u) []);
        let h = history ~stuck:true [ call 0 0 "Wait" (); call 1 0 "Wait" () ] in
        Alcotest.(check bool) "both justified" true
          (Result.is_ok (Observation.linearizable_stuck obs h)));
    test "stuck lookup reports the unjustified op" (fun () ->
        let obs = Observation.create () in
        add_ok obs (serial ~stuck:(0, "Wait", u) []);
        let h =
          history ~stuck:true
            [ call 1 0 "Set" (); ret 1 0 Value.unit; call 0 0 "Wait" () ]
        in
        match Observation.linearizable_stuck obs h with
        | Error op -> Alcotest.(check int) "tid" 0 op.Lineup_history.Op.tid
        | Ok () -> Alcotest.fail "expected unjustified");
  ]

let tests = suite
