open Helpers
module Value = Lineup_value.Value
module Spec = Lineup_spec.Spec
module Specs = Lineup_spec.Specs

let step_ok spec st i =
  match spec.Spec.step st i with
  | Spec.Return (v, st') -> v, st'
  | Spec.Blocked -> Alcotest.failf "unexpected block on %a" Lineup_history.Invocation.pp i

let blocked spec st i =
  match spec.Spec.step st i with Spec.Blocked -> true | Spec.Return _ -> false

let run_responses spec invs =
  Spec.run spec invs |> List.map snd

let suite =
  [
    test "counter follows Fig. 3" (fun () ->
        let c = Specs.counter in
        let _, st = step_ok c c.Spec.initial (inv "Inc") in
        let v, st = step_ok c st (inv "Get") in
        Alcotest.check value "get after inc" (Value.int 1) v;
        let _, st = step_ok c st (inv_int "Set" 5) in
        let v, _ = step_ok c st (inv "Get") in
        Alcotest.check value "get after set" (Value.int 5) v);
    test "counter dec blocks at zero (Fig. 3)" (fun () ->
        Alcotest.(check bool) "blocked" true (blocked Specs.counter 0 (inv "Dec"));
        Alcotest.(check bool) "unblocked" false (blocked Specs.counter 1 (inv "Dec")));
    test "counter run stops at block" (fun () ->
        let rs = run_responses Specs.counter [ inv "Inc"; inv "Dec"; inv "Dec"; inv "Get" ] in
        Alcotest.(check int) "length" 3 (List.length rs);
        Alcotest.(check bool) "last blocked" true (List.nth rs 2 = None));
    test "queue is FIFO" (fun () ->
        let rs =
          run_responses Specs.queue
            [ inv_int "Enqueue" 1; inv_int "Enqueue" 2; inv "TryDequeue"; inv "TryDequeue"; inv "TryDequeue" ]
        in
        Alcotest.(check (list (option value)))
          "responses"
          [ Some Value.unit; Some Value.unit; Some (Value.int 1); Some (Value.int 2); Some Value.Fail ]
          rs);
    test "queue Take blocks on empty" (fun () ->
        Alcotest.(check bool) "blocked" true (blocked Specs.queue [] (inv "Take")));
    test "queue observers" (fun () ->
        let st = [ 7; 8 ] in
        let v, _ = step_ok Specs.queue st (inv "Count") in
        Alcotest.check value "count" (Value.int 2) v;
        let v, _ = step_ok Specs.queue st (inv "TryPeek") in
        Alcotest.check value "peek" (Value.int 7) v;
        let v, _ = step_ok Specs.queue st (inv "ToArray") in
        Alcotest.check value "toarray" (Value.list [ Value.int 7; Value.int 8 ]) v;
        let v, _ = step_ok Specs.queue [] (inv "IsEmpty") in
        Alcotest.check value "empty" (Value.bool true) v);
    test "stack is LIFO" (fun () ->
        let rs =
          run_responses Specs.stack [ inv_int "Push" 1; inv_int "Push" 2; inv "TryPop"; inv "TryPop" ]
        in
        Alcotest.(check (list (option value)))
          "responses"
          [ Some Value.unit; Some Value.unit; Some (Value.int 2); Some (Value.int 1) ]
          rs);
    test "stack PushRange puts first element on top" (fun () ->
        let arg = Value.list [ Value.int 8; Value.int 9 ] in
        let _, st = step_ok Specs.stack [] (inv ~arg "PushRange") in
        let v, _ = step_ok Specs.stack st (inv "TryPop") in
        Alcotest.check value "top" (Value.int 8) v);
    test "stack TryPopRange is a prefix" (fun () ->
        let v, st = step_ok Specs.stack [ 3; 2; 1 ] (inv_int "TryPopRange" 2) in
        Alcotest.check value "popped" (Value.list [ Value.int 3; Value.int 2 ]) v;
        Alcotest.(check (list int)) "rest" [ 1 ] st);
    test "stack TryPopRange on short stack" (fun () ->
        let v, st = step_ok Specs.stack [ 1 ] (inv_int "TryPopRange" 3) in
        Alcotest.check value "popped" (Value.list [ Value.int 1 ]) v;
        Alcotest.(check (list int)) "rest" [] st);
    test "semaphore blocks at zero, Release returns previous count" (fun () ->
        let s = Specs.semaphore ~initial:0 in
        Alcotest.(check bool) "wait blocked" true (blocked s 0 (inv "Wait"));
        let v, st = step_ok s 0 (inv "Release") in
        Alcotest.check value "prev" (Value.int 0) v;
        Alcotest.(check bool) "wait ok" false (blocked s st (inv "Wait"));
        let v, _ = step_ok s st (inv_int "ReleaseMany" 2) in
        Alcotest.check value "prev" (Value.int 1) v);
    test "semaphore TryWait" (fun () ->
        let s = Specs.semaphore ~initial:1 in
        let v, st = step_ok s 1 (inv "TryWait") in
        Alcotest.check value "took" (Value.bool true) v;
        let v, _ = step_ok s st (inv "TryWait") in
        Alcotest.check value "failed" (Value.bool false) v);
    test "manual reset event" (fun () ->
        let m = Specs.manual_reset_event ~initial:false in
        Alcotest.(check bool) "wait blocked" true (blocked m false (inv "Wait"));
        let _, st = step_ok m false (inv "Set") in
        Alcotest.(check bool) "wait open" false (blocked m st (inv "Wait"));
        let _, st = step_ok m st (inv "Reset") in
        let v, _ = step_ok m st (inv "IsSet") in
        Alcotest.check value "unset" (Value.bool false) v);
    test "key_set add/remove/contains" (fun () ->
        let s = Specs.key_set in
        let v, st = step_ok s [] (inv_int "Add" 10) in
        Alcotest.check value "added" (Value.bool true) v;
        let v, st = step_ok s st (inv_int "Add" 10) in
        Alcotest.check value "dup" (Value.bool false) v;
        let v, st = step_ok s st (inv_int "Contains" 10) in
        Alcotest.check value "contains" (Value.bool true) v;
        let v, st = step_ok s st (inv_int "Remove" 10) in
        Alcotest.check value "removed" (Value.bool true) v;
        let v, _ = step_ok s st (inv "Count") in
        Alcotest.check value "count" (Value.int 0) v);
    test "specs reject unknown invocations" (fun () ->
        List.iter
          (fun (Spec.Packed s) ->
            match s.Spec.step s.Spec.initial (inv "Bogus") with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.failf "%s accepted a bogus invocation" s.Spec.name)
          Specs.all);
  ]

let tests = suite
