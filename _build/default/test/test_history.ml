open Helpers
module Value = Lineup_value.Value
module History = Lineup_history.History
module Op = Lineup_history.Op
module Event = Lineup_history.Event

(* The history of Fig. 2: H = (set(0) A)(get B)(ok A)(inc A)(ok(0) B)
   (get B)(ok A... adapted to our counter naming. Thread A: Set(0) then Inc;
   thread B: Get (returning 0) then Get (returning 1). *)
let fig2 =
  history
    [
      call 0 0 "Set" ~arg:(Value.int 0) ();
      call 1 0 "Get" ();
      ret 0 0 Value.unit;
      call 0 1 "Inc" ();
      ret 1 0 (Value.int 0);
      call 1 1 "Get" ();
      ret 1 1 (Value.int 1);
    ]

let ops_of h = History.ops h

let suite =
  [
    test "well-formed accepts fig2" (fun () ->
        Alcotest.(check int) "events" 7 (History.length fig2));
    test "rejects double call" (fun () ->
        match history [ call 0 0 "A" (); call 0 1 "B" () ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    test "rejects return without call" (fun () ->
        match history [ ret 0 0 Value.unit ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    test "rejects bad op_index" (fun () ->
        match history [ call 0 3 "A" () ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    test "threads of fig2" (fun () ->
        Alcotest.(check (list int)) "threads" [ 0; 1 ] (History.threads fig2));
    test "thread subhistory lengths" (fun () ->
        Alcotest.(check int) "A" 3 (List.length (History.thread_sub fig2 0));
        Alcotest.(check int) "B" 4 (List.length (History.thread_sub fig2 1)));
    test "ops of fig2" (fun () ->
        let ops = ops_of fig2 in
        Alcotest.(check int) "count" 4 (List.length ops);
        let pending = List.filter Op.is_pending ops in
        Alcotest.(check int) "pending" 1 (List.length pending);
        let p = List.hd pending in
        Alcotest.(check int) "pending thread" 0 p.Op.tid;
        Alcotest.(check string) "pending name" "Inc" p.Op.inv.Lineup_history.Invocation.name);
    test "fig2 is not complete" (fun () ->
        Alcotest.(check bool) "complete" false (History.is_complete fig2));
    test "complete() drops pending calls" (fun () ->
        let c = History.complete fig2 in
        Alcotest.(check bool) "complete" true (History.is_complete c);
        Alcotest.(check int) "events" 6 (History.length c));
    test "fig2 not serial" (fun () ->
        Alcotest.(check bool) "serial" false (History.is_serial fig2));
    test "serial history detected" (fun () ->
        let h =
          history [ call 0 0 "Inc" (); ret 0 0 Value.unit; call 1 0 "Get" (); ret 1 0 (Value.int 1) ]
        in
        Alcotest.(check bool) "serial" true (History.is_serial h));
    test "empty history is serial and complete" (fun () ->
        let h = history [] in
        Alcotest.(check bool) "serial" true (History.is_serial h);
        Alcotest.(check bool) "complete" true (History.is_complete h));
    test "stuck serial history ends with pending call" (fun () ->
        let h =
          history ~stuck:true
            [ call 0 0 "Inc" (); ret 0 0 Value.unit; call 1 0 "Dec" () ]
        in
        Alcotest.(check bool) "serial" true (History.is_serial h);
        Alcotest.(check bool) "stuck" true (History.is_stuck h));
    test "precedence: sequential ops ordered" (fun () ->
        let h =
          history [ call 0 0 "A" (); ret 0 0 Value.unit; call 1 0 "B" (); ret 1 0 Value.unit ]
        in
        match ops_of h with
        | [ a; b ] ->
          Alcotest.(check bool) "a<b" true (Op.precedes a b);
          Alcotest.(check bool) "not b<a" false (Op.precedes b a);
          Alcotest.(check bool) "not overlapping" false (Op.overlapping a b)
        | _ -> Alcotest.fail "expected two ops");
    test "precedence: overlapping ops unordered" (fun () ->
        let h =
          history [ call 0 0 "A" (); call 1 0 "B" (); ret 0 0 Value.unit; ret 1 0 Value.unit ]
        in
        match ops_of h with
        | [ a; b ] ->
          Alcotest.(check bool) "not a<b" false (Op.precedes a b);
          Alcotest.(check bool) "not b<a" false (Op.precedes b a);
          Alcotest.(check bool) "overlapping" true (Op.overlapping a b)
        | _ -> Alcotest.fail "expected two ops");
    test "pending op precedes nothing" (fun () ->
        let h = history [ call 0 0 "A" (); call 1 0 "B" (); ret 1 0 Value.unit ] in
        match ops_of h with
        | [ a; b ] ->
          Alcotest.(check bool) "not a<b" false (Op.precedes a b);
          Alcotest.(check bool) "not b<a" false (Op.precedes b a)
        | _ -> Alcotest.fail "expected two ops");
    test "restrict_to_pending keeps complete ops and one pending call" (fun () ->
        let h =
          history ~stuck:true
            [
              call 0 0 "A" ();
              ret 0 0 Value.unit;
              call 1 0 "B" ();
              call 2 0 "C" ();
            ]
        in
        let pending = History.pending_ops h in
        Alcotest.(check int) "two pending" 2 (List.length pending);
        let b = List.find (fun (o : Op.t) -> o.tid = 1) pending in
        let hb = History.restrict_to_pending h b in
        Alcotest.(check int) "events" 3 (History.length hb);
        Alcotest.(check bool) "stuck" true (History.is_stuck hb);
        Alcotest.(check int) "one pending" 1 (List.length (History.pending_ops hb)));
    test "restrict_to_pending rejects complete op" (fun () ->
        let h = history ~stuck:true [ call 0 0 "A" (); ret 0 0 Value.unit; call 1 0 "B" () ] in
        let a = List.hd (History.complete_ops h) in
        match History.restrict_to_pending h a with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    test "prefixes count" (fun () ->
        Alcotest.(check int) "prefixes" 8 (List.length (History.prefixes fig2)));
    test "prefixes are well-formed histories" (fun () ->
        List.iter (fun p -> ignore (History.ops p)) (History.prefixes fig2));
    test "interleaving notation" (fun () ->
        let h =
          history [ call 0 0 "A" (); call 1 0 "B" (); ret 0 0 Value.unit; ret 1 0 Value.unit ]
        in
        Alcotest.(check string) "tokens" "1[ 2[ ]1 ]2" (Fmt.str "%a" History.pp_interleaving h));
    test "interleaving notation stuck" (fun () ->
        let h = history ~stuck:true [ call 0 0 "A" () ] in
        Alcotest.(check string) "tokens" "1[ #" (Fmt.str "%a" History.pp_interleaving h));
    test "thread labels" (fun () ->
        Alcotest.(check string) "A" "A" (Event.thread_label 0);
        Alcotest.(check string) "B" "B" (Event.thread_label 1);
        Alcotest.(check string) "Z" "Z" (Event.thread_label 25);
        Alcotest.(check string) "A1" "A1" (Event.thread_label 26));
  ]

let tests = suite
