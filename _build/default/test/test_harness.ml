open Helpers
module Value = Lineup_value.Value
module History = Lineup_history.History
module Op = Lineup_history.Op
module Rt = Lineup_runtime.Rt
module Var = Lineup_runtime.Shared_var
module Explore = Lineup_scheduler.Explore
open Lineup

(* A trivial register adapter for harness-level tests. *)
let register_adapter =
  let create () =
    let v = Var.make ~name:"reg" 0 in
    let invoke (i : Lineup_history.Invocation.t) =
      match i.name, i.arg with
      | "Write", Value.Int x ->
        Var.write v x;
        Value.unit
      | "Read", Value.Unit -> Value.int (Var.read v)
      | "Block", Value.Unit ->
        Rt.block ~wake:(fun () -> false) "never";
        Value.unit
      | _ -> Fmt.invalid_arg "register: %s" i.name
    in
    { Adapter.invoke }
  in
  Adapter.make ~name:"register" ~universe:[ inv "Read"; inv_int "Write" 1 ] create

let collect ?(config = Explore.serial_config) test =
  let histories = ref [] in
  let _ =
    Harness.run_phase config ~adapter:register_adapter ~test ~on_history:(fun r ->
        histories := r.Harness.history :: !histories;
        `Continue)
  in
  List.rev !histories

let suite =
  [
    test "records one op per invocation" (fun () ->
        let test = Test_matrix.make [ [ inv_int "Write" 5; inv "Read" ] ] in
        match collect test with
        | [ h ] ->
          Alcotest.(check int) "ops" 2 (List.length (History.ops h));
          Alcotest.(check bool) "complete" true (History.is_complete h)
        | hs -> Alcotest.failf "expected 1 history, got %d" (List.length hs));
    test "single-thread history is serial with correct responses" (fun () ->
        let test = Test_matrix.make [ [ inv_int "Write" 5; inv "Read" ] ] in
        let h = List.hd (collect test) in
        match Lineup_history.Serial_history.of_history h with
        | Some s ->
          let responses = List.map (fun e -> e.Lineup_history.Serial_history.resp) s.entries in
          Alcotest.(check (list value)) "responses" [ Value.unit; Value.int 5 ] responses
        | None -> Alcotest.fail "expected serial");
    test "serial phase explores both operation orders" (fun () ->
        let test = Test_matrix.make [ [ inv_int "Write" 5 ]; [ inv "Read" ] ] in
        let hs = collect test in
        Alcotest.(check int) "orders" 2 (List.length hs));
    test "init sequence is applied but not recorded" (fun () ->
        let test = Test_matrix.make ~init:[ inv_int "Write" 9 ] [ [ inv "Read" ] ] in
        let h = List.hd (collect test) in
        Alcotest.(check int) "one op" 1 (List.length (History.ops h));
        let op = List.hd (History.ops h) in
        Alcotest.check value "read initialized" (Value.int 9) (Option.get op.Op.resp));
    test "final sequence runs as the observer thread after everything" (fun () ->
        let test =
          Test_matrix.make ~final:[ inv "Read" ] [ [ inv_int "Write" 7 ] ]
        in
        let h = List.hd (collect test) in
        let ops = History.ops h in
        Alcotest.(check int) "two ops" 2 (List.length ops);
        let final_op = List.find (fun (o : Op.t) -> o.tid = 1) ops in
        Alcotest.check value "observes the write" (Value.int 7) (Option.get final_op.Op.resp);
        (* the final op is ordered after the write in real time *)
        let write_op = List.find (fun (o : Op.t) -> o.tid = 0) ops in
        Alcotest.(check bool) "ordered" true (Op.precedes write_op final_op));
    test "blocked operation yields a stuck serial history" (fun () ->
        let test = Test_matrix.make [ [ inv "Block" ]; [ inv "Read" ] ] in
        let hs = collect test in
        (* order Read-first completes Read then sticks on Block; order
           Block-first sticks immediately *)
        Alcotest.(check bool) "some stuck" true (List.exists History.is_stuck hs);
        List.iter
          (fun h ->
            if History.is_stuck h then
              Alcotest.(check int) "one pending" 1 (List.length (History.pending_ops h)))
          hs);
    test "concurrent phase produces overlapping histories" (fun () ->
        let test = Test_matrix.make [ [ inv_int "Write" 1 ]; [ inv_int "Write" 2 ] ] in
        let hs = collect ~config:{ Explore.default_config with preemption_bound = None } test in
        Alcotest.(check bool) "several executions" true (List.length hs >= 2));
    test "observer tid is the column count" (fun () ->
        let test = Test_matrix.make [ [ inv "Read" ]; [ inv "Read" ] ] in
        Alcotest.(check int) "tid" 2 (Harness.observer_tid test));
  ]

let tests = suite
