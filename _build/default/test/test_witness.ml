open Helpers
module Value = Lineup_value.Value
module History = Lineup_history.History
module Witness = Lineup_history.Witness

let u = Value.Unit

(* The Counter1 violation of §2.2.1: two completed Incs followed by Get=1. *)
let counter1_history =
  history
    [
      call 0 0 "Inc" ();
      call 1 0 "Inc" ();
      ret 0 0 Value.unit;
      ret 1 0 Value.unit;
      call 0 1 "Get" ();
      ret 0 1 (Value.int 1);
    ]

(* Serial histories a correct counter can produce for that test. *)
let counter_specs =
  [
    serial [ 0, "Inc", u, Value.unit; 1, "Inc", u, Value.unit; 0, "Get", u, Value.int 2 ];
    serial [ 1, "Inc", u, Value.unit; 0, "Inc", u, Value.unit; 0, "Get", u, Value.int 2 ];
    serial [ 0, "Inc", u, Value.unit; 0, "Get", u, Value.int 1; 1, "Inc", u, Value.unit ];
  ]

let suite =
  [
    test "counter1 history has no witness (paper §2.2.1)" (fun () ->
        Alcotest.(check bool) "not linearizable" false
          (Witness.linearizable_full ~specs:counter_specs counter1_history));
    test "fixing the return value gives a witness" (fun () ->
        let ok_history =
          history
            [
              call 0 0 "Inc" ();
              call 1 0 "Inc" ();
              ret 0 0 Value.unit;
              ret 1 0 Value.unit;
              call 0 1 "Get" ();
              ret 0 1 (Value.int 2);
            ]
        in
        Alcotest.(check bool) "linearizable" true
          (Witness.linearizable_full ~specs:counter_specs ok_history));
    test "real-time order is respected (condition 3)" (fun () ->
        (* Get completes strictly before the second Inc starts, so a witness
           placing Inc before Get is not acceptable. *)
        let h =
          history
            [
              call 0 0 "Inc" ();
              ret 0 0 Value.unit;
              call 0 1 "Get" ();
              ret 0 1 (Value.int 2);
              call 1 0 "Inc" ();
              ret 1 0 Value.unit;
            ]
        in
        Alcotest.(check bool) "no witness" false
          (Witness.linearizable_full ~specs:counter_specs h));
    test "overlap allows reordering" (fun () ->
        (* Get overlaps the second Inc: Get=2 is justified by ordering Inc
           before it. *)
        let h =
          history
            [
              call 0 0 "Inc" ();
              ret 0 0 Value.unit;
              call 0 1 "Get" ();
              call 1 0 "Inc" ();
              ret 1 0 Value.unit;
              ret 0 1 (Value.int 2);
            ]
        in
        Alcotest.(check bool) "witness" true
          (Witness.linearizable_full ~specs:counter_specs h));
    test "witness requires matching responses" (fun () ->
        let s = serial [ 0, "Get", u, Value.int 0 ] in
        let h_match = history [ call 0 0 "Get" (); ret 0 0 (Value.int 0) ] in
        let h_mismatch = history [ call 0 0 "Get" (); ret 0 0 (Value.int 1) ] in
        Alcotest.(check bool) "match" true (Witness.is_witness ~serial:s h_match);
        Alcotest.(check bool) "mismatch" false (Witness.is_witness ~serial:s h_mismatch));
    test "witness requires per-thread order" (fun () ->
        let s = serial [ 0, "A", u, Value.unit; 0, "B", u, Value.unit ] in
        let h =
          history
            [ call 0 0 "B" (); ret 0 0 Value.unit; call 0 1 "A" (); ret 0 1 Value.unit ]
        in
        Alcotest.(check bool) "wrong order" false (Witness.is_witness ~serial:s h));
    test "stuck witness: justified pending operation" (fun () ->
        (* H: Inc complete, Dec pending; spec says Dec after nothing blocks
           — witness (Dec)# with Inc... no: witness must contain Inc. *)
        let h = history ~stuck:true [ call 0 0 "Dec" () ] in
        let specs = [ serial ~stuck:(0, "Dec", u) [] ] in
        Alcotest.(check bool) "justified" true
          (Result.is_ok (Witness.linearizable_stuck ~specs h)));
    test "stuck witness: unjustified pending operation" (fun () ->
        (* Set completed, Wait still pending: no stuck serial history has
           Wait blocked after Set. *)
        let h =
          history ~stuck:true
            [ call 0 0 "Wait" (); call 1 0 "Set" (); ret 1 0 Value.unit ]
        in
        let specs = [ serial ~stuck:(0, "Wait", u) [] ] in
        match Witness.linearizable_stuck ~specs h with
        | Error op -> Alcotest.(check int) "pending thread" 0 op.Lineup_history.Op.tid
        | Ok () -> Alcotest.fail "expected unjustified");
    test "stuck witness accepts matching completed prefix" (fun () ->
        let h =
          history ~stuck:true
            [ call 1 0 "Set" (); ret 1 0 Value.unit; call 0 0 "Wait" () ]
        in
        let specs = [ serial ~stuck:(0, "Wait", u) [ 1, "Set", u, Value.unit ] ] in
        Alcotest.(check bool) "justified" true
          (Result.is_ok (Witness.linearizable_stuck ~specs h)));
    test "multiple pending ops each need justification" (fun () ->
        let h = history ~stuck:true [ call 0 0 "Wait" (); call 1 0 "Wait" () ] in
        let specs = [ serial ~stuck:(0, "Wait", u) [] ] in
        (* thread 1's H[e] has key (1, Wait), not in specs *)
        match Witness.linearizable_stuck ~specs h with
        | Error op -> Alcotest.(check int) "thread" 1 op.Lineup_history.Op.tid
        | Ok () -> Alcotest.fail "expected unjustified");
    test "find_witness returns the witness" (fun () ->
        let h =
          history
            [ call 0 0 "Inc" (); ret 0 0 Value.unit; call 1 0 "Inc" (); ret 1 0 Value.unit;
              call 0 1 "Get" (); ret 0 1 (Value.int 2) ]
        in
        match Witness.find_witness ~specs:counter_specs h with
        | Some w -> Alcotest.(check int) "ops" 3 (List.length w.Lineup_history.Serial_history.entries)
        | None -> Alcotest.fail "expected a witness");
  ]

let tests = suite
