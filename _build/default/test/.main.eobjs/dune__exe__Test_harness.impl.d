test/test_harness.ml: Adapter Alcotest Fmt Harness Helpers Lineup Lineup_history Lineup_runtime Lineup_scheduler Lineup_value List Option Test_matrix
