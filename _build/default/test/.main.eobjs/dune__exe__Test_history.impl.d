test/test_history.ml: Alcotest Fmt Helpers Lineup_history Lineup_value List
