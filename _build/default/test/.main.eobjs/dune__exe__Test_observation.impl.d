test/test_observation.ml: Alcotest Helpers Lineup Lineup_history Lineup_value Observation Result
