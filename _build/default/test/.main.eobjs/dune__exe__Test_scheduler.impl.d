test/test_scheduler.ml: Alcotest Array Hashtbl Helpers Lineup_runtime Lineup_scheduler List Random
