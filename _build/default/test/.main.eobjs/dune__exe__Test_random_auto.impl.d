test/test_random_auto.ml: Alcotest Auto_check Check Helpers Lineup Lineup_conc List Minimize Random Random_check Seq Test_matrix
