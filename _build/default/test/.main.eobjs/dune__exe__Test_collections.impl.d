test/test_collections.ml: Adapter Alcotest Array Check Helpers Lineup Lineup_conc Lineup_runtime Lineup_value List Report Test_matrix
