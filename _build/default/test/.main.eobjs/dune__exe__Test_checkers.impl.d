test/test_checkers.ml: Alcotest Fmt Helpers Lineup Lineup_checkers Lineup_conc Lineup_runtime Lineup_scheduler List Test_matrix
