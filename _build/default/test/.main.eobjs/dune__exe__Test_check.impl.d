test/test_check.ml: Adapter Alcotest Check Helpers Lineup Lineup_conc Lineup_history Lineup_scheduler Lineup_spec Lineup_value Observation Option Report String Test_matrix
