test/test_lin_check.ml: Alcotest Helpers Lineup_history Lineup_spec Lineup_value List QCheck QCheck_alcotest Result
