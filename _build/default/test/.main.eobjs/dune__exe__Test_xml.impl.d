test/test_xml.ml: Alcotest Fmt Helpers Lineup List Xml
