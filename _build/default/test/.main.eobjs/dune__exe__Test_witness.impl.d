test/test_witness.ml: Alcotest Helpers Lineup_history Lineup_value List Result
