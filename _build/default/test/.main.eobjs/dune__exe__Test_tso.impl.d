test/test_tso.ml: Adapter Alcotest Array Fmt Helpers Lineup Lineup_checkers Lineup_conc Lineup_history Lineup_runtime Lineup_scheduler Lineup_value List Test_matrix
