test/test_spec.ml: Alcotest Helpers Lineup_history Lineup_spec Lineup_value List
