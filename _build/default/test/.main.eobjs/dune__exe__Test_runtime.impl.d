test/test_runtime.ml: Alcotest Helpers Lineup_runtime Lineup_scheduler List
