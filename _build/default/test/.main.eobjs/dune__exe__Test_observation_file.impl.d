test/test_observation_file.ml: Alcotest Check Filename Fun Helpers Lineup Lineup_conc Lineup_history Lineup_spec Lineup_value List Observation Observation_file String Sys Test_matrix Xml
