test/test_value.ml: Alcotest Helpers Lineup_value QCheck QCheck_alcotest
