test/test_serial_history.ml: Alcotest Helpers Lineup_history Lineup_value List
