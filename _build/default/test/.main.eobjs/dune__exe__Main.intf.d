test/main.mli:
