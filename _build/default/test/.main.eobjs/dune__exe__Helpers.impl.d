test/helpers.ml: Alcotest Lineup_history Lineup_value List Option QCheck
