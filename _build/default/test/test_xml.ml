open Helpers
open Lineup

let xml_t = Alcotest.testable (fun ppf x -> Fmt.string ppf (Xml.to_string x)) ( = )

let suite =
  [
    test "roundtrip simple element" (fun () ->
        let x = Xml.Element ("a", [ "k", "v" ], [ Xml.Text "hello" ]) in
        Alcotest.check xml_t "roundtrip" x (Xml.of_string (Xml.to_string x)));
    test "roundtrip nested" (fun () ->
        let x =
          Xml.Element
            ( "root",
              [],
              [
                Xml.Element ("child", [ "id", "1"; "name", "Add" ], []);
                Xml.Element ("child", [ "id", "2" ], [ Xml.Text "1[ ]1" ]);
              ] )
        in
        Alcotest.check xml_t "roundtrip" x (Xml.of_string (Xml.to_string x)));
    test "escaping in text and attributes" (fun () ->
        let x = Xml.Element ("a", [ "k", "a<b&\"c\">" ], [ Xml.Text "x<y>&z\"q\"" ]) in
        Alcotest.check xml_t "roundtrip" x (Xml.of_string (Xml.to_string x)));
    test "self-closing element" (fun () ->
        match Xml.of_string "<op id=\"1\"/>" with
        | Xml.Element ("op", [ ("id", "1") ], []) -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "whitespace between elements is dropped" (fun () ->
        match Xml.of_string "<a>\n  <b/>\n  <c/>\n</a>" with
        | Xml.Element ("a", [], [ Xml.Element ("b", _, _); Xml.Element ("c", _, _) ]) -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "mismatched closing tag rejected" (fun () ->
        match Xml.of_string "<a></b>" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    test "trailing garbage rejected" (fun () ->
        match Xml.of_string "<a/>junk" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    test "unterminated element rejected" (fun () ->
        match Xml.of_string "<a><b/>" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    test "accessors" (fun () ->
        let x = Xml.of_string "<a k=\"v\"><b/>text</a>" in
        Alcotest.(check string) "tag" "a" (Xml.tag x);
        Alcotest.(check string) "attr" "v" (Xml.attr x "k");
        Alcotest.(check (option string)) "attr_opt" None (Xml.attr_opt x "missing");
        Alcotest.(check int) "children" 2 (List.length (Xml.children x));
        Alcotest.(check string) "text" "text" (Xml.text x));
  ]

let tests = suite
