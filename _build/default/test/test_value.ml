open Helpers
module Value = Lineup_value.Value

let roundtrip v () =
  Alcotest.check value "roundtrip" v (Value.of_string (Value.to_string v))

let check_to_string expected v () =
  Alcotest.(check string) "to_string" expected (Value.to_string v)

let suite =
  [
    test "to_string int" (check_to_string "200" (Value.int 200));
    test "to_string negative int" (check_to_string "-5" (Value.int (-5)));
    test "to_string unit" (check_to_string "unit" Value.unit);
    test "to_string fail" (check_to_string "Fail" Value.Fail);
    test "to_string bool" (check_to_string "true" (Value.bool true));
    test "to_string pair" (check_to_string "(1, 2)" (Value.pair (Value.int 1) (Value.int 2)));
    test "to_string list" (check_to_string "[1; 2]" (Value.list [ Value.int 1; Value.int 2 ]));
    test "to_string empty list" (check_to_string "[]" (Value.list []));
    test "to_string option" (check_to_string "Some 3" (Value.some (Value.int 3)));
    test "to_string none" (check_to_string "None" Value.none);
    test "to_string string quoted" (check_to_string {|"hi"|} (Value.str "hi"));
    test "roundtrip int" (roundtrip (Value.int 42));
    test "roundtrip nested"
      (roundtrip
         (Value.pair
            (Value.list [ Value.int 1; Value.Fail; Value.some (Value.bool false) ])
            (Value.str "x \"quoted\" y")));
    test "roundtrip string with newline" (roundtrip (Value.str "a\nb\tc"));
    test "of_string rejects garbage" (fun () ->
        Alcotest.check_raises "garbage" (Invalid_argument "Value.of_string: unrecognized value at position 0 in \"zzz\"")
          (fun () -> ignore (Value.of_string "zzz")));
    test "of_string rejects trailing" (fun () ->
        match Value.of_string "1 2" with
        | exception Invalid_argument _ -> ()
        | v -> Alcotest.failf "expected failure, got %a" Value.pp v);
    test "equal distinguishes constructors" (fun () ->
        Alcotest.(check bool) "unit<>fail" false (Value.equal Value.Unit Value.Fail);
        Alcotest.(check bool) "0<>false" false (Value.equal (Value.int 0) (Value.bool false)));
    test "compare total order on constructors" (fun () ->
        Alcotest.(check bool) "unit < bool" true (Value.compare Value.Unit (Value.bool false) < 0);
        Alcotest.(check int) "refl" 0 (Value.compare Value.Fail Value.Fail));
    test "get_int" (fun () ->
        Alcotest.(check int) "get_int" 7 (Value.get_int (Value.int 7));
        Alcotest.check_raises "get_int fail" (Invalid_argument "Value.get_int: Fail") (fun () ->
            ignore (Value.get_int Value.Fail)));
    test "is_fail" (fun () ->
        Alcotest.(check bool) "fail" true (Value.is_fail Value.Fail);
        Alcotest.(check bool) "int" false (Value.is_fail (Value.int 1)));
  ]

let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"value print/parse roundtrip" ~count:500 value_arb (fun v ->
           Value.equal v (Value.of_string (Value.to_string v))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"value equal agrees with compare" ~count:500
         (QCheck.pair value_arb value_arb) (fun (v1, v2) ->
           Value.equal v1 v2 = (Value.compare v1 v2 = 0)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"equal values have equal hashes" ~count:500 value_arb (fun v ->
           Value.hash v = Value.hash (Value.of_string (Value.to_string v))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"compare is antisymmetric" ~count:500
         (QCheck.pair value_arb value_arb) (fun (v1, v2) ->
           let c12 = Value.compare v1 v2 and c21 = Value.compare v2 v1 in
           (c12 = 0 && c21 = 0) || c12 * c21 < 0));
  ]

let tests = suite @ props
