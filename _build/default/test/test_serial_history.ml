open Helpers
module Value = Lineup_value.Value
module History = Lineup_history.History
module Serial_history = Lineup_history.Serial_history

let u = Value.Unit

let suite =
  [
    test "to_history/of_history roundtrip (full)" (fun () ->
        let s = serial [ 0, "Inc", u, Value.unit; 1, "Get", u, Value.int 1 ] in
        Alcotest.(check (option serial_t))
          "roundtrip" (Some s)
          (Serial_history.of_history (Serial_history.to_history s)));
    test "to_history/of_history roundtrip (stuck)" (fun () ->
        let s = serial ~stuck:(1, "Dec", u) [ 0, "Inc", u, Value.unit ] in
        let h = Serial_history.to_history s in
        Alcotest.(check bool) "stuck" true (History.is_stuck h);
        Alcotest.(check (option serial_t)) "roundtrip" (Some s) (Serial_history.of_history h));
    test "of_history rejects concurrent history" (fun () ->
        let h =
          history [ call 0 0 "A" (); call 1 0 "B" (); ret 0 0 Value.unit; ret 1 0 Value.unit ]
        in
        Alcotest.(check (option serial_t)) "none" None (Serial_history.of_history h));
    test "num_ops counts the pending op" (fun () ->
        let s = serial ~stuck:(1, "Dec", u) [ 0, "Inc", u, Value.unit ] in
        Alcotest.(check int) "ops" 2 (Serial_history.num_ops s));
    test "thread_key groups per thread in order" (fun () ->
        let s =
          serial
            [
              0, "Inc", u, Value.unit;
              1, "Get", u, Value.int 1;
              0, "Get", u, Value.int 1;
            ]
        in
        match Serial_history.thread_key s with
        | [ (0, ops0); (1, ops1) ] ->
          Alcotest.(check int) "thread 0 ops" 2 (List.length ops0);
          Alcotest.(check int) "thread 1 ops" 1 (List.length ops1)
        | _ -> Alcotest.fail "unexpected key shape");
    (* Nondeterminism detection (Section 2.1.2 / 2.3) *)
    test "nondet: same call, different responses" (fun () ->
        let s1 = serial [ 0, "Get", u, Value.int 0 ] in
        let s2 = serial [ 0, "Get", u, Value.int 1 ] in
        Alcotest.(check bool) "nondet" true (Serial_history.nondeterministic_pair s1 s2));
    test "nondet: response vs stuck" (fun () ->
        let s1 = serial [ 0, "Dec", u, Value.unit ] in
        let s2 = serial ~stuck:(0, "Dec", u) [] in
        Alcotest.(check bool) "nondet" true (Serial_history.nondeterministic_pair s1 s2);
        Alcotest.(check bool) "nondet sym" true (Serial_history.nondeterministic_pair s2 s1));
    test "deterministic: different calls after common prefix" (fun () ->
        let s1 = serial [ 0, "Inc", u, Value.unit; 0, "Get", u, Value.int 1 ] in
        let s2 = serial [ 0, "Inc", u, Value.unit; 1, "Get", u, Value.int 1 ] in
        Alcotest.(check bool) "det" false (Serial_history.nondeterministic_pair s1 s2));
    test "deterministic: identical histories" (fun () ->
        let s = serial [ 0, "Inc", u, Value.unit ] in
        Alcotest.(check bool) "det" false (Serial_history.nondeterministic_pair s s));
    test "deterministic: same invocation by different threads may differ" (fun () ->
        (* the formal definition is thread-sensitive: divergence after a
           return event is fine *)
        let s1 = serial [ 0, "TryTake", u, Value.int 1 ] in
        let s2 = serial [ 1, "TryTake", u, Value.Fail ] in
        Alcotest.(check bool) "det" false (Serial_history.nondeterministic_pair s1 s2));
    test "nondet deep in the history" (fun () ->
        let prefix = [ 0, "Inc", u, Value.unit; 1, "Inc", u, Value.unit ] in
        let s1 = serial (prefix @ [ 0, "Get", u, Value.int 2 ]) in
        let s2 = serial (prefix @ [ 0, "Get", u, Value.int 1 ]) in
        Alcotest.(check bool) "nondet" true (Serial_history.nondeterministic_pair s1 s2));
    test "deterministic: diverging prefixes" (fun () ->
        let s1 = serial [ 0, "Inc", u, Value.unit; 0, "Get", u, Value.int 1 ] in
        let s2 = serial [ 0, "Get", u, Value.int 0; 0, "Inc", u, Value.unit ] in
        Alcotest.(check bool) "det" false (Serial_history.nondeterministic_pair s1 s2));
    test "deterministic: both stuck at same point" (fun () ->
        let s1 = serial ~stuck:(0, "Dec", u) [] in
        let s2 = serial ~stuck:(0, "Dec", u) [] in
        Alcotest.(check bool) "det" false (Serial_history.nondeterministic_pair s1 s2));
    test "deterministic: stuck at different invocations" (fun () ->
        let s1 = serial ~stuck:(0, "Dec", u) [] in
        let s2 = serial ~stuck:(1, "Take", u) [] in
        Alcotest.(check bool) "det" false (Serial_history.nondeterministic_pair s1 s2));
    test "set semantics: compare orders entries" (fun () ->
        let s1 = serial [ 0, "Inc", u, Value.unit ] in
        let s2 = serial [ 0, "Inc", u, Value.unit ] in
        Alcotest.(check int) "equal compare" 0 (Serial_history.compare s1 s2);
        let set = Serial_history.Set.of_list [ s1; s2 ] in
        Alcotest.(check int) "deduped" 1 (Serial_history.Set.cardinal set));
  ]

let tests = suite
