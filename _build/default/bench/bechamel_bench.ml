(* Bechamel micro-benchmarks: one Test.make per table/figure driver, timing
   the hot paths that regenerate them — phase 1 (serial enumeration), the
   two-phase check, witness search, and the direct WGL checker used as the
   oracle. *)

open Bench_common
module Conc = Lineup_conc
module Specs = Lineup_spec.Specs
module Lin_check = Lineup_spec.Lin_check
module Explore = Lineup_scheduler.Explore
open Lineup
open Bechamel
open Toolkit

let fig1_test =
  Test_matrix.make
    [ [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ]; [ inv "TryDequeue"; inv "TryDequeue" ] ]

let small_counter_test = Test_matrix.make [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]

(* A fixed concurrent history + observation set for witness-search timing. *)
let witness_fixture =
  let r = Check.run Conc.Counters.correct small_counter_test in
  let obs = r.Check.observation in
  let h =
    let open Lineup_history in
    History.make
      [
        Event.call ~tid:0 ~op_index:0 (inv "Inc");
        Event.call ~tid:1 ~op_index:0 (inv "Inc");
        Event.return ~tid:0 ~op_index:0 Lineup_value.Value.Unit;
        Event.return ~tid:1 ~op_index:0 Lineup_value.Value.Unit;
        Event.call ~tid:0 ~op_index:1 (inv "Get");
        Event.return ~tid:0 ~op_index:1 (Lineup_value.Value.Int 2);
      ]
  in
  obs, h

let phase1_only_config =
  {
    Check.default_config with
    Check.phase2 = { Explore.serial_config with Explore.max_executions = Some 1 };
  }

let tests =
  [
    (* Table 2 driver: one full two-phase check of a small test *)
    Test.make ~name:"check-2x2-counter (T2 row)" (Staged.stage (fun () ->
        ignore (Check.run Conc.Counters.correct small_counter_test)));
    (* Figure 1 driver: two-phase check that finds the queue violation *)
    Test.make ~name:"check-fig1-queue (F1)" (Staged.stage (fun () ->
        ignore (Check.run Conc.Concurrent_queue.pre fig1_test)));
    (* Figure 7 / §5.4 driver: phase 1 serial enumeration of the 2x2 test *)
    Test.make ~name:"phase1-2x2-queue (F7, AB3)" (Staged.stage (fun () ->
        ignore (Check.run ~config:phase1_only_config Conc.Concurrent_queue.correct fig1_test)));
    (* Phase-2 inner loop: witness search for one history *)
    Test.make ~name:"witness-search (T2 inner loop)" (Staged.stage (fun () ->
        let obs, h = witness_fixture in
        ignore (Observation.find_witness_full obs h)));
    (* The oracle: direct Wing-Gong-Lowe check of the same history *)
    Test.make ~name:"wgl-direct-check (oracle)" (Staged.stage (fun () ->
        let _, h = witness_fixture in
        ignore (Lin_check.check Specs.counter h)));
    (* Figure 9 driver: generalized (stuck-history) check *)
    Test.make ~name:"check-fig9-mre (F9)" (Staged.stage (fun () ->
        ignore
          (Check.run Conc.Manual_reset_event.lost_signal
             (Test_matrix.make [ [ inv "Wait" ]; [ inv "Set" ] ]))));
  ]

let run () =
  hr "Bechamel micro-benchmarks (per-table/figure drivers)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw =
    Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name:"lineup" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Fmt.pr "%-45s %15s %10s@." "benchmark" "time/run" "r²";
  Fmt.pr "%s@." (String.make 75 '-');
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols) in
      let time_str ns =
        if ns > 1e9 then Fmt.str "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Fmt.str "%.2f us" (ns /. 1e3)
        else Fmt.str "%.0f ns" ns
      in
      Fmt.pr "%-45s %15s %10.4f@." name (time_str estimate) r2)
    rows
