bench/table2.ml: Adapter Bench_common Check Float Fmt Lineup Lineup_conc Lineup_scheduler List Minimize Random Random_check String Test_matrix Unix
