bench/figures.ml: Bench_common Check Fmt Lineup Lineup_conc Observation_file Report Test_matrix
