bench/table1.ml: Adapter Bench_common Fmt Hashtbl Lineup Lineup_conc Lineup_history List String
