bench/ablations.ml: Adapter Array Bench_common Check Fmt Harness Lineup Lineup_conc Lineup_history Lineup_scheduler List Observation Option Random Random_check Report Result String Test_matrix Unix
