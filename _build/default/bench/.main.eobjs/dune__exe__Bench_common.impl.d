bench/bench_common.ml: Check Fmt Lineup Lineup_conc Lineup_history Lineup_scheduler Lineup_value List
