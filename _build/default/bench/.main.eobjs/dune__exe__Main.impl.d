bench/main.ml: Ablations Arg Bechamel_bench Bench_common Figures Fmt List Sections Table1 Table2 Unix
