bench/sections.ml: Adapter Array Bench_common Check Fmt Hashtbl Lineup Lineup_checkers Lineup_conc Lineup_scheduler List Observation Random Report String Test_matrix
