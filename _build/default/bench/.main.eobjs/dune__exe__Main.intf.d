bench/main.mli:
