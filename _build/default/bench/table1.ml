(* Table 1 of the paper: the classes under test and the methods checked.
   The paper reports the .NET class sizes; we report our reimplementation
   inventory: class, versions available, and the invocation universe used
   for automatic test generation. *)

open Bench_common
module Conc = Lineup_conc
open Lineup

let method_names (adapter : Adapter.t) =
  adapter.Adapter.universe
  |> List.map (fun (i : Lineup_history.Invocation.t) -> i.name)
  |> List.sort_uniq String.compare

let run () =
  hr "Table 1: classes and methods checked";
  let by_class : (string, Conc.Registry.entry list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (e : Conc.Registry.entry) ->
      match Hashtbl.find_opt by_class e.class_name with
      | Some l -> l := e :: !l
      | None ->
        Hashtbl.replace by_class e.class_name (ref [ e ]);
        order := e.class_name :: !order)
    Conc.Registry.all;
  Fmt.pr "%-22s %-10s %-3s %s@." "Class" "Versions" "Ops" "Methods checked";
  Fmt.pr "%s@." (String.make 100 '-');
  List.iter
    (fun class_name ->
      let entries = !(Hashtbl.find by_class class_name) in
      let versions =
        entries
        |> List.map (fun (e : Conc.Registry.entry) ->
               match e.version with `Beta2 -> "beta2" | `Pre -> "pre")
        |> List.sort_uniq String.compare
        |> String.concat "+"
      in
      let adapter = (List.hd entries).Conc.Registry.adapter in
      let methods = method_names adapter in
      Fmt.pr "%-22s %-10s %-3d %s@." class_name versions
        (List.length adapter.Adapter.universe)
        (String.concat ", " methods))
    (List.rev !order);
  Fmt.pr "@.%d classes, %d adapters (correct + seeded-defect variants)@."
    (Hashtbl.length by_class)
    (List.length Conc.Registry.all)
