(* Figures 1, 7 and 9 of the paper. *)

open Bench_common
module Conc = Lineup_conc
open Lineup

let fig1 opts =
  hr "Figure 1: the CTP ConcurrentQueue bug (TryTake fails on a non-empty queue)";
  let adapter = Conc.Concurrent_queue.pre in
  let test =
    Test_matrix.make
      [
        [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ];
        [ inv "TryDequeue"; inv "TryDequeue" ];
      ]
  in
  let r = Check.run ~config:(check_config opts) adapter test in
  Fmt.pr "%s@." (Report.check_result_to_string ~adapter ~test r);
  let fixed = Check.run ~config:(check_config opts) Conc.Concurrent_queue.correct test in
  Fmt.pr "@.Beta2 (fixed) queue on the same test: %s@." (Report.summary fixed)

let fig7 opts =
  hr "Figure 7: observation file of the 2x2 Add/Add vs Take/TryTake test";
  let adapter = Conc.Blocking_collection.fifo in
  let test =
    Test_matrix.make [ [ inv_int "Add" 200; inv_int "Add" 400 ]; [ inv "Take"; inv "TryTake" ] ]
  in
  let r = Check.run ~config:(check_config opts) adapter test in
  Fmt.pr "Verdict: %s@.@." (Report.summary r);
  Fmt.pr "%s@." (Observation_file.to_string r.Check.observation)

let fig9 opts =
  hr "Figure 9: ManualResetEvent — a thread that is never unblocked";
  let adapter = Conc.Manual_reset_event.lost_signal in
  let test = Test_matrix.make [ [ inv "Wait" ] ; [ inv "Set" ] ] in
  Fmt.pr "Lost-signal variant on {Wait / Set}:@.";
  let r = Check.run ~config:(check_config opts) adapter test in
  Fmt.pr "%s@.@." (Report.check_result_to_string ~adapter ~test r);
  let classic =
    Check.run ~config:{ (check_config opts) with Check.classic_only = true } adapter test
  in
  Fmt.pr "Same test under classic linearizability (Definition 1 only): %s@.@."
    (Report.summary classic);
  let adapter = Conc.Manual_reset_event.cas_typo in
  let test = Test_matrix.make [ [ inv "Wait"; inv "IsSet" ]; [ inv "Set"; inv "Reset" ] ] in
  Fmt.pr "CAS-typo variant (the paper's literal defect) on {Wait;IsSet / Set;Reset}:@.";
  let r = Check.run ~config:(check_config opts) adapter test in
  Fmt.pr "%s@.@." (Report.check_result_to_string ~adapter ~test r);
  let correct = Conc.Manual_reset_event.correct in
  let fig9_matrix =
    Test_matrix.make [ [ inv "Wait" ]; [ inv "Set"; inv "Reset"; inv "Set" ] ]
  in
  let r = Check.run ~config:(check_config opts) correct fig9_matrix in
  Fmt.pr "Corrected MRE on the original Fig. 9 matrix {Wait / Set;Reset;Set}: %s@."
    (Report.summary r)
