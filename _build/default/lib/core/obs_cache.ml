module Invocation = Lineup_history.Invocation

let test_key (test : Test_matrix.t) =
  let col invs = String.concat ";" (List.map Invocation.to_string invs) in
  String.concat "|"
    (col test.init
     :: Array.to_list (Array.map col test.columns)
     @ [ col test.final ])

let cache_path ~dir (adapter : Adapter.t) test =
  let digest = Digest.to_hex (Digest.string (adapter.Adapter.name ^ "\x00" ^ test_key test)) in
  Filename.concat dir (Fmt.str "%s.xml" digest)

let phase1 ?config ~dir adapter test =
  let path = cache_path ~dir adapter test in
  if Sys.file_exists path then begin
    let histories = Observation_file.load ~path in
    match Observation_file.observation_of_histories histories with
    | Ok obs -> Ok (obs, true)
    | Error (s1, s2) -> Error (Check.Nondeterministic (s1, s2))
  end
  else begin
    match Check.synthesize ?config adapter test with
    | Ok (obs, _report) ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Observation_file.save ~path obs;
      Ok (obs, false)
    | Error (v, _report) -> Error v
  end

let check ?config ~dir adapter test =
  match phase1 ?config ~dir adapter test with
  | Ok (observation, _hit) -> Check.run ?config ~observation adapter test
  | Error _ ->
    (* a phase-1 violation (cached or fresh): run uncached so the result
       reflects the current implementation *)
    Check.run ?config adapter test
