type t =
  | Element of string * (string * string) list * t list
  | Text of string

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      let rest = String.sub s !i (min 6 (n - !i)) in
      let emit ent c =
        Buffer.add_char buf c;
        i := !i + String.length ent
      in
      if String.length rest >= 5 && String.sub rest 0 5 = "&amp;" then emit "&amp;" '&'
      else if String.length rest >= 4 && String.sub rest 0 4 = "&lt;" then emit "&lt;" '<'
      else if String.length rest >= 4 && String.sub rest 0 4 = "&gt;" then emit "&gt;" '>'
      else if String.length rest >= 6 && String.sub rest 0 6 = "&quot;" then emit "&quot;" '"'
      else begin
        Buffer.add_char buf '&';
        incr i
      end
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let rec render buf indent node =
  let pad = String.make indent ' ' in
  match node with
  | Text s ->
    Buffer.add_string buf pad;
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '\n'
  | Element (tag, attrs, children) ->
    Buffer.add_string buf pad;
    Buffer.add_char buf '<';
    Buffer.add_string buf tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape v);
        Buffer.add_char buf '"')
      attrs;
    (match children with
     | [] -> Buffer.add_string buf "/>\n"
     | [ Text s ] ->
       (* single text child inline, matching the compact style of Fig. 7 *)
       Buffer.add_char buf '>';
       Buffer.add_string buf (escape s);
       Buffer.add_string buf "</";
       Buffer.add_string buf tag;
       Buffer.add_string buf ">\n"
     | children ->
       Buffer.add_string buf ">\n";
       List.iter (render buf (indent + 2)) children;
       Buffer.add_string buf pad;
       Buffer.add_string buf "</";
       Buffer.add_string buf tag;
       Buffer.add_string buf ">\n")

let to_string node =
  let buf = Buffer.create 1024 in
  render buf 0 node;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Malformed of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Malformed (Fmt.str "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && input.[!pos] = c then incr pos else error (Fmt.str "expected %C" c)
  in
  let is_name_char c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '.' -> true | _ -> false
  in
  let parse_name () =
    let start = !pos in
    while !pos < n && is_name_char input.[!pos] do
      incr pos
    done;
    if !pos = start then error "expected name";
    String.sub input start (!pos - start)
  in
  let parse_attr_value () =
    expect '"';
    let start = !pos in
    while !pos < n && input.[!pos] <> '"' do
      incr pos
    done;
    if !pos >= n then error "unterminated attribute value";
    let v = String.sub input start (!pos - start) in
    expect '"';
    unescape v
  in
  let rec parse_element () =
    expect '<';
    let tag = parse_name () in
    let attrs = ref [] in
    let rec attrs_loop () =
      skip_ws ();
      match peek () with
      | Some '/' | Some '>' -> ()
      | Some c when is_name_char c ->
        let k = parse_name () in
        skip_ws ();
        expect '=';
        skip_ws ();
        let v = parse_attr_value () in
        attrs := (k, v) :: !attrs;
        attrs_loop ()
      | _ -> error "malformed attribute list"
    in
    attrs_loop ();
    let attrs = List.rev !attrs in
    match peek () with
    | Some '/' ->
      incr pos;
      expect '>';
      Element (tag, attrs, [])
    | Some '>' ->
      incr pos;
      let children = parse_children tag in
      Element (tag, attrs, children)
    | _ -> error "malformed tag"
  and parse_children tag =
    let children = ref [] in
    let finished = ref false in
    while not !finished do
      (* gather text up to the next '<' *)
      let start = !pos in
      while !pos < n && input.[!pos] <> '<' do
        incr pos
      done;
      if !pos > start then begin
        let raw = String.sub input start (!pos - start) in
        if String.trim raw <> "" then children := Text (unescape (String.trim raw)) :: !children
      end;
      if !pos >= n then error (Fmt.str "unterminated element <%s>" tag);
      if !pos + 1 < n && input.[!pos + 1] = '/' then begin
        pos := !pos + 2;
        let closing = parse_name () in
        if closing <> tag then error (Fmt.str "mismatched closing tag </%s> for <%s>" closing tag);
        skip_ws ();
        expect '>';
        finished := true
      end
      else children := parse_element () :: !children
    done;
    List.rev !children
  in
  skip_ws ();
  match parse_element () with
  | node ->
    skip_ws ();
    if !pos <> n then invalid_arg "Xml.of_string: trailing input";
    node
  | exception Malformed msg -> invalid_arg ("Xml.of_string: " ^ msg)

let tag = function
  | Element (t, _, _) -> t
  | Text _ -> invalid_arg "Xml.tag: text node"

let attr_opt node k =
  match node with
  | Element (_, attrs, _) -> List.assoc_opt k attrs
  | Text _ -> None

let attr node k =
  match attr_opt node k with
  | Some v -> v
  | None -> invalid_arg (Fmt.str "Xml.attr: missing attribute %s" k)

let children = function
  | Element (_, _, c) -> c
  | Text _ -> []

let elements node =
  List.filter_map
    (function Element (t, _, _) as e -> Some (t, e) | Text _ -> None)
    (children node)

let text node =
  String.concat "" (List.filter_map (function Text s -> Some s | Element _ -> None) (children node))
