(** Finite tests (Section 3.1): a map from threads to invocation sequences,
    conveniently viewed as a matrix whose columns are threads.

    Following Section 4.3, a test may also carry [init] and [final]
    invocation sequences: [init] runs before the threads start (unrecorded,
    single-threaded), [final] runs after all threads complete (recorded as
    operations of an extra observer thread) — useful to seed state and to
    observe the final state. *)

type t = {
  columns : Lineup_history.Invocation.t list array;
      (** [columns.(t)] is [m(t)], the invocation sequence of thread [t] *)
  init : Lineup_history.Invocation.t list;
  final : Lineup_history.Invocation.t list;
}

val make :
  ?init:Lineup_history.Invocation.t list ->
  ?final:Lineup_history.Invocation.t list ->
  Lineup_history.Invocation.t list list ->
  t

val num_threads : t -> int

(** Total number of invocations across all columns (excluding init/final). *)
val num_invocations : t -> int

(** [dims m] = (max column length, number of columns) — the paper's
    "p × q matrix" view. *)
val dims : t -> int * int

(** [is_prefix m m'] — [m(t)] is a prefix of [m'(t)] for all [t] (Section
    3.1); init and final sequences must be equal. *)
val is_prefix : t -> t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** All tests of dimension [rows × cols] with entries drawn from
    [invocations] — the paper's [M_{p×q}^I]. The sequence is lazy;
    there are [|I|^(rows*cols)] elements. *)
val enumerate :
  invocations:Lineup_history.Invocation.t list -> rows:int -> cols:int -> t Seq.t

(** A uniformly random element of [M_{rows×cols}^I], with optional fixed
    init/final sequences (§4.3: "initial and final sequences of operations
    to perform before and after each test"). *)
val random :
  ?init:Lineup_history.Invocation.t list ->
  ?final:Lineup_history.Invocation.t list ->
  rng:Random.State.t ->
  invocations:Lineup_history.Invocation.t list ->
  rows:int ->
  cols:int ->
  unit ->
  t

(** [random_seqs ~sequences ~rows ~cols] draws whole invocation {e
    sequences} per cell instead of single invocations — §4.3: "We also allow
    users to specify entire sequences of invocations to be used when
    constructing tests. Any professional experience of the tester about how
    to construct effective tests can thus be easily integrated". Each column
    is the concatenation of [rows] sequences drawn uniformly from
    [sequences]. *)
val random_seqs :
  ?init:Lineup_history.Invocation.t list ->
  ?final:Lineup_history.Invocation.t list ->
  rng:Random.State.t ->
  sequences:Lineup_history.Invocation.t list list ->
  rows:int ->
  cols:int ->
  unit ->
  t
