lib/core/random_check.ml: Check Domain List Option Random Test_matrix
