lib/core/test_matrix.ml: Array Fmt Fun Lineup_history List Random Seq
