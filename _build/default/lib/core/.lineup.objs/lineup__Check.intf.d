lib/core/check.mli: Adapter Format Lineup_history Lineup_scheduler Observation Stdlib Test_matrix
