lib/core/harness.ml: Adapter Array Lineup_history Lineup_runtime Lineup_scheduler List Option Test_matrix
