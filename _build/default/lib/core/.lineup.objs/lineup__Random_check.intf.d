lib/core/random_check.mli: Adapter Check Lineup_history Random Test_matrix
