lib/core/harness.mli: Adapter Lineup_history Lineup_runtime Lineup_scheduler Random Test_matrix
