lib/core/report.ml: Adapter Check Fmt Lineup_history Lineup_scheduler Observation_file Test_matrix Xml
