lib/core/observation.mli: Lineup_history
