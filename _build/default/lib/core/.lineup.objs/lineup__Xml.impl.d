lib/core/xml.ml: Buffer Fmt List String
