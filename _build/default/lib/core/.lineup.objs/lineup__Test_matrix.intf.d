lib/core/test_matrix.mli: Format Lineup_history Random Seq
