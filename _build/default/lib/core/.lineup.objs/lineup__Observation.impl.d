lib/core/observation.ml: Hashtbl Int Lineup_history Lineup_value List Option
