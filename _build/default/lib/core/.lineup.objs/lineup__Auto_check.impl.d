lib/core/auto_check.ml: Adapter Check List Seq Test_matrix
