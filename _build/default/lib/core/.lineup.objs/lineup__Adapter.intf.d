lib/core/adapter.mli: Lineup_history Lineup_value
