lib/core/observation_file.mli: Lineup_history Lineup_value Observation Xml
