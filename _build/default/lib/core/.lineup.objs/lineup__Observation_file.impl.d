lib/core/observation_file.ml: Char Fmt Fun Hashtbl Int Lineup_history Lineup_value List Observation Option Stdlib String Xml
