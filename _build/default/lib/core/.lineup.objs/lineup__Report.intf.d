lib/core/report.mli: Adapter Check Format Test_matrix
