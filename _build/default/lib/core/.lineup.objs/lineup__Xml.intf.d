lib/core/xml.mli:
