lib/core/obs_cache.mli: Adapter Check Observation Test_matrix
