lib/core/check.ml: Fmt Harness Hashtbl Lineup_history Lineup_scheduler Observation Printexc Result Stdlib Unix
