lib/core/adapter.ml: Lineup_history Lineup_value List String
