lib/core/auto_check.mli: Adapter Check Test_matrix
