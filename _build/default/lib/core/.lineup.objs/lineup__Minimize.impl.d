lib/core/minimize.ml: Array Check Lineup_history List Test_matrix
