lib/core/obs_cache.ml: Adapter Array Check Digest Filename Fmt Lineup_history List Observation_file String Sys Test_matrix
