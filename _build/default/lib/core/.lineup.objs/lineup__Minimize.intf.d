lib/core/minimize.mli: Adapter Check Test_matrix
