(** Violation reports in the style of Fig. 7 (bottom).

    "Line-Up encountered a non-linearizable history", followed by the test,
    the thread/op table of the violating history's section, and the
    interleaving — enough to understand the misbehavior without any
    knowledge of the implementation. *)

val pp_check_result :
  Format.formatter -> adapter:Adapter.t -> test:Test_matrix.t -> Check.result -> unit

val check_result_to_string : adapter:Adapter.t -> test:Test_matrix.t -> Check.result -> string

(** One-line verdict, e.g. ["PASS (1680 serial histories, 3120 executions)"]
    or ["FAIL: non-linearizable history"]. *)
val summary : Check.result -> string
