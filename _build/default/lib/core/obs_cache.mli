(** On-disk caching of phase-1 observation sets.

    §4.1 of the paper: "The set of observed serial histories Z is recorded
    in a file (called the observation file)" — the two phases are separate
    CHESS invocations communicating through that file, which also serves
    regression testing (re-checking a changed implementation against the
    previously recorded specification).

    The cache key combines the adapter name and the full test content, so a
    changed test never reuses a stale specification. Cached files are the
    Fig. 7 XML format, hence human-readable and diffable. *)

(** [phase1 ?config ~dir adapter test] returns the observation set for
    [test], loading it from [dir] when present and running + recording
    phase 1 otherwise. [Error] propagates a phase-1 violation (possible
    only on a cache miss; a cached file of a deterministic run stays
    deterministic). The [bool] is [true] on a cache hit. *)
val phase1 :
  ?config:Check.config ->
  dir:string ->
  Adapter.t ->
  Test_matrix.t ->
  (Observation.t * bool, Check.violation) result

(** [check ?config ~dir adapter test] — [Check.run] with the phase-1 result
    cached in [dir]. *)
val check : ?config:Check.config -> dir:string -> Adapter.t -> Test_matrix.t -> Check.result

(** The cache file used for a given adapter/test pair (inside [dir]). *)
val cache_path : dir:string -> Adapter.t -> Test_matrix.t -> string
