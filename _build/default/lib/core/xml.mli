(** A minimal XML reader/writer, sufficient for the observation-file format
    of Fig. 7 (elements, attributes, text content; no namespaces, CDATA,
    comments or processing instructions). Self-contained so the library has
    no external XML dependency. *)

type t =
  | Element of string * (string * string) list * t list
  | Text of string

val escape : string -> string

(** Render with 2-space indentation. Text nodes are escaped. *)
val to_string : t -> string

(** Parse one element (leading/trailing whitespace allowed). Raises
    [Invalid_argument] on malformed input. Whitespace-only text nodes
    between elements are dropped. *)
val of_string : string -> t

(** Helpers over parsed trees; raise [Invalid_argument] on shape errors. *)

val attr : t -> string -> string
val attr_opt : t -> string -> string option
val children : t -> t list
val elements : t -> (string * t) list
(** child elements with their tags *)

val text : t -> string
(** concatenated text content of an element *)

val tag : t -> string
