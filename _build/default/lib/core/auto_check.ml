type outcome =
  | Failed of { test : Test_matrix.t; result : Check.result; tests_run : int }
  | Budget_exhausted of { tests_run : int }

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let run ?config ~max_tests (adapter : Adapter.t) =
  let tests_run = ref 0 in
  let result = ref None in
  let universe_size = List.length adapter.universe in
  (try
     let n = ref 1 in
     while true do
       let invocations = take (min !n universe_size) adapter.universe in
       Seq.iter
         (fun test ->
           if !tests_run >= max_tests then raise Exit;
           incr tests_run;
           let r = Check.run ?config adapter test in
           if not (Check.passed r) then begin
             result := Some (Failed { test; result = r; tests_run = !tests_run });
             raise Exit
           end)
         (Test_matrix.enumerate ~invocations ~rows:!n ~cols:!n);
       incr n
     done
   with Exit -> ());
  match !result with
  | Some r -> r
  | None -> Budget_exhausted { tests_run = !tests_run }
