module Invocation = Lineup_history.Invocation

type t = {
  columns : Invocation.t list array;
  init : Invocation.t list;
  final : Invocation.t list;
}

let make ?(init = []) ?(final = []) columns = { columns = Array.of_list columns; init; final }
let num_threads m = Array.length m.columns
let num_invocations m = Array.fold_left (fun acc c -> acc + List.length c) 0 m.columns

let dims m =
  let rows = Array.fold_left (fun acc c -> max acc (List.length c)) 0 m.columns in
  rows, Array.length m.columns

let is_prefix m m' =
  let col_prefix c c' =
    let rec go = function
      | [], _ -> true
      | x :: xs, y :: ys -> Invocation.equal x y && go (xs, ys)
      | _ :: _, [] -> false
    in
    go (c, c')
  in
  Array.length m.columns <= Array.length m'.columns
  && Array.for_all Fun.id
       (Array.mapi (fun i c -> col_prefix c m'.columns.(i)) m.columns)
  && List.equal Invocation.equal m.init m'.init
  && List.equal Invocation.equal m.final m'.final

let equal m m' =
  Array.length m.columns = Array.length m'.columns
  && Array.for_all2 (List.equal Invocation.equal) m.columns m'.columns
  && List.equal Invocation.equal m.init m'.init
  && List.equal Invocation.equal m.final m'.final

let pp ppf m =
  let pp_col ppf (i, col) =
    Fmt.pf ppf "%s: %a"
      (Lineup_history.Event.thread_label i)
      (Fmt.list ~sep:(Fmt.any "; ") Invocation.pp)
      col
  in
  let cols = Array.to_list (Array.mapi (fun i c -> i, c) m.columns) in
  Fmt.pf ppf "@[<v>";
  if m.init <> [] then
    Fmt.pf ppf "init: %a@," (Fmt.list ~sep:(Fmt.any "; ") Invocation.pp) m.init;
  Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut pp_col) cols;
  if m.final <> [] then
    Fmt.pf ppf "@,final: %a" (Fmt.list ~sep:(Fmt.any "; ") Invocation.pp) m.final;
  Fmt.pf ppf "@]"

let enumerate ~invocations ~rows ~cols =
  let invs = Array.of_list invocations in
  let k = Array.length invs in
  if k = 0 then invalid_arg "Test_matrix.enumerate: empty invocation set";
  let cells = rows * cols in
  (* Enumerate assignments of cells to invocation indices as base-k counters. *)
  let of_counter counter =
    let column c = List.init rows (fun r -> invs.(counter.((c * rows) + r))) in
    { columns = Array.init cols column; init = []; final = [] }
  in
  let rec next counter i =
    if i >= cells then None
    else if counter.(i) + 1 < k then begin
      counter.(i) <- counter.(i) + 1;
      Some counter
    end
    else begin
      counter.(i) <- 0;
      next counter (i + 1)
    end
  in
  let rec seq counter () =
    match counter with
    | None -> Seq.Nil
    | Some c ->
      let m = of_counter c in
      let c' = next (Array.copy c) 0 in
      Seq.Cons (m, seq c')
  in
  seq (Some (Array.make cells 0))

let random ?(init = []) ?(final = []) ~rng ~invocations ~rows ~cols () =
  let invs = Array.of_list invocations in
  let k = Array.length invs in
  if k = 0 then invalid_arg "Test_matrix.random: empty invocation set";
  let column _ = List.init rows (fun _ -> invs.(Random.State.int rng k)) in
  { columns = Array.init cols column; init; final }

let random_seqs ?(init = []) ?(final = []) ~rng ~sequences ~rows ~cols () =
  let seqs = Array.of_list sequences in
  let k = Array.length seqs in
  if k = 0 then invalid_arg "Test_matrix.random_seqs: empty sequence set";
  let column _ = List.concat (List.init rows (fun _ -> seqs.(Random.State.int rng k))) in
  { columns = Array.init cols column; init; final }
