type test_outcome = {
  test : Test_matrix.t;
  result : Check.result;
}

type report = {
  outcomes : test_outcome list;
  passed : int;
  failed : int;
  first_failure : test_outcome option;
}

let run_custom ?config ?(stop_at_first = false) ~gen ~samples adapter =
  let outcomes = ref [] in
  let passed = ref 0 in
  let failed = ref 0 in
  let first_failure = ref None in
  (try
     for _ = 1 to samples do
       let test = gen () in
       let result = Check.run ?config adapter test in
       let outcome = { test; result } in
       outcomes := outcome :: !outcomes;
       if Check.passed result then incr passed
       else begin
         incr failed;
         if Option.is_none !first_failure then first_failure := Some outcome;
         if stop_at_first then raise Exit
       end
     done
   with Exit -> ());
  {
    outcomes = List.rev !outcomes;
    passed = !passed;
    failed = !failed;
    first_failure = !first_failure;
  }

let run ?config ?stop_at_first ?(init = []) ?(final = []) ~rng ~invocations ~rows ~cols ~samples
    adapter =
  let gen () = Test_matrix.random ~init ~final ~rng ~invocations ~rows ~cols () in
  run_custom ?config ?stop_at_first ~gen ~samples adapter

let run_seqs ?config ?stop_at_first ?(init = []) ?(final = []) ~rng ~sequences ~rows ~cols
    ~samples adapter =
  let gen () = Test_matrix.random_seqs ~init ~final ~rng ~sequences ~rows ~cols () in
  run_custom ?config ?stop_at_first ~gen ~samples adapter

let merge reports =
  let outcomes = List.concat_map (fun r -> r.outcomes) reports in
  {
    outcomes;
    passed = List.fold_left (fun acc r -> acc + r.passed) 0 reports;
    failed = List.fold_left (fun acc r -> acc + r.failed) 0 reports;
    first_failure =
      List.find_opt (fun o -> not (Check.passed o.result)) outcomes;
  }

let run_parallel ?config ?(init = []) ?(final = []) ~domains ~seed ~invocations ~rows ~cols
    ~samples adapter =
  if domains < 1 then invalid_arg "Random_check.run_parallel: domains must be >= 1";
  let per = samples / domains and extra = samples mod domains in
  let worker i () =
    let n = per + if i < extra then 1 else 0 in
    let rng = Random.State.make [| seed; i |] in
    run ?config ~init ~final ~rng ~invocations ~rows ~cols ~samples:n adapter
  in
  let spawned = List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  let mine = worker 0 () in
  merge (mine :: List.map Domain.join spawned)
