(** [AutoCheck(X)] — Fig. 6: fully automatic checking.

    For n = 1, 2, 3, … let [I_n] be the first [n] invocations of the
    adapter's universe and run [Check] on every test in [M_{n×n}^{I_n}].
    On an implementation that is not deterministically linearizable this
    eventually fails (Theorem 7 — soundness); on a correct implementation it
    does not terminate, so a budget of tests must be supplied. *)

type outcome =
  | Failed of { test : Test_matrix.t; result : Check.result; tests_run : int }
  | Budget_exhausted of { tests_run : int }

(** [run ?config ~max_tests adapter] executes the AutoCheck loop until a
    violation is found or [max_tests] Check invocations have been spent. *)
val run : ?config:Check.config -> max_tests:int -> Adapter.t -> outcome
