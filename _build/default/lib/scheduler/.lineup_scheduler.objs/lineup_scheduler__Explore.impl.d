lib/scheduler/explore.ml: Array Effect Fmt Lineup_runtime List Option Random
