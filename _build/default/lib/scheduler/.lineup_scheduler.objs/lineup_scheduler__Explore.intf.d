lib/scheduler/explore.mli: Format Random
