module Value = Lineup_value.Value

type t = {
  name : string;
  arg : Value.t;
}

let make ?(arg = Value.Unit) name = { name; arg }
let equal i1 i2 = String.equal i1.name i2.name && Value.equal i1.arg i2.arg

let compare i1 i2 =
  let c = String.compare i1.name i2.name in
  if c <> 0 then c else Value.compare i1.arg i2.arg

let hash i = (Hashtbl.hash i.name * 31) + Value.hash i.arg

let pp ppf i =
  match i.arg with
  | Value.Unit -> Fmt.string ppf i.name
  | arg -> Fmt.pf ppf "%s(%a)" i.name Value.pp arg

let to_string i = Fmt.str "%a" pp i
