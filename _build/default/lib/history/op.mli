(** Operations (Section 2.1.3): an invocation paired with its matching
    response, if any.

    [call_pos] (and [ret_pos] when complete) locate the operation's events in
    the enclosing history, giving a cheap implementation of the precedence
    order [<H]: [e1 <H e2] iff the return of [e1] occurs before the call of
    [e2]. *)

type t = {
  tid : int;
  op_index : int;  (** per-thread sequence number *)
  inv : Invocation.t;
  resp : Lineup_value.Value.t option;  (** [None] when the operation is pending *)
  call_pos : int;
  ret_pos : int option;
}

val is_pending : t -> bool
val is_complete : t -> bool

(** [precedes e1 e2] is the irreflexive partial order [<H] of the paper:
    the response of [e1] precedes the invocation of [e2]. A pending operation
    never precedes anything. *)
val precedes : t -> t -> bool

(** [overlapping e1 e2] holds when neither precedes the other (and they are
    distinct operations). *)
val overlapping : t -> t -> bool

(** Identity of an operation within its history: thread id and per-thread
    index. *)
val key : t -> int * int

val pp : Format.formatter -> t -> unit
