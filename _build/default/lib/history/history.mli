(** Histories (Section 2.1.1): finite sequences of call and return events on
    the (implicit) single object under test.

    A history may additionally be marked {e stuck} (Section 2.3): the
    execution that produced it can make no further progress — its pending
    operations are blocked forever (deadlock, livelock or divergence). A
    stuck history corresponds to the paper's sequences ending in the special
    symbol [#]. *)

type t

(** [make ?stuck events] builds a history and checks well-formedness: each
    thread subhistory must be serial (calls and returns alternate, each
    return matches the immediately preceding call of the same thread).
    Raises [Invalid_argument] otherwise. *)
val make : ?stuck:bool -> Event.t list -> t

val events : t -> Event.t list
val is_stuck : t -> bool
val length : t -> int
val is_empty : t -> bool

(** Threads that have at least one event in the history. *)
val threads : t -> int list

(** [thread_sub h t] is the thread subhistory [H|t]. *)
val thread_sub : t -> int -> Event.t list

(** Operations of the history in call order. *)
val ops : t -> Op.t list

val pending_ops : t -> Op.t list
val complete_ops : t -> Op.t list

(** [is_complete h] holds when the history contains no pending call. *)
val is_complete : t -> bool

(** [complete h] is the history obtained by deleting all pending calls
    (the paper's [complete(H)]). The result is never marked stuck. *)
val complete : t -> t

(** [is_serial h]: the sequence starts with a call, calls and returns
    alternate, and each return matches the immediately preceding call
    (Section 2.1.1). The empty history is serial. A stuck serial history may
    end with a pending call. *)
val is_serial : t -> bool

(** [restrict_to_pending h e] is the paper's [H[e]] (Section 2.3): the stuck
    history obtained from stuck [h] by removing all pending calls except the
    invocation of pending operation [e]. Raises [Invalid_argument] if [h] is
    not stuck or [e] is not pending in [h]. *)
val restrict_to_pending : t -> Op.t -> t

(** [prefixes h] enumerates all well-formed prefixes of [h] (including the
    empty history and [h] itself); prefix histories are not marked stuck. *)
val prefixes : t -> t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Pretty-print in the interleaving notation of Fig. 7: each operation gets
    an id, ["i["] marks its call, ["]i"] its return, and stuck histories end
    with ["#"]. The operation ids follow call order. *)
val pp_interleaving : Format.formatter -> t -> unit
