(** Call and return events (Section 2.1.1).

    Since Theorem 1 of Herlihy & Wing reduces multi-object linearizability to
    single-object linearizability, and the paper checks one object at a time,
    the object component of events is implicit: every event in a history
    refers to the single object under test.

    [op_index] is the per-thread sequence number of the operation the event
    belongs to; it pairs each return with its call and lets histories with
    identical invocations by the same thread be disambiguated. *)

type dir =
  | Call of Invocation.t
  | Return of Lineup_value.Value.t

type t = {
  tid : int;
  op_index : int;
  dir : dir;
}

val call : tid:int -> op_index:int -> Invocation.t -> t
val return : tid:int -> op_index:int -> Lineup_value.Value.t -> t
val is_call : t -> bool
val is_return : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** [thread_label tid] is the paper's thread naming: 0 ↦ "A", 1 ↦ "B", …,
    26 ↦ "A1", and so on. *)
val thread_label : int -> string
