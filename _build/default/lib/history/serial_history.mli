(** Serial histories — the shape produced by phase 1 of the Line-Up check.

    A serial history is a sequence of completed operations (call immediately
    followed by its return) optionally ending with a single pending
    invocation when the execution got stuck there (the paper's histories
    [H(o i t)#] of Section 2.3). *)

type entry = {
  tid : int;
  inv : Invocation.t;
  resp : Lineup_value.Value.t;
}

type t = {
  entries : entry list;
  stuck : (int * Invocation.t) option;
      (** [Some (t, i)] when the history ends with thread [t] blocked inside
          invocation [i]. *)
}

val make : ?stuck:(int * Invocation.t) option -> entry list -> t
val is_stuck : t -> bool
val num_ops : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

(** The event-level view of the serial history (a serial {!History.t}). *)
val to_history : t -> History.t

(** [of_history h] converts a serial history back; [None] if [h] is not
    serial (or is stuck with pending operations not in final position). *)
val of_history : History.t -> t option

(** [thread_key s] is the grouping key of the observation-file format
    (Fig. 7): for each thread, its sequence of operations — invocation,
    response, and whether the final one is blocked. Threads sorted by id. *)
val thread_key : t -> (int * (Invocation.t * Lineup_value.Value.t option) list) list

(** [nondeterministic_pair s1 s2] decides whether the two serial histories
    witness nondeterminism (Section 2.1.2, extended to stuck histories in
    Section 2.3): their longest common prefix, viewed as event sequences,
    ends in a call. Equivalently, after an identical prefix of completed
    operations, the same thread issues the same invocation but the two
    histories continue differently (different responses, or one responds
    while the other blocks). *)
val nondeterministic_pair : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
