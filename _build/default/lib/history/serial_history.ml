module Value = Lineup_value.Value

type entry = {
  tid : int;
  inv : Invocation.t;
  resp : Value.t;
}

type t = {
  entries : entry list;
  stuck : (int * Invocation.t) option;
}

let make ?(stuck = None) entries = { entries; stuck }
let is_stuck s = Option.is_some s.stuck
let num_ops s = List.length s.entries + if is_stuck s then 1 else 0

let entry_equal e1 e2 =
  e1.tid = e2.tid && Invocation.equal e1.inv e2.inv && Value.equal e1.resp e2.resp

let entry_compare e1 e2 =
  let c = Int.compare e1.tid e2.tid in
  if c <> 0 then c
  else
    let c = Invocation.compare e1.inv e2.inv in
    if c <> 0 then c else Value.compare e1.resp e2.resp

let stuck_compare s1 s2 =
  match s1, s2 with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some (t1, i1), Some (t2, i2) ->
    let c = Int.compare t1 t2 in
    if c <> 0 then c else Invocation.compare i1 i2

let equal s1 s2 =
  List.equal entry_equal s1.entries s2.entries && stuck_compare s1.stuck s2.stuck = 0

let compare s1 s2 =
  let c = List.compare entry_compare s1.entries s2.entries in
  if c <> 0 then c else stuck_compare s1.stuck s2.stuck

let to_history s =
  let indices : (int, int) Hashtbl.t = Hashtbl.create 7 in
  let next_index tid =
    let i = Option.value ~default:0 (Hashtbl.find_opt indices tid) in
    Hashtbl.replace indices tid (i + 1);
    i
  in
  let events =
    List.concat_map
      (fun e ->
        let op_index = next_index e.tid in
        [ Event.call ~tid:e.tid ~op_index e.inv; Event.return ~tid:e.tid ~op_index e.resp ])
      s.entries
  in
  let events, stuck =
    match s.stuck with
    | None -> events, false
    | Some (tid, inv) ->
      let op_index = next_index tid in
      events @ [ Event.call ~tid ~op_index inv ], true
  in
  History.make ~stuck events

let of_history h =
  if not (History.is_serial h) then None
  else begin
    let rec go acc = function
      | [] -> Some { entries = List.rev acc; stuck = None }
      | [ ({ Event.dir = Event.Call inv; _ } as c) ] when History.is_stuck h ->
        Some { entries = List.rev acc; stuck = Some (c.Event.tid, inv) }
      | { Event.dir = Event.Call inv; Event.tid; _ }
        :: { Event.dir = Event.Return resp; _ }
        :: rest ->
        go ({ tid; inv; resp } :: acc) rest
      | _ -> None
    in
    go [] (History.events h)
  end

let thread_key s =
  let tbl : (int, (Invocation.t * Value.t option) list) Hashtbl.t = Hashtbl.create 7 in
  let push tid x =
    let l = Option.value ~default:[] (Hashtbl.find_opt tbl tid) in
    Hashtbl.replace tbl tid (x :: l)
  in
  List.iter (fun e -> push e.tid (e.inv, Some e.resp)) s.entries;
  (match s.stuck with None -> () | Some (tid, inv) -> push tid (inv, None));
  Hashtbl.fold (fun tid l acc -> (tid, List.rev l) :: acc) tbl []
  |> List.sort (fun (t1, _) (t2, _) -> Int.compare t1 t2)

let nondeterministic_pair s1 s2 =
  (* Walk the completed-operation prefixes in parallel; report true exactly
     when the same thread issues the same invocation after an identical
     prefix but the continuations differ. *)
  let stuck_matches stuck (e : entry) =
    match stuck with
    | Some (tid, inv) -> tid = e.tid && Invocation.equal inv e.inv
    | None -> false
  in
  let rec go l1 l2 =
    match l1, l2 with
    | e1 :: r1, e2 :: r2 ->
      if entry_equal e1 e2 then go r1 r2
      else e1.tid = e2.tid && Invocation.equal e1.inv e2.inv
      (* same invocation, different response: prefix ends in that call *)
    | e1 :: _, [] -> stuck_matches s2.stuck e1 (* s2 blocks where s1 responds *)
    | [], e2 :: _ -> stuck_matches s1.stuck e2
    | [], [] -> (
      (* identical completed prefixes; compare the stuck tails *)
      match s1.stuck, s2.stuck with
      | Some (t1, i1), Some (t2, i2) ->
        (* both stuck at the same invocation: identical histories, fine;
           different invocations: prefix ends in a return, fine *)
        ignore (t1, i1, t2, i2);
        false
      | Some _, None | None, Some _ | None, None ->
        (* one ends (full) and one is stuck after the same prefix: the full
           one either ends here too (different tests cannot happen within one
           observation set) or continues with a different call *)
        false)
  in
  go s1.entries s2.entries

let pp ppf s =
  let pp_entry ppf e =
    Fmt.pf ppf "%s:%a/%a" (Event.thread_label e.tid) Invocation.pp e.inv Value.pp e.resp
  in
  Fmt.pf ppf "@[<h>%a%a@]"
    (Fmt.list ~sep:(Fmt.any " ") pp_entry)
    s.entries
    (fun ppf -> function
      | None -> ()
      | Some (tid, inv) ->
        Fmt.pf ppf " %s:%a/BLOCKED #" (Event.thread_label tid) Invocation.pp inv)
    s.stuck

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
