module Value = Lineup_value.Value

type t = {
  events : Event.t list;
  stuck : bool;
}

(* Well-formedness (Section 2.1.1): every thread subhistory is serial. We
   additionally require the [op_index] bookkeeping to be consistent: the i-th
   operation of thread t carries index i. *)
let check_well_formed events =
  let tbl : (int, [ `Expect_call of int | `Expect_return of int * Invocation.t ]) Hashtbl.t =
    Hashtbl.create 7
  in
  let fail fmt = Fmt.kstr invalid_arg ("History.make: " ^^ fmt) in
  List.iter
    (fun (e : Event.t) ->
      let state =
        match Hashtbl.find_opt tbl e.tid with
        | Some s -> s
        | None -> `Expect_call 0
      in
      match e.dir, state with
      | Event.Call inv, `Expect_call idx ->
        if e.op_index <> idx then
          fail "thread %d: call %a has op_index %d, expected %d" e.tid Invocation.pp inv
            e.op_index idx;
        Hashtbl.replace tbl e.tid (`Expect_return (idx, inv))
      | Event.Call inv, `Expect_return _ ->
        fail "thread %d: call %a while an operation is pending" e.tid Invocation.pp inv
      | Event.Return v, `Expect_call _ ->
        fail "thread %d: return %a without a pending call" e.tid Value.pp v
      | Event.Return _, `Expect_return (idx, _) ->
        if e.op_index <> idx then
          fail "thread %d: return has op_index %d, expected %d" e.tid e.op_index idx;
        Hashtbl.replace tbl e.tid (`Expect_call (idx + 1)))
    events

let make ?(stuck = false) events =
  check_well_formed events;
  { events; stuck }

let events h = h.events
let is_stuck h = h.stuck
let length h = List.length h.events
let is_empty h = match h.events with [] -> true | _ :: _ -> false

let threads h =
  List.sort_uniq Int.compare (List.map (fun (e : Event.t) -> e.tid) h.events)

let thread_sub h t = List.filter (fun (e : Event.t) -> e.tid = t) h.events

let ops h =
  (* Pair each call with its matching return by (tid, op_index). *)
  let returns : (int * int, Value.t * int) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun pos (e : Event.t) ->
      match e.dir with
      | Event.Return v -> Hashtbl.replace returns (e.tid, e.op_index) (v, pos)
      | Event.Call _ -> ())
    h.events;
  List.concat
    (List.mapi
       (fun pos (e : Event.t) ->
         match e.dir with
         | Event.Call inv ->
           let resp, ret_pos =
             match Hashtbl.find_opt returns (e.tid, e.op_index) with
             | Some (v, rp) -> Some v, Some rp
             | None -> None, None
           in
           [ { Op.tid = e.tid; op_index = e.op_index; inv; resp; call_pos = pos; ret_pos } ]
         | Event.Return _ -> [])
       h.events)

let pending_ops h = List.filter Op.is_pending (ops h)
let complete_ops h = List.filter Op.is_complete (ops h)
let is_complete h = match pending_ops h with [] -> true | _ :: _ -> false

let drop_pending_calls events =
  let has_return : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      if Event.is_return e then Hashtbl.replace has_return (e.tid, e.op_index) ())
    events;
  List.filter
    (fun (e : Event.t) ->
      Event.is_return e || Hashtbl.mem has_return (e.tid, e.op_index))
    events

let complete h = { events = drop_pending_calls h.events; stuck = false }

let is_serial h =
  let rec go expecting events =
    match expecting, events with
    | None, [] -> true
    | Some _, [] -> h.stuck (* a stuck serial history may end with a pending call *)
    | None, ({ Event.dir = Event.Call _; _ } as e) :: rest -> go (Some e) rest
    | None, { Event.dir = Event.Return _; _ } :: _ -> false
    | Some _, { Event.dir = Event.Call _; _ } :: _ -> false
    | Some (c : Event.t), ({ Event.dir = Event.Return _; _ } as r) :: rest ->
      if r.Event.tid = c.Event.tid && r.Event.op_index = c.Event.op_index then go None rest
      else false
  in
  go None h.events

let restrict_to_pending h (e : Op.t) =
  if not h.stuck then invalid_arg "History.restrict_to_pending: history is not stuck";
  if Op.is_complete e then invalid_arg "History.restrict_to_pending: operation is complete";
  let keep (ev : Event.t) =
    Event.is_return ev
    || (ev.tid = e.tid && ev.op_index = e.op_index)
    ||
    (* a call is kept when its return is present *)
    List.exists
      (fun (r : Event.t) ->
        Event.is_return r && r.tid = ev.tid && r.op_index = ev.op_index)
      h.events
  in
  let found =
    List.exists
      (fun (ev : Event.t) ->
        Event.is_call ev && ev.tid = e.tid && ev.op_index = e.op_index
        && not
             (List.exists
                (fun (r : Event.t) ->
                  Event.is_return r && r.tid = ev.tid && r.op_index = ev.op_index)
                h.events))
      h.events
  in
  if not found then invalid_arg "History.restrict_to_pending: operation not pending in history";
  { events = List.filter keep h.events; stuck = true }

let prefixes h =
  let rec go acc rev_prefix = function
    | [] -> List.rev acc
    | e :: rest ->
      let rev_prefix = e :: rev_prefix in
      go ({ events = List.rev rev_prefix; stuck = false } :: acc) rev_prefix rest
  in
  go [ { events = []; stuck = false } ] [] h.events

let equal h1 h2 =
  Bool.equal h1.stuck h2.stuck && List.equal Event.equal h1.events h2.events

let pp ppf h =
  Fmt.pf ppf "@[<v>%a%s@]"
    (Fmt.list ~sep:Fmt.cut Event.pp)
    h.events
    (if h.stuck then " #" else "")

let pp_interleaving ppf h =
  (* Assign ids in call order, as Fig. 7 does. *)
  let ids : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 1 in
  List.iter
    (fun (e : Event.t) ->
      if Event.is_call e then begin
        Hashtbl.replace ids (e.tid, e.op_index) !next;
        incr next
      end)
    h.events;
  let tokens =
    List.map
      (fun (e : Event.t) ->
        let id = Hashtbl.find ids (e.tid, e.op_index) in
        match e.dir with
        | Event.Call _ -> Fmt.str "%d[" id
        | Event.Return _ -> Fmt.str "]%d" id)
      h.events
  in
  let tokens = if h.stuck then tokens @ [ "#" ] else tokens in
  Fmt.string ppf (String.concat " " tokens)
