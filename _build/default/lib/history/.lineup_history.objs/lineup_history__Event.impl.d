lib/history/event.ml: Char Fmt Invocation Lineup_value String
