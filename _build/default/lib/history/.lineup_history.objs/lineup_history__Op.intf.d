lib/history/op.mli: Format Invocation Lineup_value
