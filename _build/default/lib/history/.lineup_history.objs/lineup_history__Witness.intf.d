lib/history/witness.mli: History Op Serial_history
