lib/history/history.ml: Bool Event Fmt Hashtbl Int Invocation Lineup_value List Op String
