lib/history/op.ml: Event Fmt Invocation Lineup_value Option
