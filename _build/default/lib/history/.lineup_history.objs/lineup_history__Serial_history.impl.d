lib/history/serial_history.ml: Event Fmt Hashtbl History Int Invocation Lineup_value List Option Set
