lib/history/invocation.ml: Fmt Hashtbl Lineup_value String
