lib/history/event.mli: Format Invocation Lineup_value
