lib/history/witness.ml: Hashtbl History Int Invocation Lineup_value List Op Option Serial_history
