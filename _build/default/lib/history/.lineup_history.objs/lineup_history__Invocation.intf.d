lib/history/invocation.mli: Format Lineup_value
