lib/history/serial_history.mli: Format History Invocation Lineup_value Set
