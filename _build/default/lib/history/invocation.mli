(** Invocations: an operation name together with its argument(s).

    This is the [I_o] set of Section 2.1 of the paper. All operations of an
    object under test are identified by name and argument; the response is a
    separate {!Lineup_value.Value.t}. *)

type t = {
  name : string;
  arg : Lineup_value.Value.t;
}

val make : ?arg:Lineup_value.Value.t -> string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** [to_string i] prints e.g. ["Add(200)"] or ["TryTake"] (unit arguments are
    omitted, matching the paper's notation). *)
val to_string : t -> string
