(** Serial-witness checking (Section 2.1.4).

    A serial history [S] is a witness for a history [H] when (1) [S] is
    serial, (2) [S|t = H|t] for every thread [t], and (3) [<H ⊆ <S]. This
    module implements the check for both full histories (Definition 1, with
    no pending operations) and stuck histories restricted to a single pending
    operation (Definition 2, the [H[e]] shape). *)

(** [is_witness ~serial h] decides whether [serial] is a serial witness for
    [h]. [h] may be a complete history (full-history check) or a stuck
    history with exactly one pending operation (the [H[e]] of Definition 2);
    histories with several pending operations never match, since a serial
    history has at most one pending call, in final position. *)
val is_witness : serial:Serial_history.t -> History.t -> bool

(** [linearizable_full ~specs h] — Definition 1 for complete histories: some
    serial history in [specs] is a witness for [h]. *)
val linearizable_full : specs:Serial_history.t list -> History.t -> bool

(** [linearizable_stuck ~specs h] — Definition 2: for every pending operation
    [e] of the stuck history [h], [specs] contains a serial witness for
    [H[e]]. Returns [Ok ()] or [Error e] for the first unjustified pending
    operation. *)
val linearizable_stuck :
  specs:Serial_history.t list -> History.t -> (unit, Op.t) result

(** [find_witness ~specs h] returns some witness if one exists. *)
val find_witness : specs:Serial_history.t list -> History.t -> Serial_history.t option
