module Value = Lineup_value.Value

(* Per-thread operation sequences of a history: invocation and (optional)
   response per operation, in per-thread order. *)
let history_thread_key h =
  let ops = History.ops h in
  let tbl : (int, (Invocation.t * Value.t option) list) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun (op : Op.t) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt tbl op.tid) in
      Hashtbl.replace tbl op.tid ((op.inv, op.resp) :: l))
    ops;
  Hashtbl.fold (fun tid l acc -> (tid, List.rev l) :: acc) tbl []
  |> List.sort (fun (t1, _) (t2, _) -> Int.compare t1 t2)

let keys_equal k1 k2 =
  List.equal
    (fun (t1, l1) (t2, l2) ->
      t1 = t2
      && List.equal
           (fun (i1, r1) (i2, r2) ->
             Invocation.equal i1 i2 && Option.equal Value.equal r1 r2)
           l1 l2)
    k1 k2

(* Position of each operation of [serial] in its linear order, keyed by
   (tid, per-thread index). A stuck pending call sits after all entries. *)
let serial_positions (serial : Serial_history.t) =
  let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let per_thread : (int, int) Hashtbl.t = Hashtbl.create 7 in
  let next_index tid =
    let i = Option.value ~default:0 (Hashtbl.find_opt per_thread tid) in
    Hashtbl.replace per_thread tid (i + 1);
    i
  in
  List.iteri
    (fun pos (e : Serial_history.entry) ->
      Hashtbl.replace tbl (e.tid, next_index e.tid) pos)
    serial.entries;
  (match serial.stuck with
   | None -> ()
   | Some (tid, _) ->
     Hashtbl.replace tbl (tid, next_index tid) (List.length serial.entries));
  tbl

let is_witness ~serial h =
  (* Condition 2: identical thread subhistories (as operation sequences). *)
  keys_equal (Serial_history.thread_key serial) (history_thread_key h)
  &&
  (* Condition 3: <H ⊆ <S. *)
  let pos = serial_positions serial in
  let ops = History.ops h in
  List.for_all
    (fun (e1 : Op.t) ->
      List.for_all
        (fun (e2 : Op.t) ->
          if Op.precedes e1 e2 then
            Hashtbl.find pos (Op.key e1) < Hashtbl.find pos (Op.key e2)
          else true)
        ops)
    ops

let find_witness ~specs h = List.find_opt (fun serial -> is_witness ~serial h) specs

let linearizable_full ~specs h =
  if not (History.is_complete h) then
    invalid_arg "Witness.linearizable_full: history has pending operations";
  Option.is_some (find_witness ~specs h)

let linearizable_stuck ~specs h =
  if not (History.is_stuck h) then
    invalid_arg "Witness.linearizable_stuck: history is not stuck";
  let pending = History.pending_ops h in
  let justified e =
    let he = History.restrict_to_pending h e in
    Option.is_some (find_witness ~specs he)
  in
  match List.find_opt (fun e -> not (justified e)) pending with
  | None -> Ok ()
  | Some e -> Error e
