module Value = Lineup_value.Value

type dir =
  | Call of Invocation.t
  | Return of Value.t

type t = {
  tid : int;
  op_index : int;
  dir : dir;
}

let call ~tid ~op_index inv = { tid; op_index; dir = Call inv }
let return ~tid ~op_index v = { tid; op_index; dir = Return v }
let is_call e = match e.dir with Call _ -> true | Return _ -> false
let is_return e = match e.dir with Return _ -> true | Call _ -> false

let equal e1 e2 =
  e1.tid = e2.tid
  && e1.op_index = e2.op_index
  &&
  match e1.dir, e2.dir with
  | Call i1, Call i2 -> Invocation.equal i1 i2
  | Return v1, Return v2 -> Value.equal v1 v2
  | (Call _ | Return _), _ -> false

let thread_label tid =
  let letter = Char.chr (Char.code 'A' + (tid mod 26)) in
  if tid < 26 then String.make 1 letter
  else Fmt.str "%c%d" letter (tid / 26)

let pp ppf e =
  match e.dir with
  | Call inv -> Fmt.pf ppf "(call %a %s)" Invocation.pp inv (thread_label e.tid)
  | Return v -> Fmt.pf ppf "(ret %a %s)" Value.pp v (thread_label e.tid)
