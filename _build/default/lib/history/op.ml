module Value = Lineup_value.Value

type t = {
  tid : int;
  op_index : int;
  inv : Invocation.t;
  resp : Value.t option;
  call_pos : int;
  ret_pos : int option;
}

let is_pending op = Option.is_none op.resp
let is_complete op = Option.is_some op.resp

let precedes e1 e2 =
  match e1.ret_pos with
  | None -> false
  | Some r -> r < e2.call_pos

let overlapping e1 e2 =
  not (e1.tid = e2.tid && e1.op_index = e2.op_index)
  && (not (precedes e1 e2))
  && not (precedes e2 e1)

let key op = op.tid, op.op_index

let pp ppf op =
  match op.resp with
  | Some resp ->
    Fmt.pf ppf "[%a/%a %s]" Invocation.pp op.inv Value.pp resp
      (Event.thread_label op.tid)
  | None -> Fmt.pf ppf "[%a/* %s]" Invocation.pp op.inv (Event.thread_label op.tid)
