lib/spec/specs.mli: Spec
