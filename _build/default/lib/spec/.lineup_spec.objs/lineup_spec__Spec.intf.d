lib/spec/spec.mli: Lineup_history Lineup_value
