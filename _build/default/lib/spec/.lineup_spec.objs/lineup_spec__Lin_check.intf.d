lib/spec/lin_check.mli: Lineup_history Spec
