lib/spec/spec.ml: Lineup_history Lineup_value
