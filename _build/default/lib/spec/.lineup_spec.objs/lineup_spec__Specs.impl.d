lib/spec/specs.ml: Fmt Int Lineup_history Lineup_value List Spec String
