lib/spec/lin_check.ml: Array Hashtbl Lineup_history Lineup_value List Option Spec
