module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation

type 'st outcome =
  | Return of Value.t * 'st
  | Blocked

type 'st t = {
  name : string;
  initial : 'st;
  step : 'st -> Invocation.t -> 'st outcome;
  state_key : 'st -> string;
}

type packed = Packed : 'st t -> packed

let run spec invs =
  let rec go st = function
    | [] -> []
    | inv :: rest -> (
      match spec.step st inv with
      | Return (v, st') -> (inv, Some v) :: go st' rest
      | Blocked -> [ inv, None ])
  in
  go spec.initial invs
