(** Explicit deterministic sequential specifications.

    Line-Up's whole point is that these are {e not} needed — phase 1
    synthesizes the specification from the implementation. This module exists
    for three reasons: (1) it gives the formal objects of Section 2.1.2 a
    concrete form (the specification automaton of Fig. 3); (2) together with
    {!Lin_check} it provides an independent linearizability oracle used to
    cross-validate the two-phase check in the test suite; (3) wrapped in a
    coarse lock (see [Lineup_conc.Spec_impl]) it yields correct-by-
    construction reference implementations.

    A specification is deterministic by construction: [step] is a function.
    [Blocked] models operations that must wait (the semaphore-like [dec] of
    the paper's counter example). *)

type 'st outcome =
  | Return of Lineup_value.Value.t * 'st
  | Blocked  (** the invocation cannot proceed in this state *)

type 'st t = {
  name : string;
  initial : 'st;
  step : 'st -> Lineup_history.Invocation.t -> 'st outcome;
  state_key : 'st -> string;
      (** injective encoding of the state, used for memoization in
          {!Lin_check} and for cheap state equality *)
}

(** A specification with its state type hidden. *)
type packed = Packed : 'st t -> packed

(** [run spec invs] applies the invocations in order from the initial state,
    returning the responses; stops early at the first blocked invocation
    (returning [None] in that slot and ending the list there). *)
val run :
  'st t ->
  Lineup_history.Invocation.t list ->
  (Lineup_history.Invocation.t * Lineup_value.Value.t option) list
