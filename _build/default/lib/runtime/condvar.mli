(** Monitor-style condition variables with .NET [Monitor.Wait]/[Pulse]
    semantics.

    Unlike {!Rt.block} (whose predicate is continuously re-evaluated, so a
    wake-up can never be lost), a condition variable only wakes waiters that
    registered {e before} the pulse — faithfully modelling the lost-wakeup
    failure mode of monitor-based code, which several of the seeded bugs in
    [lineup_conc] rely on. *)

type t

val create : ?name:string -> unit -> t

(** [wait cv m] atomically releases [m] (which the caller must hold), blocks
    until a subsequent {!pulse_all} or a covering {!pulse}, then reacquires
    [m]. *)
val wait : t -> Mutex_.t -> unit

(** Wake all current waiters. The caller must hold the associated mutex for
    the usual reasons; this is asserted when [m] is given. *)
val pulse_all : ?m:Mutex_.t -> t -> unit

(** Wake one waiter (the longest-waiting). *)
val pulse : ?m:Mutex_.t -> t -> unit
