(** Instrumented shared memory cells.

    Each read, write, or read-modify-write performs a scheduling point and is
    logged for the comparison checkers. The code between the scheduling point
    and the access runs atomically (cooperative scheduling), so {!cas} and
    {!fetch_and_add} are atomic read-modify-writes — they model the
    [Interlocked] operations of .NET.

    [volatile] marks cells whose accesses establish happens-before edges in
    the race detector (the disciplined-volatile pattern the paper observed in
    the .NET implementations, Section 5.6). It does not change scheduling. *)

type 'a t

val make : ?volatile:bool -> ?name:string -> 'a -> 'a t
val name : 'a t -> string
val id : 'a t -> int

val read : 'a t -> 'a
val write : 'a t -> 'a -> unit

(** [cas v expected desired] atomically: if the current value is physically
    equal to [expected], store [desired] and return [true]; else return
    [false]. Physical equality matches hardware CAS on pointers and unboxed
    integers. *)
val cas : 'a t -> 'a -> 'a -> bool

(** Atomic fetch-and-add; returns the previous value. *)
val fetch_and_add : int t -> int -> int

(** Atomic exchange; returns the previous value. *)
val exchange : 'a t -> 'a -> 'a

(** [peek v] reads without a scheduling point or logging. For use inside
    {!Rt.block} wake predicates and assertions only. *)
val peek : 'a t -> 'a

(** [poke v x] writes without a scheduling point or logging. For use in
    object constructors and test setup only. *)
val poke : 'a t -> 'a -> unit

(** [update v f] atomically replaces the contents with [f (read v)] — a
    single scheduling point, like a successful CAS loop collapsed. *)
val update : 'a t -> ('a -> 'a) -> 'a
