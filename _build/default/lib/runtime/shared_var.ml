type 'a t = {
  id : int;
  name : string;
  volatile : bool;
  mutable v : 'a;
}

let make ?(volatile = false) ?name init =
  let id = Exec_ctx.fresh_loc () in
  let name = match name with Some n -> n | None -> Fmt.str "loc%d" id in
  { id; name; volatile; v = init }

let name x = x.name
let id x = x.id

let access x kind =
  Rt.sched (Rt.Access { loc = x.id; loc_name = x.name; kind; volatile = x.volatile })

let read x =
  access x Exec_ctx.Read;
  x.v

let write x value =
  access x Exec_ctx.Write;
  x.v <- value

let cas x expected desired =
  access x Exec_ctx.Rmw;
  if x.v == expected then begin
    x.v <- desired;
    true
  end
  else false

let fetch_and_add x n =
  access x Exec_ctx.Rmw;
  let old = x.v in
  x.v <- old + n;
  old

let exchange x value =
  access x Exec_ctx.Rmw;
  let old = x.v in
  x.v <- value;
  old

let peek x = x.v
let poke x value = x.v <- value

let update x f =
  access x Exec_ctx.Rmw;
  let v = f x.v in
  x.v <- v;
  v
