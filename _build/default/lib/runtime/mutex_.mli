(** Instrumented mutual-exclusion locks.

    Non-reentrant. Acquisition of a held lock blocks (disabled, not
    spinning), so lock-induced deadlocks surface as stuck histories.

    {!try_acquire_timed} models a .NET [Monitor.TryEnter(timeout)]: when the
    lock is held, the outcome is a demonic choice between waiting and timing
    out. The ConcurrentQueue bug of Fig. 1 in the paper was precisely an
    accidental use of a timed acquire on a hot path. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

(** Blocks until the lock is free, then takes it. *)
val acquire : t -> unit

(** Takes the lock if free; never blocks. Returns whether it was taken. *)
val try_acquire : t -> bool

(** Like {!acquire}, but when the lock is held the model checker explores
    both continuing to wait and timing out (returning [false]). *)
val try_acquire_timed : t -> bool

(** Releases the lock. Raises [Invalid_argument] when the calling thread does
    not hold it. *)
val release : t -> unit

(** [holder m] is the thread currently holding [m], if any (no scheduling
    point; for assertions and wake predicates). *)
val holder : t -> int option

(** [with_lock m f] = acquire; [f ()]; release — releasing on exceptions. *)
val with_lock : t -> (unit -> 'a) -> 'a
