lib/runtime/rt.mli: Effect Exec_ctx
