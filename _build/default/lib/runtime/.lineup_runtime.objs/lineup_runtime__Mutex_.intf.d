lib/runtime/mutex_.mli:
