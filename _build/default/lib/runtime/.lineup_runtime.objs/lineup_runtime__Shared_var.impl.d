lib/runtime/shared_var.ml: Exec_ctx Fmt Rt
