lib/runtime/rt.ml: Effect Exec_ctx
