lib/runtime/condvar.ml: Exec_ctx Fmt Mutex_ Rt
