lib/runtime/mutex_.ml: Exec_ctx Fmt Option Rt
