lib/runtime/exec_ctx.ml: Domain Fmt List
