lib/runtime/shared_var.mli:
