lib/runtime/condvar.mli: Mutex_
