lib/runtime/exec_ctx.mli: Format
