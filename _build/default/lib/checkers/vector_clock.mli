(** Vector clocks over a fixed set of threads. *)

type t

val make : threads:int -> t
val copy : t -> t
val get : t -> int -> int
val tick : t -> int -> unit

(** [join dst src] — pointwise maximum, into [dst]. *)
val join : t -> t -> unit

(** [happens_before ~clock ~tid vc] — did the event of thread [tid] at local
    time [clock] happen before the point described by [vc]? (The standard
    epoch test [clock <= vc.(tid)].) *)
val happens_before : clock:int -> tid:int -> t -> bool

val pp : Format.formatter -> t -> unit
