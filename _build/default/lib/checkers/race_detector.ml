module Exec_ctx = Lineup_runtime.Exec_ctx
module Explore = Lineup_scheduler.Explore

type race = {
  loc_name : string;
  first : int * Exec_ctx.access_kind;
  second : int * Exec_ctx.access_kind;
}

let pp_kind ppf = function
  | Exec_ctx.Read -> Fmt.string ppf "read"
  | Exec_ctx.Write -> Fmt.string ppf "write"
  | Exec_ctx.Rmw -> Fmt.string ppf "rmw"

let pp_race ppf r =
  let t1, k1 = r.first and t2, k2 = r.second in
  Fmt.pf ppf "race on %s: T%d %a / T%d %a" r.loc_name t1 pp_kind k1 t2 pp_kind k2

let is_write = function Exec_ctx.Write | Exec_ctx.Rmw -> true | Exec_ctx.Read -> false

type prior_access = {
  a_tid : int;
  a_clock : int;
  a_kind : Exec_ctx.access_kind;
}

let analyze ~threads log =
  let vc = Array.init threads (fun _ -> Vector_clock.make ~threads) in
  Array.iteri (fun i v -> Vector_clock.tick v i) vc;
  let lock_vc : (int, Vector_clock.t) Hashtbl.t = Hashtbl.create 16 in
  let vol_vc : (int, Vector_clock.t) Hashtbl.t = Hashtbl.create 16 in
  (* per plain location: all prior accesses with their clocks *)
  let accesses : (int, (string * prior_access list) ref) Hashtbl.t = Hashtbl.create 64 in
  let races = ref [] in
  let handle_plain tid loc loc_name kind =
    let slot =
      match Hashtbl.find_opt accesses loc with
      | Some s -> s
      | None ->
        let s = ref (loc_name, []) in
        Hashtbl.replace accesses loc s;
        s
    in
    let _, prior = !slot in
    List.iter
      (fun p ->
        if
          p.a_tid <> tid
          && (is_write p.a_kind || is_write kind)
          && not (Vector_clock.happens_before ~clock:p.a_clock ~tid:p.a_tid vc.(tid))
        then
          races := { loc_name; first = p.a_tid, p.a_kind; second = tid, kind } :: !races)
      prior;
    let mine = { a_tid = tid; a_clock = Vector_clock.get vc.(tid) tid; a_kind = kind } in
    slot := loc_name, mine :: prior;
    Vector_clock.tick vc.(tid) tid
  in
  let acquire_from table tid key =
    match Hashtbl.find_opt table key with
    | Some v -> Vector_clock.join vc.(tid) v
    | None -> ()
  in
  let release_to table tid key =
    (match Hashtbl.find_opt table key with
     | Some v -> Vector_clock.join v vc.(tid)
     | None -> Hashtbl.replace table key (Vector_clock.copy vc.(tid)));
    Vector_clock.tick vc.(tid) tid
  in
  List.iter
    (fun (entry : Exec_ctx.entry) ->
      match entry with
      | Exec_ctx.Access a when a.volatile ->
        (* volatile read = acquire; volatile write = release; rmw = both *)
        (match a.kind with
         | Exec_ctx.Read -> acquire_from vol_vc a.tid a.loc
         | Exec_ctx.Write -> release_to vol_vc a.tid a.loc
         | Exec_ctx.Rmw ->
           acquire_from vol_vc a.tid a.loc;
           release_to vol_vc a.tid a.loc)
      | Exec_ctx.Access a -> handle_plain a.tid a.loc a.loc_name a.kind
      | Exec_ctx.Lock_acquire l -> acquire_from lock_vc l.tid l.lock
      | Exec_ctx.Lock_release l -> release_to lock_vc l.tid l.lock
      | Exec_ctx.Op_start _ | Exec_ctx.Op_end _ -> ())
    log;
  (* deduplicate by (location, unordered thread pair, kinds) *)
  let seen = Hashtbl.create 16 in
  List.rev !races
  |> List.filter (fun r ->
         let t1, k1 = r.first and t2, k2 = r.second in
         let key = r.loc_name, min t1 t2, max t1 t2, k1, k2 in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.replace seen key ();
           true
         end)

let run ?(config = Explore.default_config) ~adapter ~test () =
  Exec_ctx.set_logging true;
  let races : (string, race) Hashtbl.t = Hashtbl.create 16 in
  let threads = Lineup.Test_matrix.num_threads test + 1 in
  let stats_ignored =
    Lineup.Harness.run_phase config ~adapter ~test ~on_history:(fun r ->
        List.iter
          (fun race ->
            if not (Hashtbl.mem races race.loc_name) then
              Hashtbl.replace races race.loc_name race)
          (analyze ~threads r.log);
        `Continue)
  in
  ignore stats_ignored;
  Exec_ctx.set_logging false;
  Hashtbl.fold (fun _ r acc -> r :: acc) races []
  |> List.sort (fun r1 r2 -> String.compare r1.loc_name r2.loc_name)
