lib/checkers/tso_monitor.mli: Format Lineup Lineup_runtime Lineup_scheduler
