lib/checkers/tso_monitor.ml: Array Fmt Hashtbl Lineup Lineup_runtime Lineup_scheduler List Vector_clock
