lib/checkers/serializability.ml: Array Hashtbl Lineup Lineup_runtime Lineup_scheduler List
