lib/checkers/vector_clock.mli: Format
