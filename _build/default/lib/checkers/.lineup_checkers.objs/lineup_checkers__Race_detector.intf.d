lib/checkers/race_detector.mli: Format Lineup Lineup_runtime Lineup_scheduler
