lib/checkers/race_detector.ml: Array Fmt Hashtbl Lineup Lineup_runtime Lineup_scheduler List String Vector_clock
