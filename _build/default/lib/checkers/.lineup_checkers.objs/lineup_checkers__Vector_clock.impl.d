lib/checkers/vector_clock.ml: Array Fmt
