lib/checkers/serializability.mli: Lineup Lineup_runtime Lineup_scheduler
