type t = int array

let make ~threads = Array.make threads 0
let copy = Array.copy
let get vc tid = vc.(tid)
let tick vc tid = vc.(tid) <- vc.(tid) + 1

let join dst src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let happens_before ~clock ~tid vc = clock <= vc.(tid)

let pp ppf vc =
  Fmt.pf ppf "<%a>" (Fmt.array ~sep:(Fmt.any ",") Fmt.int) vc
