lib/value/value.ml: Bool Buffer Char Fmt Hashtbl Int List Option String
