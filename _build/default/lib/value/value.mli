(** Dynamic values exchanged with a component under test.

    Line-Up drives implementations black-box: invocations carry arguments and
    responses carry results, both as untyped {!t} values. The type is closed
    under pairs, lists and options so that adapters can encode structured
    results (e.g. the array returned by [ToArray], or the [(bool, int)] result
    of a [TryPop]). [Fail] is the distinguished "operation failed" marker used
    by the [Try*]-style methods of the .NET collections. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Opt of t option
  | Fail  (** distinguished failure result of [Try*] operations *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit

(** [to_string v] prints [v] in the concrete syntax used by observation files
    (Fig. 7 of the paper), e.g. ["200"], ["Fail"], ["(1, 2)"], ["[1; 2]"]. *)
val to_string : t -> string

(** [of_string s] parses the output of {!to_string}. Total inverse of
    {!to_string} on its image; raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

(** Convenience constructors. *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t
val some : t -> t
val none : t
val ok_unit : t
(** Alias for [Unit]: the "ok" response of void methods (Section 2.1). *)

(** Accessors; raise [Invalid_argument] when the constructor does not match. *)

val get_int : t -> int
val get_bool : t -> bool
val get_pair : t -> t * t
val get_list : t -> t list
val is_fail : t -> bool
