type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Opt of t option
  | Fail

let rec equal v1 v2 =
  match v1, v2 with
  | Unit, Unit -> true
  | Bool b1, Bool b2 -> Bool.equal b1 b2
  | Int i1, Int i2 -> Int.equal i1 i2
  | Str s1, Str s2 -> String.equal s1 s2
  | Pair (a1, b1), Pair (a2, b2) -> equal a1 a2 && equal b1 b2
  | List l1, List l2 -> List.equal equal l1 l2
  | Opt o1, Opt o2 -> Option.equal equal o1 o2
  | Fail, Fail -> true
  | (Unit | Bool _ | Int _ | Str _ | Pair _ | List _ | Opt _ | Fail), _ -> false

let tag = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Pair _ -> 4
  | List _ -> 5
  | Opt _ -> 6
  | Fail -> 7

let rec compare v1 v2 =
  match v1, v2 with
  | Unit, Unit | Fail, Fail -> 0
  | Bool b1, Bool b2 -> Bool.compare b1 b2
  | Int i1, Int i2 -> Int.compare i1 i2
  | Str s1, Str s2 -> String.compare s1 s2
  | Pair (a1, b1), Pair (a2, b2) ->
    let c = compare a1 a2 in
    if c <> 0 then c else compare b1 b2
  | List l1, List l2 -> List.compare compare l1 l2
  | Opt o1, Opt o2 -> Option.compare compare o1 o2
  | (Unit | Bool _ | Int _ | Str _ | Pair _ | List _ | Opt _ | Fail), _ ->
    Int.compare (tag v1) (tag v2)

let rec hash v =
  match v with
  | Unit -> 17
  | Bool b -> if b then 23 else 29
  | Int i -> Hashtbl.hash i
  | Str s -> Hashtbl.hash s
  | Pair (a, b) -> (hash a * 31) + hash b
  | List l -> List.fold_left (fun acc x -> (acc * 37) + hash x) 41 l
  | Opt None -> 43
  | Opt (Some x) -> (hash x * 47) + 5
  | Fail -> 53

let rec pp ppf = function
  | Unit -> Fmt.string ppf "unit"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List l -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp) l
  | Opt None -> Fmt.string ppf "None"
  | Opt (Some v) -> Fmt.pf ppf "Some %a" pp v
  | Fail -> Fmt.string ppf "Fail"

let to_string v = Fmt.str "%a" pp v

(* Hand-rolled recursive-descent parser for the concrete syntax of [pp].
   Kept total on the image of [to_string] so observation files round-trip. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let error msg = raise (Parse_error (Fmt.str "%s at position %d in %S" msg !pos s)) in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> error (Fmt.str "expected %C" c)
  in
  let skip_spaces () =
    while (match peek () with Some ' ' -> true | _ -> false) do
      advance ()
    done
  in
  let matches kw =
    !pos + String.length kw <= n && String.equal (String.sub s !pos (String.length kw)) kw
  in
  let eat kw = pos := !pos + String.length kw in
  let parse_int () =
    let start = !pos in
    if matches "-" then advance ();
    while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then error "expected integer";
    int_of_string (String.sub s start (!pos - start))
  in
  let parse_quoted () =
    expect '"';
    let buf = Buffer.create 8 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some c ->
           advance ();
           let unescaped =
             match c with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c
           in
           Buffer.add_char buf unescaped;
           loop ()
         | None -> error "unterminated escape")
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_spaces ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '(' ->
      advance ();
      let a = parse_value () in
      skip_spaces ();
      expect ',';
      let b = parse_value () in
      skip_spaces ();
      expect ')';
      Pair (a, b)
    | Some '[' ->
      advance ();
      skip_spaces ();
      if matches "]" then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_spaces ();
          match peek () with
          | Some ';' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ';' or ']'"
        in
        List (elems [])
      end
    | Some '"' -> Str (parse_quoted ())
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some _ ->
      if matches "unit" then (eat "unit"; Unit)
      else if matches "true" then (eat "true"; Bool true)
      else if matches "false" then (eat "false"; Bool false)
      else if matches "None" then (eat "None"; Opt None)
      else if matches "Some" then begin
        eat "Some";
        skip_spaces ();
        Opt (Some (parse_value ()))
      end
      else if matches "Fail" then (eat "Fail"; Fail)
      else error "unrecognized value"
  in
  match parse_value () with
  | v ->
    skip_spaces ();
    if !pos <> n then invalid_arg (Fmt.str "Value.of_string: trailing input in %S" s);
    v
  | exception Parse_error msg -> invalid_arg ("Value.of_string: " ^ msg)

let unit = Unit
let bool b = Bool b
let int i = Int i
let str s = Str s
let pair a b = Pair (a, b)
let list l = List l
let some v = Opt (Some v)
let none = Opt None
let ok_unit = Unit

let get_int = function
  | Int i -> i
  | v -> invalid_arg (Fmt.str "Value.get_int: %a" pp v)

let get_bool = function
  | Bool b -> b
  | v -> invalid_arg (Fmt.str "Value.get_bool: %a" pp v)

let get_pair = function
  | Pair (a, b) -> a, b
  | v -> invalid_arg (Fmt.str "Value.get_pair: %a" pp v)

let get_list = function
  | List l -> l
  | v -> invalid_arg (Fmt.str "Value.get_list: %a" pp v)

let is_fail = function Fail -> true | _ -> false
