module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Rt = Lineup_runtime.Rt
open Util

(* State word: bit 0 = writer held, upper bits = reader count. *)
let wbit = 1
let reader = 2
let readers st = st asr 1
let writer st = st land wbit = 1

let universe =
  [
    inv "EnterRead";
    inv "ExitRead";
    inv "EnterWrite";
    inv "ExitWrite";
    inv "TryEnterRead";
    inv "TryEnterWrite";
    inv "CurrentReadCount";
    inv "IsWriteHeld";
  ]

let make_adapter ~racy_enter_read name =
  let create () =
    let state = Var.make ~volatile:true ~name:"rwlock.state" 0 in
    let rec cas_update ~may f =
      let s = Var.read state in
      match f s with
      | None -> if may then false else (Rt.block ~wake:(fun () -> Option.is_some (f (Var.peek state))) "rwlock"; cas_update ~may f)
      | Some s' ->
        if Var.cas state s s' then true
        else begin
          Rt.yield ();
          cas_update ~may f
        end
    in
    let enter_read () =
      if racy_enter_read then begin
        (* BUG: blocks correctly on a writer, but the increment itself is
           an unsynchronized read-modify-write *)
        Rt.block ~wake:(fun () -> not (writer (Var.peek state))) "no writer";
        let s = Var.read state in
        Var.write state (s + reader)
      end
      else ignore (cas_update ~may:false (fun s -> if writer s then None else Some (s + reader)))
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "EnterRead", Value.Unit ->
        enter_read ();
        Value.unit
      | "ExitRead", Value.Unit ->
        if
          cas_update ~may:true (fun s -> if readers s = 0 then None else Some (s - reader))
        then Value.unit
        else Value.Fail
      | "EnterWrite", Value.Unit ->
        ignore (cas_update ~may:false (fun s -> if s = 0 then Some wbit else None));
        Value.unit
      | "ExitWrite", Value.Unit ->
        if cas_update ~may:true (fun s -> if writer s then Some (s land lnot wbit) else None)
        then Value.unit
        else Value.Fail
      | "TryEnterRead", Value.Unit ->
        Value.bool
          (cas_update ~may:true (fun s -> if writer s then None else Some (s + reader)))
      | "TryEnterWrite", Value.Unit ->
        Value.bool (cas_update ~may:true (fun s -> if s = 0 then Some wbit else None))
      | "CurrentReadCount", Value.Unit -> Value.int (readers (Var.read state))
      | "IsWriteHeld", Value.Unit -> Value.bool (writer (Var.read state))
      | _ -> unexpected "ReaderWriterLockSlim" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe create

let correct = make_adapter ~racy_enter_read:false "ReaderWriterLockSlim"
let pre = make_adapter ~racy_enter_read:true "ReaderWriterLockSlim (Pre: racy EnterRead)"
