(** ConcurrentBag (Table 1): [Add(10)], [Add(20)], [TryTake], [TryPeek],
    [Count], [IsEmpty], [ToArray].

    An unordered collection with per-thread segments and work stealing, in
    the style of .NET's implementation. [Add] goes to the calling thread's
    segment (under that segment's lock); [TryTake]/[TryPeek] use the own
    segment first, then {e scan} the other segments with a non-blocking
    [try_acquire]: a segment whose lock is momentarily held by its owner is
    {e skipped}.

    That skip is root cause H — intentional nondeterminism: a [TryTake] can
    fail, or return a "surprising" element, although an [Add] completed
    before it started, because the segment holding the element was busy
    during the scan. Serially no such behavior exists, so Line-Up reports a
    violation; the paper's developers classified it as by-design and
    updated the documentation. [Count]/[IsEmpty]/[ToArray] lock all segments
    and are exact. *)

val adapter : Lineup.Adapter.t

(** Number of per-thread segments (tests must not use more threads). *)
val max_threads : int
