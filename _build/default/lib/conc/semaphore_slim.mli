(** SemaphoreSlim (Table 1): [CurrentCount], [Release] (returns the previous
    count), [ReleaseMany(n)], [Wait] (blocks at zero), [TryWait]
    (.NET's [Wait(0)]).

    - {!correct}: count guarded by a lock; waiters sleep on a monitor with a
      re-check loop.
    - {!pre} (root cause C): [Release] performs the increment {e outside}
      the lock as a plain read-modify-write; two concurrent releases can
      lose an increment, and the two calls can both return the same previous
      count — impossible serially. *)

val correct : Lineup.Adapter.t
val pre : Lineup.Adapter.t
