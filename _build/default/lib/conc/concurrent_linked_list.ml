module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
open Util

let universe =
  [
    inv_int "AddFirst" 1;
    inv_int "AddLast" 2;
    inv "RemoveFirst";
    inv "RemoveLast";
    inv "Count";
    inv "ToArray";
  ]

let adapter =
  let create () =
    let lock = Mutex_.create ~name:"cll.lock" () in
    let items = Var.make ~name:"cll.items" [] in
    let invoke (i : Invocation.t) =
      Mutex_.with_lock lock (fun () ->
          match i.name, i.arg with
          | "AddFirst", Value.Int x ->
            Var.write items (x :: Var.read items);
            Value.unit
          | "AddLast", Value.Int x ->
            Var.write items (Var.read items @ [ x ]);
            Value.unit
          | "RemoveFirst", Value.Unit -> (
            match Var.read items with
            | [] -> Value.Fail
            | x :: rest ->
              Var.write items rest;
              Value.int x)
          | "RemoveLast", Value.Unit -> (
            match List.rev (Var.read items) with
            | [] -> Value.Fail
            | x :: rest_rev ->
              Var.write items (List.rev rest_rev);
              Value.int x)
          | "Count", Value.Unit -> Value.int (List.length (Var.read items))
          | "ToArray", Value.Unit -> Value.list (List.map Value.int (Var.read items))
          | _ -> unexpected "ConcurrentLinkedList" i)
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"ConcurrentLinkedList" ~universe create
