(** ConcurrentQueue (Table 1): [Enqueue(x)], [TryDequeue], [TryPeek],
    [Count], [IsEmpty], [ToArray].

    - {!correct}: one lock around an immutable list.
    - {!pre} (root cause B — the bug of Fig. 1): [TryDequeue] accidentally
      acquires its lock with a {e timeout}; when the acquisition times out
      the method reports failure, so a [TryDequeue] can fail on a provably
      non-empty queue. The model checker explores the timeout as a demonic
      choice, reproducing the paper's violation without modelling real
      time. *)

val correct : Lineup.Adapter.t
val pre : Lineup.Adapter.t
