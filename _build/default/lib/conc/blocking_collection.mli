(** BlockingCollection (Table 1): [Add(x)] ([Fail] after adding completed),
    [Take] (blocks while empty), [TryAdd(x)], [TryTake], [Count],
    [ToArray], [CompleteAdding], [IsCompleted], [IsAddingCompleted].

    Two variants:

    - {!fifo}: a single lock-protected FIFO — fully linearizable, used for
      the Fig. 7 observation-file example (Add/Take/TryTake on a FIFO
      queue) and as the known-good blocking subject.

    - {!segmented}: per-thread segments with skip-on-busy scans, as .NET's
      BlockingCollection inherits from its underlying
      IProducerConsumerCollection. This variant exhibits the paper's two
      intentional nondeterminisms: [Count] may return 0 on a non-empty
      collection (root cause I — its scan skips segments whose lock is
      busy) and [TryTake] may fail on a non-empty collection (root cause J
      — same skip during stealing). [Take] scans with full acquisition and
      re-checks, so it never misses. The .NET developers kept both
      behaviors and changed the documentation. *)

val fifo : Lineup.Adapter.t

(** A capacity-1 variant: [Add] {e blocks} while the collection is full
    ([TryAdd] fails instead), exercising producer-side blocking — more
    stuck-history coverage for the generalized check. *)
val fifo_bounded : Lineup.Adapter.t

val segmented : Lineup.Adapter.t
