(** Barrier (Table 1), with 2 initial participants: [SignalAndWait] (blocks
    until all participants arrive, then advances the phase),
    [ParticipantCount], [ParticipantsRemaining], [CurrentPhaseNumber],
    [AddParticipant], [RemoveParticipant].

    Root cause L — the paper's "classic example of a nonlinearizable class":
    [SignalAndWait] blocks every thread until all threads have entered, a
    behavior equivalent to no serial execution. Under Line-Up, phase 1
    records only stuck serial histories for tests with several
    [SignalAndWait]s (serially the first one blocks alone), so any
    concurrent execution where they all complete has no witness. *)

val adapter : Lineup.Adapter.t
