(** CountdownEvent (Table 1), initialized with count 2: [Signal] (returns
    whether the event became set; [Fail] models the .NET exception on an
    already-set event), [AddCount] ([Fail] once set), [TryAddCount],
    [CurrentCount], [IsSet], [Wait] (blocks until the count reaches zero),
    [TryWait].

    - {!correct}: all transitions under one lock; [Wait] sleeps on the
      scheduler's predicate blocking.
    - {!pre} (root cause D): [Signal]'s decrement is an unsynchronized
      read-modify-write; two concurrent signals can both observe count 2 and
      write 1 — the event never becomes set and waiters block forever (both
      a wrong-result and an erroneous-blocking failure). *)

val correct : Lineup.Adapter.t
val pre : Lineup.Adapter.t
