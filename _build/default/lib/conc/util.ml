(* Shared helpers for the implementations under test. *)

module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation

let unexpected class_name (inv : Invocation.t) =
  Fmt.invalid_arg "%s: unexpected invocation %a" class_name Invocation.pp inv

(* Universe construction helpers. *)
let inv ?arg name = Invocation.make ?arg name
let inv_int name n = Invocation.make ~arg:(Value.int n) name
