(** A segment-based mostly-lock-free FIFO queue, modelled on the actual
    .NET 4.0 ConcurrentQueue implementation (fixed-size array segments,
    reserve-then-fill slots, lazily linked segments) — a second lock-free
    subject exercising CAS reservation protocols rather than list surgery.

    Operations: [Enqueue(x)], [TryDequeue], [TryPeek], [IsEmpty].

    Protocol: each segment has [capacity] slots and two cursors. [Enqueue]
    reserves a slot by CAS on the tail cursor, writes the value, then sets
    the slot's [committed] flag; when a segment fills, the enqueuer links a
    fresh segment. [TryDequeue] reserves from the head cursor and spins
    (yielding) until the slot it won is committed — the reservation windows
    are exactly where linearizability is subtle, and the model checker
    explores them exhaustively. *)

val adapter : Lineup.Adapter.t

(** Slots per segment (kept tiny so tests cross segment boundaries). *)
val capacity : int
