(** A lock-free FIFO queue (Michael & Scott 1996) — the style of fine-
    grained implementation the paper's introduction motivates ("many
    concurrent components, in practice, use more sophisticated lock-free
    synchronization").

    Operations: [Enqueue(x)], [TryDequeue], [TryPeek], [IsEmpty].
    ([Count]/[ToArray] are deliberately absent: a lock-free traversal is not
    linearizable and this variant is a known-good subject.)

    The CAS retry loops go through [Rt.yield], exercising the model
    checker's fair scheduling of spin loops. *)

val adapter : Lineup.Adapter.t
