(** TaskCompletionSource (Table 1): [TrySetResult(10)], [TrySetResult(20)],
    [TrySetCanceled], [GetResult] (the stored result, [Fail] when unset or
    canceled), [IsCompleted], [Wait] (blocks until completed).

    - {!correct}: a single CAS decides the winner; exactly one
      completion attempt returns [true].
    - {!pre} (root cause G): check-then-act without atomicity — two
      concurrent [TrySetResult] calls can both observe "not completed" and
      both return [true], which no serial execution allows. *)

val correct : Lineup.Adapter.t
val pre : Lineup.Adapter.t
