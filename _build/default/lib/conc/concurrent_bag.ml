module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Rt = Lineup_runtime.Rt
open Util

let max_threads = 4

let universe =
  [ inv_int "Add" 10; inv_int "Add" 20; inv "TryTake"; inv "TryPeek"; inv "Count"; inv "IsEmpty"; inv "ToArray" ]

let adapter =
  let create () =
    let segments =
      Array.init max_threads (fun i -> Var.make ~name:(Fmt.str "bag.seg%d" i) [])
    in
    let locks = Array.init max_threads (fun i -> Mutex_.create ~name:(Fmt.str "bag.lock%d" i) ()) in
    let own () = Rt.self () mod max_threads in
    let scan_order () =
      let me = own () in
      me :: List.filter (fun j -> j <> me) (List.init max_threads Fun.id)
    in
    (* Non-blocking scan: a busy segment is skipped (the intentional
       nondeterminism of root cause H). *)
    let rec scan ~remove = function
      | [] -> Value.Fail
      | j :: rest ->
        if Mutex_.try_acquire locks.(j) then begin
          let r =
            match Var.read segments.(j) with
            | [] -> None
            | x :: tail ->
              if remove then Var.write segments.(j) tail;
              Some (Value.int x)
          in
          Mutex_.release locks.(j);
          match r with Some v -> v | None -> scan ~remove rest
        end
        else scan ~remove rest
    in
    let with_all_locks f =
      Array.iter Mutex_.acquire locks;
      let r = f () in
      Array.iter Mutex_.release locks;
      r
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Add", Value.Int x ->
        let me = own () in
        Mutex_.with_lock locks.(me) (fun () ->
            Var.write segments.(me) (x :: Var.read segments.(me)));
        Value.unit
      | "TryTake", Value.Unit -> scan ~remove:true (scan_order ())
      | "TryPeek", Value.Unit -> scan ~remove:false (scan_order ())
      | "Count", Value.Unit ->
        with_all_locks (fun () ->
            Value.int (Array.fold_left (fun acc s -> acc + List.length (Var.read s)) 0 segments))
      | "IsEmpty", Value.Unit ->
        with_all_locks (fun () ->
            Value.bool (Array.for_all (fun s -> Var.read s = []) segments))
      | "ToArray", Value.Unit ->
        with_all_locks (fun () ->
            Value.list
              (List.concat_map
                 (fun s -> List.map Value.int (Var.read s))
                 (Array.to_list segments)))
      | _ -> unexpected "ConcurrentBag" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"ConcurrentBag" ~universe create
