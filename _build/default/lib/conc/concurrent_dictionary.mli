(** ConcurrentDictionary (Table 1), for keys 10 and 20 as in the paper's
    method list: [TryAdd(k)] (stores [k*100]), [TryRemove(k)], [TryGet(k)],
    [Get(k)] (the indexer; [Fail] when absent), [Set(k)] (indexer
    assignment, stores [k*100+1]), [TryUpdate(k)] (increments the stored
    value when present), [ContainsKey(k)], [Count], [IsEmpty], [Clear].

    Striped locking as in .NET: key operations take the key's stripe lock;
    whole-table operations ([Count], [IsEmpty], [Clear]) acquire all stripe
    locks in order.

    - {!adapter}: the known-good subject.
    - {!pre} (root cause O, a seeded defect in the style of B–G): [Clear]
      empties the stripes {e one lock at a time} instead of under all
      locks; a concurrent [Count] can observe a half-cleared table —
      e.g. 1 on a table that only ever held 0 or 2 entries — which no
      serial order of the operations allows. *)

val adapter : Lineup.Adapter.t
val pre : Lineup.Adapter.t
