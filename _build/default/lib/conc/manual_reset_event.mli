(** ManualResetEvent — the class behind the paper's headline bug (root cause
    A, Section 5.2.1, Fig. 9).

    Operations: [Set], [Reset], [Wait] (blocks while unset), [TryWait]
    (.NET's [WaitOne(0)]), [IsSet].

    Three variants:
    - {!correct}: combined state word (bit 0 = signaled, upper bits = waiter
      count) updated by CAS; waiters sleep on a monitor and re-check under
      the lock, so wake-ups cannot be lost.
    - {!lost_signal}: [Set] attempts its CAS {e once} and silently drops the
      signal if a waiter registers concurrently — a waiter can then block
      forever although [Set] returned. Like the paper's bug A, this is
      invisible to classic linearizability and caught only by the stuck-
      history check (Definition 2): serially, [Wait] after [Set] never
      blocks.
    - {!cas_typo}: the paper's literal defect — the new state word is
      computed from a {e re-read} of the shared variable instead of the
      local copy ([newstate = f(state)] instead of [f(localstate)]). A
      [Set]/[Reset] pair racing with the registration corrupts the state
      word with a stale signal bit, observable as [IsSet] returning [true]
      after a completed [Reset]. *)

val correct : Lineup.Adapter.t
val lost_signal : Lineup.Adapter.t
val cas_typo : Lineup.Adapter.t
