module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Rt = Lineup_runtime.Rt
open Util

let universe =
  [
    inv "Signal";
    inv "Wait";
    inv "IsSet";
    inv "CurrentCount";
    inv "AddCount";
    inv "TryAddCount";
    inv "TryWait";
  ]

let initial_count = 2

let make_adapter ~buggy_signal name =
  let create () =
    let count = Var.make ~volatile:true ~name:"cde.count" initial_count in
    let lock = Mutex_.create ~name:"cde.lock" () in
    let signal () =
      if buggy_signal then begin
        (* BUG (root cause D): unsynchronized decrement *)
        let c = Var.read count in
        if c = 0 then Value.Fail
        else begin
          Var.write count (c - 1);
          Value.bool (c - 1 = 0)
        end
      end
      else
        Mutex_.with_lock lock (fun () ->
            let c = Var.read count in
            if c = 0 then Value.Fail
            else begin
              Var.write count (c - 1);
              Value.bool (c - 1 = 0)
            end)
    in
    let add_count ~try_ () =
      Mutex_.with_lock lock (fun () ->
          let c = Var.read count in
          if c = 0 then if try_ then Value.bool false else Value.Fail
          else begin
            Var.write count (c + 1);
            if try_ then Value.bool true else Value.unit
          end)
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Signal", Value.Unit -> signal ()
      | "AddCount", Value.Unit -> add_count ~try_:false ()
      | "TryAddCount", Value.Unit -> add_count ~try_:true ()
      | "CurrentCount", Value.Unit -> Value.int (Var.read count)
      | "IsSet", Value.Unit -> Value.bool (Var.read count = 0)
      | "TryWait", Value.Unit -> Value.bool (Var.read count = 0)
      | "Wait", Value.Unit ->
        Rt.block ~wake:(fun () -> Var.peek count = 0) "countdown reaches zero";
        Value.unit
      | _ -> unexpected "CountdownEvent" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe create

let correct = make_adapter ~buggy_signal:false "CountdownEvent"
let pre = make_adapter ~buggy_signal:true "CountdownEvent (Pre: racy signal)"
