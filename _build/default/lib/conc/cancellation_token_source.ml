module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Rt = Lineup_runtime.Rt
open Util

let universe = [ inv "Cancel"; inv "IsCancellationRequested"; inv "CanBeCanceled" ]

let adapter =
  let create () =
    let pending = Var.make ~volatile:true ~name:"cts.pending" false in
    let cancelled = Var.make ~volatile:true ~name:"cts.cancelled" false in
    (* The asynchronous callback: any operation that touches the source
       first drains a pending cancellation. *)
    let drain () = if Var.read pending then Var.write cancelled true in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Cancel", Value.Unit ->
        Var.write pending true;
        (* the callback may or may not have run by the time Cancel returns *)
        if Rt.choose ~what:"cancel callback scheduled synchronously" 2 = 1 then
          Var.write cancelled true;
        Value.unit
      | "IsCancellationRequested", Value.Unit ->
        let v = Var.read cancelled in
        drain ();
        Value.bool v
      | "CanBeCanceled", Value.Unit -> Value.bool true
      | _ -> unexpected "CancellationTokenSource" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"CancellationTokenSource" ~universe create
