module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
module Rt = Lineup_runtime.Rt
open Util

let participants_initial = 2

let universe =
  [
    inv "SignalAndWait";
    inv "ParticipantCount";
    inv "ParticipantsRemaining";
    inv "CurrentPhaseNumber";
    inv "AddParticipant";
    inv "RemoveParticipant";
  ]

let adapter =
  let create () =
    let lock = Mutex_.create ~name:"barrier.lock" () in
    let participants = Var.make ~name:"barrier.participants" participants_initial in
    let arrived = Var.make ~name:"barrier.arrived" 0 in
    let phase = Var.make ~volatile:true ~name:"barrier.phase" 0 in
    let signal_and_wait () =
      Mutex_.acquire lock;
      let my_phase = Var.read phase in
      let a = Var.read arrived + 1 in
      if a >= Var.read participants then begin
        (* last arrival: advance the phase, releasing everyone *)
        Var.write arrived 0;
        Var.write phase (my_phase + 1);
        Mutex_.release lock
      end
      else begin
        Var.write arrived a;
        Mutex_.release lock;
        Rt.block ~wake:(fun () -> Var.peek phase > my_phase) "barrier phase advance"
      end;
      Value.int my_phase
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "SignalAndWait", Value.Unit -> signal_and_wait ()
      | "ParticipantCount", Value.Unit -> Value.int (Var.read participants)
      | "ParticipantsRemaining", Value.Unit ->
        Mutex_.with_lock lock (fun () ->
            Value.int (Var.read participants - Var.read arrived))
      | "CurrentPhaseNumber", Value.Unit -> Value.int (Var.read phase)
      | "AddParticipant", Value.Unit ->
        Mutex_.with_lock lock (fun () ->
            Var.write participants (Var.read participants + 1);
            Value.unit)
      | "RemoveParticipant", Value.Unit ->
        Mutex_.with_lock lock (fun () ->
            let p = Var.read participants in
            if p <= 0 then Value.Fail
            else begin
              Var.write participants (p - 1);
              (* removing a participant can complete the current phase *)
              if Var.read arrived >= p - 1 && p - 1 > 0 then begin
                Var.write arrived 0;
                Var.write phase (Var.read phase + 1)
              end;
              Value.unit
            end)
      | _ -> unexpected "Barrier" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name:"Barrier" ~universe create
