(** Lazy initialization (the paper's "LazyInit" class, Table 1): [Value]
    (forces the factory on first use and returns the computed value),
    [IsValueCreated], [ToString].

    The factory is observable: it returns 1 plus the number of prior factory
    executions, so a double execution or a leaked default is visible in the
    history (serially, [Value] always returns 1).

    - {!correct}: double-checked locking with the initialized flag published
      {e after} the value.
    - {!pre} (root cause F): the flag is published {e before} the value is
      stored; a concurrent reader sees the flag and returns the
      uninitialized default 0. *)

val correct : Lineup.Adapter.t
val pre : Lineup.Adapter.t
