(** ConcurrentStack (Table 1): [Push(x)], [TryPop], [TryPeek], [Count],
    [PushRange([..])], [TryPopRange(n)], [ToArray].

    - {!correct}: a Treiber stack — the top of stack is an immutable list in
      a single CAS cell, so every operation (including the range
      operations and snapshots) is one atomic read or CAS.
    - {!pre} (root cause E): [TryPopRange] pops its elements {e one CAS at a
      time}; concurrent pushes can interleave between the individual pops,
      so the returned range is not a contiguous stack segment — e.g. it can
      contain elements that were never adjacent. *)

val correct : Lineup.Adapter.t
val pre : Lineup.Adapter.t
