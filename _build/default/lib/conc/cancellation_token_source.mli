(** CancellationTokenSource (Table 1): [Cancel], [IsCancellationRequested],
    [CanBeCanceled].

    Root cause K — intentional nonlinearizability: the effects of [Cancel]
    (running the registered callbacks that flip the observable cancellation
    state) can land {e after} [Cancel] has returned. We model the
    asynchronous callback with a demonic choice inside [Cancel]: the flip
    may or may not have happened by the time it returns (it certainly
    happens before any later operation observes the source). Because the
    choice is explored in phase 1 as well, Line-Up reports this class as
    {e nondeterministic} (Fig. 5, line 4) — no deterministic sequential
    specification exists, which is how an asynchronous method surfaces in
    the tool. *)

val adapter : Lineup.Adapter.t
