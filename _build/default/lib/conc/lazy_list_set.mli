(** A lazy-synchronization sorted-list set (Heller, Herlihy, Luchangco,
    Moir, Scherer, Shavit 2005) — the kind of published fine-grained
    algorithm whose correctness the paper's introduction calls "subtle
    enough to warrant manual proofs of linearizability". Here the model
    checker machine-checks it instead.

    Operations (keys 10 and 15 in the universe): [Add(k)], [Remove(k)]
    (return whether the set changed), [Contains(k)] (wait-free, traverses
    without locks, relying on the marked-node protocol).

    - {!correct}: the published algorithm — removal {e marks} the victim
      node before unlinking; insertion validates that neither neighbor is
      marked and that they are still adjacent.
    - {!pre}: removal forgets to mark. Insertions that validated against
      the (unmarked) removed node succeed into an unreachable suffix — a
      lost insert: [Add] returns [true] but a later [Contains] returns
      [false]. The classic lazy-list bug. *)

val correct : Lineup.Adapter.t
val pre : Lineup.Adapter.t
