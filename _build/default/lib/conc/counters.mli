(** The pedagogical counters of Section 2.2.

    - {!correct}: every operation under one lock — linearizable.
    - {!buggy_unlocked} ("Counter1", §2.2.1): [Inc] reads and writes the
      count without the lock; two concurrent increments can be lost,
      yielding the non-linearizable history of the paper ([Get] returns 1
      after two completed [Inc]).
    - {!buggy_stuck} ("Counter2", §2.2.2): [Get] acquires the lock and never
      releases it. Every history it produces is linearizable under
      Definition 1 — only the generalized definition (stuck histories,
      Definition 2) catches the bug.

    Operations: [Inc], [Get], [Set(x)], and blocking [Dec] (the
    semaphore-like decrement of Fig. 3, present on {!correct} only). *)

val correct : Lineup.Adapter.t
val buggy_unlocked : Lineup.Adapter.t
val buggy_stuck : Lineup.Adapter.t
