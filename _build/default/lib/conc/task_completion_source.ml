module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Rt = Lineup_runtime.Rt
open Util

type state =
  | Pending
  | Done of int
  | Canceled

let universe =
  [
    inv_int "TrySetResult" 10;
    inv_int "TrySetResult" 20;
    inv "TrySetCanceled";
    inv "GetResult";
    inv "IsCompleted";
    inv "Wait";
  ]

let make_adapter ~atomic name =
  let create () =
    let state = Var.make ~volatile:true ~name:"tcs.state" Pending in
    let try_complete target =
      if atomic then
        (* single CAS from the Pending sentinel decides the winner *)
        Var.cas state Pending target
      else begin
        (* BUG (root cause G): check-then-act *)
        match Var.read state with
        | Pending ->
          Var.write state target;
          true
        | Done _ | Canceled -> false
      end
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "TrySetResult", Value.Int x -> Value.bool (try_complete (Done x))
      | "TrySetCanceled", Value.Unit -> Value.bool (try_complete Canceled)
      | "GetResult", Value.Unit -> (
        match Var.read state with
        | Done x -> Value.int x
        | Pending | Canceled -> Value.Fail)
      | "IsCompleted", Value.Unit ->
        Value.bool (match Var.read state with Pending -> false | Done _ | Canceled -> true)
      | "Wait", Value.Unit ->
        Rt.block
          ~wake:(fun () -> match Var.peek state with Pending -> false | Done _ | Canceled -> true)
          "task completed";
        Value.unit
      | _ -> unexpected "TaskCompletionSource" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe create

let correct = make_adapter ~atomic:true "TaskCompletionSource"
let pre = make_adapter ~atomic:false "TaskCompletionSource (Pre: racy TrySetResult)"
