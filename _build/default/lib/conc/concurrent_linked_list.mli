(** ConcurrentLinkedList (Table 1, a CTP-only class): [AddFirst(x)],
    [AddLast(x)], [RemoveFirst], [RemoveLast] ([Fail] when empty), [Count],
    [ToArray].

    A lock-protected deque; known-good subject. *)

val adapter : Lineup.Adapter.t
