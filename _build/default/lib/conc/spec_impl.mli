(** Correct-by-construction implementations derived from specifications.

    Wraps a {!Lineup_spec.Spec.t} behind a single global lock: every
    operation acquires the lock, steps the specification state, and releases
    — the textbook way to obtain a linearizable component (paper,
    Introduction). Blocking specification outcomes block the caller until
    the state changes.

    These are the "known good" subjects in the test suite: Line-Up must PASS
    them, and any FAIL is a bug in Line-Up itself. *)

(** [adapter ?name ?universe spec] builds an adapter; [universe] defaults to
    nothing and must be provided for use with the automatic test
    generators. *)
val adapter :
  ?name:string ->
  ?universe:Lineup_history.Invocation.t list ->
  'st Lineup_spec.Spec.t ->
  Lineup.Adapter.t
