lib/conc/concurrent_dictionary.ml: Array Fmt Lineup Lineup_history Lineup_runtime Lineup_value List Util
