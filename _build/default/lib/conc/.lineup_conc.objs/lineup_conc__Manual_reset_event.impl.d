lib/conc/manual_reset_event.ml: Lineup Lineup_history Lineup_runtime Lineup_value Util
