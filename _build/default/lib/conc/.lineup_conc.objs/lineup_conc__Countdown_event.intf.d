lib/conc/countdown_event.mli: Lineup
