lib/conc/rw_lock.ml: Lineup Lineup_history Lineup_runtime Lineup_value Option Util
