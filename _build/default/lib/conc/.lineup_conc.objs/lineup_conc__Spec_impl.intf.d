lib/conc/spec_impl.mli: Lineup Lineup_history Lineup_spec
