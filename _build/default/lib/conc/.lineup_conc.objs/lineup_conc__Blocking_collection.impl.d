lib/conc/blocking_collection.ml: Array Fmt Fun Lineup Lineup_history Lineup_runtime Lineup_value List Option Util
