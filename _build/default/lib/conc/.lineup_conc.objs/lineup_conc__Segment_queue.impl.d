lib/conc/segment_queue.ml: Array Fmt Lineup Lineup_history Lineup_runtime Lineup_value Option Util
