lib/conc/cancellation_token_source.ml: Lineup Lineup_history Lineup_runtime Lineup_value Util
