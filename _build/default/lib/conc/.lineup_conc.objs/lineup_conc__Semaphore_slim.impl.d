lib/conc/semaphore_slim.ml: Lineup Lineup_history Lineup_runtime Lineup_value Util
