lib/conc/concurrent_bag.ml: Array Fmt Fun Lineup Lineup_history Lineup_runtime Lineup_value List Util
