lib/conc/michael_scott_queue.ml: Lineup Lineup_history Lineup_runtime Lineup_value Option Util
