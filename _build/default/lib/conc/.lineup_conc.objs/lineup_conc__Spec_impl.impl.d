lib/conc/spec_impl.ml: Lineup Lineup_runtime Lineup_spec Option
