lib/conc/concurrent_queue.ml: Lineup Lineup_history Lineup_runtime Lineup_value List Util
