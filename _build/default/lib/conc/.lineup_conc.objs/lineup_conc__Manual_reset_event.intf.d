lib/conc/manual_reset_event.mli: Lineup
