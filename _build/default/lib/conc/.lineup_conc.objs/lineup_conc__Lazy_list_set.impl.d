lib/conc/lazy_list_set.ml: Fmt Lineup Lineup_history Lineup_runtime Lineup_value Util
