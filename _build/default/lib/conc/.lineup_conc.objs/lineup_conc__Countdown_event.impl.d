lib/conc/countdown_event.ml: Lineup Lineup_history Lineup_runtime Lineup_value Util
