lib/conc/counters.mli: Lineup
