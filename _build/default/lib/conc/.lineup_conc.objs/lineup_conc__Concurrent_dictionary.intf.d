lib/conc/concurrent_dictionary.mli: Lineup
