lib/conc/concurrent_stack.mli: Lineup
