lib/conc/concurrent_stack.ml: Lineup Lineup_history Lineup_runtime Lineup_value List Util
