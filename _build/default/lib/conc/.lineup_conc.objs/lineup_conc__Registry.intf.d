lib/conc/registry.mli: Lineup
