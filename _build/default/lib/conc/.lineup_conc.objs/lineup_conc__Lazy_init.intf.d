lib/conc/lazy_init.mli: Lineup
