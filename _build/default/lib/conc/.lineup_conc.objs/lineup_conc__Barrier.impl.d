lib/conc/barrier.ml: Lineup Lineup_history Lineup_runtime Lineup_value Util
