lib/conc/concurrent_queue.mli: Lineup
