lib/conc/util.ml: Fmt Lineup_history Lineup_value
