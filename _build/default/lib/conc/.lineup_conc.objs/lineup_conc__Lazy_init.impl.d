lib/conc/lazy_init.ml: Lineup Lineup_history Lineup_runtime Lineup_value Util
