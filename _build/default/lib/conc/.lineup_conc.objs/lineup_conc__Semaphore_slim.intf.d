lib/conc/semaphore_slim.mli: Lineup
