lib/conc/task_completion_source.ml: Lineup Lineup_history Lineup_runtime Lineup_value Util
