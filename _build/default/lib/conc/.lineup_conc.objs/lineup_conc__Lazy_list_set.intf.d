lib/conc/lazy_list_set.mli: Lineup
