lib/conc/segment_queue.mli: Lineup
