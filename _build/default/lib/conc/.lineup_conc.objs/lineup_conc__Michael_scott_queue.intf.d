lib/conc/michael_scott_queue.mli: Lineup
