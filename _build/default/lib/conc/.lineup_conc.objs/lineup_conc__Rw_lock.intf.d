lib/conc/rw_lock.mli: Lineup
