lib/conc/concurrent_linked_list.ml: Lineup Lineup_history Lineup_runtime Lineup_value List Util
