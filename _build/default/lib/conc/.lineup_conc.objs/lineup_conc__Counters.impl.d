lib/conc/counters.ml: Lineup Lineup_history Lineup_runtime Lineup_value Util
