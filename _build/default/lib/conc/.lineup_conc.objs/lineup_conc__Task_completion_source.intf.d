lib/conc/task_completion_source.mli: Lineup
