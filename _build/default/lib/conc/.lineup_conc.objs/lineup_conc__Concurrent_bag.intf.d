lib/conc/concurrent_bag.mli: Lineup
