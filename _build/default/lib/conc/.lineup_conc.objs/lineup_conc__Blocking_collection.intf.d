lib/conc/blocking_collection.mli: Lineup
