lib/conc/cancellation_token_source.mli: Lineup
