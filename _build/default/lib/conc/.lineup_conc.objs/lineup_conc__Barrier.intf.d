lib/conc/barrier.mli: Lineup
