lib/conc/concurrent_linked_list.mli: Lineup
