module Value = Lineup_value.Value
module Invocation = Lineup_history.Invocation
module Var = Lineup_runtime.Shared_var
module Mutex_ = Lineup_runtime.Mutex_
open Util

let universe = [ inv "Value"; inv "IsValueCreated"; inv "ToString" ]

let make_adapter ~publish_flag_first name =
  let create () =
    let lock = Mutex_.create ~name:"lazy.lock" () in
    let initialized = Var.make ~volatile:true ~name:"lazy.initialized" false in
    let cell = Var.make ~name:"lazy.value" 0 in
    let factory_runs = Var.make ~name:"lazy.factory_runs" 0 in
    let force () =
      if Var.read initialized then Var.read cell
      else
        Mutex_.with_lock lock (fun () ->
            if Var.read initialized then Var.read cell
            else begin
              let runs = Var.read factory_runs + 1 in
              Var.write factory_runs runs;
              if publish_flag_first then begin
                (* BUG (root cause F): flag published before the value *)
                Var.write initialized true;
                Var.write cell runs;
                runs
              end
              else begin
                Var.write cell runs;
                Var.write initialized true;
                runs
              end
            end)
    in
    let invoke (i : Invocation.t) =
      match i.name, i.arg with
      | "Value", Value.Unit ->
        (* the racy fast path reads the flag, then the cell *)
        if Var.read initialized then Value.int (Var.read cell) else Value.int (force ())
      | "IsValueCreated", Value.Unit -> Value.bool (Var.read initialized)
      | "ToString", Value.Unit ->
        if Var.read initialized then Value.str (string_of_int (Var.read cell))
        else Value.str "<uncreated>"
      | _ -> unexpected "LazyInit" i
    in
    { Lineup.Adapter.invoke }
  in
  Lineup.Adapter.make ~name ~universe create

let correct = make_adapter ~publish_flag_first:false "LazyInit"
let pre = make_adapter ~publish_flag_first:true "LazyInit (Pre: early publish)"
