(** The catalog of implementations under test, with the metadata that drives
    the Table 1 / Table 2 reproduction: which .NET class each adapter
    models, which release it corresponds to (Beta2 or the CTP "Pre"
    versions), and the expected Line-Up outcome with its root-cause tag
    (A–L, Section 5.2). *)

type expected =
  | Pass
  | Bug of string  (** root causes A–G: real implementation errors *)
  | Intentional_nondeterminism of string  (** H, I, J *)
  | Intentional_nonlinearizability of string  (** K, L *)

type entry = {
  adapter : Lineup.Adapter.t;
  class_name : string;  (** the .NET class of Table 1 *)
  version : [ `Beta2 | `Pre ];
  expected : expected;
  defect : string option;  (** one-line description of the seeded defect *)
  min_dims : (int * int) option;
      (** smallest failing test dimensions (rows × columns), when failing *)
}

val all : entry list

(** Entries grouped as the rows of Table 2 (one per class/version). *)
val table2_rows : entry list

(** The known-good subjects (expected PASS). *)
val correct_entries : entry list

(** The entries expected to fail, with their root-cause letter. *)
val failing_entries : (string * entry) list

val find : string -> entry
(** [find name] looks an entry up by adapter name; raises [Not_found]. *)
