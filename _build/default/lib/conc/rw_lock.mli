(** ReaderWriterLockSlim — a .NET 4.0-era synchronization class of the same
    family as those in Table 1 (bonus subject).

    Operations: [EnterRead] (blocks while a writer holds the lock),
    [ExitRead] ([Fail] when no reader holds it), [EnterWrite] (blocks while
    any reader or writer holds it), [ExitWrite], [TryEnterRead],
    [TryEnterWrite], [CurrentReadCount], [IsWriteHeld].

    - {!correct}: reader count and writer flag updated atomically under a
      CAS loop; waiters sleep on the scheduler's predicate blocking.
    - {!pre}: [EnterRead]'s fast path increments the reader count with an
      unsynchronized read-modify-write; two concurrent [EnterRead]s can
      lose an increment — observable as [CurrentReadCount] = 1 after both
      returned, or as a spurious [Fail] from the second [ExitRead]. *)

val correct : Lineup.Adapter.t
val pre : Lineup.Adapter.t
