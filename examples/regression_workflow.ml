(* The regression-testing workflow of §4.1/§5.1: record the specification
   once (phase 1, written to an observation file), then re-check changed
   implementations against the recorded file — catching regressions even
   when the new implementation is "deterministic in its own way".

   Run: dune exec examples/regression_workflow.exe *)

module Conc = Lineup_conc
module Invocation = Lineup_history.Invocation
module Value = Lineup_value.Value
open Lineup

let inv name = Invocation.make name
let inv_int name n = Invocation.make ~arg:(Value.int n) name

let test =
  Test_matrix.make
    [
      [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ];
      [ inv "TryDequeue"; inv "TryDequeue" ];
    ]

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "lineup-regression-demo" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* 1. Record the specification from the known-good Beta2 queue. *)
  let good = Conc.Concurrent_queue.correct in
  let obs, hit =
    match Obs_cache.phase1 ~dir good test with
    | Ok r -> r
    | Error _ -> failwith "phase 1 failed"
  in
  Fmt.pr "Recorded specification: %d full + %d stuck serial histories (%s)@."
    (Observation.num_full obs) (Observation.num_stuck obs)
    (if hit then "loaded from cache" else "freshly enumerated");
  Fmt.pr "Observation file: %s@.@." (Obs_cache.cache_path ~dir good test);
  (* 2. Re-run the same implementation against the recorded file: PASS. *)
  let r = Check.run ~observation:obs good test in
  Fmt.pr "Beta2 queue vs recorded spec:   %s@." (Report.summary r);
  (* 3. "Upgrade" to the CTP queue (the timed-lock defect) and check it
        against the same recorded specification: the regression surfaces. *)
  let r = Check.run ~observation:obs Conc.Concurrent_queue.pre test in
  Fmt.pr "CTP queue vs recorded spec:     %s@.@." (Report.summary r);
  (match r.Check.verdict with
   | Check.Fail v -> Fmt.pr "%a@." Check.pp_violation v
   | Check.Pass | Check.Cancelled -> ());
  (* cleanup *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir
